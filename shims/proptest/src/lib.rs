//! Offline drop-in replacement for the subset of `proptest` 1.x this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace patches
//! `proptest` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). Provided surface:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! * strategies: numeric ranges, tuples, [`Just`], `&str` regexes,
//!   [`collection::vec`], [`string::string_regex`], [`prop_oneof!`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream: generation is **deterministic** (the RNG is
//! seeded from the test function's name, so failures reproduce exactly in CI
//! and locally) and there is **no shrinking** — a failing case reports the
//! case number and assertion message instead of a minimized input.

pub mod test_runner {
    //! Test-runner configuration and error types.

    /// Error raised by `prop_assert!`-style macros inside a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A test-case failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Smaller than upstream's 256: these tests run in CI on every
            // push, and the workspace's properties are numeric kernels where
            // 64 diverse cases already cover the edge shapes.
            Config { cases: 64 }
        }
    }
}

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded constructor (xoshiro256++ via SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of one type.
///
/// Unlike upstream there is no `ValueTree`/shrinking layer: a strategy just
/// produces values directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted boxed alternatives — the engine
/// behind [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].gen_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// String literals act as regex strategies, as in upstream proptest.
impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        string::compile_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .gen_string(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec`]: an exact length or a range of lengths.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec size range");
            lo + rng.below((hi - lo) as u64 + 1) as usize
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod string {
    //! Regex-shaped string strategies.
    //!
    //! Supports the pattern subset the workspace uses: sequences of literal
    //! characters and character classes (`[a-z0-9 .,]`, including `X-Y`
    //! ranges) with `{n}` / `{m,n}` / `?` / `+` / `*` quantifiers, plus one
    //! level of literal alternation groups (`(foo|bar|baz)`).

    use super::{Strategy, TestRng};

    /// A compiled pattern usable as a [`Strategy`] producing `String`s.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Quantified>,
    }

    #[derive(Debug, Clone)]
    struct Quantified {
        atom: Atom,
        min: usize,
        max: usize,
    }

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
        Alternation(Vec<String>),
    }

    /// Compilation error with a human-readable message.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Compiles `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        compile_regex(pattern)
    }

    pub(crate) fn compile_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or_else(|| Error("unterminated character class".into()))?
                        + i;
                    let class = parse_class(&chars[i + 1..close])?;
                    i = close + 1;
                    Atom::Class(class)
                }
                '(' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ')')
                        .ok_or_else(|| Error("unterminated group".into()))?
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    if body.contains(['[', '(', '{']) {
                        return Err(Error(format!("unsupported nested group: ({body})")));
                    }
                    i = close + 1;
                    Atom::Alternation(body.split('|').map(str::to_string).collect())
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .ok_or_else(|| Error("dangling escape".into()))?;
                    i += 2;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i)?;
            atoms.push(Quantified { atom, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    fn parse_class(body: &[char]) -> Result<Vec<(char, char)>, Error> {
        if body.is_empty() {
            return Err(Error("empty character class".into()));
        }
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < body.len() {
            // `X-Y` is a range unless the `-` is first or last in the class.
            if i + 2 < body.len() && body[i + 1] == '-' {
                if body[i] > body[i + 2] {
                    return Err(Error(format!("inverted range {}-{}", body[i], body[i + 2])));
                }
                ranges.push((body[i], body[i + 2]));
                i += 3;
            } else {
                ranges.push((body[i], body[i]));
                i += 1;
            }
        }
        Ok(ranges)
    }

    fn parse_quantifier(chars: &[char], i: &mut usize) -> Result<(usize, usize), Error> {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error("unterminated quantifier".into()))?
                    + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                let parse =
                    |s: &str| s.parse::<usize>().map_err(|_| Error(format!("bad bound {s}")));
                match body.split_once(',') {
                    Some((lo, hi)) => Ok((parse(lo)?, parse(hi)?)),
                    None => {
                        let n = parse(&body)?;
                        Ok((n, n))
                    }
                }
            }
            Some('?') => {
                *i += 1;
                Ok((0, 1))
            }
            Some('*') => {
                *i += 1;
                Ok((0, 8))
            }
            Some('+') => {
                *i += 1;
                Ok((1, 8))
            }
            _ => Ok((1, 1)),
        }
    }

    impl RegexGeneratorStrategy {
        pub(crate) fn gen_string(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for q in &self.atoms {
                let reps = q.min + rng.below((q.max - q.min) as u64 + 1) as usize;
                for _ in 0..reps {
                    match &q.atom {
                        Atom::Literal(c) => out.push(*c),
                        Atom::Class(ranges) => {
                            let total: u64 =
                                ranges.iter().map(|&(a, b)| b as u64 - a as u64 + 1).sum();
                            let mut pick = rng.below(total);
                            for &(a, b) in ranges {
                                let span = b as u64 - a as u64 + 1;
                                if pick < span {
                                    out.push(char::from_u32(a as u32 + pick as u32).unwrap());
                                    break;
                                }
                                pick -= span;
                            }
                        }
                        Atom::Alternation(alts) => {
                            out.push_str(&alts[rng.below(alts.len() as u64) as usize]);
                        }
                    }
                }
            }
            out
        }
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            self.gen_string(rng)
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy,
    };
}

/// Seeds the per-test RNG from the test's fully-qualified name so runs are
/// reproducible everywhere. Public for use by the [`proptest!`] expansion.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Defines property tests. Mirrors upstream `proptest!` syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn prop(x in 0u64..10, v in proptest::collection::vec(0i32..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::seed_from_u64($crate::seed_for(test_name, case));
                    $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)*
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = result {
                        panic!(
                            "proptest case {case}/{} failed for {test_name}: {e}",
                            cfg.cases
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), format!($($fmt)*), a, b
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let (a, b) = (0usize..7, -3i64..3).gen_value(&mut rng);
            assert!(a < 7);
            assert!((-3..3).contains(&b));
            let f = (-1.0f32..1.0).gen_value(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let i = (1usize..=4).gen_value(&mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_lengths() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..200 {
            let exact = crate::collection::vec(0u32..10, 3usize).gen_value(&mut rng);
            assert_eq!(exact.len(), 3);
            let ranged = crate::collection::vec(0u32..10, 1..6).gen_value(&mut rng);
            assert!((1..6).contains(&ranged.len()));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = crate::string::string_regex("[a-z]{1,8}").expect("regex");
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!((1..=8).contains(&v.len()), "{v:?}");
            assert!(v.chars().all(|c| c.is_ascii_lowercase()));
        }
        let printable = crate::string::string_regex("[ -~]{0,12}").expect("regex");
        for _ in 0..200 {
            let v = printable.gen_value(&mut rng);
            assert!(v.len() <= 12);
            assert!(v.chars().all(|c| (' '..='~').contains(&c)));
        }
        let alts = crate::string::string_regex("(fox|quick|brown|the)").expect("regex");
        for _ in 0..50 {
            let v = alts.gen_value(&mut rng);
            assert!(["fox", "quick", "brown", "the"].contains(&v.as_str()));
        }
        let mixed = crate::string::string_regex("[a-z0-9 .,|:;]{0,40}").expect("regex");
        for _ in 0..100 {
            assert!(mixed.gen_value(&mut rng).len() <= 40);
        }
    }

    #[test]
    fn str_literals_are_strategies() {
        let mut rng = TestRng::seed_from_u64(4);
        let v = "(a|bb)".gen_value(&mut rng);
        assert!(v == "a" || v == "bb");
    }

    #[test]
    fn oneof_and_just_and_maps_compose() {
        let mut rng = TestRng::seed_from_u64(5);
        let strat = prop_oneof![
            (0i64..100).prop_map(|n| n.to_string()),
            Just(String::from("fixed")),
        ];
        let mut saw_fixed = false;
        let mut saw_number = false;
        for _ in 0..200 {
            let v = strat.gen_value(&mut rng);
            if v == "fixed" {
                saw_fixed = true;
            } else {
                assert!(v.parse::<i64>().is_ok());
                saw_number = true;
            }
        }
        assert!(saw_fixed && saw_number);
    }

    #[test]
    fn flat_map_feeds_dependent_strategies() {
        let mut rng = TestRng::seed_from_u64(6);
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..10, n));
        for _ in 0..100 {
            let v = strat.gen_value(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..50, v in crate::collection::vec(0u32..5, 0..4)) {
            prop_assert!(x < 50);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(v.len(), v.iter().count());
            prop_assert_ne!(x, 50);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_override_is_accepted(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::string::string_regex("[a-z]{4}").expect("regex");
        let a = s.gen_value(&mut TestRng::seed_from_u64(9));
        let b = s.gen_value(&mut TestRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
