//! Offline drop-in replacement for the subset of `criterion` 0.5 this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace patches
//! `criterion` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It implements real measurement (calibrated warmup, then a
//! fixed sample count with per-sample medians) for the API surface the
//! `ntr-bench` benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! ## `--json` mode
//!
//! Beyond upstream's CLI, `--json [PATH]` writes every measurement as a
//! machine-readable perf baseline:
//!
//! ```text
//! cargo bench -p ntr-bench --bench tensor_ops -- --json
//! ```
//!
//! appends/updates entries in `BENCH_tensor.json` at the workspace root
//! (or `PATH` if given). Entries are keyed by `(op, shape, threads, simd)`
//! so successive bench binaries merge into one file, giving later PRs a
//! perf trajectory to compare against. As in upstream criterion, a
//! positional argument acts as a substring filter (`-- elementwise --json`
//! re-measures one group and merges it into the existing baseline).
//!
//! Beyond upstream, sweep-style benches can stamp each measurement
//! explicitly: [`Criterion::set_threads`] / [`BenchmarkGroup::set_threads`]
//! override the recorded thread count (otherwise `NTR_THREADS`, falling
//! back to `available_parallelism`), [`set_simd`](Criterion::set_simd)
//! stamps the `simd: "on"|"off"` field (legacy baselines without the field
//! parse as `"off"`), and [`annotate`](Criterion::annotate) attaches extra
//! key/value fields (e.g. serve cache hit/miss counters) to the most recent
//! measurement.

use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group: a function name, a
/// parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: Option<String>,
    param: Option<String>,
}

impl BenchmarkId {
    /// Function name plus parameter, rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: Some(name.into()),
            param: Some(param.to_string()),
        }
    }

    /// Parameter-only id, rendered as the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            name: None,
            param: Some(param.to_string()),
        }
    }
}

/// Runs closures under measurement.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`: a calibration pass sizes the batch so one sample takes
    /// roughly 10 ms, then the median of 15 samples is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: find an iteration count worth ~10ms of work.
        let mut iters: u64 = 1;
        let per_sample = Duration::from_millis(10);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= per_sample || iters >= 1 << 20 {
                break;
            }
            // Aim directly at the target with headroom, at least doubling.
            let scale = (per_sample.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil();
            iters = (iters.saturating_mul(scale as u64)).clamp(iters * 2, 1 << 20);
        }
        let mut samples = Vec::with_capacity(15);
        for _ in 0..15 {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// One baseline entry: the merge key `(op, shape, threads, simd)` plus the
/// measurement and any annotations. Public so perf gates (`benchgate`) can
/// read baselines through [`read_baseline_entries`] instead of re-parsing.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Group plus function name, e.g. `matmul/nn`.
    pub op: String,
    /// Parameter string, e.g. `256`; empty when the bench has none.
    pub shape: String,
    /// Thread count the measurement ran under.
    pub threads: usize,
    /// Whether SIMD micro-kernels were active for this measurement.
    pub simd: bool,
    pub ns_per_iter: f64,
    /// Extra fields attached via `annotate` (value is raw JSON: numbers
    /// unquoted, everything else quoted).
    pub extra: Vec<(String, String)>,
}

impl Entry {
    fn key(&self) -> (&str, &str, usize, bool) {
        (&self.op, &self.shape, self.threads, self.simd)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    json_out: Option<PathBuf>,
    results: Vec<Entry>,
    /// Thread count stamped on subsequent measurements; `None` = derive from
    /// the environment at record time.
    cur_threads: Option<usize>,
    /// SIMD flag stamped on subsequent measurements.
    cur_simd: bool,
    /// Substring filter from the first positional CLI arg (as in upstream
    /// criterion): benchmarks whose `group/name/param` label doesn't
    /// contain it are skipped entirely. Lets a single group be re-measured
    /// and merged into an existing baseline without re-running the sweep.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut json_out = None;
        let mut filter = None;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            if a == "--json" {
                let path = match args.peek() {
                    Some(p) if !p.starts_with('-') => PathBuf::from(args.next().unwrap()),
                    _ => default_json_path(),
                };
                json_out = Some(path);
            } else if !a.starts_with('-') && filter.is_none() {
                filter = Some(a);
            }
        }
        Criterion {
            json_out,
            results: Vec::new(),
            cur_threads: None,
            cur_simd: false,
            filter,
        }
    }
}

/// `BENCH_tensor.json` at the workspace root: the outermost ancestor of the
/// current directory that contains a `Cargo.toml` (bench binaries run with
/// the package dir as cwd, so the workspace root is above us).
fn default_json_path() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut root = cwd.clone();
    for anc in cwd.ancestors() {
        if anc.join("Cargo.toml").exists() {
            root = anc.to_path_buf();
        }
    }
    root.join("BENCH_tensor.json")
}

fn bench_threads() -> usize {
    std::env::var("NTR_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Stamps subsequent measurements with an explicit thread count instead
    /// of deriving it from `NTR_THREADS` / `available_parallelism`. Sweep
    /// benches that vary `par::with_threads` inside one process use this so
    /// each arm lands under its own key.
    pub fn set_threads(&mut self, n: usize) {
        self.cur_threads = Some(n);
    }

    /// Stamps subsequent measurements as SIMD-on or SIMD-off.
    pub fn set_simd(&mut self, on: bool) {
        self.cur_simd = on;
    }

    /// Attaches an extra field to the most recently recorded measurement
    /// (e.g. cache hit counters for a serve arm). Values that parse as f64
    /// are written as JSON numbers, everything else as strings.
    pub fn annotate(&mut self, key: &str, value: impl Display) {
        let Some(last) = self.results.last_mut() else {
            eprintln!("warning: annotate(\"{key}\") before any measurement; ignored");
            return;
        };
        let raw = value.to_string();
        let json = if raw.parse::<f64>().is_ok() {
            raw
        } else {
            format!("\"{raw}\"")
        };
        last.extra.retain(|(k, _)| k != key);
        last.extra.push((key.to_string(), json));
    }

    /// Measures a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if !self.matches(name) {
            return;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        self.record(name.to_string(), String::new(), b.ns_per_iter);
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    fn record(&mut self, op: String, shape: String, ns_per_iter: f64) {
        let threads = self.cur_threads.unwrap_or_else(bench_threads);
        let simd = self.cur_simd;
        let label = if shape.is_empty() {
            op.clone()
        } else {
            format!("{op}/{shape}")
        };
        let tag = if simd { " simd" } else { "" };
        println!("{label:<40} t={threads}{tag:<5} {:>14.1} ns/iter", ns_per_iter);
        self.results.push(Entry {
            op,
            shape,
            threads,
            simd,
            ns_per_iter,
            extra: Vec::new(),
        });
    }

    /// Writes/merges results into the JSON baseline when `--json` was given.
    pub fn finalize(&mut self) {
        let Some(path) = self.json_out.clone() else {
            return;
        };
        let mut entries = read_baseline_entries(&path);
        for m in &self.results {
            entries.retain(|e| e.key() != m.key());
            entries.push(m.clone());
        }
        entries.sort_by(|a, b| {
            (&a.op, &a.shape, a.threads, a.simd).cmp(&(&b.op, &b.shape, b.threads, b.simd))
        });
        let mut out = String::from("[\n");
        for (i, e) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            let simd = if e.simd { "on" } else { "off" };
            let mut line = format!(
                "  {{\"op\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"simd\": \"{simd}\", \"ns_per_iter\": {:.1}",
                e.op, e.shape, e.threads, e.ns_per_iter
            );
            for (k, v) in &e.extra {
                line.push_str(&format!(", \"{k}\": {v}"));
            }
            line.push_str(&format!("}}{comma}\n"));
            out.push_str(&line);
        }
        out.push_str("]\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {} ({} entries)", path.display(), entries.len());
        }
    }
}

/// Parses a baseline file this crate itself writes: a JSON array of flat
/// objects with string and number values. Entries missing the `simd` field
/// (written before the field existed) parse as SIMD-off. Unknown or
/// malformed entries are dropped rather than aborting the bench run.
pub fn read_baseline_entries(path: &Path) -> Vec<Entry> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for obj in text.split('{').skip(1) {
        let Some(body) = obj.split('}').next() else {
            continue;
        };
        // Flat `"key": value` pairs; no value in this format contains a
        // comma or colon, so simple splitting is exact.
        let mut fields: Vec<(String, String)> = Vec::new();
        for pair in body.split(',') {
            let Some((k, v)) = pair.split_once(':') else {
                continue;
            };
            let k = k.trim().trim_matches('"');
            let v = v.trim();
            if !k.is_empty() {
                fields.push((k.to_string(), v.to_string()));
            }
        }
        let get = |key: &str| -> Option<String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.trim_matches('"').to_string())
        };
        let (Some(op), Some(shape), Some(threads), Some(ns)) =
            (get("op"), get("shape"), get("threads"), get("ns_per_iter"))
        else {
            continue;
        };
        let (Ok(threads), Ok(ns)) = (threads.parse::<usize>(), ns.parse::<f64>()) else {
            continue;
        };
        let simd = get("simd").as_deref() == Some("on");
        let known = ["op", "shape", "threads", "simd", "ns_per_iter"];
        let extra = fields
            .into_iter()
            .filter(|(k, _)| !known.contains(&k.as_str()))
            .collect();
        out.push(Entry {
            op,
            shape,
            threads,
            simd,
            ns_per_iter: ns,
            extra,
        });
    }
    out
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; sampling here is fixed-size.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Per-group override of the recorded thread count; see
    /// [`Criterion::set_threads`]. Applies to this and later measurements
    /// until changed again.
    pub fn set_threads(&mut self, n: usize) -> &mut Self {
        self.criterion.set_threads(n);
        self
    }

    /// Per-group SIMD stamp; see [`Criterion::set_simd`].
    pub fn set_simd(&mut self, on: bool) -> &mut Self {
        self.criterion.set_simd(on);
        self
    }

    /// Attaches an extra field to the most recent measurement; see
    /// [`Criterion::annotate`].
    pub fn annotate(&mut self, key: &str, value: impl Display) -> &mut Self {
        self.criterion.annotate(key, value);
        self
    }

    /// Measures `f` with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let op = match &id.name {
            Some(n) => format!("{}/{n}", self.name),
            None => self.name.clone(),
        };
        let shape = id.param.clone().unwrap_or_default();
        if !self.criterion.matches(&format!("{op}/{shape}")) {
            return;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        self.criterion.record(op, shape, b.ns_per_iter);
    }

    /// Measures a named function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let op = format!("{}/{name}", self.name);
        if !self.criterion.matches(&op) {
            return;
        }
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        self.criterion.record(op, String::new(), b.ns_per_iter);
    }

    /// Ends the group (upstream reports summaries here; measurement already
    /// happened per-bench, so this is a no-op).
    pub fn finish(self) {}
}

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(op: &str, shape: &str, threads: usize, simd: bool, ns: f64) -> Entry {
        Entry {
            op: op.into(),
            shape: shape.into(),
            threads,
            simd,
            ns_per_iter: ns,
            extra: Vec::new(),
        }
    }

    #[test]
    fn bencher_measures_something_positive() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| std::hint::black_box((0..100).sum::<u64>()));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn benchmark_ids_render_both_forms() {
        let full = BenchmarkId::new("nn", 256);
        assert_eq!(full.name.as_deref(), Some("nn"));
        assert_eq!(full.param.as_deref(), Some("256"));
        let param_only = BenchmarkId::from_parameter("bert");
        assert!(param_only.name.is_none());
        assert_eq!(param_only.param.as_deref(), Some("bert"));
    }

    #[test]
    fn baseline_roundtrips_through_writer_format() {
        let dir = std::env::temp_dir().join(format!("crit_shim_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let mut c = Criterion {
            json_out: Some(path.clone()),
            results: vec![
                entry("matmul/nn", "256", 4, false, 1234.5),
                entry("softmax_rows", "64", 4, true, 77.0),
            ],
            cur_threads: None,
            cur_simd: false,
            filter: None,
        };
        c.annotate("cache_hits", 12);
        c.annotate("mode", "lru");
        c.finalize();
        let entries = read_baseline_entries(&path);
        assert_eq!(entries.len(), 2);
        assert!(entries
            .iter()
            .any(|e| e.op == "matmul/nn" && e.shape == "256" && !e.simd
                && (e.ns_per_iter - 1234.5).abs() < 0.2));
        let annotated = entries.iter().find(|e| e.op == "softmax_rows").unwrap();
        assert!(annotated.simd);
        assert!(annotated
            .extra
            .iter()
            .any(|(k, v)| k == "cache_hits" && v == "12"));
        assert!(annotated
            .extra
            .iter()
            .any(|(k, v)| k == "mode" && v == "\"lru\""));

        // A second run with an updated number replaces the matching entry —
        // same op/shape/threads but different simd flag is a distinct key.
        let mut c2 = Criterion {
            json_out: Some(path.clone()),
            results: vec![
                entry("matmul/nn", "256", 4, false, 999.0),
                entry("matmul/nn", "256", 4, true, 500.0),
            ],
            cur_threads: None,
            cur_simd: false,
            filter: None,
        };
        c2.finalize();
        let entries = read_baseline_entries(&path);
        assert_eq!(entries.len(), 3, "merge must not duplicate");
        assert!(entries
            .iter()
            .any(|e| e.op == "matmul/nn" && !e.simd && (e.ns_per_iter - 999.0).abs() < 0.2));
        assert!(entries
            .iter()
            .any(|e| e.op == "matmul/nn" && e.simd && (e.ns_per_iter - 500.0).abs() < 0.2));
        // Annotations on retained entries survive the merge.
        let kept = entries.iter().find(|e| e.op == "softmax_rows").unwrap();
        assert!(kept.extra.iter().any(|(k, _)| k == "cache_hits"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_baselines_without_simd_field_parse_as_off() {
        let dir = std::env::temp_dir().join(format!("crit_shim_legacy_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        std::fs::write(
            &path,
            "[\n  {\"op\": \"matmul/nn\", \"shape\": \"256\", \"threads\": 4, \"ns_per_iter\": 42.0}\n]\n",
        )
        .unwrap();
        let entries = read_baseline_entries(&path);
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].simd);
        assert_eq!(entries[0].threads, 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
