//! Offline drop-in replacement for the subset of `criterion` 0.5 this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace patches
//! `criterion` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). It implements real measurement (calibrated warmup, then a
//! fixed sample count with per-sample medians) for the API surface the
//! `ntr-bench` benches use: `Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! ## `--json` mode
//!
//! Beyond upstream's CLI, `--json [PATH]` writes every measurement as a
//! machine-readable perf baseline:
//!
//! ```text
//! cargo bench -p ntr-bench --bench tensor_ops -- --json
//! ```
//!
//! appends/updates entries in `BENCH_tensor.json` at the workspace root
//! (or `PATH` if given). Entries are keyed by `(op, shape, threads)` so
//! successive bench binaries merge into one file, giving later PRs a perf
//! trajectory to compare against. `threads` is taken from `NTR_THREADS` when
//! set (the same variable the `ntr-tensor` thread pool honours), otherwise
//! from `std::thread::available_parallelism`.

use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group: a function name, a
/// parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: Option<String>,
    param: Option<String>,
}

impl BenchmarkId {
    /// Function name plus parameter, rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: Some(name.into()),
            param: Some(param.to_string()),
        }
    }

    /// Parameter-only id, rendered as the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            name: None,
            param: Some(param.to_string()),
        }
    }
}

/// Runs closures under measurement.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`: a calibration pass sizes the batch so one sample takes
    /// roughly 10 ms, then the median of 15 samples is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: find an iteration count worth ~10ms of work.
        let mut iters: u64 = 1;
        let per_sample = Duration::from_millis(10);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= per_sample || iters >= 1 << 20 {
                break;
            }
            // Aim directly at the target with headroom, at least doubling.
            let scale = (per_sample.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil();
            iters = (iters.saturating_mul(scale as u64)).clamp(iters * 2, 1 << 20);
        }
        let mut samples = Vec::with_capacity(15);
        for _ in 0..15 {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// One recorded measurement.
#[derive(Debug, Clone)]
struct Measurement {
    /// Group plus function name, e.g. `matmul/nn`.
    op: String,
    /// Parameter string, e.g. `256`; empty when the bench has none.
    shape: String,
    ns_per_iter: f64,
}

/// The top-level benchmark driver.
pub struct Criterion {
    json_out: Option<PathBuf>,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut json_out = None;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            if a == "--json" {
                let path = match args.peek() {
                    Some(p) if !p.starts_with('-') => PathBuf::from(args.next().unwrap()),
                    _ => default_json_path(),
                };
                json_out = Some(path);
            }
        }
        Criterion {
            json_out,
            results: Vec::new(),
        }
    }
}

/// `BENCH_tensor.json` at the workspace root: the outermost ancestor of the
/// current directory that contains a `Cargo.toml` (bench binaries run with
/// the package dir as cwd, so the workspace root is above us).
fn default_json_path() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut root = cwd.clone();
    for anc in cwd.ancestors() {
        if anc.join("Cargo.toml").exists() {
            root = anc.to_path_buf();
        }
    }
    root.join("BENCH_tensor.json")
}

fn bench_threads() -> usize {
    std::env::var("NTR_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Measures a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        self.record(name.to_string(), String::new(), b.ns_per_iter);
    }

    fn record(&mut self, op: String, shape: String, ns_per_iter: f64) {
        let label = if shape.is_empty() {
            op.clone()
        } else {
            format!("{op}/{shape}")
        };
        println!("{label:<40} {:>14.1} ns/iter", ns_per_iter);
        self.results.push(Measurement {
            op,
            shape,
            ns_per_iter,
        });
    }

    /// Writes/merges results into the JSON baseline when `--json` was given.
    pub fn finalize(&mut self) {
        let Some(path) = self.json_out.clone() else {
            return;
        };
        let threads = bench_threads();
        let mut entries = read_baseline(&path);
        for m in &self.results {
            entries.retain(|e| !(e.0 == m.op && e.1 == m.shape && e.2 == threads));
            entries.push((m.op.clone(), m.shape.clone(), threads, m.ns_per_iter));
        }
        entries.sort_by(|a, b| (&a.0, &a.1, a.2).cmp(&(&b.0, &b.1, b.2)));
        let mut out = String::from("[\n");
        for (i, (op, shape, threads, ns)) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            out.push_str(&format!(
                "  {{\"op\": \"{op}\", \"shape\": \"{shape}\", \"threads\": {threads}, \"ns_per_iter\": {ns:.1}}}{comma}\n"
            ));
        }
        out.push_str("]\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {} ({} entries)", path.display(), entries.len());
        }
    }
}

/// Parses the baseline file this crate itself writes: a JSON array of flat
/// objects with string and number values. Unknown or malformed entries are
/// dropped rather than aborting the bench run.
fn read_baseline(path: &Path) -> Vec<(String, String, usize, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for obj in text.split('{').skip(1) {
        let Some(body) = obj.split('}').next() else {
            continue;
        };
        let field = |key: &str| -> Option<String> {
            let idx = body.find(&format!("\"{key}\""))?;
            let rest = &body[idx..];
            let colon = rest.find(':')?;
            let val = rest[colon + 1..].trim_start();
            if let Some(stripped) = val.strip_prefix('"') {
                Some(stripped.split('"').next()?.to_string())
            } else {
                Some(
                    val.split([',', '\n'])
                        .next()?
                        .trim()
                        .to_string(),
                )
            }
        };
        let (Some(op), Some(shape), Some(threads), Some(ns)) = (
            field("op"),
            field("shape"),
            field("threads"),
            field("ns_per_iter"),
        ) else {
            continue;
        };
        let (Ok(threads), Ok(ns)) = (threads.parse::<usize>(), ns.parse::<f64>()) else {
            continue;
        };
        out.push((op, shape, threads, ns));
    }
    out
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; sampling here is fixed-size.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measures `f` with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        let op = match &id.name {
            Some(n) => format!("{}/{n}", self.name),
            None => self.name.clone(),
        };
        self.criterion
            .record(op, id.param.clone().unwrap_or_default(), b.ns_per_iter);
    }

    /// Measures a named function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        let op = format!("{}/{name}", self.name);
        self.criterion.record(op, String::new(), b.ns_per_iter);
    }

    /// Ends the group (upstream reports summaries here; measurement already
    /// happened per-bench, so this is a no-op).
    pub fn finish(self) {}
}

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something_positive() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| std::hint::black_box((0..100).sum::<u64>()));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn benchmark_ids_render_both_forms() {
        let full = BenchmarkId::new("nn", 256);
        assert_eq!(full.name.as_deref(), Some("nn"));
        assert_eq!(full.param.as_deref(), Some("256"));
        let param_only = BenchmarkId::from_parameter("bert");
        assert!(param_only.name.is_none());
        assert_eq!(param_only.param.as_deref(), Some("bert"));
    }

    #[test]
    fn baseline_roundtrips_through_writer_format() {
        let dir = std::env::temp_dir().join(format!("crit_shim_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let mut c = Criterion {
            json_out: Some(path.clone()),
            results: vec![
                Measurement {
                    op: "matmul/nn".into(),
                    shape: "256".into(),
                    ns_per_iter: 1234.5,
                },
                Measurement {
                    op: "softmax_rows".into(),
                    shape: "64".into(),
                    ns_per_iter: 77.0,
                },
            ],
        };
        c.finalize();
        let entries = read_baseline(&path);
        assert_eq!(entries.len(), 2);
        assert!(entries
            .iter()
            .any(|e| e.0 == "matmul/nn" && e.1 == "256" && (e.3 - 1234.5).abs() < 0.2));

        // A second run with an updated number replaces the matching entry.
        let mut c2 = Criterion {
            json_out: Some(path.clone()),
            results: vec![Measurement {
                op: "matmul/nn".into(),
                shape: "256".into(),
                ns_per_iter: 999.0,
            }],
        };
        c2.finalize();
        let entries = read_baseline(&path);
        assert_eq!(entries.len(), 2, "merge must not duplicate");
        assert!(entries
            .iter()
            .any(|e| e.0 == "matmul/nn" && (e.3 - 999.0).abs() < 0.2));
        std::fs::remove_dir_all(&dir).ok();
    }
}
