//! Offline drop-in replacement for the subset of `rand` 0.8 this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace patches
//! `rand` to this crate (see `[patch.crates-io]` in the root `Cargo.toml`).
//! Only the seeded, reproducible API surface is provided — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::{shuffle, choose}` — because every random draw in the
//! workspace flows through explicit seeds (there is no `thread_rng`).
//!
//! The generator is xoshiro256++ seeded via SplitMix64: not the ChaCha12
//! stream real `StdRng` uses, so absolute values of seeded draws differ from
//! upstream `rand`, but all determinism guarantees (same seed ⇒ same stream)
//! hold, which is the only property the workspace relies on.

/// Types that can be sampled uniformly from the generator's raw output —
/// the stand-in for `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, as in upstream `rand`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Raw 64-bit generator — the stand-in for `rand_core::RngCore`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (integers: full range; floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding constructors — the stand-in for `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ seeded via
    /// SplitMix64. Fast, tiny, and with distribution quality far beyond what
    /// synthetic-data generation and weight init need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Snapshot of the generator's internal state (the four xoshiro256++
        /// words). Together with [`StdRng::set_state`] this lets training
        /// checkpoints capture and restore the exact position in a mask
        /// stream — an extension over upstream `rand`, which is fine because
        /// this shim *is* the workspace's `rand`.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Restores a state captured by [`StdRng::state`].
        pub fn set_state(&mut self, s: [u64; 4]) {
            self.s = s;
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice shuffling and selection — the used subset of `rand::seq`.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The slice's element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let i = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let u = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_negative_spans() {
        let mut r = StdRng::seed_from_u64(5);
        let mut saw_neg = false;
        for _ in 0..100 {
            let v = r.gen_range(-1000i64..1000);
            assert!((-1000..1000).contains(&v));
            saw_neg |= v < 0;
        }
        assert!(saw_neg);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut r = StdRng::seed_from_u64(8);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut r).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
