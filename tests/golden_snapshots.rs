//! Golden-snapshot tests: the tokenizer, every serialization strategy, and
//! each model family's first forward pass are pinned against checked-in
//! fixtures under `tests/golden/`. Any unintended change to tokenization,
//! linearization, initialization, or kernel numerics shows up as a diff
//! here — including ones that would silently invalidate old checkpoints.
//!
//! To bless new goldens after an *intentional* change:
//!
//! ```text
//! NTR_BLESS=1 cargo test --test golden_snapshots
//! ```
//!
//! then commit the updated files.

use ntr::pipeline::Pipeline;
use ntr::tasks::TrainRun;
use ntr_models::{EncoderInput, Mate, ModelConfig, SequenceEncoder, Tapas, Turl, VanillaBert};
use ntr_table::{
    ColumnMajorLinearizer, Linearizer, LinearizerOptions, RowMajorLinearizer, Table,
    TapexLinearizer, TemplateLinearizer, TurlLinearizer,
};
use ntr_tensor::io::crc32;
use ntr_tensor::Tensor;
use ntr_tokenizer::SpecialToken;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `actual` against the checked-in golden, or rewrites the golden
/// when `NTR_BLESS` is set.
fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("NTR_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nrun `NTR_BLESS=1 cargo test --test golden_snapshots` to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden {name} drifted; if the change is intentional, re-bless with \
         `NTR_BLESS=1 cargo test --test golden_snapshots` and commit the diff"
    );
}

/// The fixed table every snapshot derives from.
fn sample() -> Table {
    Table::from_strings(
        "countries",
        &["Country", "Capital", "Population"],
        &[
            &["France", "Paris", "67.8"],
            &["Australia", "Canberra", "25.69"],
            &["Japan", "Tokyo", "124.5"],
        ],
    )
    .with_caption("Population in Million by Country")
}

fn pipeline() -> Pipeline {
    Pipeline::builder()
        .vocab_from_tables(&[sample()])
        .vocab_size(600)
        .build()
        .expect("vocab is non-empty")
}

#[test]
fn tokenizer_output_is_pinned() {
    let p = pipeline();
    let tok = p.tokenizer();
    let inputs = [
        "France Paris 67.8",
        "Population in Million by Country",
        "what is the capital of australia ?",
        "unseenwordpiece 12345",
    ];
    let mut out = String::new();
    for text in inputs {
        let ids = tok.encode(text);
        let id_list = ids
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",");
        writeln!(out, "{text} => [{id_list}] => {}", tok.decode(&ids)).unwrap();
    }
    check("tokenizer.txt", &out);
}

#[test]
fn every_serialization_strategy_is_pinned() {
    let p = pipeline();
    let tok = p.tokenizer();
    let t = sample();
    let opts = LinearizerOptions::default();
    let linearizers: [&dyn Linearizer; 5] = [
        &RowMajorLinearizer,
        &ColumnMajorLinearizer,
        &TemplateLinearizer,
        &TapexLinearizer,
        &TurlLinearizer,
    ];
    let mut out = String::new();
    for lin in linearizers {
        let e = lin.linearize(&t, &t.caption, tok, &opts);
        writeln!(out, "== {} ==", e.linearizer()).unwrap();
        writeln!(out, "text: {}", tok.decode(e.ids())).unwrap();
        let fmt = |xs: &[usize]| {
            xs.iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        writeln!(out, "ids:  {}", fmt(e.ids())).unwrap();
        writeln!(out, "rows: {}", fmt(&e.row_ids())).unwrap();
        writeln!(out, "cols: {}", fmt(&e.col_ids())).unwrap();
    }
    check("linearizers.txt", &out);
}

/// Shape, CRC-32 of the little-endian f32 bit pattern, and the first 8
/// values (as hex bit patterns) of a logits tensor — enough to pin the
/// numerics exactly without checking in megabytes.
fn logits_fingerprint(name: &str, logits: &Tensor) -> String {
    let mut bytes = Vec::with_capacity(logits.data().len() * 4);
    for v in logits.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let head = logits
        .data()
        .iter()
        .take(8)
        .map(|v| format!("{:08x}", v.to_bits()))
        .collect::<Vec<_>>()
        .join(" ");
    format!(
        "{name}: shape={:?} crc32={:08x} head=[{head}]\n",
        logits.shape(),
        crc32(&bytes)
    )
}

#[test]
fn first_forward_pass_logits_are_pinned() {
    // Golden float fingerprints pin the *scalar* kernels; force the
    // scalar path so `--features simd` builds check the same reference
    // (DESIGN.md §9, determinism boundary).
    ntr_tensor::simd::force_scalar(first_forward_pass_logits_are_pinned_impl)
}

fn first_forward_pass_logits_are_pinned_impl() {
    let p = pipeline();
    let tok = p.tokenizer();
    let t = sample();
    let e = RowMajorLinearizer.linearize(&t, &t.caption, tok, &LinearizerOptions::default());
    let input = EncoderInput::from_encoded(&e);
    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        n_entities: 8,
        ..ModelConfig::tiny(tok.vocab_size())
    };
    let mut out = String::new();

    let mut bert = VanillaBert::new(&cfg);
    let states = bert.encode(&input, false);
    out.push_str(&logits_fingerprint("bert/mlm", &bert.mlm.forward(&states)));

    let mut tapas = Tapas::new(&cfg);
    let states = tapas.encode(&input, false);
    out.push_str(&logits_fingerprint(
        "tapas/mlm",
        &tapas.mlm.forward(&states),
    ));

    let mut turl = Turl::new(&cfg);
    let states = turl.encode(&input, false);
    out.push_str(&logits_fingerprint("turl/mlm", &turl.mlm.forward(&states)));

    let mut mate = Mate::new(&cfg);
    let states = mate.encode(&input, false);
    out.push_str(&logits_fingerprint("mate/mlm", &mate.mlm.forward(&states)));

    // TAPEX: encode the (query, table) pair, then take the lm-head logits
    // of the first decoder step (input = [BOS]).
    let mut tapex = ntr_models::Tapex::new(&cfg);
    let te = TapexLinearizer.linearize(
        &t,
        "select Capital from countries",
        tok,
        &LinearizerOptions::default(),
    );
    let tinput = EncoderInput::from_encoded(&te);
    let memory = tapex
        .encoder
        .forward(&tapex.embeddings.forward(&tinput, false), None, false);
    let dec_inp = EncoderInput::from_text_ids(vec![SpecialToken::Bos.id()]);
    let states = tapex.decoder.forward(
        &tapex.dec_embeddings.forward(&dec_inp, false),
        &memory,
        false,
    );
    out.push_str(&logits_fingerprint(
        "tapex/lm_head",
        &tapex.lm_head.forward(&states),
    ));

    check("logits.txt", &out);
}

/// Short MLM training run used by the supervisor no-op golden: the sample
/// table sharded into overlapping 2-row slices so a few optimizer steps
/// exist.
fn mlm_noop_trace(scfg: &ntr::tasks::supervisor::SupervisorConfig) -> (Vec<f32>, String) {
    mlm_noop_trace_with(scfg, &ntr::tasks::trainer::TrainerOptions::default())
}

fn mlm_noop_trace_with(
    scfg: &ntr::tasks::supervisor::SupervisorConfig,
    topts: &ntr::tasks::trainer::TrainerOptions,
) -> (Vec<f32>, String) {
    let p = pipeline();
    let tok = p.tokenizer();
    let t = sample();
    let tables: Vec<Table> = (0..t.n_rows())
        .map(|r| t.select_rows(&[r, (r + 1) % t.n_rows()]))
        .collect();
    let corpus = ntr::corpus::tables::TableCorpus {
        kinds: vec![ntr::corpus::tables::TableKind::Employees; tables.len()],
        tables,
    };
    let cfg = ntr::tasks::TrainConfig {
        epochs: 4,
        lr: 3e-3,
        batch_size: 2,
        warmup_frac: 0.1,
        seed: 17,
    };
    let mut model = VanillaBert::new(&ModelConfig {
        vocab_size: tok.vocab_size(),
        ..ModelConfig::tiny(tok.vocab_size())
    });
    let report = TrainRun::new(cfg)
        .max_tokens(64)
        .linearizer(&RowMajorLinearizer)
        .trainer(topts)
        .supervisor(scfg)
        .mlm(&mut model, &corpus, tok)
        .expect("no faults configured");

    let mut params = Vec::new();
    for v in ntr::nn::serialize::TrainCheckpoint::capture(&mut model)
        .params
        .values()
    {
        for x in v.data() {
            params.extend_from_slice(&x.to_le_bytes());
        }
    }
    let mut out = String::new();
    for (i, l) in report.mlm_loss.iter().enumerate() {
        writeln!(out, "step {i}: loss_bits={:08x}", l.to_bits()).unwrap();
    }
    writeln!(out, "params_crc32={:08x}", crc32(&params)).unwrap();
    (report.mlm_loss, out)
}

#[test]
fn supervised_noop_training_trace_is_pinned() {
    // Pins scalar-kernel bits; see first_forward_pass_logits_are_pinned.
    ntr_tensor::simd::force_scalar(supervised_noop_training_trace_is_pinned_impl)
}

fn supervised_noop_training_trace_is_pinned_impl() {
    // With every supervisor feature disabled, the short MLM run's loss
    // trace and final parameters are pinned bit-exactly — the supervisor
    // must be a true no-op against the pre-supervisor baseline.
    let (disabled_losses, fingerprint) =
        mlm_noop_trace(&ntr::tasks::supervisor::SupervisorConfig::default());
    check("mlm_noop.txt", &fingerprint);

    // And a rollback-armed supervisor that never fires (no faults, huge
    // clip threshold, spike detection off) must also reproduce the same
    // loss trace: supervision only changes runs that actually go wrong.
    let quiet = ntr::tasks::supervisor::SupervisorConfig {
        clip_norm: Some(f32::INFINITY),
        rollback: true,
        max_retries: 3,
        spike_factor: 0.0,
        ema_alpha: 0.1,
        lr_backoff: 0.5,
        snapshot_every: 1,
        faults: None,
    };
    let (quiet_losses, _) = mlm_noop_trace(&quiet);
    let bits = |xs: &[f32]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&disabled_losses),
        bits(&quiet_losses),
        "an armed-but-idle supervisor must not perturb training"
    );

    // Armed observability (trace + metrics sinks active) must observe the
    // run without perturbing it: same loss bits and parameter fingerprint
    // as the sink-free baseline above.
    let dir = std::env::temp_dir().join("ntr_golden_obs");
    std::fs::create_dir_all(&dir).unwrap();
    let topts = ntr::tasks::trainer::TrainerOptions {
        obs: ntr::obs::ObsOptions {
            trace: Some(dir.join("noop_trace.jsonl")),
            metrics: Some(dir.join("noop_metrics.json")),
        },
        ..Default::default()
    };
    let (traced_losses, traced_fingerprint) = mlm_noop_trace_with(&quiet, &topts);
    assert_eq!(
        bits(&disabled_losses),
        bits(&traced_losses),
        "armed tracing must not perturb training"
    );
    check("mlm_noop.txt", &traced_fingerprint);
    // And the trace it wrote must be schema-valid.
    let text = std::fs::read_to_string(dir.join("noop_trace.jsonl")).unwrap();
    ntr::obs::trace::schema::validate_trace(&text).unwrap();
    assert!(dir.join("noop_metrics.json").exists());
}

#[test]
fn trace_schema_is_pinned() {
    // The JSONL trace schema is a stability contract: adding, removing, or
    // reordering fields must show up as a golden diff and a DESIGN.md §7
    // update, never as a silent change.
    check("trace_schema.txt", &ntr::obs::trace::schema::render());
}
