//! End-to-end learning tests: tiny but real pretrain → fine-tune flows
//! across the crates. Each asserts a *learning* outcome (a metric moves in
//! the right direction), not an absolute score.

use ntr::corpus::datasets::{ImputationDataset, NliDataset};
use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{Split, World, WorldConfig};
use ntr::models::{ModelConfig, Turl, VanillaBert};
use ntr::table::LinearizerOptions;
use ntr::tasks::TrainConfig;
use ntr::tasks::TrainRun;
use ntr::tokenizer::WordPieceTokenizer;

fn small_world() -> (World, TableCorpus, WordPieceTokenizer) {
    let world = World::generate(WorldConfig {
        n_countries: 10,
        n_people: 10,
        n_films: 8,
        n_clubs: 6,
        seed: 0xE2E,
    });
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 14,
            min_rows: 3,
            max_rows: 5,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 0xE2F,
        },
    );
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &[], 1400);
    (world, corpus, tok)
}

fn quick(epochs: usize, lr: f32) -> TrainConfig {
    TrainConfig {
        epochs,
        lr,
        batch_size: 4,
        warmup_frac: 0.1,
        seed: 0xEE,
    }
}

#[test]
fn mlm_pretraining_improves_heldout_recovery() {
    let (_, corpus, tok) = small_world();
    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        ..ModelConfig::tiny(tok.vocab_size())
    };
    let (train, held): (Vec<_>, Vec<_>) = {
        let mid = corpus.tables.len() - 4;
        (corpus.tables[..mid].to_vec(), corpus.tables[mid..].to_vec())
    };
    let train_corpus = TableCorpus {
        tables: train,
        kinds: Vec::new(),
    };
    let mut model = VanillaBert::new(&cfg);
    let lin = ntr::table::RowMajorLinearizer;
    let train_tables = train_corpus.tables.clone();
    let before_train = ntr::tasks::pretrain::eval_mlm(&mut model, &train_tables, &tok, 96, &lin, 1);
    let before_held = ntr::tasks::pretrain::eval_mlm(&mut model, &held, &tok, 96, &lin, 1);
    TrainRun::new(quick(20, 3e-3))
        .max_tokens(96)
        .mlm(&mut model, &train_corpus, &tok)
        .expect("infallible: no checkpointing configured");
    let after_train = ntr::tasks::pretrain::eval_mlm(&mut model, &train_tables, &tok, 96, &lin, 1);
    let after_held = ntr::tasks::pretrain::eval_mlm(&mut model, &held, &tok, 96, &lin, 1);
    // The tiny test model must learn its pretraining corpus; held-out
    // recovery must at least not regress (it is near the noise floor at
    // this scale).
    assert!(
        after_train > before_train,
        "training-table MLM recovery should improve: {before_train:.3} -> {after_train:.3}"
    );
    assert!(
        after_held >= before_held,
        "held-out MLM recovery regressed: {before_held:.3} -> {after_held:.3}"
    );
}

#[test]
fn turl_joint_pretrain_then_imputation_beats_untrained() {
    let (world, _, _) = small_world();
    let corpus = TableCorpus::generate_entity_only(
        &world,
        &CorpusConfig {
            n_tables: 14,
            min_rows: 3,
            max_rows: 5,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 0xE30,
        },
    );
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &[], 1400);
    // Wider than `tiny`: a d=16 single-layer model's untrained candidate
    // ranking is noisy enough to occasionally beat a barely-trained one.
    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        n_entities: world.n_entities(),
        d_model: 32,
        n_heads: 2,
        n_layers: 2,
        d_ff: 64,
        dropout: 0.0,
        ..ModelConfig::tiny(tok.vocab_size())
    };
    let ds = ImputationDataset::build(&corpus, 2, 0xE31);
    let pools = ntr::tasks::imputation::CandidatePools::build(&ds, Split::Train);

    let mut model = Turl::new(&cfg);
    let before = ntr::tasks::imputation::evaluate(&mut model, &ds, Split::Train, &pools, &tok, 96);
    TrainRun::new(quick(16, 3e-3))
        .max_tokens(96)
        .turl(&mut model, &corpus, &tok)
        .expect("infallible: no checkpointing configured");
    ntr::tasks::imputation::finetune(&mut model, &ds, &tok, &quick(2, 5e-4), 96);
    let after = ntr::tasks::imputation::evaluate(&mut model, &ds, Split::Train, &pools, &tok, 96);
    assert!(
        after.accuracy > before.accuracy,
        "pretrain+finetune must beat untrained: {:.3} -> {:.3}",
        before.accuracy,
        after.accuracy
    );
}

#[test]
fn nli_training_fits_above_chance_with_structural_model() {
    let (_, corpus, _) = small_world();
    let ds = NliDataset::build(&corpus, 4, 0xE32);
    let extra: Vec<String> = ds.examples.iter().map(|e| e.claim.clone()).collect();
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &extra, 1500);
    // Slightly wider than `tiny`: the binary head collapses to the
    // majority class below ~d=32 on this task.
    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        d_model: 32,
        n_heads: 2,
        n_layers: 2,
        d_ff: 64,
        dropout: 0.0,
        ..ModelConfig::tiny(tok.vocab_size())
    };
    let opts = LinearizerOptions {
        max_tokens: 96,
        ..Default::default()
    };
    let mut model = ntr::tasks::nli::FactVerifier::new(ntr::models::Tapas::new(&cfg), 0xE33);
    ntr::tasks::nli::finetune(&mut model, &ds, &tok, &quick(16, 3e-3), &opts);
    let eval = ntr::tasks::nli::evaluate(&mut model, &ds, Split::Train, &tok, &opts);
    assert!(eval.n > 10);
    assert!(eval.accuracy > 0.6, "{eval:?}");
}

#[test]
fn consistency_probes_distinguish_perturbation_kinds() {
    let (_, corpus, tok) = small_world();
    let cfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        ..ModelConfig::tiny(tok.vocab_size())
    };
    let mut model = VanillaBert::new(&cfg);
    let report = ntr::tasks::probes::consistency(
        &mut model,
        &corpus,
        &tok,
        &LinearizerOptions::default(),
        7,
    );
    assert!(report.n > 5);
    // Centered similarities must stay in [-1, 1] and be non-degenerate.
    for v in [
        report.row_order_invariance,
        report.col_order_invariance,
        report.header_similarity,
    ] {
        assert!((-1.0..=1.0).contains(&v), "{report:?}");
        assert!(
            v < 0.999_999,
            "centered cosine should not saturate: {report:?}"
        );
    }
}
