//! Cross-crate integration: CSV → pipeline → every model family →
//! representations → checkpoints.

use ntr::pipeline::Pipeline;
use ntr::table::Table;
use ntr::zoo::{build_encoder, EncoderSpec, ModelKind};

fn sample_csv() -> &'static str {
    "Country,Capital,Population\nFrance,Paris,67.8\nAustralia,Canberra,25.69\nJapan,Tokyo,125.7\n"
}

fn pipeline_for(table: &Table) -> Pipeline {
    Pipeline::builder()
        .vocab_from_tables(std::slice::from_ref(table))
        .vocab_size(800)
        .build()
        .expect("vocab is non-empty")
}

#[test]
fn csv_to_embeddings_for_every_family() {
    let table = Table::from_csv_str("countries", sample_csv(), true)
        .expect("csv parses")
        .with_caption("Population in Million by Country");
    let pipeline = pipeline_for(&table);
    let cfg = pipeline.default_config();

    for kind in ModelKind::ALL {
        let mut model = build_encoder(EncoderSpec::f32(kind), &cfg).expect("f32 spec");
        let enc = pipeline.encode(model.as_mut(), &table, &table.caption);
        assert_eq!(
            enc.states.shape(),
            &[enc.encoded.len(), cfg.d_model],
            "{}",
            kind.name()
        );
        // All three data rows and columns reachable.
        for r in 0..3 {
            for c in 0..3 {
                let cell = enc
                    .cell_embedding(r, c)
                    .unwrap_or_else(|| panic!("{}: missing cell ({r},{c})", kind.name()));
                assert!(cell.data().iter().all(|x| x.is_finite()));
            }
        }
        assert!(enc.row_embedding(0).is_some());
        assert!(enc.column_embedding(2).is_some());
    }
}

#[test]
fn encoding_is_deterministic_per_seed_and_sensitive_to_content() {
    let table = Table::from_csv_str("t", sample_csv(), true).expect("csv parses");
    let pipeline = pipeline_for(&table);
    let cfg = pipeline.default_config();

    let mut a = build_encoder(EncoderSpec::f32(ModelKind::Tapas), &cfg).expect("f32 spec");
    let mut b = build_encoder(EncoderSpec::f32(ModelKind::Tapas), &cfg).expect("f32 spec");
    let ea = pipeline.encode(a.as_mut(), &table, "ctx");
    let eb = pipeline.encode(b.as_mut(), &table, "ctx");
    assert_eq!(ea.states, eb.states);

    // Changing one cell changes the encoding.
    let mut changed = table.clone();
    *changed.cell_mut(0, 1) = ntr::table::Cell::new("Lyon");
    let ec = pipeline.encode(a.as_mut(), &changed, "ctx");
    assert_ne!(ea.states, ec.states);
}

#[test]
fn checkpoints_transfer_between_fresh_models() {
    let table = Table::from_csv_str("t", sample_csv(), true).expect("csv parses");
    let pipeline = pipeline_for(&table);
    let cfg = pipeline.default_config();

    let mut original = build_encoder(EncoderSpec::f32(ModelKind::Turl), &cfg).expect("f32 spec");
    let before = pipeline.encode(original.as_mut(), &table, "x").states;

    let dir = std::env::temp_dir().join("ntr_integration_ckpt");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("turl.ntrw");
    ntr::nn::serialize::save(original.as_mut(), &path).expect("save");

    let mut restored = build_encoder(
        EncoderSpec::f32(ModelKind::Turl),
        &ntr::models::ModelConfig { seed: 4242, ..cfg },
    )
    .expect("f32 spec");
    let different = pipeline.encode(restored.as_mut(), &table, "x").states;
    assert_ne!(before, different, "different seeds must differ pre-load");

    ntr::nn::serialize::load(restored.as_mut(), &path).expect("load");
    let after = pipeline.encode(restored.as_mut(), &table, "x").states;
    assert_eq!(before, after, "checkpoint must restore behaviour exactly");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn headerless_csv_flows_through() {
    let table = Table::from_csv_str("h", "1,2\n3,4\n5,6\n", false).expect("csv parses");
    assert!(table.is_headerless());
    let pipeline = pipeline_for(&table);
    let mut model = build_encoder(
        EncoderSpec::f32(ModelKind::Bert),
        &pipeline.default_config(),
    )
    .expect("f32 spec");
    let enc = pipeline.encode(model.as_mut(), &table, "");
    assert!(enc.cell_embedding(2, 1).is_some());
}

#[test]
fn model_parameter_counts_are_stable() {
    // Regression guard: architecture drift shows up as parameter-count
    // changes, which silently invalidates recorded experiments.
    let table = Table::from_csv_str("t", sample_csv(), true).expect("csv parses");
    let pipeline = pipeline_for(&table);
    let cfg = pipeline.default_config();
    for kind in ModelKind::ALL {
        let mut m = build_encoder(EncoderSpec::f32(kind), &cfg).expect("f32 spec");
        let params = m.num_params();
        // The distilled student is an order of magnitude smaller than the
        // full-context families by design — no attention stacks.
        let floor = if kind == ModelKind::RowStudent {
            20_000
        } else {
            50_000
        };
        assert!(
            params > floor && params < 3_000_000,
            "{}: {params} parameters looks wrong",
            kind.name()
        );
    }
}
