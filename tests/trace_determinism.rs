//! Trace determinism: the JSONL event trace produced by a supervised
//! training run — including anomaly, rollback, and checkpoint events from a
//! deterministic fault drill — must be byte-identical across thread counts
//! once wall-clock fields (`*_ms`, `*_per_sec`) are stripped. Everything
//! else in a trace line is derived from the deterministic training state,
//! so any diff here is a real reproducibility regression, not noise.

use ntr::corpus::tables::{TableCorpus, TableKind};
use ntr::models::{ModelConfig, VanillaBert};
use ntr::obs::trace::{schema, strip_timings};

/// Strips the wall-clock fields from every line of a JSONL trace.
fn strip_all(trace: &str) -> String {
    trace
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| strip_timings(l).expect("trace line must parse"))
        .collect::<Vec<_>>()
        .join("\n")
}
use ntr::obs::ObsOptions;
use ntr::pipeline::Pipeline;
use ntr::table::{RowMajorLinearizer, Table};
use ntr::tasks::supervisor::SupervisorConfig;
use ntr::tasks::trainer::{TrainConfig, TrainerOptions};
use ntr::tasks::TrainRun;
use ntr::tensor::faults::FaultPlan;
use ntr::tensor::par::with_threads;
use std::path::PathBuf;

fn sample() -> Table {
    Table::from_strings(
        "countries",
        &["Country", "Capital", "Population"],
        &[
            &["France", "Paris", "67.8"],
            &["Australia", "Canberra", "25.69"],
            &["Japan", "Tokyo", "124.5"],
        ],
    )
    .with_caption("Population in Million by Country")
}

/// One faulted MLM pretrain run with tracing armed; returns the raw trace.
fn traced_run(tag: &str) -> String {
    let dir = std::env::temp_dir().join("ntr_trace_determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let trace: PathBuf = dir.join(format!("{tag}.jsonl"));
    let _ = std::fs::remove_file(&trace);

    let t = sample();
    let tables: Vec<Table> = (0..t.n_rows())
        .map(|r| t.select_rows(&[r, (r + 1) % t.n_rows()]))
        .collect();
    let corpus = TableCorpus {
        kinds: vec![TableKind::Employees; tables.len()],
        tables,
    };
    let p = Pipeline::builder()
        .vocab_from_tables(&corpus.tables)
        .vocab_size(600)
        .build()
        .expect("vocab is non-empty");
    let tok = p.tokenizer();
    let mut model = VanillaBert::new(&ModelConfig {
        vocab_size: tok.vocab_size(),
        ..ModelConfig::tiny(tok.vocab_size())
    });
    let cfg = TrainConfig {
        epochs: 4,
        lr: 3e-3,
        batch_size: 2,
        warmup_frac: 0.1,
        seed: 17,
    };
    let topts = TrainerOptions {
        obs: ObsOptions {
            trace: Some(trace.clone()),
            metrics: None,
        },
        ..Default::default()
    };
    // nan@2 forces one anomaly + rollback mid-run; snapshot_every: 2 also
    // exercises the cadence-snapshot replay path.
    let scfg = SupervisorConfig {
        rollback: true,
        max_retries: 3,
        snapshot_every: 2,
        faults: Some(FaultPlan::parse("nan@2").unwrap()),
        ..SupervisorConfig::default()
    };
    TrainRun::new(cfg)
        .max_tokens(64)
        .linearizer(&RowMajorLinearizer)
        .trainer(&topts)
        .supervisor(&scfg)
        .mlm(&mut model, &corpus, tok)
        .expect("rollback absorbs the injected NaN");
    std::fs::read_to_string(&trace).unwrap()
}

#[test]
fn trace_is_byte_identical_across_thread_counts() {
    let t1 = with_threads(1, || traced_run("threads1"));
    let t4 = with_threads(4, || traced_run("threads4"));

    // Both traces are schema-valid and actually exercised the fault path.
    let n1 = schema::validate_trace(&t1).unwrap();
    assert!(n1 > 0, "trace must contain events");
    schema::validate_trace(&t4).unwrap();
    assert!(t1.contains("\"ev\": \"anomaly\""), "nan@2 must fire");
    assert!(t1.contains("\"ev\": \"rollback\""));

    // Byte-identical after stripping wall-clock fields.
    let s1 = strip_all(&t1);
    let s4 = strip_all(&t4);
    assert_eq!(
        s1, s4,
        "stripped traces must not depend on the worker thread count"
    );

    // And stripping only removed timing keys, not events.
    assert_eq!(t1.lines().count(), s1.lines().count());
}

#[test]
fn repeated_runs_are_reproducible() {
    // Same thread count, two runs: identical modulo timings. This pins the
    // trace content (losses, grad norms, rollback targets) as a pure
    // function of the training configuration.
    let a = with_threads(2, || traced_run("repeat_a"));
    let b = with_threads(2, || traced_run("repeat_b"));
    assert_eq!(strip_timings(&a), strip_timings(&b));
}
