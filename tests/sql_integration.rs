//! Integration between the SQL engine and the synthetic corpus: generated
//! queries must execute consistently over generated tables.

use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::sql::gen::{GenConfig, QueryGenerator};
use ntr::sql::{execute, parse_query, Agg, CmpOp, Literal, Query};

fn corpus() -> TableCorpus {
    let world = World::generate(WorldConfig::default());
    TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables: 24,
            min_rows: 3,
            max_rows: 8,
            null_prob: 0.05,
            headerless_prob: 0.0,
            seed: 0x5A1,
        },
    )
}

#[test]
fn generated_queries_roundtrip_and_execute_on_every_table() {
    let corpus = corpus();
    for (ti, table) in corpus.tables.iter().enumerate() {
        let mut gen = QueryGenerator::new(ti as u64, GenConfig::default());
        for (query, answer) in gen.generate_n(table, 10) {
            // SQL text roundtrip.
            let reparsed = parse_query(&query.to_string())
                .unwrap_or_else(|e| panic!("{}: {e} for {query}", table.id));
            assert_eq!(reparsed, query);
            // Execution is deterministic.
            let again = execute(&query, table).expect("re-execution");
            assert!(again.same_denotation(&answer));
        }
    }
}

#[test]
fn count_matches_manual_filtering() {
    let corpus = corpus();
    let table = &corpus.tables[0];
    let col = &table.columns()[0].name;
    let needle = table.cell(0, 0).text().to_string();
    let q = Query::select(col.clone())
        .with_agg(Agg::Count)
        .with_condition(col.clone(), CmpOp::Eq, Literal::Text(needle.clone()));
    let ans = execute(&q, table).expect("executes");
    let manual = (0..table.n_rows())
        .filter(|&r| table.cell(r, 0).text().eq_ignore_ascii_case(&needle))
        .count();
    assert_eq!(ans.denotation(), vec![manual.to_string()]);
}

#[test]
fn aggregate_identities_hold_on_numeric_columns() {
    // SUM = AVG * COUNT(non-null) and MIN <= AVG <= MAX on every numeric
    // column of every corpus table.
    let corpus = corpus();
    let mut checked = 0;
    for table in &corpus.tables {
        for col in table.columns() {
            if !matches!(
                col.sem_type,
                ntr::table::SemanticType::Integer | ntr::table::SemanticType::Float
            ) {
                continue;
            }
            let sel = |agg| {
                let q = Query::select(col.name.clone()).with_agg(agg);
                execute(&q, table).expect("aggregate executes").values[0].as_number()
            };
            let (Some(sum), Some(avg), Some(min), Some(max)) =
                (sel(Agg::Sum), sel(Agg::Avg), sel(Agg::Min), sel(Agg::Max))
            else {
                continue; // all-null column
            };
            let n = (0..table.n_rows())
                .filter(|&r| {
                    let c = table.column_index(&col.name).expect("col exists");
                    !table.cell(r, c).is_null()
                })
                .count() as f64;
            assert!(
                (sum - avg * n).abs() < 1e-6 * sum.abs().max(1.0),
                "{}",
                table.id
            );
            assert!(min <= avg + 1e-9 && avg <= max + 1e-9, "{}", table.id);
            checked += 1;
        }
    }
    assert!(checked > 10, "too few numeric columns checked: {checked}");
}

#[test]
fn world_facts_are_queryable() {
    // The KB and the generated tables must agree: querying a country table
    // for a capital returns the KB's capital.
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate_entity_only(
        &world,
        &CorpusConfig {
            n_tables: 24,
            min_rows: 5,
            max_rows: 8,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 0x5A2,
        },
    );
    let mut checked = 0;
    for table in &corpus.tables {
        let (Some(_), Some(cap_col)) =
            (table.column_index("Country"), table.column_index("Capital"))
        else {
            continue;
        };
        for r in 0..table.n_rows() {
            let country = table.cell(r, 0).text();
            let q = Query::select("Capital").with_condition(
                "Country",
                CmpOp::Eq,
                Literal::Text(country.to_string()),
            );
            let ans = execute(&q, table).expect("executes");
            let entity = world.entity_by_name(country).expect("country in KB");
            let kb_capital = world.name(world.country(entity).expect("record").capital);
            assert_eq!(
                ans.denotation(),
                vec![kb_capital.to_lowercase()],
                "table {} row {r} col {cap_col}",
                table.id
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no country tables checked");
}
