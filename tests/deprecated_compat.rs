//! Compatibility contract for the deprecated training entry points: every
//! old `pretrain_*` function must remain a pure delegate to [`TrainRun`]
//! — same losses, bit for bit — and the wrapper outputs themselves are
//! pinned as a golden fingerprint so a behavior change in *either* layer
//! shows up as a diff here.
//!
//! To bless after an intentional change:
//!
//! ```text
//! NTR_BLESS=1 cargo test --test deprecated_compat
//! ```
#![allow(deprecated)]

use ntr::corpus::tables::{CorpusConfig, TableCorpus};
use ntr::corpus::{World, WorldConfig};
use ntr::models::{ModelConfig, Tapex, Turl, VanillaBert};
use ntr::tasks::pretrain::{pretrain_mlm, pretrain_mlm_with, pretrain_tapex, pretrain_turl};
use ntr::tasks::{TrainConfig, TrainRun};
use ntr_table::ColumnMajorLinearizer;
use ntr_tensor::io::crc32;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("NTR_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nrun `NTR_BLESS=1 cargo test --test deprecated_compat` to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden {name} drifted; if intentional, re-bless with \
         `NTR_BLESS=1 cargo test --test deprecated_compat` and commit the diff"
    );
}

struct Fixture {
    world: World,
    corpus: TableCorpus,
    entity_corpus: TableCorpus,
    tok: ntr::tokenizer::WordPieceTokenizer,
}

fn fixture() -> Fixture {
    let world = World::generate(WorldConfig {
        n_countries: 8,
        n_people: 8,
        n_films: 6,
        n_clubs: 4,
        seed: 0xD5A,
    });
    let ccfg = CorpusConfig {
        n_tables: 6,
        min_rows: 2,
        max_rows: 4,
        null_prob: 0.0,
        headerless_prob: 0.0,
        seed: 0xD5B,
    };
    let corpus = TableCorpus::generate(&world, &ccfg);
    let entity_corpus = TableCorpus::generate_entity_only(&world, &ccfg);
    let tok = ntr::corpus::vocab::train_tokenizer(&corpus, &[], 900);
    Fixture {
        world,
        corpus,
        entity_corpus,
        tok,
    }
}

fn tcfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        lr: 2e-3,
        batch_size: 4,
        warmup_frac: 0.1,
        seed: 0xD5C,
    }
}

/// `name: n=<steps> crc32=<loss bit stream> head=[first 4 loss bits]`
fn fingerprint(name: &str, losses: &[f32]) -> String {
    let mut bytes = Vec::with_capacity(losses.len() * 4);
    for v in losses {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let head = losses
        .iter()
        .take(4)
        .map(|v| format!("{:08x}", v.to_bits()))
        .collect::<Vec<_>>()
        .join(" ");
    format!(
        "{name}: n={} crc32={:08x} head=[{head}]\n",
        losses.len(),
        crc32(&bytes)
    )
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn deprecated_wrappers_match_trainrun_bit_exactly() {
    // The golden fingerprint pins the *scalar* kernels; under
    // `--features simd` the FMA GEMM is tolerance-bounded, not
    // bit-identical, so this test pins the scalar reference path
    // explicitly (the documented determinism boundary, DESIGN.md §9).
    ntr_tensor::simd::force_scalar(deprecated_wrappers_match_trainrun_bit_exactly_impl)
}

fn deprecated_wrappers_match_trainrun_bit_exactly_impl() {
    let f = fixture();
    let cfg = tcfg();
    let mcfg = ModelConfig {
        vocab_size: f.tok.vocab_size(),
        ..ModelConfig::tiny(f.tok.vocab_size())
    };
    let mut out = String::new();

    // MLM, default (row-major) serialization.
    let mut old = VanillaBert::new(&mcfg);
    let old_report = pretrain_mlm(&mut old, &f.corpus, &f.tok, &cfg, 64);
    let mut new = VanillaBert::new(&mcfg);
    let new_report = TrainRun::new(cfg)
        .max_tokens(64)
        .mlm(&mut new, &f.corpus, &f.tok)
        .expect("no checkpointing configured");
    assert_eq!(
        bits(&old_report.mlm_loss),
        bits(&new_report.mlm_loss),
        "pretrain_mlm must delegate to TrainRun bit-exactly"
    );
    out.push_str(&fingerprint("pretrain_mlm", &old_report.mlm_loss));

    // MLM with an explicit linearizer.
    let mut old = VanillaBert::new(&mcfg);
    let old_report = pretrain_mlm_with(
        &mut old,
        &f.corpus,
        &f.tok,
        &cfg,
        64,
        &ColumnMajorLinearizer,
    );
    let mut new = VanillaBert::new(&mcfg);
    let new_report = TrainRun::new(cfg)
        .max_tokens(64)
        .linearizer(&ColumnMajorLinearizer)
        .mlm(&mut new, &f.corpus, &f.tok)
        .expect("no checkpointing configured");
    assert_eq!(bits(&old_report.mlm_loss), bits(&new_report.mlm_loss));
    out.push_str(&fingerprint(
        "pretrain_mlm_with/column_major",
        &old_report.mlm_loss,
    ));

    // TURL joint pretraining (entity-annotated corpus).
    let tcfg_model = ModelConfig {
        n_entities: f.world.n_entities(),
        ..mcfg
    };
    let mut old = Turl::new(&tcfg_model);
    let old_report = pretrain_turl(&mut old, &f.entity_corpus, &f.tok, &cfg, 64);
    let mut new = Turl::new(&tcfg_model);
    let new_report = TrainRun::new(cfg)
        .max_tokens(64)
        .turl(&mut new, &f.entity_corpus, &f.tok)
        .expect("no checkpointing configured");
    assert_eq!(bits(&old_report.mlm_loss), bits(&new_report.mlm_loss));
    assert_eq!(bits(&old_report.mer_loss), bits(&new_report.mer_loss));
    out.push_str(&fingerprint("pretrain_turl/mlm", &old_report.mlm_loss));
    out.push_str(&fingerprint("pretrain_turl/mer", &old_report.mer_loss));

    // TAPEX SQL-execution pretraining.
    let mut old = Tapex::new(&mcfg);
    let old_losses = pretrain_tapex(&mut old, &f.corpus, &f.tok, &cfg, 2, 64);
    let mut new = Tapex::new(&mcfg);
    let new_losses = TrainRun::new(cfg)
        .max_tokens(64)
        .queries_per_table(2)
        .tapex(&mut new, &f.corpus, &f.tok)
        .expect("no checkpointing configured");
    assert_eq!(bits(&old_losses), bits(&new_losses));
    out.push_str(&fingerprint("pretrain_tapex", &old_losses));

    check("deprecated_wrappers.txt", &out);
}

/// The kept single-request wrappers delegate to the validating path:
/// `encode` == `try_encode` bit for bit.
#[test]
fn encode_wrapper_matches_try_encode() {
    let f = fixture();
    let p = ntr::Pipeline::builder()
        .vocab_from_tables(&f.corpus.tables)
        .vocab_size(900)
        .build()
        .expect("vocab is non-empty");
    let mcfg = ModelConfig {
        vocab_size: p.tokenizer().vocab_size(),
        ..ModelConfig::tiny(p.tokenizer().vocab_size())
    };
    let t = &f.corpus.tables[0];
    let mut a = ntr::build_model(ntr::ModelKind::Bert, &mcfg);
    let via_encode = p.encode(a.as_mut(), t, "ctx");
    let mut b = ntr::build_model(ntr::ModelKind::Bert, &mcfg);
    let via_try = p.try_encode(b.as_mut(), t, "ctx").expect("valid request");
    assert_eq!(
        bits(via_encode.states.data()),
        bits(via_try.states.data()),
        "encode must stay a thin wrapper over the validating path"
    );
}

/// The deprecated encoder-construction surface must stay pure delegates
/// to the `EncoderSpec` path: `build_model(kind, cfg)` constructs the
/// same bits as `build_encoder(EncoderSpec::f32(kind), cfg)`, and
/// `ModelKind::parse` agrees with the one `FromStr` impl on every
/// registry name (and on garbage).
#[test]
fn encoder_spec_delegates_are_bit_exact() {
    use ntr::{build_encoder, EncoderSpec, ModelKind};
    let mcfg = ModelConfig {
        vocab_size: 300,
        ..ModelConfig::tiny(300)
    };
    let f = fixture();
    let p = ntr::Pipeline::builder()
        .vocab_from_tables(&f.corpus.tables)
        .vocab_size(300)
        .build()
        .expect("vocab is non-empty");
    let mcfg = ModelConfig {
        vocab_size: p.tokenizer().vocab_size(),
        ..mcfg
    };
    let t = &f.corpus.tables[0];
    for kind in ModelKind::ALL {
        let mut old = ntr::build_model(kind, &mcfg);
        let mut new =
            build_encoder(EncoderSpec::f32(kind), &mcfg).expect("f32 is valid for every family");
        let a = p.encode(old.as_mut(), t, "ctx");
        let b = p.encode(new.as_mut(), t, "ctx");
        assert_eq!(
            bits(a.states.data()),
            bits(b.states.data()),
            "{kind}: build_model must delegate to build_encoder"
        );
        assert_eq!(ModelKind::parse(kind.name()), Some(kind));
        assert_eq!(kind.name().parse::<ModelKind>().ok(), Some(kind));
    }
    assert_eq!(ModelKind::parse("no-such-model"), None);
    assert!("no-such-model".parse::<ModelKind>().is_err());
}
