//! Property-based tests over the core data structures and invariants,
//! spanning the tensor math, CSV, tokenizer, SQL and masking layers.

use ntr::sql::{execute, parse_query, Answer};
use ntr::table::masking::{mask_mlm, MaskedExample, MlmConfig};
use ntr::table::{parse_csv, write_csv, Linearizer, LinearizerOptions, RowMajorLinearizer, Table};
use ntr::tensor::Tensor;
use ntr::tokenizer::{train::WordPieceTrainer, WordPieceTokenizer};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Tensor algebra
// ---------------------------------------------------------------------

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]))
}

proptest! {
    #[test]
    fn matmul_is_associative_enough(a in small_matrix(3, 4), b in small_matrix(4, 2), c in small_matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(ntr::tensor::allclose(left.data(), right.data(), 1e-3, 1e-3));
    }

    #[test]
    fn matmul_distributes_over_addition(a in small_matrix(3, 4), b in small_matrix(4, 2), c in small_matrix(4, 2)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(ntr::tensor::allclose(left.data(), right.data(), 1e-3, 1e-3));
    }

    #[test]
    fn transpose_is_involutive(a in small_matrix(4, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose(a in small_matrix(3, 4), b in small_matrix(5, 4)) {
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        prop_assert!(ntr::tensor::allclose(fast.data(), slow.data(), 1e-4, 1e-4));
    }

    #[test]
    fn softmax_rows_are_probability_distributions(a in small_matrix(4, 7)) {
        let s = a.softmax_rows();
        for r in 0..4 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(a in small_matrix(2, 5), shift in -100.0f32..100.0) {
        let shifted = a.map(|x| x + shift);
        prop_assert!(ntr::tensor::allclose(
            a.softmax_rows().data(),
            shifted.softmax_rows().data(),
            1e-3,
            1e-4
        ));
    }
}

// ---------------------------------------------------------------------
// CSV round-trips on arbitrary content
// ---------------------------------------------------------------------

fn csv_field() -> impl Strategy<Value = String> {
    // Arbitrary printable content including the characters CSV must quote.
    proptest::string::string_regex("[ -~]{0,12}").expect("valid regex")
}

proptest! {
    #[test]
    fn csv_roundtrips_arbitrary_fields(
        rows in proptest::collection::vec(proptest::collection::vec(csv_field(), 3), 1..6)
    ) {
        let text = write_csv(&rows);
        let parsed = parse_csv(&text).expect("own output parses");
        prop_assert_eq!(parsed, rows);
    }
}

// ---------------------------------------------------------------------
// Tokenizer invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn tokenizer_ids_are_always_in_vocab(text in "[a-z0-9 .,|:;]{0,40}") {
        let corpus = ["the quick brown fox 0 1 2 3 4 5 6 7 8 9 . , | : ;"];
        let tok = WordPieceTokenizer::new(WordPieceTrainer::new(300).train(corpus.iter().copied()));
        for id in tok.encode(&text) {
            prop_assert!(id < tok.vocab_size());
        }
    }

    #[test]
    fn decode_of_known_words_roundtrips(words in proptest::collection::vec("(fox|quick|brown|the)", 0..6)) {
        let corpus = ["the quick brown fox the quick brown fox"];
        let tok = WordPieceTokenizer::new(WordPieceTrainer::new(300).train(corpus.iter().copied()));
        let text = words.join(" ");
        prop_assert_eq!(tok.decode(&tok.encode(&text)), text);
    }
}

// ---------------------------------------------------------------------
// SQL engine invariants on arbitrary numeric tables
// ---------------------------------------------------------------------

fn numeric_table() -> impl Strategy<Value = Table> {
    proptest::collection::vec(proptest::collection::vec(-1000i64..1000, 2), 1..8).prop_map(|rows| {
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|x| x.to_string()).collect())
            .collect();
        let refs: Vec<Vec<&str>> = data
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = refs.iter().map(Vec::as_slice).collect();
        Table::from_strings("prop", &["a", "b"], &slices)
    })
}

proptest! {
    #[test]
    fn sql_count_never_exceeds_rows(table in numeric_table(), threshold in -1000i64..1000) {
        let q = parse_query(&format!("SELECT COUNT a FROM t WHERE b > {threshold}")).expect("parses");
        let ans = execute(&q, &table).expect("executes");
        let count: usize = ans.denotation()[0].parse().expect("count is integer");
        prop_assert!(count <= table.n_rows());
    }

    #[test]
    fn sql_where_partition(table in numeric_table(), threshold in -1000i64..1000) {
        // rows(b > t) + rows(b <= t) == rows
        let gt = execute(&parse_query(&format!("SELECT a FROM t WHERE b > {threshold}")).expect("p"), &table).expect("e");
        let le = execute(&parse_query(&format!("SELECT a FROM t WHERE b <= {threshold}")).expect("p"), &table).expect("e");
        prop_assert_eq!(gt.values.len() + le.values.len(), table.n_rows());
    }

    #[test]
    fn sql_denotation_is_order_insensitive(table in numeric_table()) {
        let all = execute(&parse_query("SELECT a FROM t").expect("p"), &table).expect("e");
        let mut reversed = all.values.clone();
        reversed.reverse();
        let rev = Answer { values: reversed };
        prop_assert!(all.same_denotation(&rev));
    }
}

// ---------------------------------------------------------------------
// Masking invariants on arbitrary small tables
// ---------------------------------------------------------------------

fn word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z]{1,6}").expect("valid regex")
}

proptest! {
    #[test]
    fn mlm_masking_preserves_length_and_targets(
        cells in proptest::collection::vec(word(), 6),
        seed in 0u64..1000
    ) {
        let rows: Vec<&str> = cells.iter().map(String::as_str).collect();
        let table = Table::from_strings("m", &["x", "y", "z"], &[&rows[0..3], &rows[3..6]]);
        let tok = WordPieceTokenizer::new(
            WordPieceTrainer::new(500).train([cells.join(" ").as_str(), "x y z |"].into_iter()),
        );
        let encoded = RowMajorLinearizer.linearize(&table, "", &tok, &LinearizerOptions::default());
        let masked = mask_mlm(&encoded, &MlmConfig::bert(tok.vocab_size()), seed);
        prop_assert_eq!(masked.input_ids.len(), encoded.len());
        prop_assert!(masked.n_masked() >= 1);
        for (pos, &target) in masked.targets.iter().enumerate() {
            if target == MaskedExample::IGNORE {
                prop_assert_eq!(masked.input_ids[pos], encoded.ids()[pos]);
            } else {
                prop_assert_eq!(target, encoded.ids()[pos]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Model registry: the one name parser shared by CLI, wire, and META
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn model_names_round_trip_and_strangers_are_rejected(s in "[a-z0-9-]{0,16}") {
        use ntr::zoo::{EncoderSpec, ModelKind, QuantSpec};
        // Display -> FromStr is the identity on every registry kind…
        for kind in ModelKind::ALL {
            prop_assert_eq!(kind.to_string().parse::<ModelKind>(), Ok(kind));
        }
        for q in QuantSpec::ALL {
            prop_assert_eq!(q.to_string().parse::<QuantSpec>(), Ok(q));
        }
        // …and an arbitrary string parses iff it IS a registry name, with
        // the full menu in the error message otherwise.
        match s.parse::<ModelKind>() {
            Ok(kind) => prop_assert_eq!(kind.to_string(), s.clone()),
            Err(msg) => {
                prop_assert!(ModelKind::ALL.iter().all(|k| k.name() != s));
                for k in ModelKind::ALL {
                    prop_assert!(msg.contains(k.name()), "{}", msg);
                }
            }
        }
        // EncoderSpec's display embeds both round-trippable names.
        let spec = EncoderSpec::int8(ModelKind::RowStudent);
        prop_assert_eq!(spec.to_string(), "row-student@int8");
    }
}
