//! `ntr-suite` — workspace-level integration tests and examples.
//!
//! The actual library lives in the `ntr` facade crate (`crates/core`) and the
//! crates it re-exports. This package only exists so that the repository-root
//! `tests/` and `examples/` directories are compiled by Cargo.
