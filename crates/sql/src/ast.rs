//! Query AST and its SQL rendering.

use std::fmt;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Agg {
    /// Row count.
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl Agg {
    /// Keyword form.
    pub fn keyword(self) -> &'static str {
        match self {
            Agg::Count => "COUNT",
            Agg::Sum => "SUM",
            Agg::Avg => "AVG",
            Agg::Min => "MIN",
            Agg::Max => "MAX",
        }
    }

    /// All aggregates (for generators and label spaces).
    pub const ALL: [Agg; 5] = [Agg::Count, Agg::Sum, Agg::Avg, Agg::Min, Agg::Max];
}

/// Comparison operators in `WHERE` conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
}

impl CmpOp {
    /// Symbol form.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
        }
    }

    /// All operators.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Neq,
        CmpOp::Gt,
        CmpOp::Lt,
        CmpOp::Ge,
        CmpOp::Le,
    ];
}

/// A literal in a condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Numeric literal.
    Number(f64),
    /// String literal (stored unquoted).
    Text(String),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => write!(f, "{n}"),
            Literal::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

/// One `WHERE` condition: `column op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Column name.
    pub column: String,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand literal.
    pub value: Literal,
}

/// A full query: optional aggregate over one selected column, with an
/// AND-conjunction of conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Aggregate, if any.
    pub agg: Option<Agg>,
    /// Selected column name.
    pub column: String,
    /// Conjunctive conditions (possibly empty).
    pub conditions: Vec<Condition>,
}

impl Query {
    /// A bare column selection.
    pub fn select(column: impl Into<String>) -> Self {
        Self {
            agg: None,
            column: column.into(),
            conditions: Vec::new(),
        }
    }

    /// Adds an aggregate, builder-style.
    pub fn with_agg(mut self, agg: Agg) -> Self {
        self.agg = Some(agg);
        self
    }

    /// Adds a condition, builder-style.
    pub fn with_condition(mut self, column: impl Into<String>, op: CmpOp, value: Literal) -> Self {
        self.conditions.push(Condition {
            column: column.into(),
            op,
            value,
        });
        self
    }
}

fn quote_col(name: &str) -> String {
    if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !name.is_empty() {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

impl fmt::Display for Query {
    /// Renders canonical SQL text (parsable by [`crate::parse_query`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if let Some(agg) = self.agg {
            write!(f, "{} ", agg.keyword())?;
        }
        write!(f, "{} FROM t", quote_col(&self.column))?;
        for (i, c) in self.conditions.iter().enumerate() {
            let kw = if i == 0 { " WHERE" } else { " AND" };
            write!(
                f,
                "{kw} {} {} {}",
                quote_col(&c.column),
                c.op.symbol(),
                c.value
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_bare_select() {
        assert_eq!(Query::select("city").to_string(), "SELECT city FROM t");
    }

    #[test]
    fn renders_aggregate_and_conditions() {
        let q = Query::select("population")
            .with_agg(Agg::Sum)
            .with_condition("country", CmpOp::Eq, Literal::Text("France".into()))
            .with_condition("year", CmpOp::Ge, Literal::Number(2000.0));
        assert_eq!(
            q.to_string(),
            "SELECT SUM population FROM t WHERE country = 'France' AND year >= 2000"
        );
    }

    #[test]
    fn quotes_awkward_column_names() {
        let q = Query::select("hours-per-week");
        assert_eq!(q.to_string(), "SELECT \"hours-per-week\" FROM t");
    }

    #[test]
    fn escapes_quotes_in_literals() {
        let q = Query::select("a").with_condition("b", CmpOp::Eq, Literal::Text("O'Brien".into()));
        assert!(q.to_string().contains("'O''Brien'"));
    }
}
