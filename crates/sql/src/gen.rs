//! Seeded random query generation over a table schema — the supervision
//! source for TAPEX-style "pretrain a neural SQL executor" and for the
//! synthetic WikiSQL-like dataset in `ntr-corpus`.

use crate::ast::{Agg, CmpOp, Condition, Literal, Query};
use crate::exec::execute;
use crate::Answer;
use ntr_table::{SemanticType, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the query generator.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Probability of attaching an aggregate to the select.
    pub agg_prob: f64,
    /// Maximum number of WHERE conditions (0..=max sampled uniformly-ish).
    pub max_conditions: usize,
    /// Reject queries whose answer is empty (keeps supervision informative).
    pub require_nonempty: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            agg_prob: 0.4,
            max_conditions: 2,
            require_nonempty: true,
        }
    }
}

/// A seeded generator of executable queries over one table.
pub struct QueryGenerator {
    rng: StdRng,
    cfg: GenConfig,
}

impl QueryGenerator {
    /// New generator with the given seed and config.
    pub fn new(seed: u64, cfg: GenConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            cfg,
        }
    }

    /// Generates one query plus its executed answer. Returns `None` when
    /// the table is degenerate (no rows/columns) or rejection sampling
    /// exhausts its attempts.
    pub fn generate(&mut self, table: &Table) -> Option<(Query, Answer)> {
        if table.n_rows() == 0 || table.n_cols() == 0 {
            return None;
        }
        for _ in 0..32 {
            let q = self.candidate(table);
            if let Ok(ans) = execute(&q, table) {
                if !self.cfg.require_nonempty || !ans.values.is_empty() {
                    let all_null = ans.values.iter().all(|v| v.is_null());
                    if !(self.cfg.require_nonempty && all_null) {
                        return Some((q, ans));
                    }
                }
            }
        }
        None
    }

    /// Generates up to `n` (query, answer) pairs.
    pub fn generate_n(&mut self, table: &Table, n: usize) -> Vec<(Query, Answer)> {
        (0..n).filter_map(|_| self.generate(table)).collect()
    }

    fn candidate(&mut self, table: &Table) -> Query {
        let n_cols = table.n_cols();
        let sel = self.rng.gen_range(0..n_cols);
        let sel_type = table.columns()[sel].sem_type;
        let numeric_sel = matches!(sel_type, SemanticType::Integer | SemanticType::Float);

        let agg = if self.rng.gen::<f64>() < self.cfg.agg_prob {
            let choices: &[Agg] = if numeric_sel {
                &Agg::ALL
            } else {
                &[Agg::Count, Agg::Min, Agg::Max]
            };
            Some(choices[self.rng.gen_range(0..choices.len())])
        } else {
            None
        };

        let n_conds = self.rng.gen_range(0..=self.cfg.max_conditions);
        let mut conditions = Vec::with_capacity(n_conds);
        for _ in 0..n_conds {
            let col = self.rng.gen_range(0..n_cols);
            if let Some(cond) = self.condition_on(table, col) {
                conditions.push(cond);
            }
        }
        Query {
            agg,
            column: table.columns()[sel].name.clone(),
            conditions,
        }
    }

    /// Builds a condition whose literal is drawn from the column's actual
    /// values, so equality conditions are satisfiable.
    fn condition_on(&mut self, table: &Table, col: usize) -> Option<Condition> {
        let non_null: Vec<usize> = (0..table.n_rows())
            .filter(|&r| !table.cell(r, col).is_null())
            .collect();
        if non_null.is_empty() {
            return None;
        }
        let row = non_null[self.rng.gen_range(0..non_null.len())];
        let cell = table.cell(row, col);
        let numeric = cell.value.as_number();
        let (op, value) = match numeric {
            Some(x) if self.rng.gen::<f64>() < 0.6 => {
                let ops = [
                    CmpOp::Gt,
                    CmpOp::Lt,
                    CmpOp::Ge,
                    CmpOp::Le,
                    CmpOp::Eq,
                    CmpOp::Neq,
                ];
                (
                    ops[self.rng.gen_range(0..ops.len())],
                    Literal::Number(round4(x)),
                )
            }
            Some(x) => (CmpOp::Eq, Literal::Number(round4(x))),
            None => {
                let op = if self.rng.gen::<f64>() < 0.85 {
                    CmpOp::Eq
                } else {
                    CmpOp::Neq
                };
                (op, Literal::Text(cell.text().to_string()))
            }
        };
        Some(Condition {
            column: table.columns()[col].name.clone(),
            op,
            value,
        })
    }
}

fn round4(x: f64) -> f64 {
    (x * 1e4).round() / 1e4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::from_strings(
            "t",
            &["name", "score", "team"],
            &[
                &["ann", "10", "red"],
                &["bob", "20", "blue"],
                &["cat", "30", "red"],
                &["dan", "40", "blue"],
            ],
        )
    }

    #[test]
    fn generated_queries_execute_nonempty() {
        let mut g = QueryGenerator::new(1, GenConfig::default());
        let pairs = g.generate_n(&table(), 50);
        assert!(pairs.len() >= 45, "only {} generated", pairs.len());
        for (q, ans) in &pairs {
            let re = execute(q, &table()).unwrap();
            assert!(re.same_denotation(ans));
            assert!(!ans.values.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = QueryGenerator::new(7, GenConfig::default()).generate_n(&table(), 10);
        let b = QueryGenerator::new(7, GenConfig::default()).generate_n(&table(), 10);
        assert_eq!(a.len(), b.len());
        for ((qa, _), (qb, _)) in a.iter().zip(&b) {
            assert_eq!(qa, qb);
        }
        let c = QueryGenerator::new(8, GenConfig::default()).generate_n(&table(), 10);
        assert!(a.iter().zip(&c).any(|((qa, _), (qc, _))| qa != qc));
    }

    #[test]
    fn produces_a_mix_of_aggregates_and_conditions() {
        let mut g = QueryGenerator::new(3, GenConfig::default());
        let pairs = g.generate_n(&table(), 100);
        let with_agg = pairs.iter().filter(|(q, _)| q.agg.is_some()).count();
        let with_cond = pairs
            .iter()
            .filter(|(q, _)| !q.conditions.is_empty())
            .count();
        assert!(with_agg > 10 && with_agg < 90, "agg count {with_agg}");
        assert!(with_cond > 20, "cond count {with_cond}");
    }

    #[test]
    fn degenerate_tables_yield_none() {
        let empty = Table::new("e", vec![ntr_table::Column::new("a")], vec![]).unwrap();
        assert!(QueryGenerator::new(0, GenConfig::default())
            .generate(&empty)
            .is_none());
    }

    #[test]
    fn sql_roundtrip_of_generated_queries() {
        let mut g = QueryGenerator::new(9, GenConfig::default());
        for (q, _) in g.generate_n(&table(), 30) {
            let parsed = crate::parse_query(&q.to_string()).unwrap();
            assert_eq!(parsed, q, "roundtrip failed for {q}");
        }
    }
}
