//! Query execution over a single table, and answer canonicalization.

use crate::ast::{Agg, CmpOp, Literal, Query};
use ntr_table::{CellValue, Table};
use std::fmt;

/// Execution errors.
#[derive(Debug, PartialEq)]
pub enum ExecError {
    /// A referenced column does not exist in the table.
    NoSuchColumn(String),
    /// `SUM`/`AVG` over a value that is not numeric.
    NonNumericAggregate {
        /// The aggregate.
        agg: Agg,
        /// The offending cell text.
        cell: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NoSuchColumn(c) => write!(f, "no such column: {c:?}"),
            ExecError::NonNumericAggregate { agg, cell } => {
                write!(f, "{} over non-numeric cell {cell:?}", agg.keyword())
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A query result: the list of selected values (aggregates produce one).
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// Result values in row order.
    pub values: Vec<CellValue>,
}

impl Answer {
    /// Canonical string forms for denotation comparison: trimmed,
    /// lowercased, numbers normalized (`2.0` → `2`), sorted.
    ///
    /// Sorting makes the comparison order-insensitive, matching the
    /// convention of WikiSQL-style denotation accuracy.
    pub fn denotation(&self) -> Vec<String> {
        let mut out: Vec<String> = self.values.iter().map(canonical).collect();
        out.sort();
        out
    }

    /// True when two answers denote the same result set.
    pub fn same_denotation(&self, other: &Answer) -> bool {
        self.denotation() == other.denotation()
    }
}

/// Canonicalizes one value for denotation comparison.
pub fn canonical(v: &CellValue) -> String {
    match v {
        CellValue::Float(f) => {
            if (f.fract()).abs() < 1e-9 && f.abs() < 1e15 {
                format!("{}", *f as i64)
            } else {
                format!("{:.4}", f)
                    .trim_end_matches('0')
                    .trim_end_matches('.')
                    .to_string()
            }
        }
        CellValue::Int(i) => i.to_string(),
        other => other.to_string().trim().to_lowercase(),
    }
}

fn matches_condition(cell: &CellValue, op: CmpOp, lit: &Literal) -> bool {
    // Numeric comparison whenever both sides are numeric; otherwise
    // case-insensitive string comparison (ordering ops lexicographic).
    match (cell.as_number(), lit) {
        (Some(a), Literal::Number(b)) => compare_f64(a, *b, op),
        _ => {
            let a = canonical(cell);
            let b = match lit {
                Literal::Number(n) => canonical(&CellValue::Float(*n)),
                Literal::Text(s) => s.trim().to_lowercase(),
            };
            if cell.is_null() {
                // NULLs match nothing except explicit != (SQL-ish pragmatism:
                // treat NULL as unequal to every literal).
                return op == CmpOp::Neq;
            }
            match op {
                CmpOp::Eq => a == b,
                CmpOp::Neq => a != b,
                CmpOp::Gt => a > b,
                CmpOp::Lt => a < b,
                CmpOp::Ge => a >= b,
                CmpOp::Le => a <= b,
            }
        }
    }
}

fn compare_f64(a: f64, b: f64, op: CmpOp) -> bool {
    const EPS: f64 = 1e-9;
    match op {
        CmpOp::Eq => (a - b).abs() <= EPS,
        CmpOp::Neq => (a - b).abs() > EPS,
        CmpOp::Gt => a > b + EPS,
        CmpOp::Lt => a < b - EPS,
        CmpOp::Ge => a >= b - EPS,
        CmpOp::Le => a <= b + EPS,
    }
}

/// Executes `query` against `table`.
pub fn execute(query: &Query, table: &Table) -> Result<Answer, ExecError> {
    let sel = table
        .column_index(&query.column)
        .ok_or_else(|| ExecError::NoSuchColumn(query.column.clone()))?;
    let mut cond_cols = Vec::with_capacity(query.conditions.len());
    for c in &query.conditions {
        cond_cols.push(
            table
                .column_index(&c.column)
                .ok_or_else(|| ExecError::NoSuchColumn(c.column.clone()))?,
        );
    }

    let selected: Vec<&CellValue> = (0..table.n_rows())
        .filter(|&r| {
            query
                .conditions
                .iter()
                .zip(&cond_cols)
                .all(|(c, &col)| matches_condition(&table.cell(r, col).value, c.op, &c.value))
        })
        .map(|r| &table.cell(r, sel).value)
        .collect();

    let values = match query.agg {
        None => selected.into_iter().cloned().collect(),
        Some(Agg::Count) => vec![CellValue::Int(selected.len() as i64)],
        Some(agg @ (Agg::Sum | Agg::Avg)) => {
            let mut sum = 0.0;
            let mut n = 0usize;
            for v in &selected {
                if v.is_null() {
                    continue; // SQL aggregates skip NULLs
                }
                let x = v
                    .as_number()
                    .ok_or_else(|| ExecError::NonNumericAggregate {
                        agg,
                        cell: v.to_string(),
                    })?;
                sum += x;
                n += 1;
            }
            let result = match agg {
                Agg::Sum => sum,
                _ if n == 0 => f64::NAN,
                _ => sum / n as f64,
            };
            if result.is_nan() {
                vec![CellValue::Null]
            } else {
                vec![CellValue::Float(result)]
            }
        }
        Some(agg @ (Agg::Min | Agg::Max)) => {
            let non_null: Vec<&&CellValue> = selected.iter().filter(|v| !v.is_null()).collect();
            if non_null.is_empty() {
                vec![CellValue::Null]
            } else if non_null.iter().all(|v| v.as_number().is_some()) {
                let nums = non_null.iter().map(|v| v.as_number().expect("checked"));
                let best = match agg {
                    Agg::Min => nums.fold(f64::INFINITY, f64::min),
                    _ => nums.fold(f64::NEG_INFINITY, f64::max),
                };
                vec![CellValue::Float(best)]
            } else {
                // Lexicographic min/max over canonical strings.
                let mut strs: Vec<(String, &CellValue)> =
                    non_null.iter().map(|v| (canonical(v), **v)).collect();
                strs.sort_by(|a, b| a.0.cmp(&b.0));
                let pick = match agg {
                    Agg::Min => strs.first(),
                    _ => strs.last(),
                };
                vec![pick.expect("non-empty").1.clone()]
            }
        }
    };
    Ok(Answer { values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn table() -> Table {
        Table::from_strings(
            "countries",
            &["Country", "Capital", "Population", "Continent"],
            &[
                &["France", "Paris", "67.8", "Europe"],
                &["Australia", "Canberra", "25.69", "Oceania"],
                &["Japan", "Tokyo", "125.7", "Asia"],
                &["Germany", "Berlin", "83.2", "Europe"],
                &["Fiji", "Suva", "", "Oceania"],
            ],
        )
    }

    fn run(sql: &str) -> Answer {
        execute(&parse_query(sql).unwrap(), &table()).unwrap()
    }

    #[test]
    fn bare_select_returns_column() {
        let a = run("SELECT Capital FROM t");
        assert_eq!(a.values.len(), 5);
        assert_eq!(a.denotation()[0], "berlin");
    }

    #[test]
    fn where_filters_rows() {
        let a = run("SELECT Capital FROM t WHERE Country = 'France'");
        assert_eq!(a.denotation(), vec!["paris"]);
    }

    #[test]
    fn conjunction_is_and() {
        let a = run("SELECT Country FROM t WHERE Continent = 'Europe' AND Population > 70");
        assert_eq!(a.denotation(), vec!["germany"]);
    }

    #[test]
    fn numeric_comparisons() {
        let a = run("SELECT Country FROM t WHERE Population >= 67.8");
        assert_eq!(a.denotation(), vec!["france", "germany", "japan"]);
        let a = run("SELECT Country FROM t WHERE Population < 30");
        assert_eq!(a.denotation(), vec!["australia"]);
    }

    #[test]
    fn count_includes_matched_nulls() {
        let a = run("SELECT COUNT Country FROM t WHERE Continent = 'Oceania'");
        assert_eq!(a.denotation(), vec!["2"]);
    }

    #[test]
    fn sum_and_avg_skip_nulls() {
        let a = run("SELECT SUM Population FROM t WHERE Continent = 'Oceania'");
        assert_eq!(a.denotation(), vec!["25.69"]);
        let a = run("SELECT AVG Population FROM t WHERE Continent = 'Europe'");
        assert_eq!(a.denotation(), vec!["75.5"]);
    }

    #[test]
    fn min_max_numeric_and_text() {
        assert_eq!(
            run("SELECT MIN Population FROM t").denotation(),
            vec!["25.69"]
        );
        assert_eq!(
            run("SELECT MAX Population FROM t").denotation(),
            vec!["125.7"]
        );
        assert_eq!(
            run("SELECT MIN Country FROM t").denotation(),
            vec!["australia"]
        );
        assert_eq!(run("SELECT MAX Country FROM t").denotation(), vec!["japan"]);
    }

    #[test]
    fn aggregates_over_empty_selection() {
        assert_eq!(
            run("SELECT COUNT Country FROM t WHERE Country = 'Narnia'").denotation(),
            vec!["0"]
        );
        assert_eq!(
            run("SELECT SUM Population FROM t WHERE Country = 'Narnia'").denotation(),
            vec!["0"]
        );
        // AVG/MIN/MAX of nothing are NULL (canonical empty string).
        assert_eq!(
            run("SELECT AVG Population FROM t WHERE Country = 'Narnia'").denotation(),
            vec![""]
        );
        assert_eq!(
            run("SELECT MIN Population FROM t WHERE Country = 'Narnia'").denotation(),
            vec![""]
        );
    }

    #[test]
    fn string_matching_is_case_insensitive() {
        let a = run("SELECT Capital FROM t WHERE Country = 'fRaNcE'");
        assert_eq!(a.denotation(), vec!["paris"]);
    }

    #[test]
    fn null_cells_match_only_neq() {
        let a = run("SELECT Country FROM t WHERE Population = ''");
        assert!(a.values.is_empty());
        let a = run("SELECT Country FROM t WHERE Population != 100");
        // Fiji's NULL population is "not equal" to 100.
        assert!(a.denotation().contains(&"fiji".to_string()));
    }

    #[test]
    fn unknown_column_is_error() {
        let err = execute(&parse_query("SELECT nope FROM t").unwrap(), &table()).unwrap_err();
        assert_eq!(err, ExecError::NoSuchColumn("nope".into()));
        let err = execute(
            &parse_query("SELECT Country FROM t WHERE nope = 1").unwrap(),
            &table(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::NoSuchColumn("nope".into()));
    }

    #[test]
    fn sum_over_text_is_error() {
        let err =
            execute(&parse_query("SELECT SUM Country FROM t").unwrap(), &table()).unwrap_err();
        assert!(matches!(err, ExecError::NonNumericAggregate { .. }));
    }

    #[test]
    fn denotation_is_order_insensitive() {
        let a = Answer {
            values: vec![CellValue::Text("b".into()), CellValue::Text("a".into())],
        };
        let b = Answer {
            values: vec![CellValue::Text("A".into()), CellValue::Text("B".into())],
        };
        assert!(a.same_denotation(&b));
    }

    #[test]
    fn canonical_number_formats() {
        assert_eq!(canonical(&CellValue::Float(2.0)), "2");
        assert_eq!(canonical(&CellValue::Float(2.5)), "2.5");
        assert_eq!(canonical(&CellValue::Float(75.5)), "75.5");
        assert_eq!(canonical(&CellValue::Int(-3)), "-3");
    }
}
