//! # ntr-sql
//!
//! A miniature SQL engine over single [`ntr_table::Table`]s, covering the
//! WikiSQL-class query language the paper's applications rely on:
//!
//! ```sql
//! SELECT [COUNT|SUM|AVG|MIN|MAX] <column>
//! FROM t
//! [WHERE <column> <op> <literal> [AND ...]]
//! ```
//!
//! It serves two roles in the reproduction:
//!
//! 1. **TAPEX supervision** — TAPEX pretrains a transformer to *be* a SQL
//!    executor; generating (table, query, answer) triples requires a real
//!    executor to produce the answers. This crate is that executor, and
//!    [`gen`] produces seeded random queries over any table schema.
//! 2. **Text-to-SQL evaluation** — denotation accuracy for the semantic
//!    parsing task compares a predicted query's result against the gold
//!    query's result; [`Answer::denotation`] canonicalizes results for that
//!    comparison.
//!
//! ```
//! use ntr_sql::{parse_query, execute};
//! use ntr_table::Table;
//!
//! let t = Table::from_strings(
//!     "cities",
//!     &["city", "population"],
//!     &[&["paris", "2.1"], &["lyon", "0.5"], &["nice", "0.3"]],
//! );
//! let q = parse_query("SELECT COUNT city FROM t WHERE population > 0.4").unwrap();
//! let answer = execute(&q, &t).unwrap();
//! assert_eq!(answer.denotation(), vec!["2"]);
//! ```

mod ast;
mod exec;
pub mod gen;
mod parse;

pub use ast::{Agg, CmpOp, Condition, Literal, Query};
pub use exec::{execute, Answer, ExecError};
pub use parse::{parse_query, ParseError};
