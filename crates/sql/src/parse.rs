//! Hand-rolled lexer and recursive-descent parser for the mini-SQL grammar.
//!
//! ```text
//! query  := SELECT agg? column FROM ident (WHERE cond (AND cond)*)?
//! agg    := COUNT | SUM | AVG | MIN | MAX
//! cond   := column op literal
//! op     := = | != | <> | > | < | >= | <=
//! column := ident | "quoted ident"
//! literal:= number | 'string'
//! ```
//!
//! Keywords are case-insensitive; column names are matched against tables
//! case-insensitively at execution time.

use crate::ast::{Agg, CmpOp, Condition, Literal, Query};
use std::fmt;

/// Parse errors with byte offsets into the query text.
#[derive(Debug, PartialEq)]
pub enum ParseError {
    /// Unexpected character during lexing.
    UnexpectedChar {
        /// Byte offset.
        at: usize,
        /// The character.
        ch: char,
    },
    /// A string/quoted identifier was never closed.
    UnterminatedString {
        /// Byte offset where it started.
        at: usize,
    },
    /// Parser expected something else.
    Expected {
        /// What was expected.
        what: &'static str,
        /// What was found.
        found: String,
    },
    /// Extra tokens after a complete query.
    TrailingTokens(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { at, ch } => {
                write!(f, "unexpected character {ch:?} at byte {at}")
            }
            ParseError::UnterminatedString { at } => {
                write!(f, "unterminated string starting at byte {at}")
            }
            ParseError::Expected { what, found } => {
                write!(f, "expected {what}, found {found}")
            }
            ParseError::TrailingTokens(t) => write!(f, "trailing tokens after query: {t}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    QuotedIdent(String),
    Str(String),
    Num(f64),
    Op(CmpOp),
    Eof,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier {s:?}"),
            Token::QuotedIdent(s) => format!("quoted identifier {s:?}"),
            Token::Str(s) => format!("string {s:?}"),
            Token::Num(n) => format!("number {n}"),
            Token::Op(o) => format!("operator {}", o.symbol()),
            Token::Eof => "end of input".to_string(),
        }
    }
}

fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '\'' {
            let start = i;
            i += 1;
            let mut s = String::new();
            loop {
                match bytes.get(i) {
                    Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some('\'') => {
                        i += 1;
                        break;
                    }
                    Some(&ch) => {
                        s.push(ch);
                        i += 1;
                    }
                    None => return Err(ParseError::UnterminatedString { at: start }),
                }
            }
            tokens.push(Token::Str(s));
        } else if c == '"' {
            let start = i;
            i += 1;
            let mut s = String::new();
            loop {
                match bytes.get(i) {
                    Some('"') if bytes.get(i + 1) == Some(&'"') => {
                        s.push('"');
                        i += 2;
                    }
                    Some('"') => {
                        i += 1;
                        break;
                    }
                    Some(&ch) => {
                        s.push(ch);
                        i += 1;
                    }
                    None => return Err(ParseError::UnterminatedString { at: start }),
                }
            }
            tokens.push(Token::QuotedIdent(s));
        } else if (c == '!' && bytes.get(i + 1) == Some(&'='))
            || (c == '<' && bytes.get(i + 1) == Some(&'>'))
        {
            tokens.push(Token::Op(CmpOp::Neq));
            i += 2;
        } else if c == '>' && bytes.get(i + 1) == Some(&'=') {
            tokens.push(Token::Op(CmpOp::Ge));
            i += 2;
        } else if c == '<' && bytes.get(i + 1) == Some(&'=') {
            tokens.push(Token::Op(CmpOp::Le));
            i += 2;
        } else if c == '=' {
            tokens.push(Token::Op(CmpOp::Eq));
            i += 1;
        } else if c == '>' {
            tokens.push(Token::Op(CmpOp::Gt));
            i += 1;
        } else if c == '<' {
            tokens.push(Token::Op(CmpOp::Lt));
            i += 1;
        } else if c.is_ascii_digit()
            || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            let n: f64 = text.parse().map_err(|_| ParseError::Expected {
                what: "number",
                found: text.clone(),
            })?;
            tokens.push(Token::Num(n));
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            tokens.push(Token::Ident(bytes[start..i].iter().collect()));
        } else {
            return Err(ParseError::UnexpectedChar { at: i, ch: c });
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &'static str) -> Result<(), ParseError> {
        match self.next() {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError::Expected {
                what: kw,
                found: other.describe(),
            }),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if let Token::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn column(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            Token::QuotedIdent(s) => Ok(s),
            other => Err(ParseError::Expected {
                what: "column name",
                found: other.describe(),
            }),
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.next() {
            Token::Num(n) => Ok(Literal::Number(n)),
            Token::Str(s) => Ok(Literal::Text(s)),
            // Unquoted single words are accepted as text literals, which is
            // what naive text-to-SQL decoders emit.
            Token::Ident(s) => Ok(Literal::Text(s)),
            other => Err(ParseError::Expected {
                what: "literal",
                found: other.describe(),
            }),
        }
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        let column = self.column()?;
        let op = match self.next() {
            Token::Op(o) => o,
            other => {
                return Err(ParseError::Expected {
                    what: "comparison operator",
                    found: other.describe(),
                })
            }
        };
        let value = self.literal()?;
        Ok(Condition { column, op, value })
    }
}

fn try_agg(word: &str) -> Option<Agg> {
    Agg::ALL
        .into_iter()
        .find(|a| a.keyword().eq_ignore_ascii_case(word))
}

/// Parses a query string. See the [module docs](self) for the grammar.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = Parser {
        tokens: lex(input)?,
        pos: 0,
    };
    p.keyword("SELECT")?;

    // Aggregate keyword, unless it is immediately followed by FROM (then it
    // was a column named e.g. "count").
    let mut agg = None;
    if let Token::Ident(word) = p.peek().clone() {
        if let Some(a) = try_agg(&word) {
            let saved = p.pos;
            p.pos += 1;
            if matches!(p.peek(), Token::Ident(w) if w.eq_ignore_ascii_case("from")) {
                p.pos = saved; // it was the column itself
            } else {
                agg = Some(a);
            }
        }
    }

    let column = p.column()?;
    p.keyword("FROM")?;
    let _table = p.column()?; // single-table engine; name accepted, ignored
    let mut conditions = Vec::new();
    if p.try_keyword("WHERE") {
        conditions.push(p.condition()?);
        while p.try_keyword("AND") {
            conditions.push(p.condition()?);
        }
    }
    match p.peek() {
        Token::Eof => Ok(Query {
            agg,
            column,
            conditions,
        }),
        other => Err(ParseError::TrailingTokens(other.describe())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_select() {
        let q = parse_query("SELECT city FROM t").unwrap();
        assert_eq!(q, Query::select("city"));
    }

    #[test]
    fn parses_aggregates_case_insensitively() {
        for (text, agg) in [
            ("select count x from t", Agg::Count),
            ("SELECT sum x FROM t", Agg::Sum),
            ("SELECT Avg x FROM t", Agg::Avg),
            ("SELECT MIN x FROM t", Agg::Min),
            ("SELECT max x FROM t", Agg::Max),
        ] {
            assert_eq!(parse_query(text).unwrap().agg, Some(agg), "{text}");
        }
    }

    #[test]
    fn column_named_like_aggregate() {
        let q = parse_query("SELECT count FROM t").unwrap();
        assert_eq!(q.agg, None);
        assert_eq!(q.column, "count");
    }

    #[test]
    fn parses_conditions_with_all_operators() {
        let q = parse_query(
            "SELECT a FROM t WHERE b = 'x' AND c != 2 AND d > 1 AND e < 2 AND f >= 3 AND g <= 4",
        )
        .unwrap();
        assert_eq!(q.conditions.len(), 6);
        assert_eq!(q.conditions[0].value, Literal::Text("x".into()));
        assert_eq!(q.conditions[1].op, CmpOp::Neq);
        assert_eq!(q.conditions[5].op, CmpOp::Le);
    }

    #[test]
    fn diamond_means_neq() {
        let q = parse_query("SELECT a FROM t WHERE b <> 1").unwrap();
        assert_eq!(q.conditions[0].op, CmpOp::Neq);
    }

    #[test]
    fn negative_and_decimal_numbers() {
        let q = parse_query("SELECT a FROM t WHERE b > -2.5").unwrap();
        assert_eq!(q.conditions[0].value, Literal::Number(-2.5));
    }

    #[test]
    fn quoted_identifiers_and_escaped_strings() {
        let q = parse_query("SELECT \"hours-per-week\" FROM t WHERE name = 'O''Brien'").unwrap();
        assert_eq!(q.column, "hours-per-week");
        assert_eq!(q.conditions[0].value, Literal::Text("O'Brien".into()));
    }

    #[test]
    fn unquoted_word_literal_is_text() {
        let q = parse_query("SELECT a FROM t WHERE b = paris").unwrap();
        assert_eq!(q.conditions[0].value, Literal::Text("paris".into()));
    }

    #[test]
    fn roundtrip_display_parse() {
        let q = Query::select("population")
            .with_agg(Agg::Avg)
            .with_condition("country", CmpOp::Neq, Literal::Text("France".into()))
            .with_condition("year", CmpOp::Le, Literal::Number(2020.0));
        let back = parse_query(&q.to_string()).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parse_query("SELECT FROM t"),
            Err(ParseError::Expected { .. })
        ));
        assert!(matches!(
            parse_query("SELECT a FROM t extra"),
            Err(ParseError::TrailingTokens(_))
        ));
        assert!(matches!(
            parse_query("SELECT a FROM t WHERE b = 'unclosed"),
            Err(ParseError::UnterminatedString { .. })
        ));
        assert!(matches!(
            parse_query("SELECT a FROM t WHERE b # 1"),
            Err(ParseError::UnexpectedChar { .. })
        ));
        assert!(matches!(
            parse_query("pick a from t"),
            Err(ParseError::Expected { what: "SELECT", .. })
        ));
    }
}
