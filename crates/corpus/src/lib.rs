//! # ntr-corpus
//!
//! Seeded synthetic table corpora and downstream-task datasets.
//!
//! The paper's pipelines pretrain on web-table corpora (WikiTables, the WDC
//! Web Table Corpus, GitTables) and fine-tune/evaluate on annotated sets
//! (TabFact, WikiSQL, …). None of those are redistributable inside this
//! reproduction, so this crate builds the closest synthetic equivalents:
//!
//! * a [`World`]: a knowledge base of entities (countries, cities, people,
//!   films, clubs) with typed relations, generated deterministically from a
//!   seed — the ground truth that real corpora only provide via expensive
//!   annotation;
//! * **wiki-style entity tables** ([`tables`]): relational slices of the
//!   world with captions and entity-linked cells (the WikiTables stand-in);
//! * **GitTables-style typed tables**: numeric/categorical CSV-like tables
//!   (employees, sales) without entity links — including the
//!   `age/workclass/education/hours-per-week/income` shape the paper's
//!   Fig. 2d uses;
//! * **downstream datasets** ([`datasets`]): data imputation, table QA,
//!   fact verification (TabFact-like), table retrieval, column type
//!   annotation, entity linking and text-to-SQL (WikiSQL-like), each with
//!   seeded train/val/test splits.
//!
//! Everything is a pure function of `(config, seed)`, so every experiment in
//! `ntr-bench` reproduces bit-for-bit.

pub mod datasets;
pub mod kb;
pub mod split;
pub mod tables;
pub mod vocab;

pub use kb::{Entity, EntityType, World, WorldConfig};
pub use split::{split_three, Split};
pub use tables::{CorpusConfig, TableCorpus};
