//! Deterministic train/validation/test splitting.

/// Which split an item belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training set.
    Train,
    /// Validation set.
    Val,
    /// Held-out test set.
    Test,
}

/// Assigns each of `n` items to a split by hashing `(seed, index)`, with
/// the given validation/test fractions (train gets the rest).
///
/// Hashing (rather than slicing) keeps assignments stable when `n` grows:
/// item `i`'s split never depends on how many items follow it.
///
/// # Panics
/// Panics when `val_frac + test_frac >= 1.0` or either is negative.
pub fn split_three(n: usize, val_frac: f64, test_frac: f64, seed: u64) -> Vec<Split> {
    assert!(
        val_frac >= 0.0 && test_frac >= 0.0 && val_frac + test_frac < 1.0,
        "invalid split fractions val={val_frac} test={test_frac}"
    );
    (0..n)
        .map(|i| {
            let h = hash2(seed, i as u64);
            let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform [0,1)
            if u < test_frac {
                Split::Test
            } else if u < test_frac + val_frac {
                Split::Val
            } else {
                Split::Train
            }
        })
        .collect()
}

/// Indices of items in a given split.
pub fn indices_of(splits: &[Split], which: Split) -> Vec<usize> {
    splits
        .iter()
        .enumerate()
        .filter(|(_, &s)| s == which)
        .map(|(i, _)| i)
        .collect()
}

fn hash2(seed: u64, i: u64) -> u64 {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i.wrapping_mul(0xD1B5_4A32_D192_ED03));
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_deterministic_and_stable_under_growth() {
        let a = split_three(100, 0.1, 0.2, 5);
        let b = split_three(100, 0.1, 0.2, 5);
        assert_eq!(a, b);
        let bigger = split_three(200, 0.1, 0.2, 5);
        assert_eq!(&bigger[..100], &a[..], "prefix stability");
    }

    #[test]
    fn fractions_are_roughly_respected() {
        let s = split_three(10_000, 0.1, 0.2, 42);
        let test = s.iter().filter(|&&x| x == Split::Test).count();
        let val = s.iter().filter(|&&x| x == Split::Val).count();
        let train = s.iter().filter(|&&x| x == Split::Train).count();
        assert!((1800..2200).contains(&test), "test={test}");
        assert!((800..1200).contains(&val), "val={val}");
        assert_eq!(train + val + test, 10_000);
    }

    #[test]
    fn different_seeds_differ() {
        let a = split_three(100, 0.2, 0.2, 1);
        let b = split_three(100, 0.2, 0.2, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn indices_of_partitions() {
        let s = split_three(50, 0.2, 0.2, 3);
        let all: usize = [Split::Train, Split::Val, Split::Test]
            .into_iter()
            .map(|w| indices_of(&s, w).len())
            .sum();
        assert_eq!(all, 50);
    }

    #[test]
    #[should_panic(expected = "invalid split fractions")]
    fn rejects_bad_fractions() {
        let _ = split_three(10, 0.6, 0.5, 0);
    }
}
