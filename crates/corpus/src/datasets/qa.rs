//! Table question answering (the paper's §2.1 demo task): natural-language
//! question → answer cell.

use crate::split::{split_three, Split};
use crate::tables::TableCorpus;
use ntr_table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One QA example over a table.
#[derive(Debug, Clone)]
pub struct QaExample {
    /// The table.
    pub table: Table,
    /// The natural-language question.
    pub question: String,
    /// 0-based coordinate of the answer cell.
    pub answer_coord: (usize, usize),
    /// Gold answer text.
    pub answer_text: String,
}

/// A QA dataset with splits.
#[derive(Debug, Clone)]
pub struct QaDataset {
    /// All examples.
    pub examples: Vec<QaExample>,
    /// Split assignment per example.
    pub splits: Vec<Split>,
}

/// Question phrasings; several templates per slot so models cannot latch
/// onto one fixed string.
const TEMPLATES: &[&str] = &[
    "what is the {attr} of {subject}?",
    "which {attr} does {subject} have?",
    "tell me the {attr} for {subject}",
    "{attr} of {subject}?",
];

impl QaDataset {
    /// Builds up to `per_table` questions for every table with headers.
    /// Questions ask for an attribute (column ≥ 1) of a subject (column 0
    /// value), exactly the Fig. 1 example ("question about France
    /// population" → highlighted cell).
    pub fn build(corpus: &TableCorpus, per_table: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut examples = Vec::new();
        for table in &corpus.tables {
            if table.is_headerless() || table.n_rows() == 0 || table.n_cols() < 2 {
                continue;
            }
            // A subject must identify its row uniquely for the question to
            // be well-posed.
            let unique_subject = |r: usize| {
                let s = table.cell(r, 0).text();
                (0..table.n_rows())
                    .filter(|&q| table.cell(q, 0).text() == s)
                    .count()
                    == 1
            };
            let mut candidates: Vec<(usize, usize)> = Vec::new();
            for r in 0..table.n_rows() {
                if !unique_subject(r) {
                    continue;
                }
                for c in 1..table.n_cols() {
                    if !table.cell(r, c).is_null() {
                        candidates.push((r, c));
                    }
                }
            }
            for _ in 0..per_table.min(candidates.len()) {
                let pick = rng.gen_range(0..candidates.len());
                let (r, c) = candidates.swap_remove(pick);
                let template = TEMPLATES[rng.gen_range(0..TEMPLATES.len())];
                let question = template
                    .replace("{attr}", &table.columns()[c].name.to_lowercase())
                    .replace("{subject}", table.cell(r, 0).text());
                examples.push(QaExample {
                    table: table.clone(),
                    question,
                    answer_coord: (r, c),
                    answer_text: table.cell(r, c).text().to_string(),
                });
            }
        }
        let splits = split_three(examples.len(), 0.1, 0.2, seed ^ 0x9A);
        Self { examples, splits }
    }

    /// Indices of examples in `split`.
    pub fn indices(&self, split: Split) -> Vec<usize> {
        crate::split::indices_of(&self.splits, split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{World, WorldConfig};
    use crate::tables::CorpusConfig;

    fn dataset() -> QaDataset {
        let w = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 24,
                ..Default::default()
            },
        );
        QaDataset::build(&corpus, 3, 3)
    }

    #[test]
    fn questions_mention_subject_and_attribute() {
        let ds = dataset();
        assert!(!ds.examples.is_empty());
        for ex in &ds.examples {
            let (r, c) = ex.answer_coord;
            let subject = ex.table.cell(r, 0).text();
            let attr = ex.table.columns()[c].name.to_lowercase();
            assert!(
                ex.question.contains(subject),
                "{:?} missing subject {subject:?}",
                ex.question
            );
            assert!(
                ex.question.contains(&attr),
                "{:?} missing attr {attr:?}",
                ex.question
            );
            assert_eq!(ex.answer_text, ex.table.cell(r, c).text());
        }
    }

    #[test]
    fn answer_cells_are_never_null_or_subject_column() {
        let ds = dataset();
        for ex in &ds.examples {
            let (r, c) = ex.answer_coord;
            assert_ne!(c, 0);
            assert!(!ex.table.cell(r, c).is_null());
        }
    }

    #[test]
    fn subjects_identify_rows_uniquely() {
        let ds = dataset();
        for ex in &ds.examples {
            let (r, _) = ex.answer_coord;
            let s = ex.table.cell(r, 0).text();
            let count = (0..ex.table.n_rows())
                .filter(|&q| ex.table.cell(q, 0).text() == s)
                .count();
            assert_eq!(count, 1, "ambiguous subject {s:?}");
        }
    }

    #[test]
    fn deterministic_and_split() {
        let a = dataset();
        let b = dataset();
        assert_eq!(a.examples.len(), b.examples.len());
        assert_eq!(a.examples[0].question, b.examples[0].question);
        assert!(!a.indices(Split::Test).is_empty());
    }
}
