//! Entity linking (part of "table metadata prediction" in §2.1): resolve a
//! cell mention to the right knowledge-base entity among candidates.

use crate::kb::World;
use crate::split::{split_three, Split};
use crate::tables::TableCorpus;
use ntr_table::Table;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

/// One linking example: a mention cell and a candidate set containing the
/// gold entity plus same-type distractors.
#[derive(Debug, Clone)]
pub struct LinkingExample {
    /// The table containing the mention.
    pub table: Table,
    /// Coordinate of the mention cell.
    pub coord: (usize, usize),
    /// The mention surface text.
    pub mention: String,
    /// Candidate entity ids (shuffled; contains `gold`).
    pub candidates: Vec<u32>,
    /// The gold entity id.
    pub gold: u32,
}

/// An entity-linking dataset with splits.
#[derive(Debug, Clone)]
pub struct LinkingDataset {
    /// All examples.
    pub examples: Vec<LinkingExample>,
    /// Split assignment per example.
    pub splits: Vec<Split>,
}

impl LinkingDataset {
    /// Builds examples from entity-linked cells: each gets `n_candidates`
    /// options (gold + same-type distractors, shuffled).
    pub fn build(world: &World, corpus: &TableCorpus, n_candidates: usize, seed: u64) -> Self {
        assert!(n_candidates >= 2, "need at least gold + 1 distractor");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut examples = Vec::new();
        for table in &corpus.tables {
            for r in 0..table.n_rows() {
                for c in 0..table.n_cols() {
                    let Some(gold) = table.cell(r, c).entity else {
                        continue;
                    };
                    let gold_type = world.entity(gold).etype;
                    let mut distractors: Vec<u32> = world
                        .entities
                        .iter()
                        .filter(|e| e.etype == gold_type && e.id != gold)
                        .map(|e| e.id)
                        .collect();
                    if distractors.is_empty() {
                        continue;
                    }
                    distractors.shuffle(&mut rng);
                    distractors.truncate(n_candidates - 1);
                    let mut candidates = distractors;
                    candidates.push(gold);
                    candidates.shuffle(&mut rng);
                    examples.push(LinkingExample {
                        table: table.clone(),
                        coord: (r, c),
                        mention: table.cell(r, c).text().to_string(),
                        candidates,
                        gold,
                    });
                }
            }
        }
        // Keep dataset size manageable: sample down deterministically.
        examples.shuffle(&mut rng);
        examples.truncate(600);
        let splits = split_three(examples.len(), 0.1, 0.2, seed ^ 0x71);
        Self { examples, splits }
    }

    /// Indices of examples in `split`.
    pub fn indices(&self, split: Split) -> Vec<usize> {
        crate::split::indices_of(&self.splits, split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::WorldConfig;
    use crate::tables::CorpusConfig;

    fn dataset() -> (World, LinkingDataset) {
        let w = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate_entity_only(
            &w,
            &CorpusConfig {
                n_tables: 10,
                ..Default::default()
            },
        );
        let ds = LinkingDataset::build(&w, &corpus, 5, 23);
        (w, ds)
    }

    #[test]
    fn candidates_contain_gold_and_share_type() {
        let (w, ds) = dataset();
        assert!(!ds.examples.is_empty());
        for ex in &ds.examples {
            assert!(ex.candidates.contains(&ex.gold));
            assert!(ex.candidates.len() >= 2 && ex.candidates.len() <= 5);
            let gtype = w.entity(ex.gold).etype;
            for &c in &ex.candidates {
                assert_eq!(w.entity(c).etype, gtype);
            }
        }
    }

    #[test]
    fn mention_matches_gold_name() {
        let (w, ds) = dataset();
        for ex in &ds.examples {
            assert_eq!(ex.mention, w.name(ex.gold));
        }
    }

    #[test]
    fn gold_position_varies() {
        let (_, ds) = dataset();
        let first_pos: Vec<usize> = ds
            .examples
            .iter()
            .take(50)
            .map(|e| e.candidates.iter().position(|&c| c == e.gold).unwrap())
            .collect();
        let distinct: std::collections::BTreeSet<usize> = first_pos.iter().copied().collect();
        assert!(distinct.len() > 1, "gold always in the same slot");
    }

    #[test]
    #[should_panic(expected = "at least gold")]
    fn rejects_tiny_candidate_sets() {
        let (w, _) = dataset();
        let corpus = TableCorpus::generate_entity_only(&w, &CorpusConfig::default());
        let _ = LinkingDataset::build(&w, &corpus, 1, 0);
    }
}
