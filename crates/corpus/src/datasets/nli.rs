//! Tabular natural-language inference / fact verification (TabFact-like):
//! claim + table → supported or refuted.

use crate::split::{split_three, Split};
use crate::tables::TableCorpus;
use ntr_table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fact-verification example.
#[derive(Debug, Clone)]
pub struct NliExample {
    /// The evidence table.
    pub table: Table,
    /// The claim text.
    pub claim: String,
    /// True = supported by the table, false = refuted.
    pub label: bool,
}

/// A fact-verification dataset with splits.
#[derive(Debug, Clone)]
pub struct NliDataset {
    /// All examples.
    pub examples: Vec<NliExample>,
    /// Split assignment per example.
    pub splits: Vec<Split>,
}

impl NliDataset {
    /// Builds `per_table` claims per table, balanced between supported and
    /// refuted. Two claim families:
    ///
    /// * **cell facts** — "the {attr} of {subject} is {value}"; refuted
    ///   versions substitute a different value from the same column;
    /// * **numeric comparisons** — "the {attr} of {a} is higher than that
    ///   of {b}"; refuted versions swap the direction.
    pub fn build(corpus: &TableCorpus, per_table: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut examples = Vec::new();
        for table in &corpus.tables {
            if table.is_headerless() || table.n_rows() < 2 || table.n_cols() < 2 {
                continue;
            }
            for k in 0..per_table {
                let label = k % 2 == 0;
                let ex = if rng.gen::<f64>() < 0.6 {
                    cell_fact_claim(table, label, &mut rng)
                } else {
                    comparison_claim(table, label, &mut rng)
                        .or_else(|| cell_fact_claim(table, label, &mut rng))
                };
                if let Some(e) = ex {
                    examples.push(e);
                }
            }
        }
        let splits = split_three(examples.len(), 0.1, 0.2, seed ^ 0x11F);
        Self { examples, splits }
    }

    /// Indices of examples in `split`.
    pub fn indices(&self, split: Split) -> Vec<usize> {
        crate::split::indices_of(&self.splits, split)
    }
}

fn cell_fact_claim(table: &Table, label: bool, rng: &mut StdRng) -> Option<NliExample> {
    // Pick a non-null attribute cell whose column has at least one other
    // distinct value (so a refuting substitute exists).
    for _ in 0..16 {
        let r = rng.gen_range(0..table.n_rows());
        let c = rng.gen_range(1..table.n_cols());
        if table.cell(r, c).is_null() {
            continue;
        }
        let truth = table.cell(r, c).text().to_string();
        let value = if label {
            truth.clone()
        } else {
            let distinct: Vec<String> = (0..table.n_rows())
                .map(|q| table.cell(q, c).text().to_string())
                .filter(|v| !v.is_empty() && *v != truth)
                .collect();
            if distinct.is_empty() {
                continue;
            }
            distinct[rng.gen_range(0..distinct.len())].clone()
        };
        let claim = format!(
            "the {} of {} is {}",
            table.columns()[c].name.to_lowercase(),
            table.cell(r, 0).text(),
            value
        );
        return Some(NliExample {
            table: table.clone(),
            claim,
            label,
        });
    }
    None
}

fn comparison_claim(table: &Table, label: bool, rng: &mut StdRng) -> Option<NliExample> {
    // Find a numeric column and two rows with strictly different values.
    let numeric_cols: Vec<usize> = (1..table.n_cols())
        .filter(|&c| {
            matches!(
                table.columns()[c].sem_type,
                ntr_table::SemanticType::Integer | ntr_table::SemanticType::Float
            )
        })
        .collect();
    if numeric_cols.is_empty() {
        return None;
    }
    for _ in 0..16 {
        let c = numeric_cols[rng.gen_range(0..numeric_cols.len())];
        let a = rng.gen_range(0..table.n_rows());
        let b = rng.gen_range(0..table.n_rows());
        if a == b {
            continue;
        }
        let (Some(va), Some(vb)) = (
            table.cell(a, c).value.as_number(),
            table.cell(b, c).value.as_number(),
        ) else {
            continue;
        };
        if (va - vb).abs() < 1e-9 {
            continue;
        }
        // Orient so that the "higher" claim is true, then flip for refuted.
        let (hi, lo) = if va > vb { (a, b) } else { (b, a) };
        let (s1, s2) = if label { (hi, lo) } else { (lo, hi) };
        let claim = format!(
            "the {} of {} is higher than the {} of {}",
            table.columns()[c].name.to_lowercase(),
            table.cell(s1, 0).text(),
            table.columns()[c].name.to_lowercase(),
            table.cell(s2, 0).text()
        );
        return Some(NliExample {
            table: table.clone(),
            claim,
            label,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{World, WorldConfig};
    use crate::tables::CorpusConfig;

    fn dataset() -> NliDataset {
        let w = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 24,
                null_prob: 0.0,
                ..Default::default()
            },
        );
        NliDataset::build(&corpus, 4, 5)
    }

    #[test]
    fn labels_are_roughly_balanced() {
        let ds = dataset();
        let pos = ds.examples.iter().filter(|e| e.label).count();
        let neg = ds.examples.len() - pos;
        assert!(pos > 0 && neg > 0);
        let ratio = pos as f64 / ds.examples.len() as f64;
        assert!((0.35..0.65).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn supported_cell_facts_hold_in_the_table() {
        let ds = dataset();
        for ex in ds.examples.iter().filter(|e| e.label) {
            if let Some(rest) = ex.claim.strip_prefix("the ") {
                if let Some((attr, tail)) = rest.split_once(" of ") {
                    if let Some((subject, value)) = tail.split_once(" is ") {
                        if value.contains("higher than") {
                            continue;
                        }
                        // Locate the row and check the cell really has the value.
                        let col = ex.table.column_index(attr);
                        if let Some(col) = col {
                            let row = (0..ex.table.n_rows())
                                .find(|&r| ex.table.cell(r, 0).text() == subject);
                            if let Some(row) = row {
                                assert_eq!(
                                    ex.table.cell(row, col).text(),
                                    value,
                                    "claim {:?} not supported",
                                    ex.claim
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn refuted_cell_facts_differ_from_table() {
        let ds = dataset();
        let mut checked = 0;
        for ex in ds.examples.iter().filter(|e| !e.label) {
            let Some(rest) = ex.claim.strip_prefix("the ") else {
                continue;
            };
            let Some((attr, tail)) = rest.split_once(" of ") else {
                continue;
            };
            let Some((subject, value)) = tail.split_once(" is ") else {
                continue;
            };
            if value.contains("higher than") {
                continue;
            }
            let Some(col) = ex.table.column_index(attr) else {
                continue;
            };
            let Some(row) = (0..ex.table.n_rows()).find(|&r| ex.table.cell(r, 0).text() == subject)
            else {
                continue;
            };
            assert_ne!(
                ex.table.cell(row, col).text(),
                value,
                "claim {:?}",
                ex.claim
            );
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn comparison_claims_exist_and_use_numeric_columns() {
        let ds = dataset();
        assert!(
            ds.examples.iter().any(|e| e.claim.contains("higher than")),
            "no comparison claims generated"
        );
    }

    #[test]
    fn deterministic() {
        let a = dataset();
        let b = dataset();
        assert_eq!(a.examples.len(), b.examples.len());
        assert_eq!(a.examples[0].claim, b.examples[0].claim);
    }
}
