//! Column type annotation ("table metadata prediction" in the paper's
//! §2.1): predict a column's logical name from its values alone.

use crate::split::{split_three, Split};
use crate::tables::TableCorpus;
use ntr_table::{Column, Table};
use std::collections::BTreeSet;

/// One CTA example: a headerless view of a table and the gold label for one
/// of its columns.
#[derive(Debug, Clone)]
pub struct CtaExample {
    /// Table with headers stripped (`col0`, `col1`, …).
    pub table: Table,
    /// Which column to classify.
    pub col: usize,
    /// Index of the gold label in the dataset's label space.
    pub label: usize,
}

/// A column-type-annotation dataset with a closed label space.
#[derive(Debug, Clone)]
pub struct CtaDataset {
    /// All examples.
    pub examples: Vec<CtaExample>,
    /// Ordered label space (lowercased original headers).
    pub labels: Vec<String>,
    /// Split assignment per example.
    pub splits: Vec<Split>,
}

impl CtaDataset {
    /// Builds one example per column of every headered table: the model
    /// sees the values (headers replaced by `colN`) and must recover the
    /// original header from the closed label set.
    pub fn build(corpus: &TableCorpus, seed: u64) -> Self {
        // Label space: all headers that appear in the corpus.
        let mut label_set: BTreeSet<String> = BTreeSet::new();
        for t in &corpus.tables {
            if t.is_headerless() {
                continue;
            }
            for c in t.columns() {
                label_set.insert(c.name.to_lowercase());
            }
        }
        let labels: Vec<String> = label_set.into_iter().collect();

        let mut examples = Vec::new();
        for t in &corpus.tables {
            if t.is_headerless() || t.n_rows() == 0 {
                continue;
            }
            let stripped = strip_headers(t);
            for (ci, col) in t.columns().iter().enumerate() {
                let name = col.name.to_lowercase();
                let label = labels
                    .iter()
                    .position(|l| *l == name)
                    .expect("label space covers all headers");
                examples.push(CtaExample {
                    table: stripped.clone(),
                    col: ci,
                    label,
                });
            }
        }
        let splits = split_three(examples.len(), 0.1, 0.2, seed ^ 0xC7A);
        Self {
            examples,
            labels,
            splits,
        }
    }

    /// Indices of examples in `split`.
    pub fn indices(&self, split: Split) -> Vec<usize> {
        crate::split::indices_of(&self.splits, split)
    }
}

fn strip_headers(t: &Table) -> Table {
    let columns: Vec<Column> = (0..t.n_cols())
        .map(|i| Column::new(format!("col{i}")))
        .collect();
    let rows = t.rows().to_vec();
    Table::new(t.id.clone(), columns, rows)
        .expect("same shape")
        .with_caption(String::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{World, WorldConfig};
    use crate::tables::CorpusConfig;

    fn dataset() -> CtaDataset {
        let w = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 18,
                ..Default::default()
            },
        );
        CtaDataset::build(&corpus, 17)
    }

    #[test]
    fn label_space_contains_expected_headers() {
        let ds = dataset();
        for expected in ["country", "capital", "population", "age", "income"] {
            assert!(
                ds.labels.iter().any(|l| l == expected),
                "{expected} missing from {:?}",
                ds.labels
            );
        }
    }

    #[test]
    fn example_tables_are_headerless_but_labels_valid() {
        let ds = dataset();
        assert!(!ds.examples.is_empty());
        for ex in &ds.examples {
            assert!(ex.table.is_headerless());
            assert!(ex.col < ex.table.n_cols());
            assert!(ex.label < ds.labels.len());
            assert!(ex.table.caption.is_empty(), "captions would leak the topic");
        }
    }

    #[test]
    fn gold_labels_match_original_headers() {
        let w = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 6,
                ..Default::default()
            },
        );
        let ds = CtaDataset::build(&corpus, 1);
        // Reconstruct: examples are emitted in corpus order, columns in order.
        let mut i = 0;
        for t in &corpus.tables {
            if t.is_headerless() || t.n_rows() == 0 {
                continue;
            }
            for c in t.columns() {
                assert_eq!(ds.labels[ds.examples[i].label], c.name.to_lowercase());
                i += 1;
            }
        }
        assert_eq!(i, ds.examples.len());
    }

    #[test]
    fn deterministic() {
        let a = dataset();
        let b = dataset();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.examples.len(), b.examples.len());
    }
}
