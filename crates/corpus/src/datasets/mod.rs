//! Downstream-task datasets built over the synthetic corpus, mirroring the
//! task list of the paper's §2.1: data imputation, table QA, fact
//! verification (NLI), table retrieval, table metadata prediction (column
//! type annotation), entity linking, and text-to-SQL.
//!
//! Every builder is a pure function of `(world/corpus, config, seed)` and
//! ships with a deterministic train/val/test split.

mod cta;
mod imputation;
mod linking;
mod nli;
mod qa;
mod retrieval;
mod text2sql;

pub use cta::{CtaDataset, CtaExample};
pub use imputation::{ImputationDataset, ImputationExample};
pub use linking::{LinkingDataset, LinkingExample};
pub use nli::{NliDataset, NliExample};
pub use qa::{QaDataset, QaExample};
pub use retrieval::{RetrievalDataset, RetrievalQuery};
pub use text2sql::{render_question, Text2SqlDataset, Text2SqlExample};
