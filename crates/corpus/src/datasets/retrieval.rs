//! Table retrieval: natural-language query → relevant table from a pool.

use crate::split::{split_three, Split};
use crate::tables::TableCorpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One retrieval query over the shared table pool.
#[derive(Debug, Clone)]
pub struct RetrievalQuery {
    /// The query text.
    pub text: String,
    /// Index (into the dataset's `corpus`) of the single relevant table.
    pub positive: usize,
}

/// A retrieval dataset: a table pool plus queries with one positive each.
#[derive(Debug, Clone)]
pub struct RetrievalDataset {
    /// The candidate pool.
    pub corpus: TableCorpus,
    /// The queries.
    pub queries: Vec<RetrievalQuery>,
    /// Split assignment per query.
    pub splits: Vec<Split>,
}

impl RetrievalDataset {
    /// Builds queries that mention content unique to their positive table:
    /// an attribute name plus **two** subjects (column-0 values) from that
    /// table. A pair of subjects pins down a table far more reliably than a
    /// single one when tables of the same kind share rows; queries whose
    /// (attribute, subject-pair) combination also matches another table are
    /// skipped, and those tables stay in the pool as distractors.
    pub fn build(corpus: TableCorpus, per_table: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut queries = Vec::new();
        for (ti, table) in corpus.tables.iter().enumerate() {
            if table.n_rows() < 2 || table.n_cols() < 2 || table.is_headerless() {
                continue;
            }
            for _ in 0..per_table {
                let r1 = rng.gen_range(0..table.n_rows());
                let r2 = rng.gen_range(0..table.n_rows());
                if r1 == r2 {
                    continue;
                }
                let c = rng.gen_range(1..table.n_cols());
                let s1 = table.cell(r1, 0).text();
                let s2 = table.cell(r2, 0).text();
                if s1.is_empty() || s2.is_empty() {
                    continue;
                }
                let attr = table.columns()[c].name.to_lowercase();
                let ambiguous = corpus.tables.iter().enumerate().any(|(tj, other)| {
                    tj != ti
                        && other.column_index(&attr).is_some()
                        && (0..other.n_rows()).any(|q| other.cell(q, 0).text() == s1)
                        && (0..other.n_rows()).any(|q| other.cell(q, 0).text() == s2)
                });
                if ambiguous {
                    continue;
                }
                queries.push(RetrievalQuery {
                    text: format!("{attr} of {s1} and {s2}"),
                    positive: ti,
                });
            }
        }
        let splits = split_three(queries.len(), 0.1, 0.2, seed ^ 0x8E7);
        Self {
            corpus,
            queries,
            splits,
        }
    }

    /// Indices of queries in `split`.
    pub fn indices(&self, split: Split) -> Vec<usize> {
        crate::split::indices_of(&self.splits, split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{World, WorldConfig};
    use crate::tables::CorpusConfig;

    fn dataset() -> RetrievalDataset {
        let w = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 18,
                ..Default::default()
            },
        );
        RetrievalDataset::build(corpus, 2, 13)
    }

    #[test]
    fn queries_reference_valid_tables() {
        let ds = dataset();
        assert!(!ds.queries.is_empty());
        for q in &ds.queries {
            assert!(q.positive < ds.corpus.len());
            assert!(!q.text.is_empty());
        }
    }

    #[test]
    fn query_subject_pair_appears_only_in_positive() {
        let ds = dataset();
        for q in &ds.queries {
            let (attr, subjects) = q.text.split_once(" of ").unwrap();
            let (s1, s2) = subjects.split_once(" and ").unwrap();
            for (ti, table) in ds.corpus.tables.iter().enumerate() {
                if ti == q.positive {
                    continue;
                }
                let all = table.column_index(attr).is_some()
                    && (0..table.n_rows()).any(|r| table.cell(r, 0).text() == s1)
                    && (0..table.n_rows()).any(|r| table.cell(r, 0).text() == s2);
                assert!(!all, "query {:?} ambiguous with table {ti}", q.text);
            }
        }
    }

    #[test]
    fn deterministic_with_splits() {
        let a = dataset();
        let b = dataset();
        assert_eq!(a.queries.len(), b.queries.len());
        assert_eq!(a.queries[0].text, b.queries[0].text);
        let total: usize = [Split::Train, Split::Val, Split::Test]
            .into_iter()
            .map(|s| a.indices(s).len())
            .sum();
        assert_eq!(total, a.queries.len());
    }
}
