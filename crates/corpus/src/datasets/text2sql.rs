//! Text-to-SQL semantic parsing (WikiSQL-like): natural-language question +
//! table → SQL query, evaluated by denotation.

use crate::split::{split_three, Split};
use crate::tables::TableCorpus;
use ntr_sql::gen::{GenConfig, QueryGenerator};
use ntr_sql::{Agg, Answer, CmpOp, Literal, Query};
use ntr_table::Table;

/// One text-to-SQL example.
#[derive(Debug, Clone)]
pub struct Text2SqlExample {
    /// The table the question is asked over.
    pub table: Table,
    /// The natural-language question.
    pub question: String,
    /// Gold SQL.
    pub sql: Query,
    /// Gold answer (executed gold SQL).
    pub answer: Answer,
}

/// A text-to-SQL dataset with splits.
#[derive(Debug, Clone)]
pub struct Text2SqlDataset {
    /// All examples.
    pub examples: Vec<Text2SqlExample>,
    /// Split assignment per example.
    pub splits: Vec<Split>,
}

impl Text2SqlDataset {
    /// Builds `per_table` examples per headered table by generating random
    /// executable queries and rendering them to natural language.
    pub fn build(corpus: &TableCorpus, per_table: usize, seed: u64) -> Self {
        let mut examples = Vec::new();
        for (ti, table) in corpus.tables.iter().enumerate() {
            if table.is_headerless() || table.n_rows() == 0 {
                continue;
            }
            let mut gen = QueryGenerator::new(
                seed ^ (ti as u64).wrapping_mul(0x9E37_79B9),
                GenConfig::default(),
            );
            for (sql, answer) in gen.generate_n(table, per_table) {
                let question = render_question(&sql);
                examples.push(Text2SqlExample {
                    table: table.clone(),
                    question,
                    sql,
                    answer,
                });
            }
        }
        let splits = split_three(examples.len(), 0.1, 0.2, seed ^ 0x7541);
        Self { examples, splits }
    }

    /// Indices of examples in `split`.
    pub fn indices(&self, split: Split) -> Vec<usize> {
        crate::split::indices_of(&self.splits, split)
    }
}

/// Renders a query as a natural-language question — the inverse templates a
/// text-to-SQL model must learn to undo.
pub fn render_question(q: &Query) -> String {
    let head = match q.agg {
        None => format!("what is the {}", q.column.to_lowercase()),
        Some(Agg::Count) => format!("how many {} entries are there", q.column.to_lowercase()),
        Some(Agg::Sum) => format!("what is the total {}", q.column.to_lowercase()),
        Some(Agg::Avg) => format!("what is the average {}", q.column.to_lowercase()),
        Some(Agg::Min) => format!("what is the lowest {}", q.column.to_lowercase()),
        Some(Agg::Max) => format!("what is the highest {}", q.column.to_lowercase()),
    };
    let mut out = head;
    for (i, c) in q.conditions.iter().enumerate() {
        out.push_str(if i == 0 { " when " } else { " and " });
        let op_phrase = match c.op {
            CmpOp::Eq => "is",
            CmpOp::Neq => "is not",
            CmpOp::Gt => "is more than",
            CmpOp::Lt => "is less than",
            CmpOp::Ge => "is at least",
            CmpOp::Le => "is at most",
        };
        let value = match &c.value {
            Literal::Number(n) => format!("{n}"),
            Literal::Text(s) => s.clone(),
        };
        out.push_str(&format!("{} {op_phrase} {value}", c.column.to_lowercase()));
    }
    out.push('?');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{World, WorldConfig};
    use crate::tables::CorpusConfig;
    use ntr_sql::execute;

    fn dataset() -> Text2SqlDataset {
        let w = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 12,
                null_prob: 0.0,
                ..Default::default()
            },
        );
        Text2SqlDataset::build(&corpus, 3, 29)
    }

    #[test]
    fn answers_match_reexecution() {
        let ds = dataset();
        assert!(!ds.examples.is_empty());
        for ex in &ds.examples {
            let re = execute(&ex.sql, &ex.table).unwrap();
            assert!(re.same_denotation(&ex.answer));
        }
    }

    #[test]
    fn questions_mention_selected_column() {
        let ds = dataset();
        for ex in &ds.examples {
            assert!(
                ex.question.contains(&ex.sql.column.to_lowercase()),
                "{:?} does not mention {:?}",
                ex.question,
                ex.sql.column
            );
            assert!(ex.question.ends_with('?'));
        }
    }

    #[test]
    fn render_covers_all_aggregates() {
        for agg in Agg::ALL {
            let q = Query::select("score").with_agg(agg);
            let text = render_question(&q);
            assert!(text.contains("score"), "{text}");
        }
        let q = Query::select("a").with_condition("b", CmpOp::Ge, Literal::Number(3.0));
        assert!(render_question(&q).contains("b is at least 3"));
    }

    #[test]
    fn deterministic() {
        let a = dataset();
        let b = dataset();
        assert_eq!(a.examples.len(), b.examples.len());
        assert_eq!(a.examples[0].question, b.examples[0].question);
    }
}
