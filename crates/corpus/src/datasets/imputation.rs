//! Data imputation (the paper's hands-on §3.4): blank a cell, recover its
//! value.

use crate::split::{split_three, Split};
use crate::tables::TableCorpus;
use ntr_table::{Cell, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One imputation example: a table with one cell blanked out.
#[derive(Debug, Clone)]
pub struct ImputationExample {
    /// The corrupted table (target cell replaced by NULL).
    pub table: Table,
    /// 0-based coordinate of the blanked cell.
    pub coord: (usize, usize),
    /// Gold surface text of the blanked cell.
    pub target_text: String,
    /// Gold entity link, when the blanked cell was entity-linked.
    pub target_entity: Option<u32>,
}

/// A full imputation dataset with splits.
#[derive(Debug, Clone)]
pub struct ImputationDataset {
    /// All examples.
    pub examples: Vec<ImputationExample>,
    /// Split assignment per example.
    pub splits: Vec<Split>,
}

impl ImputationDataset {
    /// Builds examples by blanking up to `per_table` non-null, non-subject
    /// cells from every table in the corpus.
    pub fn build(corpus: &TableCorpus, per_table: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut examples = Vec::new();
        for table in &corpus.tables {
            if table.n_rows() == 0 || table.n_cols() < 2 {
                continue;
            }
            let mut candidates: Vec<(usize, usize)> = Vec::new();
            for r in 0..table.n_rows() {
                // Column 0 is the row's identity; blanking it would make the
                // answer unrecoverable, so imputation targets attributes.
                for c in 1..table.n_cols() {
                    if !table.cell(r, c).is_null() {
                        candidates.push((r, c));
                    }
                }
            }
            for _ in 0..per_table.min(candidates.len()) {
                let pick = rng.gen_range(0..candidates.len());
                let (r, c) = candidates.swap_remove(pick);
                let gold = table.cell(r, c).clone();
                let mut corrupted = table.clone();
                *corrupted.cell_mut(r, c) = Cell::null();
                examples.push(ImputationExample {
                    table: corrupted,
                    coord: (r, c),
                    target_text: gold.text().to_string(),
                    target_entity: gold.entity,
                });
            }
        }
        let splits = split_three(examples.len(), 0.1, 0.2, seed ^ 0x51EA);
        Self { examples, splits }
    }

    /// Indices of examples in `split`.
    pub fn indices(&self, split: Split) -> Vec<usize> {
        crate::split::indices_of(&self.splits, split)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{World, WorldConfig};
    use crate::tables::CorpusConfig;

    fn dataset() -> ImputationDataset {
        let w = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate_entity_only(
            &w,
            &CorpusConfig {
                n_tables: 20,
                ..Default::default()
            },
        );
        ImputationDataset::build(&corpus, 3, 11)
    }

    #[test]
    fn blanks_exactly_one_cell_per_example() {
        let ds = dataset();
        assert!(!ds.examples.is_empty());
        for ex in &ds.examples {
            let (r, c) = ex.coord;
            assert!(ex.table.cell(r, c).is_null());
            assert!(!ex.target_text.is_empty());
            assert_ne!(c, 0, "subject column must not be blanked");
        }
    }

    #[test]
    fn entity_targets_preserved_for_entity_cells() {
        let ds = dataset();
        assert!(
            ds.examples.iter().any(|e| e.target_entity.is_some()),
            "entity tables should yield entity targets"
        );
    }

    #[test]
    fn splits_cover_all_examples() {
        let ds = dataset();
        let total: usize = [Split::Train, Split::Val, Split::Test]
            .into_iter()
            .map(|s| ds.indices(s).len())
            .sum();
        assert_eq!(total, ds.examples.len());
        assert!(!ds.indices(Split::Train).is_empty());
        assert!(!ds.indices(Split::Test).is_empty());
    }

    #[test]
    fn build_is_deterministic() {
        let a = dataset();
        let b = dataset();
        assert_eq!(a.examples.len(), b.examples.len());
        for (x, y) in a.examples.iter().zip(&b.examples) {
            assert_eq!(x.coord, y.coord);
            assert_eq!(x.target_text, y.target_text);
        }
    }
}
