//! The synthetic knowledge base ("world"): entities and typed relations.
//!
//! A [`World`] is generated deterministically from a [`WorldConfig`]. Base
//! geography uses a fixed list of real country/capital pairs (so serialized
//! tables read naturally, like the paper's `France | Paris` examples);
//! everything else — populations, people, films, clubs — is procedural from
//! the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Kind of entity in the knowledge base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityType {
    /// A country.
    Country,
    /// A city.
    City,
    /// A person.
    Person,
    /// A film.
    Film,
    /// A sports club.
    Club,
}

impl EntityType {
    /// Label used by the column-type-annotation task.
    pub fn name(self) -> &'static str {
        match self {
            EntityType::Country => "country",
            EntityType::City => "city",
            EntityType::Person => "person",
            EntityType::Film => "film",
            EntityType::Club => "club",
        }
    }
}

/// One entity: a stable id (its index in [`World::entities`]), a unique
/// surface name, and a type.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Stable id; equals the index in [`World::entities`].
    pub id: u32,
    /// Unique display name.
    pub name: String,
    /// Entity kind.
    pub etype: EntityType,
}

/// A country record (indices are entity ids).
#[derive(Debug, Clone)]
pub struct CountryRec {
    /// The country entity.
    pub entity: u32,
    /// Capital city entity.
    pub capital: u32,
    /// Continent name.
    pub continent: &'static str,
    /// Population in millions.
    pub population_m: f64,
    /// Area in thousand km².
    pub area_k: f64,
    /// Primary language.
    pub language: String,
}

/// A city record.
#[derive(Debug, Clone)]
pub struct CityRec {
    /// The city entity.
    pub entity: u32,
    /// Country entity it belongs to.
    pub country: u32,
    /// Population in millions.
    pub population_m: f64,
}

/// A person record.
#[derive(Debug, Clone)]
pub struct PersonRec {
    /// The person entity.
    pub entity: u32,
    /// Birth year.
    pub birth_year: i32,
    /// Nationality (country entity).
    pub nationality: u32,
    /// Profession label.
    pub profession: &'static str,
}

/// A film record.
#[derive(Debug, Clone)]
pub struct FilmRec {
    /// The film entity.
    pub entity: u32,
    /// Director (person entity).
    pub director: u32,
    /// Release year.
    pub year: i32,
    /// Language.
    pub language: String,
    /// Critic rating 1.0–10.0.
    pub rating: f64,
}

/// A sports-club record.
#[derive(Debug, Clone)]
pub struct ClubRec {
    /// The club entity.
    pub entity: u32,
    /// Home city entity.
    pub city: u32,
    /// Founding year.
    pub founded: i32,
    /// Championship titles won.
    pub titles: i64,
}

/// Sizing knobs for world generation.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Countries to include (clamped to the base list length).
    pub n_countries: usize,
    /// People to generate.
    pub n_people: usize,
    /// Films to generate.
    pub n_films: usize,
    /// Clubs to generate.
    pub n_clubs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            n_countries: 24,
            n_people: 80,
            n_films: 60,
            n_clubs: 40,
            seed: 0xC0FFEE,
        }
    }
}

/// The generated knowledge base.
#[derive(Debug, Clone)]
pub struct World {
    /// All entities; `entities[i].id == i`.
    pub entities: Vec<Entity>,
    /// Country records.
    pub countries: Vec<CountryRec>,
    /// City records.
    pub cities: Vec<CityRec>,
    /// Person records.
    pub people: Vec<PersonRec>,
    /// Film records.
    pub films: Vec<FilmRec>,
    /// Club records.
    pub clubs: Vec<ClubRec>,
}

const BASE_GEO: &[(&str, &str, &str, &str)] = &[
    ("France", "Paris", "Europe", "French"),
    ("Germany", "Berlin", "Europe", "German"),
    ("Italy", "Rome", "Europe", "Italian"),
    ("Spain", "Madrid", "Europe", "Spanish"),
    ("Portugal", "Lisbon", "Europe", "Portuguese"),
    ("Netherlands", "Amsterdam", "Europe", "Dutch"),
    ("Austria", "Vienna", "Europe", "German"),
    ("Greece", "Athens", "Europe", "Greek"),
    ("Sweden", "Stockholm", "Europe", "Swedish"),
    ("Norway", "Oslo", "Europe", "Norwegian"),
    ("Japan", "Tokyo", "Asia", "Japanese"),
    ("China", "Beijing", "Asia", "Chinese"),
    ("India", "Delhi", "Asia", "Hindi"),
    ("Thailand", "Bangkok", "Asia", "Thai"),
    ("Vietnam", "Hanoi", "Asia", "Vietnamese"),
    ("Kenya", "Nairobi", "Africa", "Swahili"),
    ("Egypt", "Cairo", "Africa", "Arabic"),
    ("Nigeria", "Abuja", "Africa", "English"),
    ("Morocco", "Rabat", "Africa", "Arabic"),
    ("Brazil", "Brasilia", "America", "Portuguese"),
    ("Argentina", "Buenos Aires", "America", "Spanish"),
    ("Canada", "Ottawa", "America", "English"),
    ("Mexico", "Mexico City", "America", "Spanish"),
    ("Australia", "Canberra", "Oceania", "English"),
];

const FIRST_NAMES: &[&str] = &[
    "Ada",
    "Alan",
    "Grace",
    "Edsger",
    "Barbara",
    "Donald",
    "Hedy",
    "Claude",
    "Radia",
    "Tim",
    "Margaret",
    "John",
    "Katherine",
    "Dennis",
    "Frances",
    "Ken",
    "Adele",
    "Linus",
    "Annie",
    "Edgar",
];
const LAST_NAMES: &[&str] = &[
    "Lovell", "Turing", "Hopper", "Dijkstra", "Liskov", "Knuth", "Lamarr", "Shannon", "Perlman",
    "Berners", "Hamilton", "Backus", "Johnson", "Ritchie", "Allen", "Thompson", "Goldberg",
    "Torval", "Easley", "Codd",
];
const PROFESSIONS: &[&str] = &["director", "engineer", "writer", "scientist", "producer"];
const FILM_ADJ: &[&str] = &[
    "Silent",
    "Golden",
    "Hidden",
    "Broken",
    "Distant",
    "Eternal",
    "Crimson",
    "Forgotten",
    "Midnight",
    "Electric",
];
const FILM_NOUN: &[&str] = &[
    "River", "Garden", "Horizon", "Station", "Mirror", "Harbor", "Mountain", "Letter", "Summer",
    "Orchid",
];
const CLUB_SUFFIX: &[&str] = &["United", "City", "Rovers", "Athletic", "Wanderers"];

impl World {
    /// Generates a world from the config; pure function of the config.
    pub fn generate(cfg: WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut w = World {
            entities: Vec::new(),
            countries: Vec::new(),
            cities: Vec::new(),
            people: Vec::new(),
            films: Vec::new(),
            clubs: Vec::new(),
        };

        let n_countries = cfg.n_countries.clamp(1, BASE_GEO.len());
        for &(country, capital, continent, language) in &BASE_GEO[..n_countries] {
            let country_id = w.add_entity(country, EntityType::Country);
            let capital_id = w.add_entity(capital, EntityType::City);
            let population_m = round1(rng.gen_range(1.0..150.0));
            w.countries.push(CountryRec {
                entity: country_id,
                capital: capital_id,
                continent,
                population_m,
                area_k: round1(rng.gen_range(30.0..9000.0)),
                language: language.to_string(),
            });
            w.cities.push(CityRec {
                entity: capital_id,
                country: country_id,
                population_m: round1(rng.gen_range(0.3..population_m.max(0.4))),
            });
        }

        for i in 0..cfg.n_people {
            let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
            let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
            // Suffix a number when the combination repeats, keeping names unique.
            let base = format!("{first} {last}");
            let name = if w.entities.iter().any(|e| e.name == base) {
                format!("{base} {}", i)
            } else {
                base
            };
            let person_id = w.add_entity(&name, EntityType::Person);
            let nationality = w.countries[rng.gen_range(0..w.countries.len())].entity;
            w.people.push(PersonRec {
                entity: person_id,
                birth_year: rng.gen_range(1920..2000),
                nationality,
                profession: PROFESSIONS[rng.gen_range(0..PROFESSIONS.len())],
            });
        }

        for i in 0..cfg.n_films {
            let adj = FILM_ADJ[rng.gen_range(0..FILM_ADJ.len())];
            let noun = FILM_NOUN[rng.gen_range(0..FILM_NOUN.len())];
            let base = format!("The {adj} {noun}");
            let name = if w.entities.iter().any(|e| e.name == base) {
                format!("{base} {}", i + 2)
            } else {
                base
            };
            let film_id = w.add_entity(&name, EntityType::Film);
            let director = w.people[rng.gen_range(0..w.people.len())].entity;
            let nationality = w.person(director).expect("director exists").nationality;
            let language = w
                .country(nationality)
                .expect("country exists")
                .language
                .clone();
            w.films.push(FilmRec {
                entity: film_id,
                director,
                year: rng.gen_range(1950..2023),
                language,
                rating: round1(rng.gen_range(3.0..9.5)),
            });
        }

        for i in 0..cfg.n_clubs {
            let city = w.cities[rng.gen_range(0..w.cities.len())].clone();
            let suffix = CLUB_SUFFIX[rng.gen_range(0..CLUB_SUFFIX.len())];
            let base = format!("{} {suffix}", w.entities[city.entity as usize].name);
            let name = if w.entities.iter().any(|e| e.name == base) {
                format!("{base} {}", i + 2)
            } else {
                base
            };
            let club_id = w.add_entity(&name, EntityType::Club);
            w.clubs.push(ClubRec {
                entity: club_id,
                city: city.entity,
                founded: rng.gen_range(1880..1990),
                titles: rng.gen_range(0..30),
            });
        }
        w
    }

    fn add_entity(&mut self, name: &str, etype: EntityType) -> u32 {
        let id = self.entities.len() as u32;
        self.entities.push(Entity {
            id,
            name: name.to_string(),
            etype,
        });
        id
    }

    /// Total entity count (the MER label-space size).
    pub fn n_entities(&self) -> usize {
        self.entities.len()
    }

    /// Entity by id.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn entity(&self, id: u32) -> &Entity {
        &self.entities[id as usize]
    }

    /// Entity name by id.
    pub fn name(&self, id: u32) -> &str {
        &self.entities[id as usize].name
    }

    /// Looks up an entity id by exact name.
    pub fn entity_by_name(&self, name: &str) -> Option<u32> {
        self.entities.iter().find(|e| e.name == name).map(|e| e.id)
    }

    /// Country record for an entity id, if it is a country.
    pub fn country(&self, id: u32) -> Option<&CountryRec> {
        self.countries.iter().find(|c| c.entity == id)
    }

    /// City record for an entity id.
    pub fn city(&self, id: u32) -> Option<&CityRec> {
        self.cities.iter().find(|c| c.entity == id)
    }

    /// Person record for an entity id.
    pub fn person(&self, id: u32) -> Option<&PersonRec> {
        self.people.iter().find(|p| p.entity == id)
    }

    /// Film record for an entity id.
    pub fn film(&self, id: u32) -> Option<&FilmRec> {
        self.films.iter().find(|f| f.entity == id)
    }

    /// Club record for an entity id.
    pub fn club(&self, id: u32) -> Option<&ClubRec> {
        self.clubs.iter().find(|c| c.entity == id)
    }
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(WorldConfig::default());
        let b = World::generate(WorldConfig::default());
        assert_eq!(a.n_entities(), b.n_entities());
        for (ea, eb) in a.entities.iter().zip(&b.entities) {
            assert_eq!(ea.name, eb.name);
            assert_eq!(ea.etype, eb.etype);
        }
        assert_eq!(a.countries[0].population_m, b.countries[0].population_m);
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldConfig::default());
        let b = World::generate(WorldConfig {
            seed: 999,
            ..Default::default()
        });
        let pa: Vec<f64> = a.countries.iter().map(|c| c.population_m).collect();
        let pb: Vec<f64> = b.countries.iter().map(|c| c.population_m).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn entity_ids_are_indices_and_names_unique() {
        let w = World::generate(WorldConfig::default());
        for (i, e) in w.entities.iter().enumerate() {
            assert_eq!(e.id as usize, i);
        }
        let mut names: Vec<&str> = w.entities.iter().map(|e| e.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate entity names");
    }

    #[test]
    fn relations_are_well_typed() {
        let w = World::generate(WorldConfig::default());
        for c in &w.countries {
            assert_eq!(w.entity(c.entity).etype, EntityType::Country);
            assert_eq!(w.entity(c.capital).etype, EntityType::City);
            assert!(c.population_m > 0.0);
        }
        for p in &w.people {
            assert_eq!(w.entity(p.nationality).etype, EntityType::Country);
        }
        for f in &w.films {
            assert_eq!(w.entity(f.director).etype, EntityType::Person);
            assert!(w.person(f.director).is_some());
            assert!((1.0..=10.0).contains(&f.rating));
        }
        for c in &w.clubs {
            assert_eq!(w.entity(c.city).etype, EntityType::City);
        }
    }

    #[test]
    fn film_language_matches_director_nationality() {
        let w = World::generate(WorldConfig::default());
        for f in &w.films {
            let director = w.person(f.director).unwrap();
            let country = w.country(director.nationality).unwrap();
            assert_eq!(f.language, country.language);
        }
    }

    #[test]
    fn config_sizes_respected() {
        let w = World::generate(WorldConfig {
            n_countries: 5,
            n_people: 10,
            n_films: 7,
            n_clubs: 3,
            seed: 1,
        });
        assert_eq!(w.countries.len(), 5);
        assert_eq!(w.people.len(), 10);
        assert_eq!(w.films.len(), 7);
        assert_eq!(w.clubs.len(), 3);
        // countries + capitals + people + films + clubs
        assert_eq!(w.n_entities(), 5 + 5 + 10 + 7 + 3);
    }

    #[test]
    fn lookup_helpers() {
        let w = World::generate(WorldConfig::default());
        let fr = w.entity_by_name("France").unwrap();
        let rec = w.country(fr).unwrap();
        assert_eq!(w.name(rec.capital), "Paris");
        assert!(w.city(rec.capital).is_some());
        assert!(w.entity_by_name("Atlantis").is_none());
    }
}
