//! Building a WordPiece vocabulary from a table corpus: every text the
//! models will ever see — serialized tables, captions, questions, claims —
//! goes through the trainer so the vocabulary covers structural symbols
//! (`|`, `:`, `;`, `row`, `col`), headers, cell values and digits.

use crate::tables::TableCorpus;
use ntr_tokenizer::train::WordPieceTrainer;
use ntr_tokenizer::WordPieceTokenizer;

/// The structural symbols linearizers emit; always included in training
/// text so they never fall to `[UNK]`.
const STRUCTURAL: &str =
    "| : ; , . ? ' - row col is the of what which how many 0 1 2 3 4 5 6 7 8 9";

/// Renders a table (headers, cells, caption) as vocabulary-training text.
pub fn table_text(t: &ntr_table::Table) -> String {
    let mut s = String::with_capacity(256);
    s.push_str(&t.caption);
    s.push('\n');
    for c in t.columns() {
        s.push_str(&c.name);
        s.push(' ');
    }
    s.push('\n');
    for row in t.rows() {
        for cell in row {
            s.push_str(cell.text());
            s.push(' ');
        }
        s.push('\n');
    }
    s
}

/// Trains a tokenizer over the corpus plus any extra texts (questions,
/// claims, SQL renderings).
pub fn train_tokenizer(
    corpus: &TableCorpus,
    extra_texts: &[String],
    vocab_size: usize,
) -> WordPieceTokenizer {
    let mut docs: Vec<String> = corpus.tables.iter().map(table_text).collect();
    docs.extend_from_slice(extra_texts);
    // Repeat structural symbols so merges never drop them below threshold.
    for _ in 0..8 {
        docs.push(STRUCTURAL.to_string());
    }
    let vocab = WordPieceTrainer::new(vocab_size).train(docs.iter().map(String::as_str));
    WordPieceTokenizer::new(vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::{World, WorldConfig};
    use crate::tables::CorpusConfig;
    use ntr_tokenizer::SpecialToken;

    #[test]
    fn trained_tokenizer_covers_structural_symbols_and_content() {
        let w = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate(&w, &CorpusConfig::default());
        let tok = train_tokenizer(&corpus, &[], 2000);
        for sym in ["|", ":", ";", "?"] {
            let ids = tok.encode(sym);
            assert_eq!(ids.len(), 1, "{sym} should be one token");
            assert_ne!(ids[0], SpecialToken::Unk.id(), "{sym} must be known");
        }
        // Frequent world words should not be UNK.
        for word in ["france", "paris", "population", "country"] {
            let ids = tok.encode(word);
            assert!(
                ids.iter().all(|&i| i != SpecialToken::Unk.id()),
                "{word} hit UNK"
            );
        }
    }

    #[test]
    fn digits_are_always_encodable() {
        let w = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate(&w, &CorpusConfig::default());
        let tok = train_tokenizer(&corpus, &[], 1500);
        let ids = tok.encode("1234567890");
        assert!(ids.iter().all(|&i| i != SpecialToken::Unk.id()));
    }

    #[test]
    fn extra_texts_enter_the_vocabulary() {
        let w = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 5,
                ..Default::default()
            },
        );
        let extras: Vec<String> = (0..30)
            .map(|_| "zyzzyva zyzzyva zyzzyva".to_string())
            .collect();
        let tok = train_tokenizer(&corpus, &extras, 3000);
        let ids = tok.encode("zyzzyva");
        assert!(ids.iter().all(|&i| i != SpecialToken::Unk.id()));
    }
}
