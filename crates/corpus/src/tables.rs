//! Table corpus generation: wiki-style entity tables over the [`World`] and
//! GitTables-style typed tables, with controlled noise.

use crate::kb::World;
use ntr_table::{Cell, Column, Table};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Corpus sizing and noise knobs.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// Number of tables to generate.
    pub n_tables: usize,
    /// Inclusive row-count range per table.
    pub min_rows: usize,
    /// Inclusive upper bound on rows per table.
    pub max_rows: usize,
    /// Per-cell probability of replacing a value with NULL (never applied
    /// to the subject column of entity tables).
    pub null_prob: f64,
    /// Probability a table loses its headers (`col0`, `col1`, …) — the
    /// "tables without descriptive headers" failure slice of §3.4.
    pub headerless_prob: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            n_tables: 100,
            min_rows: 4,
            max_rows: 10,
            null_prob: 0.05,
            headerless_prob: 0.0,
            seed: 7,
        }
    }
}

impl CorpusConfig {
    /// Validates the knobs, returning a typed error for every combination
    /// that would previously panic deep inside generation (inverted row
    /// ranges, probabilities outside `[0, 1]`).
    pub fn validate(&self) -> Result<(), CorpusError> {
        if self.min_rows > self.max_rows {
            return Err(CorpusError::InvalidConfig(format!(
                "min_rows {} > max_rows {}",
                self.min_rows, self.max_rows
            )));
        }
        for (name, p) in [
            ("null_prob", self.null_prob),
            ("headerless_prob", self.headerless_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(CorpusError::InvalidConfig(format!(
                    "{name} {p} outside [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// Typed corpus-generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// The [`CorpusConfig`] is internally inconsistent.
    InvalidConfig(String),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::InvalidConfig(what) => write!(f, "invalid corpus config: {what}"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// What kind of world slice a table shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Countries with capital/continent/population/area/language columns.
    Country,
    /// Films with director/year/language/rating columns.
    Film,
    /// People with birth year/nationality/profession columns.
    Person,
    /// Clubs with city/founded/titles columns.
    Club,
    /// GitTables-style employee records (no entities).
    Employees,
    /// GitTables-style sales records (no entities).
    Sales,
}

impl TableKind {
    /// All kinds, in generation rotation order.
    pub const ALL: [TableKind; 6] = [
        TableKind::Country,
        TableKind::Film,
        TableKind::Person,
        TableKind::Club,
        TableKind::Employees,
        TableKind::Sales,
    ];

    /// True when tables of this kind carry entity links.
    pub fn has_entities(self) -> bool {
        !matches!(self, TableKind::Employees | TableKind::Sales)
    }
}

/// A generated corpus: tables plus their kinds (aligned by index).
#[derive(Debug, Clone)]
pub struct TableCorpus {
    /// The tables, each with caption and (for entity kinds) linked cells.
    pub tables: Vec<Table>,
    /// Kind of each table.
    pub kinds: Vec<TableKind>,
}

impl TableCorpus {
    /// Generates a mixed corpus over all [`TableKind`]s.
    ///
    /// # Panics
    /// Panics on an invalid [`CorpusConfig`]; use
    /// [`TableCorpus::try_generate`] for a typed error instead.
    pub fn generate(world: &World, cfg: &CorpusConfig) -> TableCorpus {
        Self::try_generate(world, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Generates a mixed corpus, validating the config first.
    pub fn try_generate(world: &World, cfg: &CorpusConfig) -> Result<TableCorpus, CorpusError> {
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut tables = Vec::with_capacity(cfg.n_tables);
        let mut kinds = Vec::with_capacity(cfg.n_tables);
        for i in 0..cfg.n_tables {
            let kind = TableKind::ALL[i % TableKind::ALL.len()];
            let t = generate_table(world, kind, i, cfg, &mut rng);
            tables.push(t);
            kinds.push(kind);
        }
        Ok(TableCorpus { tables, kinds })
    }

    /// Generates a corpus of only entity-bearing kinds (for MER pretraining).
    ///
    /// # Panics
    /// Panics on an invalid [`CorpusConfig`]; use
    /// [`TableCorpus::try_generate_entity_only`] for a typed error instead.
    pub fn generate_entity_only(world: &World, cfg: &CorpusConfig) -> TableCorpus {
        Self::try_generate_entity_only(world, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Generates an entity-only corpus, validating the config first.
    pub fn try_generate_entity_only(
        world: &World,
        cfg: &CorpusConfig,
    ) -> Result<TableCorpus, CorpusError> {
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let entity_kinds: Vec<TableKind> = TableKind::ALL
            .into_iter()
            .filter(|k| k.has_entities())
            .collect();
        let mut tables = Vec::with_capacity(cfg.n_tables);
        let mut kinds = Vec::with_capacity(cfg.n_tables);
        for i in 0..cfg.n_tables {
            let kind = entity_kinds[i % entity_kinds.len()];
            tables.push(generate_table(world, kind, i, cfg, &mut rng));
            kinds.push(kind);
        }
        Ok(TableCorpus { tables, kinds })
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// Column blueprint: header name + cell builder over a subject index.
struct ColSpec<'w> {
    name: &'static str,
    build: Box<dyn Fn(usize) -> Cell + 'w>,
}

fn generate_table(
    world: &World,
    kind: TableKind,
    index: usize,
    cfg: &CorpusConfig,
    rng: &mut StdRng,
) -> Table {
    let (caption, specs, n_subjects) = blueprint(world, kind, rng);
    let n_rows = rng
        .gen_range(cfg.min_rows..=cfg.max_rows)
        .min(n_subjects.max(1));

    // Choose which subjects (world records) become rows.
    let mut subject_idx: Vec<usize> = (0..n_subjects).collect();
    subject_idx.shuffle(rng);
    subject_idx.truncate(n_rows);

    // Optionally drop some attribute columns (keep subject col 0).
    let mut col_idx: Vec<usize> = (1..specs.len()).collect();
    col_idx.shuffle(rng);
    let keep_attrs = rng.gen_range(2..=col_idx.len().max(2)).min(col_idx.len());
    col_idx.truncate(keep_attrs);
    col_idx.sort_unstable();
    let mut chosen: Vec<usize> = vec![0];
    chosen.extend(col_idx);

    let headerless = rng.gen::<f64>() < cfg.headerless_prob;
    let columns: Vec<Column> = chosen
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            if headerless {
                Column::new(format!("col{i}"))
            } else {
                Column::new(specs[c].name)
            }
        })
        .collect();

    let mut rows: Vec<Vec<Cell>> = Vec::with_capacity(subject_idx.len());
    for &s in &subject_idx {
        let mut row: Vec<Cell> = Vec::with_capacity(chosen.len());
        for (ci, &c) in chosen.iter().enumerate() {
            let mut cell = (specs[c].build)(s);
            // Null noise, sparing the subject column so every row stays
            // identifiable.
            if ci != 0 && rng.gen::<f64>() < cfg.null_prob {
                cell = Cell::null();
            }
            row.push(cell);
        }
        rows.push(row);
    }

    Table::new(format!("{}-{index}", kind_slug(kind)), columns, rows)
        .expect("generated tables are rectangular")
        .with_caption(caption)
}

fn kind_slug(kind: TableKind) -> &'static str {
    match kind {
        TableKind::Country => "country",
        TableKind::Film => "film",
        TableKind::Person => "person",
        TableKind::Club => "club",
        TableKind::Employees => "employees",
        TableKind::Sales => "sales",
    }
}

fn blueprint<'w>(
    world: &'w World,
    kind: TableKind,
    rng: &mut StdRng,
) -> (String, Vec<ColSpec<'w>>, usize) {
    match kind {
        TableKind::Country => (
            "Countries by population and area".to_string(),
            vec![
                ColSpec {
                    name: "Country",
                    build: Box::new(move |i| {
                        let c = &world.countries[i];
                        Cell::with_entity(world.name(c.entity), c.entity)
                    }),
                },
                ColSpec {
                    name: "Capital",
                    build: Box::new(move |i| {
                        let c = &world.countries[i];
                        Cell::with_entity(world.name(c.capital), c.capital)
                    }),
                },
                ColSpec {
                    name: "Continent",
                    build: Box::new(move |i| Cell::new(world.countries[i].continent)),
                },
                ColSpec {
                    name: "Population",
                    build: Box::new(move |i| {
                        Cell::new(format!("{}", world.countries[i].population_m))
                    }),
                },
                ColSpec {
                    name: "Area",
                    build: Box::new(move |i| Cell::new(format!("{}", world.countries[i].area_k))),
                },
                ColSpec {
                    name: "Language",
                    build: Box::new(move |i| Cell::new(world.countries[i].language.clone())),
                },
            ],
            world.countries.len(),
        ),
        TableKind::Film => (
            "Films with director and year".to_string(),
            vec![
                ColSpec {
                    name: "Film",
                    build: Box::new(move |i| {
                        let f = &world.films[i];
                        Cell::with_entity(world.name(f.entity), f.entity)
                    }),
                },
                ColSpec {
                    name: "Director",
                    build: Box::new(move |i| {
                        let f = &world.films[i];
                        Cell::with_entity(world.name(f.director), f.director)
                    }),
                },
                ColSpec {
                    name: "Year",
                    build: Box::new(move |i| Cell::new(format!("{}", world.films[i].year))),
                },
                ColSpec {
                    name: "Language",
                    build: Box::new(move |i| Cell::new(world.films[i].language.clone())),
                },
                ColSpec {
                    name: "Rating",
                    build: Box::new(move |i| Cell::new(format!("{}", world.films[i].rating))),
                },
            ],
            world.films.len(),
        ),
        TableKind::Person => (
            "People with nationality and profession".to_string(),
            vec![
                ColSpec {
                    name: "Person",
                    build: Box::new(move |i| {
                        let p = &world.people[i];
                        Cell::with_entity(world.name(p.entity), p.entity)
                    }),
                },
                ColSpec {
                    name: "Born",
                    build: Box::new(move |i| Cell::new(format!("{}", world.people[i].birth_year))),
                },
                ColSpec {
                    name: "Nationality",
                    build: Box::new(move |i| {
                        let p = &world.people[i];
                        Cell::with_entity(world.name(p.nationality), p.nationality)
                    }),
                },
                ColSpec {
                    name: "Profession",
                    build: Box::new(move |i| Cell::new(world.people[i].profession)),
                },
            ],
            world.people.len(),
        ),
        TableKind::Club => (
            "Clubs by city and titles".to_string(),
            vec![
                ColSpec {
                    name: "Club",
                    build: Box::new(move |i| {
                        let c = &world.clubs[i];
                        Cell::with_entity(world.name(c.entity), c.entity)
                    }),
                },
                ColSpec {
                    name: "City",
                    build: Box::new(move |i| {
                        let c = &world.clubs[i];
                        Cell::with_entity(world.name(c.city), c.city)
                    }),
                },
                ColSpec {
                    name: "Founded",
                    build: Box::new(move |i| Cell::new(format!("{}", world.clubs[i].founded))),
                },
                ColSpec {
                    name: "Titles",
                    build: Box::new(move |i| Cell::new(format!("{}", world.clubs[i].titles))),
                },
            ],
            world.clubs.len(),
        ),
        TableKind::Employees => {
            // Procedural adult-income-like rows (Fig. 2d of the paper).
            let seed: u64 = rng.gen();
            let workclasses = ["Private", "State-gov", "Self-emp", "Federal-gov"];
            let educations = [
                "HS-grad",
                "Some-college",
                "Bachelors",
                "Assoc-acdm",
                "Masters",
            ];
            (
                "Employee census records".to_string(),
                vec![
                    ColSpec {
                        name: "age",
                        build: Box::new(move |i| {
                            Cell::new(format!("{}", 18 + mix(seed, i as u64, 0) % 60))
                        }),
                    },
                    ColSpec {
                        name: "workclass",
                        build: Box::new(move |i| {
                            Cell::new(workclasses[(mix(seed, i as u64, 1) % 4) as usize])
                        }),
                    },
                    ColSpec {
                        name: "education",
                        build: Box::new(move |i| {
                            Cell::new(educations[(mix(seed, i as u64, 2) % 5) as usize])
                        }),
                    },
                    ColSpec {
                        name: "hours-per-week",
                        build: Box::new(move |i| {
                            Cell::new(format!("{}", 10 + mix(seed, i as u64, 3) % 60))
                        }),
                    },
                    ColSpec {
                        name: "income",
                        build: Box::new(move |i| {
                            // Income correlates with hours, so it is learnable.
                            let hours = 10 + mix(seed, i as u64, 3) % 60;
                            Cell::new(if hours > 40 { ">50K" } else { "<=50K" })
                        }),
                    },
                ],
                1000,
            )
        }
        TableKind::Sales => {
            let seed: u64 = rng.gen();
            let products = ["widget", "gadget", "sprocket", "gizmo"];
            (
                "Quarterly sales by product".to_string(),
                vec![
                    ColSpec {
                        name: "date",
                        build: Box::new(move |i| {
                            let m = 1 + mix(seed, i as u64, 0) % 12;
                            let d = 1 + mix(seed, i as u64, 1) % 28;
                            Cell::new(format!("2023-{m:02}-{d:02}"))
                        }),
                    },
                    ColSpec {
                        name: "product",
                        build: Box::new(move |i| {
                            Cell::new(products[(mix(seed, i as u64, 2) % 4) as usize])
                        }),
                    },
                    ColSpec {
                        name: "units",
                        build: Box::new(move |i| {
                            Cell::new(format!("{}", 1 + mix(seed, i as u64, 3) % 100))
                        }),
                    },
                    ColSpec {
                        name: "price",
                        build: Box::new(move |i| {
                            Cell::new(format!(
                                "{}",
                                (5 + mix(seed, i as u64, 4) % 95) as f64 / 2.0
                            ))
                        }),
                    },
                    ColSpec {
                        name: "total",
                        build: Box::new(move |i| {
                            let units = 1 + mix(seed, i as u64, 3) % 100;
                            let price = (5 + mix(seed, i as u64, 4) % 95) as f64 / 2.0;
                            Cell::new(format!("{}", units as f64 * price))
                        }),
                    },
                ],
                1000,
            )
        }
    }
}

/// Cheap deterministic per-(seed,row,col) hash for procedural values.
fn mix(seed: u64, i: u64, salt: u64) -> u64 {
    let mut x =
        seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kb::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::default())
    }

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let w = world();
        let cfg = CorpusConfig::default();
        let a = TableCorpus::generate(&w, &cfg);
        let b = TableCorpus::generate(&w, &cfg);
        assert_eq!(a.len(), cfg.n_tables);
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn invalid_configs_yield_typed_errors_not_panics() {
        let w = world();
        let inverted = CorpusConfig {
            min_rows: 9,
            max_rows: 3,
            ..Default::default()
        };
        let err = TableCorpus::try_generate(&w, &inverted).unwrap_err();
        assert!(matches!(err, CorpusError::InvalidConfig(_)));
        assert!(err.to_string().contains("min_rows"), "{err}");
        let bad_prob = CorpusConfig {
            null_prob: 1.5,
            ..Default::default()
        };
        assert!(TableCorpus::try_generate_entity_only(&w, &bad_prob).is_err());
        let nan_prob = CorpusConfig {
            headerless_prob: f64::NAN,
            ..Default::default()
        };
        assert!(TableCorpus::try_generate(&w, &nan_prob).is_err());
        // The happy path is unchanged.
        assert_eq!(
            TableCorpus::try_generate(&w, &CorpusConfig::default())
                .unwrap()
                .len(),
            CorpusConfig::default().n_tables
        );
    }

    #[test]
    fn covers_all_kinds() {
        let w = world();
        let c = TableCorpus::generate(&w, &CorpusConfig::default());
        for kind in TableKind::ALL {
            assert!(c.kinds.contains(&kind), "{kind:?} missing");
        }
    }

    #[test]
    fn entity_tables_have_linked_subject_column() {
        let w = world();
        let c = TableCorpus::generate_entity_only(&w, &CorpusConfig::default());
        for (t, kind) in c.tables.iter().zip(&c.kinds) {
            assert!(kind.has_entities());
            for r in 0..t.n_rows() {
                let cell = t.cell(r, 0);
                let e = cell
                    .entity
                    .unwrap_or_else(|| panic!("{}: unlinked subject {:?}", t.id, cell.raw));
                assert_eq!(w.name(e), cell.text(), "{}: link/name mismatch", t.id);
            }
        }
    }

    #[test]
    fn rows_within_bounds_and_rectangular() {
        let w = world();
        let cfg = CorpusConfig {
            min_rows: 3,
            max_rows: 6,
            ..Default::default()
        };
        let c = TableCorpus::generate(&w, &cfg);
        for t in &c.tables {
            assert!(
                t.n_rows() >= 1 && t.n_rows() <= 6,
                "{}: {}",
                t.id,
                t.n_rows()
            );
            assert!(t.n_cols() >= 3, "{}: {}", t.id, t.n_cols());
        }
    }

    #[test]
    fn null_noise_is_applied_but_never_to_subjects() {
        let w = world();
        let cfg = CorpusConfig {
            null_prob: 0.4,
            n_tables: 30,
            ..Default::default()
        };
        let c = TableCorpus::generate_entity_only(&w, &cfg);
        let mut any_null = false;
        for t in &c.tables {
            for r in 0..t.n_rows() {
                assert!(!t.cell(r, 0).is_null(), "subject cell nulled in {}", t.id);
                for col in 1..t.n_cols() {
                    any_null |= t.cell(r, col).is_null();
                }
            }
        }
        assert!(any_null, "null_prob=0.4 produced no nulls");
    }

    #[test]
    fn headerless_probability_produces_headerless_tables() {
        let w = world();
        let cfg = CorpusConfig {
            headerless_prob: 1.0,
            n_tables: 6,
            ..Default::default()
        };
        let c = TableCorpus::generate(&w, &cfg);
        assert!(c.tables.iter().all(|t| t.is_headerless()));
        let cfg0 = CorpusConfig::default();
        let c0 = TableCorpus::generate(&w, &cfg0);
        assert!(c0.tables.iter().all(|t| !t.is_headerless()));
    }

    #[test]
    fn employees_income_correlates_with_hours() {
        let w = world();
        let cfg = CorpusConfig {
            n_tables: 60,
            null_prob: 0.0,
            min_rows: 8,
            max_rows: 10,
            ..Default::default()
        };
        let c = TableCorpus::generate(&w, &cfg);
        for (t, kind) in c.tables.iter().zip(&c.kinds) {
            if *kind != TableKind::Employees {
                continue;
            }
            let (Some(h), Some(inc)) = (t.column_index("hours-per-week"), t.column_index("income"))
            else {
                continue; // those columns may have been dropped
            };
            for r in 0..t.n_rows() {
                let hours: f64 = t.cell(r, h).value.as_number().unwrap();
                let expected = if hours > 40.0 { ">50K" } else { "<=50K" };
                assert_eq!(t.cell(r, inc).text(), expected);
            }
        }
    }

    #[test]
    fn sales_totals_are_consistent() {
        let w = world();
        let cfg = CorpusConfig {
            n_tables: 60,
            null_prob: 0.0,
            ..Default::default()
        };
        let c = TableCorpus::generate(&w, &cfg);
        let mut checked = false;
        for (t, kind) in c.tables.iter().zip(&c.kinds) {
            if *kind != TableKind::Sales {
                continue;
            }
            let (Some(u), Some(p), Some(tot)) = (
                t.column_index("units"),
                t.column_index("price"),
                t.column_index("total"),
            ) else {
                continue;
            };
            for r in 0..t.n_rows() {
                let units = t.cell(r, u).value.as_number().unwrap();
                let price = t.cell(r, p).value.as_number().unwrap();
                let total = t.cell(r, tot).value.as_number().unwrap();
                assert!((units * price - total).abs() < 1e-6);
                checked = true;
            }
        }
        assert!(checked);
    }
}
