//! Global thread-pool utilization counters.
//!
//! `ntr-tensor::par` reports into these from every dispatch when armed.
//! They are process-global statics rather than part of a registry handle
//! because the pool entry points are free functions with no place to
//! thread a handle through — and because the whole point is one relaxed
//! boolean load on the hot path when observability is off.
//!
//! Counters are cumulative since the last [`reset`]; `Obs::open` resets
//! and arms them so a run's metrics snapshot covers that run alone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Maximum workers tracked per-slot; dispatches wider than this fold the
/// excess into the last slot (the pool clamps to core count, far below).
pub const MAX_TRACKED_WORKERS: usize = 64;

static ARMED: AtomicBool = AtomicBool::new(false);
static DISPATCHES: AtomicU64 = AtomicU64::new(0);
static TASKS: AtomicU64 = AtomicU64::new(0);
static PANIC_ISOLATIONS: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: [AtomicU64; MAX_TRACKED_WORKERS] =
    [const { AtomicU64::new(0) }; MAX_TRACKED_WORKERS];

/// Arms or disarms collection. Off (the default) the pool's only cost is
/// one relaxed load per dispatch.
pub fn set_enabled(on: bool) {
    ARMED.store(on, Ordering::Relaxed);
}

/// Whether collection is armed.
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Zeroes every counter (does not change armed state).
pub fn reset() {
    DISPATCHES.store(0, Ordering::Relaxed);
    TASKS.store(0, Ordering::Relaxed);
    PANIC_ISOLATIONS.store(0, Ordering::Relaxed);
    for b in &BUSY_NS {
        b.store(0, Ordering::Relaxed);
    }
}

/// Records one pool dispatch that fanned out to `tasks` parallel tasks.
pub fn record_dispatch(tasks: u64) {
    DISPATCHES.fetch_add(1, Ordering::Relaxed);
    TASKS.fetch_add(tasks, Ordering::Relaxed);
}

/// Records `ns` nanoseconds of busy time for worker slot `worker`.
pub fn record_busy(worker: usize, ns: u64) {
    BUSY_NS[worker.min(MAX_TRACKED_WORKERS - 1)].fetch_add(ns, Ordering::Relaxed);
}

/// Records one worker panic that the pool isolated into a typed error.
pub fn record_panic_isolated() {
    PANIC_ISOLATIONS.fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time copy of the pool counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Pool dispatches recorded.
    pub dispatches: u64,
    /// Parallel tasks fanned out across all dispatches.
    pub tasks: u64,
    /// Worker panics isolated into typed errors.
    pub panic_isolations: u64,
    /// Cumulative busy nanoseconds per worker slot.
    pub busy_ns: Vec<u64>,
}

/// Reads every counter.
pub fn snapshot() -> PoolSnapshot {
    PoolSnapshot {
        dispatches: DISPATCHES.load(Ordering::Relaxed),
        tasks: TASKS.load(Ordering::Relaxed),
        panic_isolations: PANIC_ISOLATIONS.load(Ordering::Relaxed),
        busy_ns: BUSY_NS.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        // Serialize against any other test touching the globals.
        reset();
        record_dispatch(4);
        record_dispatch(2);
        record_busy(0, 100);
        record_busy(1, 50);
        record_busy(usize::MAX, 7); // clamps to last slot
        record_panic_isolated();
        let s = snapshot();
        assert_eq!(s.dispatches, 2);
        assert_eq!(s.tasks, 6);
        assert_eq!(s.panic_isolations, 1);
        assert_eq!(s.busy_ns[0], 100);
        assert_eq!(s.busy_ns[1], 50);
        assert_eq!(s.busy_ns[MAX_TRACKED_WORKERS - 1], 7);
        reset();
        assert_eq!(
            snapshot(),
            PoolSnapshot {
                busy_ns: vec![0; MAX_TRACKED_WORKERS],
                ..PoolSnapshot::default()
            }
        );
    }

    #[test]
    fn arming_is_togglable() {
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }
}
