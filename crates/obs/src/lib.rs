//! # ntr-obs
//!
//! Dependency-free runtime observability for the `ntr` training and
//! serving stack: a lock-cheap [`metrics`] registry (counters, gauges,
//! log-scale histograms) whose [`metrics::Snapshot`] serializes to the same
//! hand-rolled JSON style as `BENCH_tensor.json`, a structured JSONL event
//! trace ([`trace::TraceWriter`]: one event per line, atomic append), and
//! global [`pool`] utilization counters the `ntr-tensor` thread pool feeds.
//!
//! The crate sits *below* every other workspace crate (it depends on
//! nothing but `std`), so even `ntr-tensor::par` can report into it without
//! a dependency cycle.
//!
//! ## The `Obs` handle
//!
//! Instrumentation is carried through the stack as a single cloneable
//! [`Obs`] handle built from [`ObsOptions`] (a trace path, a metrics path,
//! or both — or neither). A disabled handle is a true no-op sink: every
//! call is a single branch on an `Option` that the optimizer can hoist, so
//! training with observability off is bit-identical to — and as fast as —
//! a build that never heard of this crate. The supervisor's golden no-op
//! snapshot pins that guarantee.
//!
//! ## Determinism
//!
//! Trace content is deterministic apart from wall-clock fields: every
//! field whose key ends in `_ms` or `_per_sec` is a timing measurement,
//! everything else is a pure function of the run's inputs. Stripping the
//! timing fields (see [`trace::strip_timings`]) from two traces of the
//! same run under different `NTR_THREADS` values yields byte-identical
//! files.

pub mod metrics;
pub mod pool;
pub mod quant;
pub mod trace;

pub use metrics::{MetricsRegistry, Snapshot};
pub use trace::{EventBuilder, TraceWriter};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where (if anywhere) a run's observability output goes. The default —
/// no trace, no metrics — makes [`Obs::open`] return a disabled no-op
/// handle.
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// Append-structured JSONL event trace to this path (truncated at
    /// open, then atomically appended one line per event).
    pub trace: Option<PathBuf>,
    /// Write a metrics [`Snapshot`] (counters, histograms, pool
    /// utilization) to this path when the run finishes.
    pub metrics: Option<PathBuf>,
}

impl ObsOptions {
    /// True when any output is configured.
    pub fn enabled(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }
}

#[derive(Debug)]
struct ObsInner {
    trace: Option<TraceWriter>,
    metrics: Option<(PathBuf, MetricsRegistry)>,
    /// Tokens counted by the driver since the last step boundary
    /// (see [`Obs::count_tokens`] / [`Obs::take_step_tokens`]).
    step_tokens: AtomicU64,
}

/// A cloneable observability handle: either a no-op sink ([`Obs::disabled`],
/// the `Default`) or an armed trace/metrics writer shared by every layer of
/// one training run.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// The no-op sink: every method is a branch-and-return.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Opens writers per `opts`. With neither path set this is
    /// [`Obs::disabled`]. Arming metrics also resets and enables the
    /// global [`pool`] counters so the run's snapshot reports thread-pool
    /// utilization for this run alone.
    pub fn open(opts: &ObsOptions) -> std::io::Result<Self> {
        if !opts.enabled() {
            return Ok(Self::disabled());
        }
        let trace = match &opts.trace {
            Some(p) => Some(TraceWriter::create(p)?),
            None => None,
        };
        let metrics = match &opts.metrics {
            Some(p) => {
                pool::reset();
                pool::set_enabled(true);
                quant::reset();
                quant::set_enabled(true);
                Some((p.clone(), MetricsRegistry::default()))
            }
            None => None,
        };
        Ok(Self {
            inner: Some(Arc::new(ObsInner {
                trace,
                metrics,
                step_tokens: AtomicU64::new(0),
            })),
        })
    }

    /// True when any sink is armed.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a trace event, or `None` when tracing is off. The cost of a
    /// disabled call is one `Option` check.
    pub fn event(&self, ev: &'static str) -> Option<EventBuilder<'_>> {
        self.inner
            .as_deref()
            .and_then(|i| i.trace.as_ref())
            .map(|t| t.event(ev))
    }

    /// A timestamp for measuring a span, or `None` when disabled (so the
    /// disabled path never calls into the clock).
    pub fn now(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Adds to a named counter (no-op when metrics are off).
    pub fn add(&self, name: &str, v: u64) {
        if let Some((_, reg)) = self.inner.as_deref().and_then(|i| i.metrics.as_ref()) {
            reg.counter(name).add(v);
        }
    }

    /// Increments a named counter by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Records a value into a named log-scale histogram.
    pub fn observe(&self, name: &str, v: u64) {
        if let Some((_, reg)) = self.inner.as_deref().and_then(|i| i.metrics.as_ref()) {
            reg.histogram(name).record(v);
        }
    }

    /// Counts tokens processed by the driver inside the current step (the
    /// per-step tally feeds the `tokens` trace field and the run's
    /// `train/tokens` counter).
    pub fn count_tokens(&self, n: u64) {
        if let Some(i) = self.inner.as_deref() {
            i.step_tokens.fetch_add(n, Ordering::Relaxed);
            if let Some((_, reg)) = i.metrics.as_ref() {
                reg.counter("train/tokens").add(n);
            }
        }
    }

    /// Takes (and resets) the tokens counted since the last step boundary.
    pub fn take_step_tokens(&self) -> u64 {
        match self.inner.as_deref() {
            Some(i) => i.step_tokens.swap(0, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Writes the metrics snapshot (registry + global pool counters) to
    /// the configured path. No-op without a metrics sink. Call once when
    /// the run ends, whatever its outcome.
    pub fn write_metrics(&self) -> std::io::Result<()> {
        let Some((path, reg)) = self.inner.as_deref().and_then(|i| i.metrics.as_ref()) else {
            return Ok(());
        };
        let mut snap = reg.snapshot();
        snap.merge_pool(&pool::snapshot());
        snap.merge_quant(&quant::snapshot());
        snap.extend_warnings();
        snap.write(path)
    }
}

/// Process-global warning counters — a home for "saturate with a traced
/// warning" paths (e.g. metric length mismatches) that have no `Obs`
/// handle in scope. Included in every metrics snapshot.
pub mod warnings {
    use std::sync::atomic::{AtomicU64, Ordering};

    static METRIC_LEN_MISMATCH: AtomicU64 = AtomicU64::new(0);

    /// Records a metric-input length mismatch that was saturated instead
    /// of panicking.
    pub fn metric_len_mismatch() {
        METRIC_LEN_MISMATCH.fetch_add(1, Ordering::Relaxed);
    }

    /// Length-mismatch warnings recorded so far in this process.
    pub fn metric_len_mismatches() -> u64 {
        METRIC_LEN_MISMATCH.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ntr_obs_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn disabled_handle_is_a_no_op() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        assert!(obs.event("step").is_none());
        assert!(obs.now().is_none());
        obs.inc("x");
        obs.count_tokens(5);
        assert_eq!(obs.take_step_tokens(), 0);
        obs.write_metrics().unwrap();
    }

    #[test]
    fn armed_handle_traces_counts_and_snapshots() {
        let tpath = tmp("handle.jsonl");
        let mpath = tmp("handle_metrics.json");
        let obs = Obs::open(&ObsOptions {
            trace: Some(tpath.clone()),
            metrics: Some(mpath.clone()),
        })
        .unwrap();
        assert!(obs.enabled());
        obs.count_tokens(3);
        obs.count_tokens(4);
        assert_eq!(obs.take_step_tokens(), 7);
        assert_eq!(obs.take_step_tokens(), 0);
        obs.inc("train/steps");
        obs.observe("train/step_ns", 1500);
        obs.event("step").unwrap().u64("step", 1).finish();
        obs.write_metrics().unwrap();
        let trace = std::fs::read_to_string(&tpath).unwrap();
        assert!(trace.contains("\"ev\": \"step\""));
        let metrics = std::fs::read_to_string(&mpath).unwrap();
        assert!(metrics.contains("\"train/steps\""));
        assert!(metrics.contains("\"train/tokens\""));
        let _ = std::fs::remove_file(&tpath);
        let _ = std::fs::remove_file(&mpath);
    }
}
