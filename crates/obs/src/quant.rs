//! Global int8-quantization counters.
//!
//! `ntr-tensor::quant` reports into these from its matmul entry points,
//! following the same process-global pattern as [`crate::pool`]: the
//! kernels are free functions with no `Obs` handle in reach, and the
//! armed check must stay one relaxed load when observability is off.
//! `Obs::open` resets and arms them alongside the pool counters so a
//! run's metrics snapshot covers that run alone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static MATMULS: AtomicU64 = AtomicU64::new(0);
static OUT_ROWS: AtomicU64 = AtomicU64::new(0);
static ROWS_QUANTIZED: AtomicU64 = AtomicU64::new(0);

/// Arms or disarms collection.
pub fn set_enabled(on: bool) {
    ARMED.store(on, Ordering::Relaxed);
}

/// Whether collection is armed.
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Zeroes every counter (does not change armed state).
pub fn reset() {
    MATMULS.store(0, Ordering::Relaxed);
    OUT_ROWS.store(0, Ordering::Relaxed);
    ROWS_QUANTIZED.store(0, Ordering::Relaxed);
}

/// Records one quantized matmul producing `rows` output rows.
pub fn record_matmul(rows: u64) {
    if enabled() {
        MATMULS.fetch_add(1, Ordering::Relaxed);
        OUT_ROWS.fetch_add(rows, Ordering::Relaxed);
    }
}

/// Records `rows` activation rows quantized to int8.
pub fn record_rows(rows: u64) {
    if enabled() {
        ROWS_QUANTIZED.fetch_add(rows, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the quantization counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantSnapshot {
    /// Quantized matmuls executed.
    pub matmuls: u64,
    /// Output rows produced by quantized matmuls.
    pub out_rows: u64,
    /// Activation rows quantized to int8.
    pub rows_quantized: u64,
}

/// Reads every counter.
pub fn snapshot() -> QuantSnapshot {
    QuantSnapshot {
        matmuls: MATMULS.load(Ordering::Relaxed),
        out_rows: OUT_ROWS.load(Ordering::Relaxed),
        rows_quantized: ROWS_QUANTIZED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_only_when_armed() {
        let was = enabled();
        set_enabled(false);
        reset();
        record_matmul(4);
        record_rows(9);
        assert_eq!(snapshot(), QuantSnapshot::default());
        set_enabled(true);
        record_matmul(4);
        record_matmul(2);
        record_rows(9);
        let s = snapshot();
        assert_eq!(s.matmuls, 2);
        assert_eq!(s.out_rows, 6);
        assert_eq!(s.rows_quantized, 9);
        reset();
        assert_eq!(snapshot(), QuantSnapshot::default());
        set_enabled(was);
    }
}
