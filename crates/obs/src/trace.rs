//! Structured JSONL event trace.
//!
//! A [`TraceWriter`] appends one JSON object per line to a trace file.
//! Each line is built in full before a single `write_all` under a mutex,
//! so concurrent events never interleave ("atomic append"). Every event
//! starts with its `"ev"` kind and ends with `"wall_ms"` (milliseconds
//! since the writer opened).
//!
//! **Field stability:** trace content is deterministic apart from timing
//! fields. By convention a field is a wall-clock measurement if and only
//! if its key ends in `_ms` or `_per_sec`; [`strip_timings`] removes
//! exactly those, and the determinism test asserts that two traces of the
//! same run under different thread counts are byte-identical once
//! stripped. The event vocabulary and field types are pinned by
//! [`schema::render`] against a golden snapshot.

use crate::metrics::json_str;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// An append-only JSONL trace file.
#[derive(Debug)]
pub struct TraceWriter {
    file: Mutex<File>,
    start: Instant,
}

impl TraceWriter {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            file: Mutex::new(File::create(path)?),
            start: Instant::now(),
        })
    }

    /// Starts an event of kind `ev`; finish the line with
    /// [`EventBuilder::finish`].
    pub fn event(&self, ev: &'static str) -> EventBuilder<'_> {
        let mut buf = String::with_capacity(128);
        buf.push_str("{\"ev\": ");
        buf.push_str(&json_str(ev));
        EventBuilder { writer: self, buf }
    }

    fn write_line(&self, mut buf: String) {
        let wall_ms = self.start.elapsed().as_millis() as u64;
        buf.push_str(&format!(", \"wall_ms\": {wall_ms}}}\n"));
        let mut f = self.file.lock().unwrap();
        // A trace write failing must not kill training; the trace is an
        // aid, not a dependency.
        let _ = f.write_all(buf.as_bytes());
        let _ = f.flush();
    }
}

/// Builds one trace line field by field, then appends it atomically.
#[derive(Debug)]
#[must_use = "call .finish() to write the event"]
pub struct EventBuilder<'a> {
    writer: &'a TraceWriter,
    buf: String,
}

impl EventBuilder<'_> {
    fn raw(mut self, key: &str, value: &str) -> Self {
        self.buf.push_str(", ");
        self.buf.push_str(&json_str(key));
        self.buf.push_str(": ");
        self.buf.push_str(value);
        self
    }

    /// An unsigned integer field.
    pub fn u64(self, key: &str, v: u64) -> Self {
        self.raw(key, &v.to_string())
    }

    /// A float field. Finite values use Rust's shortest round-trippable
    /// `{:?}` form (deterministic); non-finite values are encoded as the
    /// strings `"NaN"`, `"inf"`, `"-inf"` since JSON has no literal for
    /// them.
    pub fn f32(self, key: &str, v: f32) -> Self {
        let text = if v.is_finite() {
            format!("{v:?}")
        } else if v.is_nan() {
            json_str("NaN")
        } else if v > 0.0 {
            json_str("inf")
        } else {
            json_str("-inf")
        };
        self.raw(key, &text)
    }

    /// A float field computed in f64 (throughputs); same encoding rules as
    /// [`EventBuilder::f32`].
    pub fn f64(self, key: &str, v: f64) -> Self {
        let text = if v.is_finite() {
            format!("{v:?}")
        } else if v.is_nan() {
            json_str("NaN")
        } else if v > 0.0 {
            json_str("inf")
        } else {
            json_str("-inf")
        };
        self.raw(key, &text)
    }

    /// A string field.
    pub fn str(self, key: &str, v: &str) -> Self {
        let quoted = json_str(v);
        self.raw(key, &quoted)
    }

    /// Appends `wall_ms` and writes the finished line.
    pub fn finish(self) {
        self.writer.write_line(self.buf);
    }
}

/// Parses one flat trace line into `(key, raw_value)` pairs. Values keep
/// their raw JSON text (strings keep their quotes) so a re-serialized line
/// is byte-identical. Only the flat subset the writer emits is supported.
pub fn parse_line(line: &str) -> Result<Vec<(String, String)>, String> {
    let line = line.trim_end_matches('\n');
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not an object: {line:?}"))?;
    let mut fields = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        rest = rest.trim_start_matches(", ");
        let body = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected key at {rest:?}"))?;
        let kq = body
            .find('"')
            .ok_or_else(|| format!("unterminated key at {rest:?}"))?;
        let key = &body[..kq];
        if key.contains('\\') {
            return Err(format!("escaped key unsupported: {key:?}"));
        }
        let after = body[kq + 1..]
            .strip_prefix(": ")
            .ok_or_else(|| format!("expected ': ' after key {key:?}"))?;
        let (value, tail) = if let Some(s) = after.strip_prefix('"') {
            // Scan the quoted value, honouring backslash escapes.
            let mut end = None;
            let mut escaped = false;
            for (i, c) in s.char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end.ok_or_else(|| format!("unterminated string for {key:?}"))?;
            (format!("\"{}\"", &s[..end]), &s[end + 1..])
        } else {
            let end = after.find(", \"").unwrap_or(after.len());
            (after[..end].to_string(), &after[end..])
        };
        fields.push((key.to_string(), value));
        rest = tail;
    }
    Ok(fields)
}

/// Re-serializes parsed fields in the writer's exact format.
pub fn render_line(fields: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(k));
        out.push_str(": ");
        out.push_str(v);
    }
    out.push('}');
    out
}

/// True for keys that are wall-clock measurements (and therefore excluded
/// from the determinism guarantee): `wall_ms`, anything `*_ms`, anything
/// `*_per_sec`.
pub fn is_timing_key(key: &str) -> bool {
    key.ends_with("_ms") || key.ends_with("_per_sec")
}

/// Removes every timing field from one trace line; what remains is
/// deterministic for a given run regardless of thread count or machine.
pub fn strip_timings(line: &str) -> Result<String, String> {
    let fields = parse_line(line)?;
    let kept: Vec<_> = fields
        .into_iter()
        .filter(|(k, _)| !is_timing_key(k))
        .collect();
    Ok(render_line(&kept))
}

/// The pinned trace-event vocabulary: names, fields, types, and which
/// fields are timing measurements.
pub mod schema {
    use super::{is_timing_key, parse_line};
    use std::fmt::Write as _;

    /// A field's JSON type in the schema.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FieldType {
        /// Unsigned integer.
        U64,
        /// Float (finite values are numbers; non-finite encode as the
        /// strings `"NaN"`, `"inf"`, `"-inf"`).
        Float,
        /// String.
        Str,
    }

    /// One schema field: name, type, required?
    pub struct Field {
        /// Field key.
        pub name: &'static str,
        /// Value type.
        pub ty: FieldType,
        /// Whether every event of this kind must carry it.
        pub required: bool,
    }

    const fn req(name: &'static str, ty: FieldType) -> Field {
        Field {
            name,
            ty,
            required: true,
        }
    }

    const fn opt(name: &'static str, ty: FieldType) -> Field {
        Field {
            name,
            ty,
            required: false,
        }
    }

    /// One event kind and its fields (excluding the implicit leading `ev`
    /// and trailing `wall_ms`).
    pub struct Event {
        /// The `ev` value.
        pub name: &'static str,
        /// Payload fields, in emission order.
        pub fields: &'static [Field],
    }

    use FieldType::{Float, Str, U64};

    /// Every event the stack emits. Adding a field or event here is a
    /// schema change and must re-bless the golden snapshot.
    pub const EVENTS: &[Event] = &[
        Event {
            name: "run_start",
            fields: &[
                req("step", U64),
                req("n_examples", U64),
                req("batch_size", U64),
                req("epochs", U64),
                req("seed", U64),
            ],
        },
        Event {
            name: "step",
            fields: &[
                req("step", U64),
                req("epoch", U64),
                req("pos", U64),
                req("batch", U64),
                req("loss", Float),
                req("lr_scale", Float),
                opt("grad_norm", Float),
                opt("tokens", U64),
                opt("step_ms", U64),
                opt("tokens_per_sec", Float),
            ],
        },
        Event {
            name: "anomaly",
            fields: &[
                req("step", U64),
                req("epoch", U64),
                req("pos", U64),
                req("kind", Str),
                req("detail", Str),
            ],
        },
        Event {
            name: "rollback",
            fields: &[
                req("step", U64),
                req("to_step", U64),
                req("retry", U64),
                req("lr_scale", Float),
                req("skip_epoch", U64),
                req("skip_pos", U64),
            ],
        },
        Event {
            name: "crash_recovery",
            fields: &[req("step", U64), req("to_step", U64), req("source", Str)],
        },
        Event {
            name: "ckpt_save",
            fields: &[req("step", U64), req("bytes", U64), opt("fsync_ms", U64)],
        },
        Event {
            name: "ckpt_load",
            fields: &[req("step", U64), req("bytes", U64), req("source", Str)],
        },
        Event {
            name: "run_end",
            fields: &[
                req("steps", U64),
                req("retries", U64),
                req("outcome", Str),
                opt("error", Str),
            ],
        },
        Event {
            name: "distill_start",
            fields: &[
                req("tables", U64),
                req("spans", U64),
                req("d_model", U64),
                req("teacher", Str),
                req("cos_weight", Float),
            ],
        },
        Event {
            name: "distill_step",
            fields: &[req("loss", Float), req("cosine", Float)],
        },
        Event {
            name: "serve_start",
            fields: &[
                req("port", U64),
                req("workers", U64),
                req("max_batch", U64),
                req("max_wait", U64),
                req("cache_bytes", U64),
                opt("queue_cap", U64),
                opt("max_conns", U64),
            ],
        },
        Event {
            name: "serve_batch",
            fields: &[req("size", U64), req("queued", U64), opt("encode_ms", U64)],
        },
        Event {
            name: "serve_fault",
            fields: &[
                req("kind", Str),
                req("flush", U64),
                opt("replica", U64),
                opt("detail", Str),
            ],
        },
        Event {
            name: "serve_recover",
            fields: &[
                req("kind", Str),
                req("flush", U64),
                opt("restarts", U64),
                opt("rebuilds", U64),
            ],
        },
        Event {
            name: "index_build",
            fields: &[
                req("tables", U64),
                req("dim", U64),
                req("nlist", U64),
                req("seed", U64),
                req("bytes", U64),
                opt("encode_ms", U64),
                opt("build_ms", U64),
            ],
        },
        Event {
            name: "index_query",
            fields: &[
                req("k", U64),
                req("nprobe", U64),
                req("results", U64),
                opt("scanned", U64),
                opt("query_ms", U64),
            ],
        },
        Event {
            name: "serve_end",
            fields: &[
                req("requests", U64),
                req("batches", U64),
                req("hits", U64),
                req("misses", U64),
                req("evictions", U64),
                opt("errors", U64),
                opt("shed", U64),
                opt("accept_errors", U64),
                opt("timeouts", U64),
                opt("p50_ms", U64),
                opt("p99_ms", U64),
                opt("deadline_exceeded", U64),
                opt("internal", U64),
                opt("restarts", U64),
                opt("quarantined", U64),
                opt("degraded", U64),
            ],
        },
    ];

    fn type_of_raw(raw: &str) -> Result<FieldType, String> {
        if raw.starts_with('"') {
            return Ok(FieldType::Str);
        }
        if raw.parse::<u64>().is_ok() {
            return Ok(FieldType::U64);
        }
        if raw.parse::<f64>().is_ok() {
            return Ok(FieldType::Float);
        }
        Err(format!("unparseable value {raw:?}"))
    }

    fn type_matches(expected: FieldType, raw: &str) -> bool {
        match (expected, type_of_raw(raw)) {
            (FieldType::U64, Ok(FieldType::U64)) => true,
            // A whole-numbered float serializes as e.g. `1.0`, and a
            // non-finite one as a marker string.
            (FieldType::Float, Ok(FieldType::Float | FieldType::U64)) => true,
            (FieldType::Float, Ok(FieldType::Str)) => {
                matches!(raw, "\"NaN\"" | "\"inf\"" | "\"-inf\"")
            }
            (FieldType::Str, Ok(FieldType::Str)) => true,
            _ => false,
        }
    }

    /// Validates one trace line against the schema: leading `ev` of a
    /// known kind, trailing numeric `wall_ms`, all required fields
    /// present in order, no unknown fields, types as declared.
    pub fn validate_line(line: &str) -> Result<(), String> {
        let fields = parse_line(line)?;
        let (first_key, ev_raw) = fields.first().ok_or("empty event")?;
        if first_key != "ev" {
            return Err(format!("first field must be \"ev\", got {first_key:?}"));
        }
        let ev_name = ev_raw.trim_matches('"');
        let event = EVENTS
            .iter()
            .find(|e| e.name == ev_name)
            .ok_or_else(|| format!("unknown event kind {ev_name:?}"))?;
        let (last_key, last_raw) = fields.last().unwrap();
        if last_key != "wall_ms" || last_raw.parse::<u64>().is_err() {
            return Err(format!(
                "last field must be numeric \"wall_ms\" in {ev_name}"
            ));
        }
        let payload = &fields[1..fields.len() - 1];
        let mut cursor = 0usize;
        for (key, raw) in payload {
            let idx = event.fields[cursor..]
                .iter()
                .position(|f| f.name == key)
                .map(|i| cursor + i)
                .ok_or_else(|| {
                    format!("unknown or out-of-order field {key:?} in event {ev_name}")
                })?;
            for skipped in &event.fields[cursor..idx] {
                if skipped.required {
                    return Err(format!(
                        "missing required field {:?} in event {ev_name}",
                        skipped.name
                    ));
                }
            }
            let f = &event.fields[idx];
            if !type_matches(f.ty, raw) {
                return Err(format!(
                    "field {key:?} in event {ev_name} has wrong type (value {raw:?})"
                ));
            }
            cursor = idx + 1;
        }
        for remaining in &event.fields[cursor..] {
            if remaining.required {
                return Err(format!(
                    "missing required field {:?} in event {ev_name}",
                    remaining.name
                ));
            }
        }
        Ok(())
    }

    /// Validates every line of a whole trace, reporting the first bad
    /// line's number.
    pub fn validate_trace(text: &str) -> Result<usize, String> {
        let mut n = 0;
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            validate_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            n += 1;
        }
        Ok(n)
    }

    /// Renders the schema as stable text for the golden snapshot: one
    /// line per event listing `field:type` terms, optional fields in
    /// brackets, timing fields marked with `~`.
    pub fn render() -> String {
        let mut out = String::from(
            "# ntr trace schema v1\n\
             # every event: leading ev:str, trailing ~wall_ms:u64\n\
             # [field] = optional, ~field = wall-clock timing (stripped for determinism)\n",
        );
        for e in EVENTS {
            write!(out, "{}:", e.name).unwrap();
            for f in e.fields {
                let ty = match f.ty {
                    FieldType::U64 => "u64",
                    FieldType::Float => "f",
                    FieldType::Str => "str",
                };
                let timing = if is_timing_key(f.name) { "~" } else { "" };
                if f.required {
                    write!(out, " {timing}{}:{ty}", f.name).unwrap();
                } else {
                    write!(out, " [{timing}{}:{ty}]", f.name).unwrap();
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ntr_obs_trace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn events_are_one_json_line_each() {
        let path = tmp("basic.jsonl");
        let w = TraceWriter::create(&path).unwrap();
        w.event("run_start")
            .u64("step", 0)
            .u64("n_examples", 3)
            .u64("batch_size", 2)
            .u64("epochs", 4)
            .u64("seed", 17)
            .finish();
        w.event("step")
            .u64("step", 1)
            .u64("epoch", 0)
            .u64("pos", 0)
            .u64("batch", 2)
            .f32("loss", 1.5)
            .f32("lr_scale", 1.0)
            .finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ev\": \"run_start\", \"step\": 0, "));
        assert!(lines[1].contains("\"loss\": 1.5, \"lr_scale\": 1.0, \"wall_ms\": "));
        for l in &lines {
            schema::validate_line(l).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_finite_floats_encode_as_strings() {
        let path = tmp("nan.jsonl");
        let w = TraceWriter::create(&path).unwrap();
        w.event("anomaly")
            .u64("step", 2)
            .u64("epoch", 0)
            .u64("pos", 1)
            .str("kind", "nan-loss")
            .str("detail", "loss=NaN")
            .finish();
        let text = std::fs::read_to_string(&path).unwrap();
        schema::validate_line(text.lines().next().unwrap()).unwrap();

        let b = w.event("step").f32("x", f32::NAN).f32("y", f32::INFINITY);
        assert!(b.buf.contains("\"x\": \"NaN\", \"y\": \"inf\""));
        b.finish();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_roundtrips_and_strips_timings() {
        let line = r#"{"ev": "step", "step": 3, "loss": 0.25, "kind": "a\"b", "step_ms": 12, "tokens_per_sec": 9134.5, "wall_ms": 88}"#;
        let fields = parse_line(line).unwrap();
        assert_eq!(render_line(&fields), line);
        let stripped = strip_timings(line).unwrap();
        assert_eq!(
            stripped,
            r#"{"ev": "step", "step": 3, "loss": 0.25, "kind": "a\"b"}"#
        );
    }

    #[test]
    fn validate_rejects_bad_lines() {
        // Unknown event.
        assert!(schema::validate_line(r#"{"ev": "nope", "wall_ms": 1}"#).is_err());
        // Missing required field (loss).
        assert!(schema::validate_line(
            r#"{"ev": "step", "step": 1, "epoch": 0, "pos": 0, "batch": 2, "lr_scale": 1.0, "wall_ms": 1}"#
        )
        .is_err());
        // Unknown field.
        assert!(schema::validate_line(
            r#"{"ev": "run_end", "steps": 4, "retries": 0, "outcome": "ok", "bogus": 1, "wall_ms": 1}"#
        )
        .is_err());
        // Wrong type.
        assert!(schema::validate_line(
            r#"{"ev": "run_end", "steps": "four", "retries": 0, "outcome": "ok", "wall_ms": 1}"#
        )
        .is_err());
        // Missing wall_ms.
        assert!(schema::validate_line(
            r#"{"ev": "run_end", "steps": 4, "retries": 0, "outcome": "ok"}"#
        )
        .is_err());
        // A correct run_end passes, with and without the optional error.
        schema::validate_line(
            r#"{"ev": "run_end", "steps": 4, "retries": 0, "outcome": "ok", "wall_ms": 1}"#,
        )
        .unwrap();
        schema::validate_line(
            r#"{"ev": "run_end", "steps": 4, "retries": 2, "outcome": "error", "error": "retries exhausted", "wall_ms": 1}"#,
        )
        .unwrap();
    }

    #[test]
    fn schema_render_lists_every_event() {
        let text = schema::render();
        for e in schema::EVENTS {
            assert!(text.contains(&format!("{}:", e.name)), "missing {}", e.name);
        }
    }
}
