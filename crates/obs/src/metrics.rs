//! Lock-cheap metrics registry: named counters, gauges, and fixed
//! log-scale histograms.
//!
//! The registry holds one `Arc<AtomicU64>` (or [`Histogram`]) per name in a
//! `Mutex<BTreeMap>`. The mutex guards only *name resolution* — the hot
//! path (incrementing an already-resolved handle) is a single relaxed
//! atomic op, and callers that care can resolve once and keep the handle.
//! A [`Snapshot`] of the whole registry serializes to the same hand-rolled
//! flat-JSON-array style as `BENCH_tensor.json`, one object per metric,
//! sorted by name so snapshots diff cleanly.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two histogram buckets: bucket `i` counts values `v`
/// with `floor(log2(max(v, 1))) == i`, and everything ≥ 2^31 lands in the
/// last bucket.
pub const HIST_BUCKETS: usize = 32;

/// A monotonically increasing counter (also used for gauges, which store
/// their latest value instead of accumulating).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `v` (relaxed; counters are merged, never ordered).
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the value (gauge semantics).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram with [`HIST_BUCKETS`] fixed power-of-two buckets plus a
/// running count and sum, all relaxed atomics — recording is wait-free.
#[derive(Debug, Default)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// The bucket index a value lands in: `floor(log2(max(v, 1)))`, clamped to
/// the last bucket.
pub fn bucket_of(v: u64) -> usize {
    ((63 - v.max(1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `p`-th percentile (`0.0..=100.0`) of the recorded
    /// values by interpolating *within* the selected log2 bucket.
    ///
    /// Reporting a bucket's upper edge — the previous behavior — overstates
    /// tail latencies by up to 2× (bucket `i` spans `[2^i, 2^(i+1)-1]`), an
    /// error an SLO gate then enforces against. Instead, the `k`-th of the
    /// `n` observations inside a bucket is placed at the midpoint-rule
    /// position `lo + (hi - lo)·(k - ½)/n`, which is exact in expectation
    /// for values uniform within the bucket and never exceeds the true
    /// value's bucket.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Nearest-rank on [1, count]: the smallest rank whose cumulative
        // share reaches p.
        let rank = ((count - 1) as f64 * p / 100.0).floor() as u64 + 1;
        let mut seen = 0u64;
        for (i, n) in self.nonzero_buckets() {
            if seen + n >= rank {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = (1u64 << (i + 1)) - 1; // i ≤ 31, no overflow
                let k = rank - seen; // 1..=n within this bucket
                let frac = (k as f64 - 0.5) / n as f64;
                return lo + ((hi - lo) as f64 * frac).round() as u64;
            }
            seen += n;
        }
        0
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }
}

/// A registry of named counters and histograms. Cloning a resolved handle
/// is cheap (`Arc`); resolving a name takes the registry mutex once.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Resolves (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Resolves (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries = Vec::new();
        for (name, c) in self.counters.lock().unwrap().iter() {
            entries.push(SnapshotEntry::Counter {
                name: name.clone(),
                value: c.get(),
            });
        }
        for (name, h) in self.histograms.lock().unwrap().iter() {
            entries.push(SnapshotEntry::Histogram {
                name: name.clone(),
                count: h.count(),
                sum: h.sum(),
                buckets: h.nonzero_buckets(),
            });
        }
        entries.sort_by(|a, b| a.name().cmp(b.name()));
        Snapshot { entries }
    }
}

/// One metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotEntry {
    /// A counter (or gauge) and its value.
    Counter {
        /// Metric name.
        name: String,
        /// Value at snapshot time.
        value: u64,
    },
    /// A histogram: count, sum, and its non-empty power-of-two buckets.
    Histogram {
        /// Metric name.
        name: String,
        /// Observations recorded.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// `(bucket_index, count)` for non-empty buckets; bucket `i`
        /// covers `[2^i, 2^(i+1))`.
        buckets: Vec<(usize, u64)>,
    },
}

impl SnapshotEntry {
    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            SnapshotEntry::Counter { name, .. } | SnapshotEntry::Histogram { name, .. } => name,
        }
    }
}

/// A serializable point-in-time view of a [`MetricsRegistry`], written in
/// the same hand-rolled flat-JSON-array style as `BENCH_tensor.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Metrics, sorted by name.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Folds the global thread-pool utilization counters into this
    /// snapshot under `pool/…` names.
    pub fn merge_pool(&mut self, pool: &crate::pool::PoolSnapshot) {
        self.push_counter("pool/dispatches", pool.dispatches);
        self.push_counter("pool/tasks", pool.tasks);
        self.push_counter("pool/panic_isolations", pool.panic_isolations);
        for (worker, ns) in pool.busy_ns.iter().enumerate() {
            if *ns > 0 {
                self.push_counter(&format!("pool/worker{worker}/busy_ns"), *ns);
            }
        }
    }

    /// Folds the global int8-quantization counters into this snapshot
    /// under `quant/…` names (omitted entirely when no quantized matmul
    /// ran, so f32-only runs keep their snapshots unchanged).
    pub fn merge_quant(&mut self, quant: &crate::quant::QuantSnapshot) {
        if quant.matmuls == 0 && quant.rows_quantized == 0 {
            return;
        }
        self.push_counter("quant/matmuls", quant.matmuls);
        self.push_counter("quant/out_rows", quant.out_rows);
        self.push_counter("quant/rows_quantized", quant.rows_quantized);
    }

    /// Folds the process-global warning counters in under `warn/…` names.
    pub fn extend_warnings(&mut self) {
        let n = crate::warnings::metric_len_mismatches();
        if n > 0 {
            self.push_counter("warn/metric_len_mismatch", n);
        }
    }

    fn push_counter(&mut self, name: &str, value: u64) {
        self.entries.push(SnapshotEntry::Counter {
            name: name.to_string(),
            value,
        });
        self.entries.sort_by(|a, b| a.name().cmp(b.name()));
    }

    /// Serializes to a flat JSON array, one object per metric — the
    /// `BENCH_tensor.json` house style.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            match e {
                SnapshotEntry::Counter { name, value } => {
                    writeln!(
                        out,
                        "  {{\"metric\": {}, \"kind\": \"counter\", \"value\": {value}}}{sep}",
                        json_str(name)
                    )
                    .unwrap();
                }
                SnapshotEntry::Histogram {
                    name,
                    count,
                    sum,
                    buckets,
                } => {
                    let bk = buckets
                        .iter()
                        .map(|(i, n)| format!("\"{i}\": {n}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    writeln!(
                        out,
                        "  {{\"metric\": {}, \"kind\": \"histogram\", \"count\": {count}, \
                         \"sum\": {sum}, \"buckets\": {{{bk}}}}}{sep}",
                        json_str(name)
                    )
                    .unwrap();
                }
            }
        }
        out.push_str("]\n");
        out
    }

    /// Writes [`Snapshot::to_json`] to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Minimal JSON string quoting (quotes, backslashes, control chars).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn percentile_interpolates_within_buckets() {
        // Known sample set: 99 fast observations (100, bucket 6 = [64,127])
        // and one slow outlier (80_000, bucket 16 = [65536,131071]).
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(80_000);
        // Midpoint-rule positions inside the fast bucket: the 50th of 99
        // lands exactly mid-bucket, the 99th just under the upper edge.
        assert_eq!(h.percentile(50.0), 96);
        assert_eq!(h.percentile(99.0), 127);
        // The sole outlier sits mid-bucket — not at the 131071 upper edge
        // the pre-fix reporting returned (a ~1.6× overstatement of 80_000).
        assert_eq!(h.percentile(100.0), 98_304);
        assert!(h.percentile(100.0) < 131_071);
    }

    #[test]
    fn percentile_edge_cases() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), 0, "empty histogram");
        h.record(0);
        // Bucket 0 spans {0, 1}; its midpoint rounds to at most 1.
        assert!(h.percentile(0.0) <= 1);
        // Out-of-range p clamps instead of panicking.
        h.record(10);
        let p = h.percentile(250.0);
        assert_eq!(p, h.percentile(100.0));
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let reg = MetricsRegistry::default();
        reg.counter("a").add(2);
        reg.counter("a").inc();
        reg.counter("b").set(7);
        let h = reg.histogram("lat");
        h.record(1);
        h.record(1000);
        h.record(1000);
        let snap = reg.snapshot();
        assert_eq!(
            snap.entries[0],
            SnapshotEntry::Counter {
                name: "a".into(),
                value: 3
            }
        );
        assert_eq!(
            snap.entries[1],
            SnapshotEntry::Counter {
                name: "b".into(),
                value: 7
            }
        );
        assert_eq!(
            snap.entries[2],
            SnapshotEntry::Histogram {
                name: "lat".into(),
                count: 3,
                sum: 2001,
                buckets: vec![(0, 1), (9, 2)],
            }
        );
    }

    #[test]
    fn snapshot_json_is_bench_style() {
        let reg = MetricsRegistry::default();
        reg.counter("train/steps").add(5);
        reg.histogram("step_ns").record(3);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("{\"metric\": \"step_ns\", \"kind\": \"histogram\", \"count\": 1, \"sum\": 3, \"buckets\": {\"1\": 1}},"));
        assert!(json.contains("{\"metric\": \"train/steps\", \"kind\": \"counter\", \"value\": 5}"));
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Arc::new(MetricsRegistry::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("hits");
                let h = reg.histogram("v");
                for i in 0..1000u64 {
                    c.inc();
                    h.record(i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("hits").get(), 4000);
        assert_eq!(reg.histogram("v").count(), 4000);
    }
}
