//! Flat f32 embedding segment store (`store.ntrs`).
//!
//! Layout (see `sections.rs` for the framing):
//!
//! * `META` — u32 dim, u64 count, u32 n_pairs, then n_pairs × (str key,
//!   str value). Free-form key/value metadata makes the store
//!   self-describing: `ntr index build` records the model kind, vocab and
//!   corpus parameters here so query time can reconstruct the exact
//!   embedding space.
//! * `TIDS` — u64 count, then count length-prefixed table-id strings.
//! * `VECS` — count × dim f32 little-endian bit patterns, row-major and
//!   contiguous. The section body is exactly the in-memory `Vec<f32>` layout,
//!   so a loader may mmap the file and point at this segment directly.

use std::path::Path;

use ntr_tensor::io::ByteReader;

use crate::sections::{self, get_str, put_str};
use crate::{l2_sq, IndexError};

const MAGIC: [u8; 4] = *b"NTRS";
const VERSION: u32 = 1;
const TAG_META: [u8; 4] = *b"META";
const TAG_TIDS: [u8; 4] = *b"TIDS";
const TAG_VECS: [u8; 4] = *b"VECS";

/// A flat store of `len × dim` f32 embeddings with per-row string ids.
#[derive(Debug)]
pub struct EmbeddingStore {
    dim: usize,
    ids: Vec<String>,
    vecs: Vec<f32>,
    meta: Vec<(String, String)>,
}

impl EmbeddingStore {
    /// Empty store for `dim`-dimensional embeddings.
    pub fn new(dim: usize) -> EmbeddingStore {
        EmbeddingStore {
            dim,
            ids: Vec::new(),
            vecs: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Append one embedding. The vector must match the store's dimension.
    pub fn push(&mut self, id: impl Into<String>, vec: &[f32]) -> Result<(), IndexError> {
        if vec.len() != self.dim {
            return Err(IndexError::DimMismatch {
                expected: self.dim,
                got: vec.len(),
            });
        }
        self.ids.push(id.into());
        self.vecs.extend_from_slice(vec);
        Ok(())
    }

    /// Number of stored embeddings.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no embeddings are stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Table id of row `i`.
    pub fn id(&self, i: usize) -> &str {
        &self.ids[i]
    }

    /// Embedding of row `i`.
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.vecs[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole flat `len × dim` segment.
    pub fn vectors(&self) -> &[f32] {
        &self.vecs
    }

    /// Set (or replace) a metadata key.
    pub fn set_meta(&mut self, key: &str, value: impl Into<String>) {
        let value = value.into();
        if let Some(pair) = self.meta.iter_mut().find(|(k, _)| k == key) {
            pair.1 = value;
        } else {
            self.meta.push((key.to_string(), value));
        }
    }

    /// Look up a metadata key.
    pub fn meta_get(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All metadata pairs in insertion order.
    pub fn meta(&self) -> &[(String, String)] {
        &self.meta
    }

    /// Atomically persist to `path`. Returns the file size in bytes.
    pub fn save(&self, path: &Path) -> Result<u64, IndexError> {
        let mut meta = Vec::new();
        meta.extend_from_slice(&(self.dim as u32).to_le_bytes());
        meta.extend_from_slice(&(self.len() as u64).to_le_bytes());
        meta.extend_from_slice(&(self.meta.len() as u32).to_le_bytes());
        for (k, v) in &self.meta {
            put_str(&mut meta, k);
            put_str(&mut meta, v);
        }
        let mut tids = Vec::new();
        tids.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for id in &self.ids {
            put_str(&mut tids, id);
        }
        let mut vecs = Vec::with_capacity(self.vecs.len() * 4);
        for v in &self.vecs {
            vecs.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        sections::write_file(
            path,
            MAGIC,
            VERSION,
            &[(TAG_META, meta), (TAG_TIDS, tids), (TAG_VECS, vecs)],
        )
    }

    /// Transactionally load from `path`: either a fully verified store or a
    /// typed error — truncated and corrupted files never panic.
    pub fn load(path: &Path) -> Result<EmbeddingStore, IndexError> {
        let bytes = std::fs::read(path)?;
        let sections = sections::read_file(&bytes, MAGIC, VERSION)?;

        let meta_sec = sections::require(&sections, TAG_META)?;
        let mut r = ByteReader::new(meta_sec.payload);
        let dim = r.u32()? as usize;
        let count = r.u64()?;
        let n_pairs = r.u32()? as usize;
        let mut meta = Vec::new();
        for _ in 0..n_pairs {
            let k = get_str(&mut r)?;
            let v = get_str(&mut r)?;
            meta.push((k, v));
        }
        if dim == 0 && count > 0 {
            return Err(IndexError::BadFormat(
                "zero-dimensional store with vectors".into(),
            ));
        }

        let tids_sec = sections::require(&sections, TAG_TIDS)?;
        let mut r = ByteReader::new(tids_sec.payload);
        let n_ids = r.u64()?;
        if n_ids != count {
            return Err(IndexError::Mismatch(format!(
                "TIDS holds {n_ids} id(s), META declares {count}"
            )));
        }
        let mut ids = Vec::new();
        for _ in 0..n_ids {
            ids.push(get_str(&mut r)?);
        }

        let vecs_sec = sections::require(&sections, TAG_VECS)?;
        let expected = count
            .checked_mul(dim as u64)
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| IndexError::BadFormat("vector segment size overflows".into()))?;
        if vecs_sec.payload.len() as u64 != expected {
            return Err(IndexError::Mismatch(format!(
                "VECS holds {} byte(s), expected {expected} for {count} × {dim} f32",
                vecs_sec.payload.len()
            )));
        }
        let mut r = ByteReader::new(vecs_sec.payload);
        let vecs = r.f32s((count as usize) * dim)?;

        Ok(EmbeddingStore {
            dim,
            ids,
            vecs,
            meta,
        })
    }

    /// Exact top-`k` by squared L2 distance — the ground truth the recall
    /// harness and `--brute` query path compare against. Ties break toward
    /// the lower row index, matching the ANN search.
    pub fn brute_force_topk(&self, query: &[f32], k: usize) -> Result<Vec<(u32, f32)>, IndexError> {
        if query.len() != self.dim {
            return Err(IndexError::DimMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        if k == 0 || k > self.len() {
            return Err(IndexError::BadK { k, len: self.len() });
        }
        let mut top = TopK::new(k);
        for i in 0..self.len() {
            top.offer(i as u32, l2_sq(query, self.vector(i)));
        }
        Ok(top.into_sorted())
    }
}

/// Bounded best-`k` accumulator with deterministic (distance, id) ordering.
pub(crate) struct TopK {
    k: usize,
    // Kept sorted ascending by (distance, id); worst candidate is last.
    heap: Vec<(u32, f32)>,
}

impl TopK {
    pub(crate) fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: Vec::with_capacity(k + 1),
        }
    }

    fn worse(a: (u32, f32), b: (u32, f32)) -> bool {
        match a.1.total_cmp(&b.1) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => a.0 > b.0,
        }
    }

    pub(crate) fn offer(&mut self, id: u32, dist: f32) {
        if self.heap.len() == self.k {
            let worst = *self.heap.last().expect("k > 0");
            if !Self::worse(worst, (id, dist)) {
                return;
            }
            self.heap.pop();
        }
        let pos = self.heap.partition_point(|&c| !Self::worse(c, (id, dist)));
        self.heap.insert(pos, (id, dist));
    }

    pub(crate) fn into_sorted(self) -> Vec<(u32, f32)> {
        self.heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> EmbeddingStore {
        let mut s = EmbeddingStore::new(3);
        s.set_meta("model", "bert");
        s.set_meta("dim", "3");
        for i in 0..8 {
            let f = i as f32;
            s.push(format!("tbl_{i}"), &[f, f * 0.5, -f]).unwrap();
        }
        s
    }

    #[test]
    fn push_rejects_wrong_dim() {
        let mut s = EmbeddingStore::new(3);
        let err = s.push("x", &[1.0, 2.0]).unwrap_err();
        assert_eq!(err.kind(), "DimMismatch");
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("ntrs_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.ntrs");
        let s = sample_store();
        let bytes = s.save(&path).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let loaded = EmbeddingStore::load(&path).unwrap();
        assert_eq!(loaded.len(), s.len());
        assert_eq!(loaded.dim(), s.dim());
        assert_eq!(loaded.meta(), s.meta());
        for i in 0..s.len() {
            assert_eq!(loaded.id(i), s.id(i));
            assert_eq!(loaded.vector(i), s.vector(i));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_atomic_and_cleans_up_tmp() {
        let dir = std::env::temp_dir().join(format!("ntrs_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.ntrs");
        sample_store().save(&path).unwrap();
        let mut other = EmbeddingStore::new(2);
        other.push("only", &[1.0, 2.0]).unwrap();
        other.save(&path).unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::PathBuf::from(tmp).exists());
        let loaded = EmbeddingStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.dim(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn brute_force_matches_hand_ranking() {
        let s = sample_store();
        let hits = s.brute_force_topk(s.vector(3), 3).unwrap();
        assert_eq!(hits[0].0, 3);
        assert_eq!(hits[0].1, 0.0);
        assert_eq!(hits.len(), 3);
        // Neighbors of row 3 in this linear layout are rows 2 and 4,
        // equidistant — the tie must break toward the lower id.
        assert_eq!(hits[1].0, 2);
        assert_eq!(hits[2].0, 4);
    }

    #[test]
    fn brute_force_rejects_bad_k_and_dim() {
        let s = sample_store();
        assert_eq!(s.brute_force_topk(&[0.0; 3], 0).unwrap_err().kind(), "BadK");
        assert_eq!(s.brute_force_topk(&[0.0; 3], 9).unwrap_err().kind(), "BadK");
        assert_eq!(
            s.brute_force_topk(&[0.0; 2], 1).unwrap_err().kind(),
            "DimMismatch"
        );
    }

    #[test]
    fn topk_is_deterministic_under_ties() {
        let mut t = TopK::new(2);
        t.offer(5, 1.0);
        t.offer(1, 1.0);
        t.offer(3, 1.0);
        assert_eq!(t.into_sorted(), vec![(1, 1.0), (3, 1.0)]);
    }
}
