//! Persistent embedding store + deterministic IVF-flat ANN index.
//!
//! This crate turns a corpus of table embeddings into something searchable:
//!
//! * [`EmbeddingStore`] — a flat, mmap-friendly f32 segment store persisted
//!   with the same atomic-write discipline as `ntr-nn::serialize` (NTRW):
//!   per-section CRC32s, a file-level CRC trailer, temp-file + fsync + rename,
//!   and a transactional bounds-checked load that either yields a verified
//!   store or a typed [`IndexError`] — never a partially applied one.
//! * [`IvfIndex`] — an IVF-flat approximate-nearest-neighbor index built with
//!   a seeded, sequential k-means so the same seed over the same store
//!   produces byte-identical persisted files regardless of thread count.
//! * [`SearchIndex`] — the pair of the two loaded from a directory, exposing
//!   `search(query, k, nprobe)` plus exact [`EmbeddingStore::brute_force_topk`]
//!   ground truth for recall harnesses.
//!
//! Why IVF-flat rather than HNSW: the store is already a flat contiguous f32
//! segment, so an inverted-file layout (centroids + per-list vector ids) reuses
//! it directly instead of duplicating vectors into a graph; construction is a
//! fixed number of Lloyd iterations over deterministic seeded init, which makes
//! the byte-identical-persistence guarantee trivial to state and test (HNSW's
//! insertion-order-dependent graph makes that guarantee much more fragile); and
//! search cost `(nlist + nprobe·n/nlist)·d` gives the required ≥5× win over
//! brute force at the 10k–100k corpus sizes this repo targets.
//!
//! File formats are documented in `DESIGN.md` §12.

mod ivf;
mod sections;
mod store;

pub use ivf::{IvfConfig, IvfIndex, PackedLists, SearchResult};
pub use store::EmbeddingStore;

use std::fmt;
use std::io;
use std::path::Path;

use ntr_tensor::io::ShortRead;

/// Typed error for every store/index failure path. Loading a truncated or
/// corrupted file must surface one of these — never a panic.
#[derive(Debug)]
pub enum IndexError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// Structural problem: bad magic, short read, unknown section, bad UTF-8.
    BadFormat(String),
    /// CRC or cross-file consistency failure (store vs index dim/count).
    Mismatch(String),
    /// `k` outside `1..=len` for a search against `len` stored vectors.
    BadK { k: usize, len: usize },
    /// Query (or pushed vector) dimensionality differs from the store's.
    DimMismatch { expected: usize, got: usize },
    /// Building an index over zero vectors.
    EmptyStore,
}

impl IndexError {
    /// Stable machine-readable tag, mirrored on the serve wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            IndexError::Io(_) => "Io",
            IndexError::BadFormat(_) => "BadFormat",
            IndexError::Mismatch(_) => "Mismatch",
            IndexError::BadK { .. } => "BadK",
            IndexError::DimMismatch { .. } => "DimMismatch",
            IndexError::EmptyStore => "EmptyStore",
        }
    }
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Io(e) => write!(f, "io error: {e}"),
            IndexError::BadFormat(m) => write!(f, "bad format: {m}"),
            IndexError::Mismatch(m) => write!(f, "mismatch: {m}"),
            IndexError::BadK { k, len } => {
                write!(f, "bad k: {k} not in 1..={len}")
            }
            IndexError::DimMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            IndexError::EmptyStore => write!(f, "cannot index an empty store"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<io::Error> for IndexError {
    fn from(e: io::Error) -> Self {
        IndexError::Io(e)
    }
}

impl From<ShortRead> for IndexError {
    fn from(e: ShortRead) -> Self {
        IndexError::BadFormat(format!(
            "short read: needed {} bytes, {} remaining",
            e.needed, e.remaining
        ))
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// Sequential accumulation: the result is bit-stable for a given pair, which
/// the deterministic-build guarantee depends on.
pub(crate) fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// An embedding store and its IVF index assembled together (usually loaded
/// from one directory), plus a list-contiguous packed copy of the vectors
/// so searches scan sequential memory.
///
/// `packed` is a snapshot taken at construction. `EmbeddingStore` only ever
/// grows (`push`), and a grown store fails the shape check on the next
/// search, so the snapshot cannot silently go stale.
pub struct SearchIndex {
    pub store: EmbeddingStore,
    pub ivf: IvfIndex,
    packed: PackedLists,
}

impl SearchIndex {
    /// File name of the embedding store inside an index directory.
    pub const STORE_FILE: &'static str = "store.ntrs";
    /// File name of the IVF index inside an index directory.
    pub const IVF_FILE: &'static str = "index.ntri";

    /// Assembles an in-memory search index, verifying that the index was
    /// built over exactly this store (dim and vector count must agree) and
    /// packing the vectors into probe order.
    pub fn new(store: EmbeddingStore, ivf: IvfIndex) -> Result<SearchIndex, IndexError> {
        if ivf.dim() != store.dim() {
            return Err(IndexError::Mismatch(format!(
                "index dim {} != store dim {}",
                ivf.dim(),
                store.dim()
            )));
        }
        if ivf.n_vectors() != store.len() as u64 {
            return Err(IndexError::Mismatch(format!(
                "index built over {} vectors, store holds {}",
                ivf.n_vectors(),
                store.len()
            )));
        }
        let packed = ivf.pack(&store)?;
        Ok(SearchIndex { store, ivf, packed })
    }

    /// Load `store.ntrs` + `index.ntri` from `dir` (see [`SearchIndex::new`]
    /// for the cross-file validation).
    pub fn open(dir: &Path) -> Result<SearchIndex, IndexError> {
        let store = EmbeddingStore::load(&dir.join(Self::STORE_FILE))?;
        let ivf = IvfIndex::load(&dir.join(Self::IVF_FILE))?;
        Self::new(store, ivf)
    }

    /// Approximate top-`k` search over the packed lists. `nprobe = None`
    /// uses the index default. Identical results to
    /// [`IvfIndex::search`] against the store.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        nprobe: Option<usize>,
    ) -> Result<SearchResult, IndexError> {
        let nprobe = nprobe.unwrap_or_else(|| self.ivf.default_nprobe());
        self.ivf.search_packed(&self.packed, query, k, nprobe)
    }
}
