//! Shared on-disk framing for `store.ntrs` and `index.ntri`.
//!
//! Both files use the NTRW discipline from `ntr-nn::serialize`:
//!
//! ```text
//! magic[4] version:u32 section_count:u32
//! repeat section_count times:
//!     tag[4] len:u64 payload[len] crc32(payload):u32
//! "NTRE" crc32(every preceding byte):u32
//! ```
//!
//! All integers are little-endian. Writers go through a temp-file sibling,
//! fsync, rename, then fsync the directory, so a crash mid-write leaves the
//! previous file (or nothing) — never a torn one. Readers verify the file
//! CRC before looking at any section, then each section CRC, and never trust
//! a declared length beyond the bytes actually present.

use std::io::Write;
use std::path::{Path, PathBuf};

use ntr_tensor::io::{crc32, ByteReader, CrcWriter};

use crate::IndexError;

pub(crate) const TRAILER: [u8; 4] = *b"NTRE";

/// One decoded section: tag plus a borrowed, CRC-verified payload.
pub(crate) struct Section<'a> {
    pub tag: [u8; 4],
    pub payload: &'a [u8],
}

/// Atomically write a section file. Returns the total byte count on disk.
pub(crate) fn write_file(
    path: &Path,
    magic: [u8; 4],
    version: u32,
    sections: &[([u8; 4], Vec<u8>)],
) -> Result<u64, IndexError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let result = (|| -> Result<u64, IndexError> {
        let file = std::fs::File::create(&tmp)?;
        let mut w = CrcWriter::new(std::io::BufWriter::new(file));
        w.write_all(&magic)?;
        w.write_all(&version.to_le_bytes())?;
        w.write_all(&(sections.len() as u32).to_le_bytes())?;
        for (tag, payload) in sections {
            w.write_all(tag)?;
            w.write_all(&(payload.len() as u64).to_le_bytes())?;
            w.write_all(payload)?;
            w.write_all(&crc32(payload).to_le_bytes())?;
        }
        w.write_all(&TRAILER)?;
        let file_crc = w.crc();
        let bytes = w.written() + 4;
        let mut bw = w.into_inner();
        bw.write_all(&file_crc.to_le_bytes())?;
        bw.flush()?;
        bw.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(bytes)
    })();
    let bytes = match result {
        Ok(b) => b,
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
    };
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(bytes)
}

/// Parse and verify a section file read into memory. Every malformed input —
/// including every truncation prefix — yields a typed error, never a panic.
pub(crate) fn read_file<'a>(
    bytes: &'a [u8],
    magic: [u8; 4],
    version: u32,
) -> Result<Vec<Section<'a>>, IndexError> {
    // Header (12) + trailer tag (4) + file CRC (4) is the empty-file floor.
    if bytes.len() < 20 {
        return Err(IndexError::BadFormat(format!(
            "file too short: {} byte(s)",
            bytes.len()
        )));
    }
    let body = &bytes[..bytes.len() - 4];
    let declared = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != declared {
        return Err(IndexError::Mismatch("file CRC mismatch".into()));
    }
    if body[body.len() - 4..] != TRAILER {
        return Err(IndexError::BadFormat("missing NTRE trailer".into()));
    }
    let mut r = ByteReader::new(&body[..body.len() - 4]);
    let got_magic = r.take(4)?;
    if got_magic != magic {
        return Err(IndexError::BadFormat(format!(
            "bad magic {:?}, expected {:?}",
            got_magic, magic
        )));
    }
    let got_version = r.u32()?;
    if got_version != version {
        return Err(IndexError::BadFormat(format!(
            "unsupported version {got_version}, expected {version}"
        )));
    }
    let count = r.u32()? as usize;
    let mut sections = Vec::new();
    for i in 0..count {
        let tag: [u8; 4] = r.take(4)?.try_into().unwrap();
        let len = r.u64()?;
        if len > r.remaining() as u64 {
            return Err(IndexError::BadFormat(format!(
                "section {i} declares {len} byte(s) but only {} remain",
                r.remaining()
            )));
        }
        let payload = r.take(len as usize)?;
        let crc = r.u32()?;
        if crc32(payload) != crc {
            return Err(IndexError::Mismatch(format!(
                "section {i} ({}) CRC mismatch",
                String::from_utf8_lossy(&tag)
            )));
        }
        sections.push(Section { tag, payload });
    }
    if !r.is_empty() {
        return Err(IndexError::BadFormat(format!(
            "{} trailing byte(s) after the last section",
            r.remaining()
        )));
    }
    Ok(sections)
}

/// Serialize a length-prefixed UTF-8 string (u32 len + bytes).
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Parse a length-prefixed UTF-8 string.
pub(crate) fn get_str(r: &mut ByteReader<'_>) -> Result<String, IndexError> {
    let len = r.u32()? as usize;
    let bytes = r.take(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|e| IndexError::BadFormat(format!("non-UTF8 string: {e}")))
}

/// Find a required section by tag.
pub(crate) fn require<'a, 'b>(
    sections: &'b [Section<'a>],
    tag: [u8; 4],
) -> Result<&'b Section<'a>, IndexError> {
    sections.iter().find(|s| s.tag == tag).ok_or_else(|| {
        IndexError::BadFormat(format!("missing section {}", String::from_utf8_lossy(&tag)))
    })
}
