//! Deterministic IVF-flat ANN index (`index.ntri`).
//!
//! Construction is seeded k-means over the store's embeddings: initial
//! centroids are the first `nlist` rows of a seeded Fisher–Yates permutation,
//! followed by a fixed number of sequential Lloyd iterations (ties broken
//! toward the lower centroid index, empty clusters keep their previous
//! centroid). Every floating-point reduction is sequential and unaffected by
//! `NTR_THREADS`, so the same seed over the same store produces byte-identical
//! persisted files — the deterministic-build test pins exactly that.
//!
//! Search computes distances to all `nlist` centroids, probes the `nprobe`
//! closest inverted lists, and keeps a deterministic top-`k` by
//! `(distance, id)`. Cost is `(nlist + nprobe·n/nlist)·dim` multiply-adds
//! versus `n·dim` for a brute-force scan.

use std::path::Path;

use ntr_tensor::io::ByteReader;

use crate::sections;
use crate::store::{EmbeddingStore, TopK};
use crate::{l2_sq, IndexError};

const MAGIC: [u8; 4] = *b"NTRI";
const VERSION: u32 = 1;
const TAG_META: [u8; 4] = *b"META";
const TAG_CENT: [u8; 4] = *b"CENT";
const TAG_LIST: [u8; 4] = *b"LIST";

/// Build-time parameters. `Default` picks everything automatically.
#[derive(Debug, Clone)]
pub struct IvfConfig {
    /// Number of inverted lists; `0` = auto (`sqrt(n)` clamped to `[1, n]`).
    pub nlist: usize,
    /// Lloyd iterations for k-means training.
    pub train_iters: usize,
    /// Seed for centroid initialization; same seed ⇒ byte-identical index.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig {
            nlist: 0,
            train_iters: 8,
            seed: 7,
        }
    }
}

/// One answered search: ranked `(row id, squared L2 distance)` pairs plus the
/// number of stored vectors actually scanned (the work an exact scan avoids).
#[derive(Debug, Clone)]
pub struct SearchResult {
    pub hits: Vec<(u32, f32)>,
    pub scanned: usize,
}

/// A store's vectors copied into list-contiguous (probe) order — a derived,
/// never-persisted cache built by [`IvfIndex::pack`] so
/// [`IvfIndex::search_packed`] scans sequential memory.
#[derive(Debug)]
pub struct PackedLists {
    dim: usize,
    /// List-concatenated vectors, probe order.
    vecs: Vec<f32>,
    /// Store row id of each packed vector, same order.
    ids: Vec<u32>,
    /// `offsets[c]..offsets[c + 1]` bound list `c`, in vectors.
    offsets: Vec<usize>,
}

/// IVF-flat index: k-means centroids plus per-centroid id lists over a store.
#[derive(Debug)]
pub struct IvfIndex {
    dim: usize,
    n_vectors: u64,
    seed: u64,
    train_iters: u32,
    centroids: Vec<f32>,
    lists: Vec<Vec<u32>>,
}

/// Minimal deterministic RNG (splitmix64) for centroid initialization; kept
/// private so the on-disk format depends on nothing outside this crate.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

impl IvfIndex {
    /// Train an index over every vector currently in `store`.
    pub fn build(store: &EmbeddingStore, cfg: &IvfConfig) -> Result<IvfIndex, IndexError> {
        let n = store.len();
        if n == 0 {
            return Err(IndexError::EmptyStore);
        }
        let dim = store.dim();
        let nlist = if cfg.nlist == 0 {
            ((n as f64).sqrt().round() as usize).clamp(1, n)
        } else {
            cfg.nlist.clamp(1, n)
        };

        // Seeded Fisher–Yates permutation; the first nlist rows seed k-means.
        let mut rng = SplitMix64(cfg.seed ^ 0x4E54_5249); // "NTRI"
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let mut centroids = Vec::with_capacity(nlist * dim);
        for &row in perm.iter().take(nlist) {
            centroids.extend_from_slice(store.vector(row as usize));
        }

        let mut assign = vec![0u32; n];
        for _ in 0..cfg.train_iters {
            for (i, slot) in assign.iter_mut().enumerate() {
                *slot = nearest_centroid(&centroids, dim, store.vector(i));
            }
            // Recompute means with sequential f64 accumulation (deterministic,
            // and robust to long sums); empty clusters keep their centroid.
            let mut sums = vec![0.0f64; nlist * dim];
            let mut counts = vec![0u64; nlist];
            for (i, &c) in assign.iter().enumerate() {
                let c = c as usize;
                counts[c] += 1;
                for (d, v) in store.vector(i).iter().enumerate() {
                    sums[c * dim + d] += f64::from(*v);
                }
            }
            for c in 0..nlist {
                if counts[c] == 0 {
                    continue;
                }
                for d in 0..dim {
                    centroids[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32;
                }
            }
        }

        let mut lists = vec![Vec::new(); nlist];
        for (i, slot) in assign.iter_mut().enumerate() {
            *slot = nearest_centroid(&centroids, dim, store.vector(i));
            lists[*slot as usize].push(i as u32);
        }

        Ok(IvfIndex {
            dim,
            n_vectors: n as u64,
            seed: cfg.seed,
            train_iters: cfg.train_iters as u32,
            centroids,
            lists,
        })
    }

    /// Embedding dimensionality the index was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of store vectors the index was built over.
    pub fn n_vectors(&self) -> u64 {
        self.n_vectors
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Seed the index was trained under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Default probe count: an eighth of the lists, at least one. At the
    /// auto `nlist = sqrt(n)` this scans ~12.5% of the corpus for a ~7×
    /// distance-computation advantage over brute force.
    pub fn default_nprobe(&self) -> usize {
        (self.nlist() / 8).max(1)
    }

    /// The indexed collection must have exactly the shape this index was
    /// built over.
    fn check_shape(&self, len: usize, dim: usize) -> Result<(), IndexError> {
        if dim != self.dim || len as u64 != self.n_vectors {
            return Err(IndexError::Mismatch(format!(
                "index built over {} × {} store, given {} × {}",
                self.n_vectors, self.dim, len, dim
            )));
        }
        Ok(())
    }

    /// Shared query validation against an indexed collection of `len`
    /// vectors; returns the clamped probe count.
    fn validate_query(
        &self,
        len: usize,
        dim: usize,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Result<usize, IndexError> {
        self.check_shape(len, dim)?;
        if query.len() != self.dim {
            return Err(IndexError::DimMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        if k == 0 || k > len {
            return Err(IndexError::BadK { k, len });
        }
        Ok(nprobe.clamp(1, self.nlist()))
    }

    /// The `nprobe` inverted lists whose centroids are closest to `query`.
    fn probe_order(&self, query: &[f32], nprobe: usize) -> Vec<(u32, f32)> {
        let mut probes = TopK::new(nprobe);
        for c in 0..self.nlist() {
            probes.offer(
                c as u32,
                l2_sq(query, &self.centroids[c * self.dim..(c + 1) * self.dim]),
            );
        }
        probes.into_sorted()
    }

    /// Approximate top-`k`: probe the `nprobe` nearest inverted lists,
    /// reading vectors from `store` by row id. [`IvfIndex::search_packed`]
    /// answers identically but scans sequential memory; this indirect form
    /// needs no packed copy.
    pub fn search(
        &self,
        store: &EmbeddingStore,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Result<SearchResult, IndexError> {
        let nprobe = self.validate_query(store.len(), store.dim(), query, k, nprobe)?;
        let mut top = TopK::new(k);
        let mut scanned = 0usize;
        for (c, _) in self.probe_order(query, nprobe) {
            for &row in &self.lists[c as usize] {
                top.offer(row, l2_sq(query, store.vector(row as usize)));
                scanned += 1;
            }
        }
        Ok(SearchResult {
            hits: top.into_sorted(),
            scanned,
        })
    }

    /// Copies `store`'s vectors into list-contiguous (probe) order. A probe
    /// then sweeps sequential memory instead of chasing row ids through the
    /// store — at 10k+ vectors that is the difference between a
    /// prefetch-friendly scan and a random walk, and most of the index's
    /// latency advantage over brute force.
    pub fn pack(&self, store: &EmbeddingStore) -> Result<PackedLists, IndexError> {
        self.check_shape(store.len(), store.dim())?;
        let mut vecs = Vec::with_capacity(store.len() * self.dim);
        let mut ids = Vec::with_capacity(store.len());
        let mut offsets = Vec::with_capacity(self.lists.len() + 1);
        offsets.push(0usize);
        for list in &self.lists {
            for &row in list {
                vecs.extend_from_slice(store.vector(row as usize));
                ids.push(row);
            }
            offsets.push(ids.len());
        }
        Ok(PackedLists {
            dim: self.dim,
            vecs,
            ids,
            offsets,
        })
    }

    /// As [`IvfIndex::search`], over a packed copy of the same store:
    /// identical hits (same distances, same `(distance, id)` tie-breaks),
    /// sequential scans.
    pub fn search_packed(
        &self,
        packed: &PackedLists,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Result<SearchResult, IndexError> {
        let nprobe = self.validate_query(packed.ids.len(), packed.dim, query, k, nprobe)?;
        let mut top = TopK::new(k);
        let mut scanned = 0usize;
        for (c, _) in self.probe_order(query, nprobe) {
            let (lo, hi) = (packed.offsets[c as usize], packed.offsets[c as usize + 1]);
            for (i, v) in packed.vecs[lo * self.dim..hi * self.dim]
                .chunks_exact(self.dim)
                .enumerate()
            {
                top.offer(packed.ids[lo + i], l2_sq(query, v));
            }
            scanned += hi - lo;
        }
        Ok(SearchResult {
            hits: top.into_sorted(),
            scanned,
        })
    }

    /// Atomically persist to `path`. Returns the file size in bytes.
    pub fn save(&self, path: &Path) -> Result<u64, IndexError> {
        let mut meta = Vec::new();
        meta.extend_from_slice(&(self.dim as u32).to_le_bytes());
        meta.extend_from_slice(&self.n_vectors.to_le_bytes());
        meta.extend_from_slice(&self.seed.to_le_bytes());
        meta.extend_from_slice(&(self.nlist() as u32).to_le_bytes());
        meta.extend_from_slice(&self.train_iters.to_le_bytes());
        let mut cent = Vec::with_capacity(self.centroids.len() * 4);
        for v in &self.centroids {
            cent.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let mut list = Vec::new();
        list.extend_from_slice(&(self.nlist() as u32).to_le_bytes());
        for l in &self.lists {
            list.extend_from_slice(&(l.len() as u32).to_le_bytes());
            for &id in l {
                list.extend_from_slice(&id.to_le_bytes());
            }
        }
        sections::write_file(
            path,
            MAGIC,
            VERSION,
            &[(TAG_META, meta), (TAG_CENT, cent), (TAG_LIST, list)],
        )
    }

    /// Transactionally load from `path` — typed errors, never a panic.
    pub fn load(path: &Path) -> Result<IvfIndex, IndexError> {
        let bytes = std::fs::read(path)?;
        let sections = sections::read_file(&bytes, MAGIC, VERSION)?;

        let meta_sec = sections::require(&sections, TAG_META)?;
        let mut r = ByteReader::new(meta_sec.payload);
        let dim = r.u32()? as usize;
        let n_vectors = r.u64()?;
        let seed = r.u64()?;
        let nlist = r.u32()? as usize;
        let train_iters = r.u32()?;
        if nlist == 0 || dim == 0 {
            return Err(IndexError::BadFormat(format!(
                "degenerate index: nlist {nlist}, dim {dim}"
            )));
        }
        if nlist as u64 > n_vectors {
            return Err(IndexError::Mismatch(format!(
                "{nlist} list(s) over {n_vectors} vector(s)"
            )));
        }

        let cent_sec = sections::require(&sections, TAG_CENT)?;
        let expected = (nlist as u64)
            .checked_mul(dim as u64)
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| IndexError::BadFormat("centroid segment size overflows".into()))?;
        if cent_sec.payload.len() as u64 != expected {
            return Err(IndexError::Mismatch(format!(
                "CENT holds {} byte(s), expected {expected} for {nlist} × {dim} f32",
                cent_sec.payload.len()
            )));
        }
        let mut r = ByteReader::new(cent_sec.payload);
        let centroids = r.f32s(nlist * dim)?;

        let list_sec = sections::require(&sections, TAG_LIST)?;
        let mut r = ByteReader::new(list_sec.payload);
        let got_nlist = r.u32()? as usize;
        if got_nlist != nlist {
            return Err(IndexError::Mismatch(format!(
                "LIST holds {got_nlist} list(s), META declares {nlist}"
            )));
        }
        let mut lists = Vec::with_capacity(nlist);
        let mut total = 0u64;
        for _ in 0..nlist {
            let len = r.u32()? as usize;
            // Pre-check against the bytes actually present before allocating.
            if (len as u64) * 4 > r.remaining() as u64 {
                return Err(IndexError::BadFormat(format!(
                    "list declares {len} id(s) but only {} byte(s) remain",
                    r.remaining()
                )));
            }
            let mut ids = Vec::with_capacity(len);
            for _ in 0..len {
                let id = r.u32()?;
                if u64::from(id) >= n_vectors {
                    return Err(IndexError::Mismatch(format!(
                        "list id {id} out of range for {n_vectors} vector(s)"
                    )));
                }
                ids.push(id);
            }
            total += len as u64;
            lists.push(ids);
        }
        if total != n_vectors {
            return Err(IndexError::Mismatch(format!(
                "lists hold {total} id(s), META declares {n_vectors}"
            )));
        }
        if !r.is_empty() {
            return Err(IndexError::BadFormat("trailing bytes in LIST".into()));
        }

        Ok(IvfIndex {
            dim,
            n_vectors,
            seed,
            train_iters,
            centroids,
            lists,
        })
    }
}

fn nearest_centroid(centroids: &[f32], dim: usize, v: &[f32]) -> u32 {
    let mut best = 0u32;
    let mut best_d = f32::INFINITY;
    for (c, chunk) in centroids.chunks_exact(dim).enumerate() {
        let d = l2_sq(v, chunk);
        if d < best_d {
            best_d = d;
            best = c as u32;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic clustered vectors: `n` points around `n_clusters`
    /// well-separated centers, no external RNG.
    fn clustered_store(n: usize, n_clusters: usize, dim: usize) -> EmbeddingStore {
        let mut s = EmbeddingStore::new(dim);
        let mut rng = SplitMix64(0xDEC0DE);
        for i in 0..n {
            let c = i % n_clusters;
            let mut v = vec![0.0f32; dim];
            for (d, slot) in v.iter_mut().enumerate() {
                let center = if d % n_clusters == c { 10.0 } else { 0.0 };
                let jitter = (rng.below(1000) as f32 / 1000.0) - 0.5;
                *slot = center + jitter;
            }
            s.push(format!("t{i}"), &v).unwrap();
        }
        s
    }

    #[test]
    fn exhaustive_probe_matches_brute_force_exactly() {
        let s = clustered_store(400, 8, 16);
        let ivf = IvfIndex::build(&s, &IvfConfig::default()).unwrap();
        for q in [0usize, 17, 123, 399] {
            let exact = s.brute_force_topk(s.vector(q), 10).unwrap();
            let approx = ivf.search(&s, s.vector(q), 10, ivf.nlist()).unwrap();
            assert_eq!(approx.hits, exact, "query {q}");
            assert_eq!(approx.scanned, s.len());
        }
    }

    #[test]
    fn default_nprobe_recall_is_high_on_clustered_data() {
        let s = clustered_store(600, 6, 16);
        let ivf = IvfIndex::build(&s, &IvfConfig::default()).unwrap();
        let k = 10;
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in 0..50 {
            let exact = s.brute_force_topk(s.vector(q), k).unwrap();
            let approx = ivf
                .search(&s, s.vector(q), k, ivf.default_nprobe())
                .unwrap();
            assert!(approx.scanned < s.len(), "default nprobe must not scan all");
            for (id, _) in &exact {
                if approx.hits.iter().any(|(a, _)| a == id) {
                    hit += 1;
                }
            }
            total += k;
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.9, "recall@10 {recall} < 0.9");
    }

    #[test]
    fn same_seed_builds_byte_identical_files() {
        let dir = std::env::temp_dir().join(format!("ntri_det_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = clustered_store(300, 5, 8);
        let cfg = IvfConfig {
            seed: 42,
            ..IvfConfig::default()
        };
        let a = IvfIndex::build(&s, &cfg).unwrap();
        let b = IvfIndex::build(&s, &cfg).unwrap();
        let pa = dir.join("a.ntri");
        let pb = dir.join("b.ntri");
        a.save(&pa).unwrap();
        b.save(&pb).unwrap();
        assert_eq!(
            std::fs::read(&pa).unwrap(),
            std::fs::read(&pb).unwrap(),
            "same seed must persist byte-identically"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_load_round_trip_preserves_results() {
        let dir = std::env::temp_dir().join(format!("ntri_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = clustered_store(200, 4, 8);
        let ivf = IvfIndex::build(&s, &IvfConfig::default()).unwrap();
        let path = dir.join("index.ntri");
        ivf.save(&path).unwrap();
        let loaded = IvfIndex::load(&path).unwrap();
        assert_eq!(loaded.nlist(), ivf.nlist());
        assert_eq!(loaded.seed(), ivf.seed());
        let a = ivf.search(&s, s.vector(7), 5, 3).unwrap();
        let b = loaded.search(&s, s.vector(7), 5, 3).unwrap();
        assert_eq!(a.hits, b.hits);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn search_rejects_bad_inputs() {
        let s = clustered_store(50, 4, 8);
        let ivf = IvfIndex::build(&s, &IvfConfig::default()).unwrap();
        assert_eq!(
            ivf.search(&s, s.vector(0), 0, 1).unwrap_err().kind(),
            "BadK"
        );
        assert_eq!(
            ivf.search(&s, s.vector(0), 51, 1).unwrap_err().kind(),
            "BadK"
        );
        assert_eq!(
            ivf.search(&s, &[0.0; 3], 5, 1).unwrap_err().kind(),
            "DimMismatch"
        );
        let other = clustered_store(49, 4, 8);
        assert_eq!(
            ivf.search(&other, &[0.0; 8], 5, 1).unwrap_err().kind(),
            "Mismatch"
        );
    }

    #[test]
    fn packed_search_is_identical_to_indirect_search() {
        let s = clustered_store(500, 7, 16);
        let ivf = IvfIndex::build(&s, &IvfConfig::default()).unwrap();
        let packed = ivf.pack(&s).unwrap();
        for q in [0usize, 3, 99, 250, 499] {
            for nprobe in [1, 2, ivf.default_nprobe(), ivf.nlist()] {
                let indirect = ivf.search(&s, s.vector(q), 10, nprobe).unwrap();
                let fast = ivf.search_packed(&packed, s.vector(q), 10, nprobe).unwrap();
                assert_eq!(fast.hits, indirect.hits, "query {q} nprobe {nprobe}");
                assert_eq!(fast.scanned, indirect.scanned);
            }
        }
        // Validation parity on the packed path.
        assert_eq!(
            ivf.search_packed(&packed, s.vector(0), 0, 1)
                .unwrap_err()
                .kind(),
            "BadK"
        );
        assert_eq!(
            ivf.search_packed(&packed, &[0.0; 3], 5, 1)
                .unwrap_err()
                .kind(),
            "DimMismatch"
        );
    }

    #[test]
    fn build_rejects_empty_store() {
        let s = EmbeddingStore::new(4);
        assert_eq!(
            IvfIndex::build(&s, &IvfConfig::default())
                .unwrap_err()
                .kind(),
            "EmptyStore"
        );
    }
}
