//! Fault-injection round trips: every truncation prefix (and every single-bit
//! corruption probe) of the persisted store/index files must load as a typed
//! [`IndexError`] — never a panic, never a silently wrong store. Mirrors the
//! NTRW drill in `ntr-nn::serialize`.

use std::path::PathBuf;

use ntr_index::{EmbeddingStore, IvfConfig, IvfIndex};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ntr_index_fault_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_files(dir: &std::path::Path) -> (PathBuf, PathBuf) {
    let mut store = EmbeddingStore::new(4);
    store.set_meta("model", "bert");
    for i in 0..32 {
        let f = i as f32;
        store
            .push(format!("tbl_{i}"), &[f, -f, f * 0.25, 1.0])
            .unwrap();
    }
    let ivf = IvfIndex::build(&store, &IvfConfig::default()).unwrap();
    let sp = dir.join("store.ntrs");
    let ip = dir.join("index.ntri");
    store.save(&sp).unwrap();
    ivf.save(&ip).unwrap();
    (sp, ip)
}

#[test]
fn every_store_truncation_prefix_is_a_typed_error() {
    let dir = scratch("store_trunc");
    let (sp, _) = sample_files(&dir);
    let full = std::fs::read(&sp).unwrap();
    let path = dir.join("truncated.ntrs");
    for len in 0..full.len() {
        std::fs::write(&path, &full[..len]).unwrap();
        let err = EmbeddingStore::load(&path)
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} byte(s) loaded successfully"));
        // Exercise the typed surface: kind and Display must both be usable.
        assert!(!err.kind().is_empty());
        assert!(!err.to_string().is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_index_truncation_prefix_is_a_typed_error() {
    let dir = scratch("index_trunc");
    let (_, ip) = sample_files(&dir);
    let full = std::fs::read(&ip).unwrap();
    let path = dir.join("truncated.ntri");
    for len in 0..full.len() {
        std::fs::write(&path, &full[..len]).unwrap();
        let err = IvfIndex::load(&path)
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} byte(s) loaded successfully"));
        assert!(!err.kind().is_empty());
        assert!(!err.to_string().is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_bytes_fail_the_crc_not_the_loader() {
    let dir = scratch("flip");
    let (sp, ip) = sample_files(&dir);
    for (src, is_store) in [(&sp, true), (&ip, false)] {
        let full = std::fs::read(src).unwrap();
        let path = dir.join("flipped");
        // Probe a byte in every region: header, sections, trailer.
        for pos in (0..full.len()).step_by(7).chain([full.len() - 1]) {
            let mut bad = full.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            let failed = if is_store {
                EmbeddingStore::load(&path).is_err()
            } else {
                IvfIndex::load(&path).is_err()
            };
            assert!(failed, "flip at byte {pos} loaded successfully");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_files_surface_io_errors() {
    let dir = scratch("missing");
    let err = EmbeddingStore::load(&dir.join("nope.ntrs")).unwrap_err();
    assert_eq!(err.kind(), "Io");
    let err = IvfIndex::load(&dir.join("nope.ntri")).unwrap_err();
    assert_eq!(err.kind(), "Io");
    let _ = std::fs::remove_dir_all(&dir);
}
