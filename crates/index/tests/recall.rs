//! Exact recall@k harness over the synthetic KB: encode a real `ntr-corpus`
//! table corpus through the real pipeline, index the embeddings, and compare
//! IVF answers against brute-force ground truth.

use ntr::corpus::{CorpusConfig, TableCorpus, World, WorldConfig};
use ntr::table::LinearizerOptions;
use ntr::{build_encoder, EncodeRequest, EncoderSpec, ModelKind, Pipeline};
use ntr_index::{EmbeddingStore, IvfConfig, IvfIndex, SearchIndex};

const K: usize = 10;

/// Encode `n_tables` synthetic-KB tables into an embedding store.
fn encoded_store(n_tables: usize) -> EmbeddingStore {
    let world = World::generate(WorldConfig::default());
    let corpus = TableCorpus::generate(
        &world,
        &CorpusConfig {
            n_tables,
            ..CorpusConfig::default()
        },
    );
    let pipeline = Pipeline::builder()
        .vocab_from_tables(&corpus.tables)
        .vocab_size(600)
        .options(LinearizerOptions {
            max_tokens: 64,
            ..LinearizerOptions::default()
        })
        .build()
        .expect("vocab training");
    let cfg = ntr::models::ModelConfig::tiny(pipeline.tokenizer().vocab_size());
    let mut model = build_encoder(EncoderSpec::f32(ModelKind::Bert), &cfg).expect("f32 spec");
    let mut store = EmbeddingStore::new(cfg.d_model);
    let reqs: Vec<EncodeRequest> = corpus
        .tables
        .iter()
        .map(|t| EncodeRequest::captioned(t.clone()))
        .collect();
    for chunk in reqs.chunks(64) {
        let encodings = pipeline
            .encode_batch(model.as_mut(), chunk)
            .expect("encode_batch");
        for (req, enc) in chunk.iter().zip(encodings.iter()) {
            let emb = enc.table_embedding();
            store.push(req.table.id.clone(), emb.data()).unwrap();
        }
    }
    store
}

fn recall_at_k(store: &EmbeddingStore, ivf: &IvfIndex, queries: &[usize], nprobe: usize) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for &q in queries {
        let exact = store.brute_force_topk(store.vector(q), K).unwrap();
        let approx = ivf.search(store, store.vector(q), K, nprobe).unwrap();
        for (id, _) in &exact {
            if approx.hits.iter().any(|(a, _)| a == id) {
                hit += 1;
            }
        }
        total += K;
    }
    hit as f64 / total as f64
}

#[test]
fn kb_recall_against_brute_force_ground_truth() {
    let store = encoded_store(400);
    assert_eq!(store.len(), 400);
    let ivf = IvfIndex::build(&store, &IvfConfig::default()).unwrap();
    let queries: Vec<usize> = (0..store.len()).step_by(9).collect();

    // Probing every list is an exact scan: recall must be perfect and the
    // ranked answers identical to brute force.
    for &q in queries.iter().take(5) {
        let exact = store.brute_force_topk(store.vector(q), K).unwrap();
        let approx = ivf.search(&store, store.vector(q), K, ivf.nlist()).unwrap();
        assert_eq!(approx.hits, exact, "query {q}");
    }
    assert_eq!(recall_at_k(&store, &ivf, &queries, ivf.nlist()), 1.0);

    // The default probe budget scans a fraction of the corpus but must keep
    // recall high on the clustered KB embeddings (the CI bench job gates the
    // full-size corpus at ≥ 0.95; this unit floor is deliberately looser).
    let recall = recall_at_k(&store, &ivf, &queries, ivf.default_nprobe());
    assert!(recall >= 0.8, "recall@{K} {recall} < 0.8 at default nprobe");
}

#[test]
fn kb_store_round_trips_through_search_index() {
    let store = encoded_store(200);
    let ivf = IvfIndex::build(&store, &IvfConfig::default()).unwrap();
    let dir = std::env::temp_dir().join(format!("ntr_index_kb_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    store.save(&dir.join(SearchIndex::STORE_FILE)).unwrap();
    ivf.save(&dir.join(SearchIndex::IVF_FILE)).unwrap();
    let idx = SearchIndex::open(&dir).unwrap();
    let res = idx.search(idx.store.vector(3), 5, None).unwrap();
    assert_eq!(res.hits.len(), 5);
    assert_eq!(res.hits[0].0, 3, "a stored vector is its own nearest hit");
    assert_eq!(res.hits[0].1, 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}
