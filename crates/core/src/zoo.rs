//! Model registry: construct any encoder family — at any serving
//! precision — from one typed spec.
//!
//! The PR-10 API redesign replaces the stringly model-selection knobs
//! with [`EncoderSpec`] (`kind` + `precision`): [`build_encoder`] is the
//! one constructor the pipeline, serving layer, CLI, and benches all go
//! through, and [`ModelKind`]'s `FromStr`/`Display` pair is the one
//! parser shared by CLI flags, the wire protocol, and index metadata
//! stamps. The old entry points ([`build_model`], [`ModelKind::parse`])
//! remain as deprecated one-line delegates, pinned bit-exact by
//! `tests/deprecated_compat.rs`.

use crate::pipeline::EncodeError;
use ntr_models::{Mate, ModelConfig, RowStudent, SequenceEncoder, Tapas, Turl, VanillaBert};
use ntr_tasks::pretrain::MlmModel;

pub use ntr_models::QuantSpec;

/// Encoder families constructible through [`build_encoder`].
///
/// TaBERT and TAPEX have structurally different interfaces (table-native
/// encoding and seq2seq generation respectively) and are built directly via
/// [`ntr_models::TaBert::new`] / [`ntr_models::Tapex::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Structure-blind BERT baseline.
    Bert,
    /// TAPAS-style structural embeddings.
    Tapas,
    /// TURL-style visibility-matrix attention (+ MER head).
    Turl,
    /// MATE-style row/column sparse attention.
    Mate,
    /// Distilled per-row student (no attention; trained via `ntr distill`,
    /// serves at f32 or int8 — see DESIGN.md §13).
    RowStudent,
}

impl ModelKind {
    /// All registry kinds.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::Bert,
        ModelKind::Tapas,
        ModelKind::Turl,
        ModelKind::Mate,
        ModelKind::RowStudent,
    ];

    /// Inverse of [`ModelKind::name`]: resolves a registry kind from its
    /// stable name (CLI flags, wire requests).
    #[deprecated(note = "use the FromStr impl: `name.parse::<ModelKind>()`")]
    pub fn parse(name: &str) -> Option<ModelKind> {
        name.parse().ok()
    }

    /// Stable name for reports, CLI flags, wire requests, and index
    /// metadata; round-trips through the `FromStr` impl.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Bert => "bert",
            ModelKind::Tapas => "tapas",
            ModelKind::Turl => "turl",
            ModelKind::Mate => "mate",
            ModelKind::RowStudent => "row-student",
        }
    }

    /// The `"bert, tapas, …"` list used in every parse-failure message,
    /// so CLI and wire errors cannot drift from the registry.
    pub fn names_joined() -> String {
        ModelKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown model {s:?}; expected one of {}",
                    ModelKind::names_joined()
                )
            })
    }
}

/// The typed model-selection spec: which family, at which precision.
///
/// This is what `PipelineBuilder::encoder`, `ServeRequest`, and
/// `ntr index build` accept; the stringly/env-driven knobs they replace
/// delegate here at [`QuantSpec::F32`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncoderSpec {
    /// Encoder family.
    pub kind: ModelKind,
    /// Serving precision.
    pub precision: QuantSpec,
}

impl EncoderSpec {
    /// A spec at the given precision.
    pub fn new(kind: ModelKind, precision: QuantSpec) -> Self {
        Self { kind, precision }
    }

    /// The exact-f32 spec for a family (what every pre-redesign call
    /// site meant).
    pub fn f32(kind: ModelKind) -> Self {
        Self::new(kind, QuantSpec::F32)
    }

    /// The int8 spec (only [`ModelKind::RowStudent`] can serve it).
    pub fn int8(kind: ModelKind) -> Self {
        Self::new(kind, QuantSpec::Int8)
    }

    /// Checks that the family supports the requested precision.
    pub fn validate(self) -> Result<(), EncodeError> {
        if self.precision == QuantSpec::Int8 && self.kind != ModelKind::RowStudent {
            return Err(EncodeError::BadModelChoice {
                detail: format!(
                    "model {} has no int8 inference path; only row-student serves at int8",
                    self.kind
                ),
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for EncoderSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.kind, self.precision)
    }
}

/// Builds a boxed encoder for the spec, with the precision applied.
///
/// For [`ModelKind::Turl`] with `cfg.n_entities == 0`, a minimal entity
/// vocabulary of 1 is substituted so the model is constructible for tasks
/// that never touch the MER head.
pub fn build_encoder(
    spec: EncoderSpec,
    cfg: &ModelConfig,
) -> Result<Box<dyn SequenceEncoder + Send>, EncodeError> {
    spec.validate()?;
    Ok(match spec.kind {
        ModelKind::Bert => Box::new(VanillaBert::new(cfg)),
        ModelKind::Tapas => Box::new(Tapas::new(cfg)),
        ModelKind::Turl => {
            let cfg = ModelConfig {
                n_entities: cfg.n_entities.max(1),
                ..*cfg
            };
            Box::new(Turl::new(&cfg))
        }
        ModelKind::Mate => Box::new(Mate::new(cfg)),
        ModelKind::RowStudent => {
            let mut m = RowStudent::new(cfg);
            m.set_precision(spec.precision);
            Box::new(m)
        }
    })
}

/// Builds a boxed MLM-capable model for `ntr pretrain`-style loops, or a
/// typed error for families without an MLM head.
pub fn build_mlm_model(
    kind: ModelKind,
    cfg: &ModelConfig,
) -> Result<Box<dyn MlmModel + Send>, EncodeError> {
    Ok(match kind {
        ModelKind::Bert => Box::new(VanillaBert::new(cfg)),
        ModelKind::Tapas => Box::new(Tapas::new(cfg)),
        ModelKind::Turl => {
            let cfg = ModelConfig {
                n_entities: cfg.n_entities.max(1),
                ..*cfg
            };
            Box::new(Turl::new(&cfg))
        }
        ModelKind::Mate => Box::new(Mate::new(cfg)),
        ModelKind::RowStudent => {
            return Err(EncodeError::BadModelChoice {
                detail: "row-student has no MLM head; train it with `ntr distill`".to_string(),
            })
        }
    })
}

/// Builds a boxed f32 encoder of the requested family.
#[deprecated(note = "use `build_encoder(EncoderSpec::f32(kind), cfg)`")]
pub fn build_model(kind: ModelKind, cfg: &ModelConfig) -> Box<dyn SequenceEncoder + Send> {
    build_encoder(EncoderSpec::f32(kind), cfg).expect("f32 specs are valid for every registry kind")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_models::EncoderInput;

    fn sample_input() -> EncoderInput {
        EncoderInput {
            ids: vec![2, 8, 9, 3, 10, 11],
            rows: vec![0, 0, 0, 0, 1, 1],
            cols: vec![0, 0, 0, 0, 1, 2],
            segments: vec![0, 0, 0, 1, 1, 1],
            kinds: vec![0, 1, 1, 0, 3, 3],
            ranks: vec![0, 0, 0, 0, 0, 1],
        }
    }

    #[test]
    fn all_kinds_build_and_encode() {
        let cfg = ModelConfig::tiny(64);
        let input = sample_input();
        for kind in ModelKind::ALL {
            let mut m = build_encoder(EncoderSpec::f32(kind), &cfg).unwrap();
            let states = m.encode(&input, false);
            assert_eq!(states.shape(), &[6, 16], "{}", kind.name());
            assert_eq!(m.family(), kind.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = ModelKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn parse_display_round_trip() {
        for kind in ModelKind::ALL {
            assert_eq!(kind.to_string().parse::<ModelKind>(), Ok(kind));
        }
        for q in QuantSpec::ALL {
            assert_eq!(q.to_string().parse::<QuantSpec>(), Ok(q));
        }
        let err = "no-such-model".parse::<ModelKind>().unwrap_err();
        assert!(
            err.contains("bert, tapas, turl, mate, row-student"),
            "{err}"
        );
    }

    #[test]
    fn int8_is_student_only() {
        let cfg = ModelConfig::tiny(64);
        for kind in ModelKind::ALL {
            let spec = EncoderSpec::int8(kind);
            match kind {
                ModelKind::RowStudent => {
                    let mut m = build_encoder(spec, &cfg).unwrap();
                    assert_eq!(m.encode(&sample_input(), false).shape(), &[6, 16]);
                }
                _ => match build_encoder(spec, &cfg) {
                    Err(EncodeError::BadModelChoice { detail }) => {
                        assert!(detail.contains("int8"), "{detail}")
                    }
                    Err(e) => panic!("expected BadModelChoice, got {e}"),
                    Ok(_) => panic!("int8 {kind} must be rejected"),
                },
            }
        }
    }

    #[test]
    fn mlm_registry_covers_teachers_and_rejects_the_student() {
        let cfg = ModelConfig::tiny(64);
        for kind in ModelKind::ALL {
            match (kind, build_mlm_model(kind, &cfg)) {
                (ModelKind::RowStudent, Err(EncodeError::BadModelChoice { .. })) => {}
                (ModelKind::RowStudent, other) => {
                    panic!("student must be rejected, got {:?}", other.map(|_| ()))
                }
                (_, Ok(m)) => assert_eq!(m.family(), kind.name()),
                (_, Err(e)) => panic!("{kind} should be MLM-capable: {e}"),
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_build_model_still_constructs_every_family() {
        let cfg = ModelConfig::tiny(64);
        for kind in ModelKind::ALL {
            assert_eq!(build_model(kind, &cfg).family(), kind.name());
        }
    }
}
