//! Model registry: construct any encoder family by name.

use ntr_models::{Mate, ModelConfig, SequenceEncoder, Tapas, Turl, VanillaBert};

/// Encoder families constructible through [`build_model`].
///
/// TaBERT and TAPEX have structurally different interfaces (table-native
/// encoding and seq2seq generation respectively) and are built directly via
/// [`ntr_models::TaBert::new`] / [`ntr_models::Tapex::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Structure-blind BERT baseline.
    Bert,
    /// TAPAS-style structural embeddings.
    Tapas,
    /// TURL-style visibility-matrix attention (+ MER head).
    Turl,
    /// MATE-style row/column sparse attention.
    Mate,
}

impl ModelKind {
    /// All registry kinds.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Bert,
        ModelKind::Tapas,
        ModelKind::Turl,
        ModelKind::Mate,
    ];

    /// Inverse of [`ModelKind::name`]: resolves a registry kind from its
    /// stable name (CLI flags, wire requests).
    pub fn parse(name: &str) -> Option<ModelKind> {
        ModelKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Bert => "bert",
            ModelKind::Tapas => "tapas",
            ModelKind::Turl => "turl",
            ModelKind::Mate => "mate",
        }
    }
}

/// Builds a boxed encoder of the requested family.
///
/// For [`ModelKind::Turl`] with `cfg.n_entities == 0`, a minimal entity
/// vocabulary of 1 is substituted so the model is constructible for tasks
/// that never touch the MER head.
pub fn build_model(kind: ModelKind, cfg: &ModelConfig) -> Box<dyn SequenceEncoder + Send> {
    match kind {
        ModelKind::Bert => Box::new(VanillaBert::new(cfg)),
        ModelKind::Tapas => Box::new(Tapas::new(cfg)),
        ModelKind::Turl => {
            let cfg = ModelConfig {
                n_entities: cfg.n_entities.max(1),
                ..*cfg
            };
            Box::new(Turl::new(&cfg))
        }
        ModelKind::Mate => Box::new(Mate::new(cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_models::EncoderInput;

    #[test]
    fn all_kinds_build_and_encode() {
        let cfg = ModelConfig::tiny(64);
        let input = EncoderInput {
            ids: vec![2, 8, 9, 3, 10, 11],
            rows: vec![0, 0, 0, 0, 1, 1],
            cols: vec![0, 0, 0, 0, 1, 2],
            segments: vec![0, 0, 0, 1, 1, 1],
            kinds: vec![0, 1, 1, 0, 3, 3],
            ranks: vec![0, 0, 0, 0, 0, 1],
        };
        for kind in ModelKind::ALL {
            let mut m = build_model(kind, &cfg);
            let states = m.encode(&input, false);
            assert_eq!(states.shape(), &[6, 16], "{}", kind.name());
            assert_eq!(m.family(), kind.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<&str> = ModelKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
