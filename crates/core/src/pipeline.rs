//! The end-to-end pipeline: tokenizer + linearizer + encoder → table
//! representations at every granularity the survey discusses (cell, row,
//! column, table).

use crate::zoo::{build_encoder, EncoderSpec, ModelKind};
use ntr_models::{EncoderInput, ModelConfig, SequenceEncoder};
use ntr_nn::serialize::{self as checkpoint, CheckpointError};
use ntr_nn::Layer;
use ntr_table::{EncodedTable, Linearizer, LinearizerKind, LinearizerOptions, Table, TokenKind};
use ntr_tasks::supervisor::{SupervisorConfig, TrainError};
use ntr_tasks::trainer::TrainerOptions;
use ntr_tasks::TrainRun;
use ntr_tensor::Tensor;
use ntr_tokenizer::{train::WordPieceTrainer, WordPieceTokenizer};
use std::path::Path;

/// Typed failure of pipeline construction or encoding — the error surface
/// the serving layer turns into structured error responses instead of
/// panics or dropped connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The tokenizer cannot produce usable ids (e.g. its vocabulary is
    /// empty apart from the special tokens, so every input collapses to
    /// `[UNK]`).
    TokenizeFailed {
        /// What went wrong.
        detail: String,
    },
    /// The table cannot fit the token budget: not even one data row
    /// survives truncation.
    TableTooLarge {
        /// The offending table's id.
        table_id: String,
        /// The budget that was exceeded.
        max_tokens: usize,
    },
    /// The requested model cannot serve this pipeline's requests: unknown
    /// family name, or an embedding table smaller than the tokenizer's
    /// vocabulary (ids would be out of range).
    BadModelChoice {
        /// What went wrong.
        detail: String,
    },
    /// The serving layer shed this request before it reached the
    /// micro-batcher: the bounded submit queue was full (admission
    /// control under overload). The request did no work; retrying after
    /// backoff is safe.
    Overloaded {
        /// Queue depth observed at rejection time.
        queue_depth: usize,
        /// The configured queue capacity.
        queue_cap: usize,
    },
    /// An internal fault (a panic in the batcher or a worker replica)
    /// was isolated while this request was in flight. The request may
    /// or may not have done work; the service itself recovered
    /// (quarantined the replica, restarted the batcher) and retrying is
    /// safe.
    Internal {
        /// What faulted (panic payload or supervision context).
        detail: String,
    },
    /// The request's deadline elapsed before a result could be
    /// delivered — at admission, while queued, or after the batch ran
    /// but too late. No partial result is returned.
    DeadlineExceeded {
        /// The deadline budget that was exceeded, in milliseconds.
        timeout_ms: u64,
    },
    /// The service is in cache-only degraded mode (circuit breaker open
    /// after repeated internal faults): cache hits are still served,
    /// but this request missed and was rejected without queueing.
    /// Retrying after backoff is safe; the breaker probes itself back
    /// to healthy.
    Degraded,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::TokenizeFailed { detail } => write!(f, "tokenize failed: {detail}"),
            EncodeError::TableTooLarge {
                table_id,
                max_tokens,
            } => write!(
                f,
                "table {table_id:?} too large: no data row fits the {max_tokens}-token budget"
            ),
            EncodeError::BadModelChoice { detail } => write!(f, "bad model choice: {detail}"),
            EncodeError::Overloaded {
                queue_depth,
                queue_cap,
            } => write!(
                f,
                "server overloaded: submit queue full ({queue_depth}/{queue_cap}); retry after backoff"
            ),
            EncodeError::Internal { detail } => {
                write!(f, "internal serve fault (isolated): {detail}")
            }
            EncodeError::DeadlineExceeded { timeout_ms } => write!(
                f,
                "deadline exceeded: request missed its {timeout_ms}ms budget"
            ),
            EncodeError::Degraded => write!(
                f,
                "service degraded: cache-only mode while recovering from internal faults; retry after backoff"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

impl EncodeError {
    /// Stable machine-readable kind name (the server's `error.kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            EncodeError::TokenizeFailed { .. } => "TokenizeFailed",
            EncodeError::TableTooLarge { .. } => "TableTooLarge",
            EncodeError::BadModelChoice { .. } => "BadModelChoice",
            EncodeError::Overloaded { .. } => "Overloaded",
            EncodeError::Internal { .. } => "Internal",
            EncodeError::DeadlineExceeded { .. } => "DeadlineExceeded",
            EncodeError::Degraded => "Degraded",
        }
    }
}

/// One unit of encode work: a table plus its natural-language context —
/// the element type of the batch-first [`Pipeline::encode_batch`] API.
#[derive(Debug, Clone)]
pub struct EncodeRequest {
    /// The table to encode.
    pub table: Table,
    /// Caption / question / claim accompanying it (may be empty).
    pub context: String,
}

impl EncodeRequest {
    /// A request carrying the table's own caption as context.
    pub fn captioned(table: Table) -> Self {
        let context = table.caption.clone();
        Self { table, context }
    }
}

/// A configured encode pipeline (the paper's "Input Processing" module
/// plus model invocation).
pub struct Pipeline {
    tokenizer: WordPieceTokenizer,
    linearizer: Box<dyn Linearizer + Send + Sync>,
    opts: LinearizerOptions,
    encoder: EncoderSpec,
}

/// Builder for [`Pipeline`].
pub struct PipelineBuilder {
    vocab_docs: Vec<String>,
    vocab_size: usize,
    linearizer: LinearizerKind,
    opts: LinearizerOptions,
    encoder: EncoderSpec,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self {
            vocab_docs: Vec::new(),
            vocab_size: 2000,
            linearizer: LinearizerKind::RowMajor,
            opts: LinearizerOptions::default(),
            encoder: EncoderSpec::f32(ModelKind::Tapas),
        }
    }
}

impl PipelineBuilder {
    /// Adds tables whose text trains the WordPiece vocabulary.
    pub fn vocab_from_tables(mut self, tables: &[Table]) -> Self {
        for t in tables {
            self.vocab_docs.push(ntr_corpus::vocab::table_text(t));
        }
        // Structural symbols and digits must always be known.
        self.vocab_docs.extend(std::iter::repeat_n(
            "| : ; , . ? row col is the of what 0 1 2 3 4 5 6 7 8 9".to_string(),
            8,
        ));
        self
    }

    /// Adds free-text documents (questions, claims) to vocabulary training.
    pub fn vocab_from_texts(mut self, texts: &[String]) -> Self {
        self.vocab_docs.extend_from_slice(texts);
        self
    }

    /// Uses an already-trained tokenizer instead of training one. The
    /// tokenizer is taken as-is (even with an empty vocabulary), so this
    /// path cannot fail.
    pub fn build_with_tokenizer(self, tokenizer: WordPieceTokenizer) -> Pipeline {
        Pipeline {
            tokenizer,
            linearizer: self.linearizer.into_boxed(),
            opts: self.opts,
            encoder: self.encoder,
        }
    }

    /// Sets the encoder spec (family + serving precision) that
    /// [`Pipeline::build_default_encoder`] constructs (default
    /// `tapas@f32`). The spec is validated at build time, so an int8
    /// request for a family with no int8 path fails here, not at first
    /// encode.
    pub fn encoder(mut self, spec: EncoderSpec) -> Self {
        self.encoder = spec;
        self
    }

    /// Target vocabulary size (default 2000).
    pub fn vocab_size(mut self, size: usize) -> Self {
        self.vocab_size = size;
        self
    }

    /// Overrides the serialization strategy (default
    /// [`LinearizerKind::RowMajor`]); out-of-tree strategies go through
    /// [`LinearizerKind::Custom`].
    pub fn linearizer(mut self, kind: LinearizerKind) -> Self {
        self.linearizer = kind;
        self
    }

    /// Overrides linearizer options (token budget, context position).
    pub fn options(mut self, opts: LinearizerOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Trains the vocabulary and finalizes the pipeline.
    ///
    /// Fails with [`EncodeError::TokenizeFailed`] when vocabulary training
    /// produced nothing beyond the special tokens (no
    /// `vocab_from_tables`/`vocab_from_texts` input) — historically this
    /// silently built a pipeline that tokenized everything to `[UNK]`.
    pub fn build(self) -> Result<Pipeline, EncodeError> {
        self.encoder.validate()?;
        let vocab = WordPieceTrainer::new(self.vocab_size)
            .train(self.vocab_docs.iter().map(String::as_str));
        if vocab.is_empty() {
            return Err(EncodeError::TokenizeFailed {
                detail: "trained vocabulary is empty (no vocab_from_tables/vocab_from_texts \
                         input); every token would map to [UNK]"
                    .to_string(),
            });
        }
        Ok(Pipeline {
            tokenizer: WordPieceTokenizer::new(vocab),
            linearizer: self.linearizer.into_boxed(),
            opts: self.opts,
            encoder: self.encoder,
        })
    }
}

impl Pipeline {
    /// Starts a builder.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// The tokenizer.
    pub fn tokenizer(&self) -> &WordPieceTokenizer {
        &self.tokenizer
    }

    /// The linearizer options in use.
    pub fn options(&self) -> &LinearizerOptions {
        &self.opts
    }

    /// The serialization strategy in use (its [`Linearizer::name`] is part
    /// of the serving layer's cache key).
    pub fn linearizer(&self) -> &(dyn Linearizer + Send + Sync) {
        self.linearizer.as_ref()
    }

    /// A model config matched to this pipeline's vocabulary.
    pub fn default_config(&self) -> ModelConfig {
        ModelConfig {
            vocab_size: self.tokenizer.vocab_size(),
            ..ModelConfig::default()
        }
    }

    /// The encoder spec this pipeline was built for (see
    /// [`PipelineBuilder::encoder`]).
    pub fn encoder_spec(&self) -> EncoderSpec {
        self.encoder
    }

    /// Constructs the pipeline's configured encoder, sized to its
    /// vocabulary: [`build_encoder`] over [`Pipeline::encoder_spec`] and
    /// [`Pipeline::default_config`].
    pub fn build_default_encoder(&self) -> Result<Box<dyn SequenceEncoder + Send>, EncodeError> {
        build_encoder(self.encoder, &self.default_config())
    }

    /// Serializes (without encoding) — the §3.2 inspection step. Never
    /// fails: a table that overflows the budget is truncated (possibly to
    /// its header skeleton). See [`Pipeline::try_serialize`] for the
    /// validating variant.
    pub fn serialize(&self, table: &Table, context: &str) -> EncodedTable {
        self.linearizer
            .linearize(table, context, &self.tokenizer, &self.opts)
    }

    /// Serializes with validation: fails with
    /// [`EncodeError::TokenizeFailed`] on an empty vocabulary (only
    /// reachable through [`PipelineBuilder::build_with_tokenizer`]) and
    /// with [`EncodeError::TableTooLarge`] when the table has data rows
    /// but not one of them fits the token budget.
    pub fn try_serialize(&self, table: &Table, context: &str) -> Result<EncodedTable, EncodeError> {
        if self.tokenizer.vocab().is_empty() {
            return Err(EncodeError::TokenizeFailed {
                detail: "tokenizer vocabulary is empty; every token would map to [UNK]".to_string(),
            });
        }
        let encoded = self.serialize(table, context);
        if table.n_rows() > 0 && encoded.n_rows_encoded() == 0 {
            return Err(EncodeError::TableTooLarge {
                table_id: table.id.clone(),
                max_tokens: self.opts.max_tokens,
            });
        }
        Ok(encoded)
    }

    /// Checks that `model` can embed every id this pipeline's tokenizer
    /// produces. The serving layer runs this once per model instead of
    /// letting an oversized id panic inside the embedding lookup.
    pub fn check_model(&self, model: &dyn SequenceEncoder) -> Result<(), EncodeError> {
        let need = self.tokenizer.vocab_size();
        let have = model.vocab_size();
        if need > have {
            return Err(EncodeError::BadModelChoice {
                detail: format!(
                    "model embeds {have} ids but the tokenizer produces up to {need}; \
                     build the model from this pipeline's default_config()"
                ),
            });
        }
        Ok(())
    }

    /// Runs the model over an already-serialized table and packages the
    /// representations — the single compute core shared by
    /// [`Pipeline::encode`] and [`Pipeline::encode_batch`], which is what
    /// makes their outputs bit-identical.
    pub fn encode_serialized(
        &self,
        model: &mut dyn SequenceEncoder,
        encoded: EncodedTable,
    ) -> TableEncoding {
        let input = EncoderInput::from_encoded(&encoded);
        let states = model.encode(&input, false);
        TableEncoding { encoded, states }
    }

    /// Validating single encode: [`Pipeline::try_serialize`] +
    /// [`Pipeline::check_model`] + the shared compute core.
    pub fn try_encode(
        &self,
        model: &mut dyn SequenceEncoder,
        table: &Table,
        context: &str,
    ) -> Result<TableEncoding, EncodeError> {
        self.check_model(model)?;
        let encoded = self.try_serialize(table, context)?;
        Ok(self.encode_serialized(model, encoded))
    }

    /// Batch-first encode: validates the model once, then encodes every
    /// request in order through the same compute core as
    /// [`Pipeline::encode`], so the outputs are bit-identical to `reqs`
    /// encoded one at a time. Fails on the first invalid request.
    ///
    /// Sequence-encoder models carry per-call state (`&mut self`), so a
    /// single model instance processes the batch serially; concurrent
    /// batched serving over model replicas is `ntr-serve`'s job.
    pub fn encode_batch(
        &self,
        model: &mut dyn SequenceEncoder,
        reqs: &[EncodeRequest],
    ) -> Result<Vec<TableEncoding>, EncodeError> {
        self.check_model(model)?;
        let mut out = Vec::with_capacity(reqs.len());
        for req in reqs {
            let encoded = self.try_serialize(&req.table, &req.context)?;
            out.push(self.encode_serialized(model, encoded));
        }
        Ok(out)
    }

    /// Saves a model's weights to `path` crash-safely: the `NTRW` v2 file
    /// is written to a temp sibling, `fsync`ed, and atomically renamed, so
    /// an interrupted save never leaves a corrupt checkpoint behind.
    pub fn save_model(&self, model: &mut dyn Layer, path: &Path) -> Result<(), CheckpointError> {
        checkpoint::save(model, path)
    }

    /// Loads a checkpoint (`NTRW` v1 or v2) into a model, strict on
    /// parameter names and shapes.
    pub fn load_model(&self, model: &mut dyn Layer, path: &Path) -> Result<(), CheckpointError> {
        checkpoint::load(model, path)
    }

    /// Supervised MLM pretraining over `tables` with this pipeline's
    /// tokenizer and linearizer: checkpoint/resume via `topts`, and the
    /// self-healing supervisor (clipping, anomaly rollback, fault drills)
    /// via `scfg`. With [`SupervisorConfig::default`] the run is
    /// bit-identical to unsupervised training.
    pub fn pretrain_mlm<M: ntr_tasks::pretrain::MlmModel>(
        &self,
        model: &mut M,
        tables: &[Table],
        cfg: &ntr_tasks::TrainConfig,
        topts: &TrainerOptions,
        scfg: &SupervisorConfig,
    ) -> Result<ntr_tasks::pretrain::PretrainReport, TrainError> {
        let corpus = ntr_corpus::tables::TableCorpus {
            tables: tables.to_vec(),
            kinds: vec![ntr_corpus::tables::TableKind::Employees; tables.len()],
        };
        TrainRun::new(*cfg)
            .max_tokens(self.opts.max_tokens)
            .linearizer(self.linearizer.as_ref())
            .trainer(topts)
            .supervisor(scfg)
            .mlm(model, &corpus, &self.tokenizer)
    }

    /// Full encode: serialize, run the model, package the representations.
    ///
    /// The legacy infallible wrapper around the [`Pipeline::encode_batch`]
    /// compute core: it skips the validation (so degenerate inputs encode
    /// to whatever survives truncation, exactly as before this API
    /// existed) but runs the identical serialization and model invocation.
    pub fn encode(
        &self,
        model: &mut dyn SequenceEncoder,
        table: &Table,
        context: &str,
    ) -> TableEncoding {
        let encoded = self.serialize(table, context);
        self.encode_serialized(model, encoded)
    }

    /// As [`Pipeline::encode`], but records inference metrics into `obs`:
    /// `encode/calls`, `encode/tokens`, and an `encode/ns` latency
    /// histogram. With a disabled handle this is exactly [`Pipeline::encode`].
    pub fn encode_observed(
        &self,
        model: &mut dyn SequenceEncoder,
        table: &Table,
        context: &str,
        obs: &ntr_obs::Obs,
    ) -> TableEncoding {
        let t0 = obs.now();
        let enc = self.encode(model, table, context);
        obs.inc("encode/calls");
        obs.add("encode/tokens", enc.encoded.len() as u64);
        if let Some(t0) = t0 {
            obs.observe("encode/ns", t0.elapsed().as_nanos() as u64);
        }
        enc
    }
}

/// The output representations of one table encoding, at every granularity
/// (the survey's "Output Model Representation" dimension).
pub struct TableEncoding {
    /// The serialized table (ids + structural metadata + spans).
    pub encoded: EncodedTable,
    /// Hidden states, `[seq_len, d_model]`.
    pub states: Tensor,
}

impl TableEncoding {
    /// Table-level representation: the `[CLS]` state, `[1, d]`.
    pub fn table_embedding(&self) -> Tensor {
        self.states.rows(0, 1)
    }

    /// Cell-level representation (mean over the cell's tokens), if the
    /// cell survived truncation.
    pub fn cell_embedding(&self, row: usize, col: usize) -> Option<Tensor> {
        let span = self.encoded.cell_span(row, col)?;
        Some(ntr_models::pool_mean(&self.states, &span))
    }

    /// Row-level representation: mean over the row's cell tokens.
    pub fn row_embedding(&self, row: usize) -> Option<Tensor> {
        self.pool_where(|m| m.row == row + 1 && m.kind == TokenKind::Cell)
    }

    /// Column-level representation: mean over the column's cell tokens.
    pub fn column_embedding(&self, col: usize) -> Option<Tensor> {
        self.pool_where(|m| m.col == col + 1 && m.kind == TokenKind::Cell)
    }

    fn pool_where(&self, keep: impl Fn(&ntr_table::TokenMeta) -> bool) -> Option<Tensor> {
        let d = self.states.dim(1);
        let mut sum = Tensor::zeros(&[1, d]);
        let mut n = 0usize;
        for (i, m) in self.encoded.meta().iter().enumerate() {
            if keep(m) {
                for j in 0..d {
                    sum.data_mut()[j] += self.states.at(&[i, j]);
                }
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum.scale(1.0 / n as f32))
        }
    }

    /// Cosine similarity between two cells' representations.
    pub fn cell_similarity(&self, a: (usize, usize), b: (usize, usize)) -> Option<f32> {
        Some(
            self.cell_embedding(a.0, a.1)?
                .cosine(&self.cell_embedding(b.0, b.1)?),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build_encoder, EncoderSpec, ModelKind};
    use ntr_table::ContextPosition;

    fn sample() -> Table {
        Table::from_strings(
            "t",
            &["Country", "Capital", "Population"],
            &[
                &["France", "Paris", "67.8"],
                &["Australia", "Canberra", "25.69"],
            ],
        )
        .with_caption("Population in Million by Country")
    }

    fn pipeline() -> Pipeline {
        Pipeline::builder()
            .vocab_from_tables(&[sample()])
            .vocab_size(600)
            .build()
            .unwrap()
    }

    #[test]
    fn encode_produces_all_granularities() {
        let p = pipeline();
        let t = sample();
        let mut model =
            build_encoder(EncoderSpec::f32(ModelKind::Tapas), &p.default_config()).unwrap();
        let enc = p.encode(model.as_mut(), &t, &t.caption);
        assert_eq!(enc.table_embedding().shape(), &[1, 64]);
        assert!(enc.cell_embedding(0, 0).is_some());
        assert!(enc.cell_embedding(9, 9).is_none());
        assert!(enc.row_embedding(1).is_some());
        assert!(enc.column_embedding(2).is_some());
        assert!(enc.cell_similarity((0, 0), (1, 0)).unwrap().is_finite());
    }

    #[test]
    fn builder_options_apply() {
        let p = Pipeline::builder()
            .vocab_from_tables(&[sample()])
            .vocab_size(500)
            .linearizer(LinearizerKind::ColumnMajor)
            .options(LinearizerOptions {
                max_tokens: 40,
                context_position: ContextPosition::Before,
            })
            .build()
            .unwrap();
        let e = p.serialize(&sample(), "ctx");
        assert!(e.len() <= 40);
        assert_eq!(e.linearizer(), "column-major");
    }

    #[test]
    fn save_and_load_model_roundtrip_through_pipeline() {
        let p = pipeline();
        let t = sample();
        let dir = std::env::temp_dir().join("ntr_pipeline_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tapas.ntrw");
        let mut a = build_encoder(EncoderSpec::f32(ModelKind::Tapas), &p.default_config()).unwrap();
        p.save_model(a.as_mut(), &path).unwrap();
        // A differently-seeded model starts from different weights; loading
        // must overwrite all of them.
        let other_cfg = ModelConfig {
            seed: 0xDEAD,
            ..p.default_config()
        };
        let mut b = build_encoder(EncoderSpec::f32(ModelKind::Tapas), &other_cfg).unwrap();
        p.load_model(b.as_mut(), &path).unwrap();
        let ea = p.encode(a.as_mut(), &t, &t.caption);
        let eb = p.encode(b.as_mut(), &t, &t.caption);
        assert_eq!(
            ea.states.data(),
            eb.states.data(),
            "loaded model must encode bit-identically"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn builder_encoder_spec_round_trips_and_validates() {
        let p = Pipeline::builder()
            .vocab_from_tables(&[sample()])
            .vocab_size(500)
            .encoder(EncoderSpec::int8(ModelKind::RowStudent))
            .build()
            .unwrap();
        assert_eq!(p.encoder_spec(), EncoderSpec::int8(ModelKind::RowStudent));
        let mut m = p.build_default_encoder().unwrap();
        let enc = p.encode(m.as_mut(), &sample(), "");
        assert_eq!(enc.table_embedding().shape(), &[1, 64]);
        // An invalid family/precision pair fails at build(), not at encode.
        let err = Pipeline::builder()
            .vocab_from_tables(&[sample()])
            .encoder(EncoderSpec::int8(ModelKind::Mate))
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, EncodeError::BadModelChoice { .. }), "{err}");
    }

    #[test]
    fn same_build_is_deterministic() {
        let t = sample();
        let a = pipeline().serialize(&t, &t.caption);
        let b = pipeline().serialize(&t, &t.caption);
        assert_eq!(a.ids(), b.ids());
    }
}
