//! # ntr — neural table representations
//!
//! The facade crate of the `ntr` workspace: a faithful, laptop-scale Rust
//! implementation of the framework taught in *"Models and Practice of
//! Neural Table Representations"* (SIGMOD-Companion 2023).
//!
//! The paper's Fig. 1 pipeline maps onto this API as:
//!
//! ```text
//! table corpus ─▶ input processing ─▶ transformer model ─▶ representations
//!  (ntr::corpus)   (ntr::table: serialize, (ntr::models: BERT,  (TableEncoding:
//!                   filter, mask)           TAPAS, TaBERT, TURL, cell/row/column/
//!                                           MATE, TAPEX)         table vectors)
//!                                   ─▶ fine-tune on downstream tasks (ntr::tasks)
//! ```
//!
//! ## Quickstart (the hands-on §3.1 exercise)
//!
//! ```
//! use ntr::pipeline::Pipeline;
//! use ntr::zoo::{build_encoder, EncoderSpec, ModelKind};
//! use ntr::table::Table;
//!
//! // 1. Load a table from CSV.
//! let table = Table::from_csv_str(
//!     "countries",
//!     "Country,Capital,Population\nFrance,Paris,67.8\nAustralia,Canberra,25.69\n",
//!     true,
//! )
//! .unwrap()
//! .with_caption("Population in Million by Country");
//!
//! // 2. Build a pipeline (tokenizer + linearizer) over a corpus sample.
//! let pipeline = Pipeline::builder().vocab_from_tables(&[table.clone()]).build().unwrap();
//!
//! // 3. Load a model off the shelf (at exact f32 precision) and encode.
//! let mut model =
//!     build_encoder(EncoderSpec::f32(ModelKind::Tapas), &pipeline.default_config()).unwrap();
//! let encoding = pipeline.encode(model.as_mut(), &table, &table.caption);
//!
//! // 4. Inspect the vector representations.
//! assert_eq!(encoding.table_embedding().numel(), model.d_model());
//! assert!(encoding.cell_embedding(0, 1).is_some()); // "Paris"
//! ```

pub mod pipeline;
pub mod zoo;

// Re-export the sub-crates under stable module names so downstream users
// depend on `ntr` alone.
pub use ntr_corpus as corpus;
pub use ntr_models as models;
pub use ntr_nn as nn;
pub use ntr_obs as obs;
pub use ntr_sql as sql;
pub use ntr_table as table;
pub use ntr_tasks as tasks;
pub use ntr_tensor as tensor;
pub use ntr_tokenizer as tokenizer;

pub use pipeline::{EncodeError, EncodeRequest, Pipeline, PipelineBuilder, TableEncoding};
#[allow(deprecated)]
pub use zoo::build_model;
pub use zoo::{build_encoder, build_mlm_model, EncoderSpec, ModelKind, QuantSpec};
