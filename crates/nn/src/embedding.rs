//! Lookup-table embeddings with scatter-add backward.

use crate::init::SeededInit;
use crate::{Layer, Param};
use ntr_tensor::Tensor;

/// An embedding table mapping ids `0..vocab` to `d`-dimensional vectors.
///
/// Table-aware models sum several of these per token (word + position +
/// segment + row + column…, see `ntr-models`); each table independently
/// caches the ids it saw and scatter-adds the output gradient into its rows.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The table, shape `[vocab, d]`.
    pub weight: Param,
    cache_ids: Option<Vec<usize>>,
}

impl Embedding {
    /// A new table of `vocab` rows of dimension `d`, N(0, 0.02)-initialized
    /// (the BERT convention).
    pub fn new(vocab: usize, d: usize, init: &mut SeededInit) -> Self {
        Self {
            weight: Param::new(init.normal(&[vocab, d], 0.02)),
            cache_ids: None,
        }
    }

    /// Number of rows in the table.
    pub fn vocab(&self) -> usize {
        self.weight.value.dim(0)
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.weight.value.dim(1)
    }

    /// Looks up `ids`, producing `[ids.len(), d]`; caches ids for backward.
    ///
    /// # Panics
    /// Panics when an id is out of range.
    pub fn forward(&mut self, ids: &[usize]) -> Tensor {
        let out = self.lookup(ids);
        self.cache_ids = Some(ids.to_vec());
        out
    }

    /// Lookup without caching, for inference paths.
    pub fn lookup(&self, ids: &[usize]) -> Tensor {
        let d = self.dim();
        let vocab = self.vocab();
        let mut data = Vec::with_capacity(ids.len() * d);
        for &id in ids {
            assert!(id < vocab, "embedding id {id} out of range (vocab {vocab})");
            data.extend_from_slice(self.weight.value.row(id));
        }
        Tensor::from_vec(data, &[ids.len(), d])
    }

    /// A single row of the table (e.g. an entity embedding), shape `[1, d]`.
    pub fn row(&self, id: usize) -> Tensor {
        self.lookup(&[id])
    }

    /// Scatter-adds `dy` rows into the rows of the table gradient.
    ///
    /// Embeddings are graph sources, so there is no input gradient to return.
    ///
    /// # Panics
    /// Panics if called before `forward` or with a mismatched `dy` shape.
    pub fn backward(&mut self, dy: &Tensor) {
        let ids = self
            .cache_ids
            .take()
            .expect("Embedding::backward called without a cached forward");
        assert_eq!(
            dy.shape(),
            &[ids.len(), self.dim()],
            "Embedding::backward: dy shape {:?} does not match {} ids of dim {}",
            dy.shape(),
            ids.len(),
            self.dim()
        );
        let d = self.dim();
        for (pos, &id) in ids.iter().enumerate() {
            let src = dy.row(pos).to_vec();
            let dst = &mut self.weight.grad.data_mut()[id * d..(id + 1) * d];
            for (g, s) in dst.iter_mut().zip(src) {
                *g += s;
            }
        }
    }
}

impl Layer for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        f("weight", &mut self.weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_gathers_rows() {
        let mut e = Embedding::new(4, 3, &mut SeededInit::new(1));
        let out = e.forward(&[2, 0, 2]);
        assert_eq!(out.shape(), &[3, 3]);
        assert_eq!(out.row(0), e.weight.value.row(2));
        assert_eq!(out.row(1), e.weight.value.row(0));
        assert_eq!(out.row(0), out.row(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn forward_rejects_bad_id() {
        let mut e = Embedding::new(4, 3, &mut SeededInit::new(1));
        let _ = e.forward(&[4]);
    }

    #[test]
    fn backward_scatter_adds_repeated_ids() {
        let mut e = Embedding::new(4, 2, &mut SeededInit::new(2));
        let _ = e.forward(&[1, 1, 3]);
        let dy = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0, 5.0, 6.0], &[3, 2]);
        e.backward(&dy);
        assert_eq!(&e.weight.grad.data()[2..4], &[11.0, 22.0]); // row 1 summed
        assert_eq!(&e.weight.grad.data()[6..8], &[5.0, 6.0]); // row 3
        assert_eq!(&e.weight.grad.data()[0..2], &[0.0, 0.0]); // untouched rows
    }

    #[test]
    fn empty_lookup_is_empty() {
        let e = Embedding::new(4, 2, &mut SeededInit::new(3));
        let out = e.lookup(&[]);
        assert_eq!(out.shape(), &[0, 2]);
    }
}
