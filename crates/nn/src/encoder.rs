//! Transformer encoder: feed-forward block, pre-LN encoder layer, stack.

use crate::activation::Gelu;
use crate::attention::{visit_child, AttnMask, MultiHeadAttention};
use crate::dropout::Dropout;
use crate::init::SeededInit;
use crate::layernorm::LayerNorm;
use crate::linear::Linear;
use crate::{Layer, Param};
use ntr_tensor::Tensor;

/// Position-wise feed-forward block: `Linear → GELU → Linear`.
#[derive(Debug, Clone)]
pub struct FeedForward {
    lin1: Linear,
    act: Gelu,
    lin2: Linear,
}

impl FeedForward {
    /// New block expanding `d_model` to `d_ff` and back.
    pub fn new(d_model: usize, d_ff: usize, init: &mut SeededInit) -> Self {
        Self {
            lin1: Linear::new(d_model, d_ff, &mut init.fork()),
            act: Gelu::default(),
            lin2: Linear::new(d_ff, d_model, &mut init.fork()),
        }
    }

    /// Forward with caching.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.lin2.forward(&self.act.forward(&self.lin1.forward(x)))
    }

    /// Backward; returns the input gradient.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.lin1
            .backward(&self.act.backward(&self.lin2.backward(dy)))
    }
}

impl Layer for FeedForward {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        visit_child(&mut self.lin1, "lin1", f);
        visit_child(&mut self.lin2, "lin2", f);
    }
}

/// One pre-LayerNorm transformer encoder layer:
///
/// ```text
/// x ── LN1 ── MHA ── dropout ──(+)── LN2 ── FFN ── dropout ──(+)── out
///  └──────────────────────────────┘ └──────────────────────────┘
/// ```
///
/// Pre-LN (rather than BERT's post-LN) is used throughout the workspace
/// because it trains stably from scratch without long warmups — a documented
/// deviation that does not change any of the table-structure mechanisms the
/// paper surveys.
#[derive(Debug, Clone)]
pub struct EncoderLayer {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    drop1: Dropout,
    ln2: LayerNorm,
    ffn: FeedForward,
    drop2: Dropout,
}

impl EncoderLayer {
    /// New encoder layer.
    pub fn new(
        d_model: usize,
        n_heads: usize,
        d_ff: usize,
        dropout: f32,
        init: &mut SeededInit,
    ) -> Self {
        let seed_base = init.uniform(&[1], 0.0, 1e9).data()[0] as u64;
        Self {
            ln1: LayerNorm::new(d_model),
            attn: MultiHeadAttention::new(d_model, n_heads, init),
            drop1: Dropout::new(dropout, seed_base),
            ln2: LayerNorm::new(d_model),
            ffn: FeedForward::new(d_model, d_ff, init),
            drop2: Dropout::new(dropout, seed_base.wrapping_add(1)),
        }
    }

    /// Forward pass; `mask` is forwarded to the attention core.
    pub fn forward(&mut self, x: &Tensor, mask: Option<&AttnMask>, train: bool) -> Tensor {
        let h = self
            .drop1
            .forward(&self.attn.forward_self(&self.ln1.forward(x), mask), train);
        let x1 = x.add(&h);
        let h2 = self
            .drop2
            .forward(&self.ffn.forward(&self.ln2.forward(&x1)), train);
        x1.add(&h2)
    }

    /// Backward pass; returns the input gradient.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        // Residual 2: dy flows both into the FFN branch and straight through.
        let dffn = self
            .ln2
            .backward(&self.ffn.backward(&self.drop2.backward(dy)));
        let dx1 = dy.add(&dffn);
        // Residual 1.
        let dattn = self
            .ln1
            .backward(&self.attn.backward_self(&self.drop1.backward(&dx1)));
        dx1.add(&dattn)
    }

    /// The attention sub-layer (for weight inspection / visualization).
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attn
    }
}

impl Layer for EncoderLayer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        visit_child(&mut self.ln1, "ln1", f);
        visit_child(&mut self.attn, "attn", f);
        visit_child(&mut self.ln2, "ln2", f);
        visit_child(&mut self.ffn, "ffn", f);
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        self.drop1.visit_rng("drop1", f);
        self.drop2.visit_rng("drop2", f);
    }
}

/// A stack of [`EncoderLayer`]s with a final LayerNorm (pre-LN convention).
#[derive(Debug, Clone)]
pub struct Encoder {
    layers: Vec<EncoderLayer>,
    final_ln: LayerNorm,
}

impl Encoder {
    /// New encoder with `n_layers` layers.
    pub fn new(
        n_layers: usize,
        d_model: usize,
        n_heads: usize,
        d_ff: usize,
        dropout: f32,
        init: &mut SeededInit,
    ) -> Self {
        Self {
            layers: (0..n_layers)
                .map(|_| EncoderLayer::new(d_model, n_heads, d_ff, dropout, init))
                .collect(),
            final_ln: LayerNorm::new(d_model),
        }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.final_ln.dim()
    }

    /// Forward through all layers; the same `mask` is applied at every layer.
    pub fn forward(&mut self, x: &Tensor, mask: Option<&AttnMask>, train: bool) -> Tensor {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, mask, train);
        }
        self.final_ln.forward(&h)
    }

    /// Backward through all layers in reverse.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut g = self.final_ln.backward(dy);
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Per-layer, per-head attention maps from the last forward pass.
    pub fn attention_maps(&self) -> Vec<&[Tensor]> {
        self.layers
            .iter()
            .map(|l| l.attention().last_attention())
            .collect()
    }
}

impl Layer for Encoder {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            visit_child(layer, &format!("layer{i}"), f);
        }
        visit_child(&mut self.final_ln, "final_ln", f);
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            crate::visit_rng_child(layer, &format!("layer{i}"), f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, numeric_grad};

    #[test]
    fn ffn_gradcheck() {
        let mut f = FeedForward::new(4, 8, &mut SeededInit::new(1));
        let x = SeededInit::new(2).uniform(&[3, 4], -1.0, 1.0);
        let dy = SeededInit::new(3).uniform(&[3, 4], -1.0, 1.0);
        let _ = f.forward(&x);
        let dx = f.backward(&dy);
        let mut probe = f.clone();
        let dyc = dy.clone();
        let num = numeric_grad(&x, 5e-3, |x| probe.forward(x).mul(&dyc).sum());
        assert_close(&dx, &num, 2e-2, "ffn dx");
    }

    #[test]
    fn encoder_layer_preserves_shape() {
        let mut l = EncoderLayer::new(8, 2, 16, 0.0, &mut SeededInit::new(4));
        let x = SeededInit::new(5).uniform(&[6, 8], -1.0, 1.0);
        let y = l.forward(&x, None, false);
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn encoder_layer_gradcheck() {
        let mut l = EncoderLayer::new(6, 2, 12, 0.0, &mut SeededInit::new(6));
        let x = SeededInit::new(7).uniform(&[3, 6], -0.5, 0.5);
        let dy = SeededInit::new(8).uniform(&[3, 6], -1.0, 1.0);
        let _ = l.forward(&x, None, true);
        let dx = l.backward(&dy);
        let mut probe = l.clone();
        let dyc = dy.clone();
        let num = numeric_grad(&x, 5e-3, |x| probe.forward(x, None, false).mul(&dyc).sum());
        assert_close(&dx, &num, 3e-2, "encoder layer dx");
    }

    #[test]
    fn encoder_stack_gradcheck() {
        let mut enc = Encoder::new(2, 6, 2, 12, 0.0, &mut SeededInit::new(9));
        let x = SeededInit::new(10).uniform(&[3, 6], -0.5, 0.5);
        let dy = SeededInit::new(11).uniform(&[3, 6], -1.0, 1.0);
        let _ = enc.forward(&x, None, true);
        let dx = enc.backward(&dy);
        let mut probe = enc.clone();
        let dyc = dy.clone();
        let num = numeric_grad(&x, 5e-3, |x| probe.forward(x, None, false).mul(&dyc).sum());
        assert_close(&dx, &num, 3e-2, "encoder dx");
    }

    #[test]
    fn encoder_exposes_attention_maps() {
        let mut enc = Encoder::new(2, 8, 2, 16, 0.0, &mut SeededInit::new(12));
        let x = SeededInit::new(13).uniform(&[4, 8], -1.0, 1.0);
        let _ = enc.forward(&x, None, false);
        let maps = enc.attention_maps();
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].len(), 2);
        assert_eq!(maps[0][0].shape(), &[4, 4]);
    }

    #[test]
    fn param_count_is_deterministic() {
        let mut a = Encoder::new(2, 8, 2, 16, 0.1, &mut SeededInit::new(14));
        let mut b = Encoder::new(2, 8, 2, 16, 0.1, &mut SeededInit::new(14));
        assert_eq!(a.num_params(), b.num_params());
        assert!(a.num_params() > 0);
    }
}
