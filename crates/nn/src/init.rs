//! Seeded weight initialization.
//!
//! All randomness in the workspace flows through explicit seeds so every
//! experiment in `ntr-bench` is reproducible bit-for-bit.

use ntr_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded source of initialized weight tensors.
pub struct SeededInit {
    rng: StdRng,
}

impl SeededInit {
    /// Creates an initializer from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform Glorot/Xavier initialization for a `[fan_in, fan_out]` matrix.
    ///
    /// Bound is `sqrt(6 / (fan_in + fan_out))`, the standard choice for
    /// tanh/GELU-family networks.
    pub fn xavier(&mut self, fan_in: usize, fan_out: usize) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.uniform(&[fan_in, fan_out], -bound, bound)
    }

    /// Truncated-normal-ish initialization used for embedding tables
    /// (mean 0, std `std`, resampled into ±2σ).
    pub fn normal(&mut self, shape: &[usize], std: f32) -> Tensor {
        Tensor::from_fn(shape, |_| {
            // Box-Muller with rejection outside 2σ: cheap truncated normal.
            loop {
                let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = self.rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                if z.abs() <= 2.0 {
                    return z * std;
                }
            }
        })
    }

    /// Uniform initialization on `[lo, hi)`.
    pub fn uniform(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        Tensor::from_fn(shape, |_| self.rng.gen_range(lo..hi))
    }

    /// Derives an independent child initializer, for giving each sub-layer
    /// its own stream while staying a pure function of the root seed.
    pub fn fork(&mut self) -> SeededInit {
        SeededInit::new(self.rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let a = SeededInit::new(42).xavier(8, 8);
        let b = SeededInit::new(42).xavier(8, 8);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn different_seed_different_weights() {
        let a = SeededInit::new(1).xavier(8, 8);
        let b = SeededInit::new(2).xavier(8, 8);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn xavier_respects_bound() {
        let t = SeededInit::new(7).xavier(10, 10);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn normal_is_truncated_and_roughly_centered() {
        let t = SeededInit::new(3).normal(&[1000], 0.5);
        assert!(t.data().iter().all(|&x| x.abs() <= 1.0 + 1e-6));
        assert!(t.mean().abs() < 0.1);
    }

    #[test]
    fn fork_streams_are_decoupled_but_deterministic() {
        let mut root1 = SeededInit::new(9);
        let mut root2 = SeededInit::new(9);
        let a = root1.fork().uniform(&[4], 0.0, 1.0);
        let b = root2.fork().uniform(&[4], 0.0, 1.0);
        assert_eq!(a.data(), b.data());
    }
}
