//! Checkpointing: save/load model parameters **and full training state**
//! (Adam moments, LR schedule, shuffle cursor, dropout RNGs) to a
//! versioned, checksummed binary format with crash-safe writes.
//!
//! ## `NTRW` v2 format (little-endian throughout)
//!
//! ```text
//! magic   b"NTRW"
//! u32     version (2)
//! u32     section count
//! per section:
//!   [u8;4]  tag               (b"PARA", b"ADAM", b"SCHD", b"CURS", b"RNGS")
//!   u64     payload length
//!   ...     payload
//!   u32     CRC-32 of the payload
//! trailer b"NTRE"
//! u32     CRC-32 of every preceding byte (magic through trailer magic)
//! ```
//!
//! Section payloads (`str` = u32 length + UTF-8 bytes; `tensor` = u32 ndim,
//! u32 per dim, f32 bit patterns row-major):
//!
//! * `PARA` — u32 count, then (str name, tensor value) per parameter;
//! * `ADAM` — u64 steps, f32 lr/β₁/β₂/ε/weight-decay, u32 count, then
//!   (str name, tensor m, tensor v) per parameter with optimizer state;
//! * `SCHD` — f32 peak_lr, u64 warmup, u64 total ([`WarmupLinearSchedule`]);
//! * `CURS` — u64 epoch, u64 example-within-epoch, u64 shuffle seed;
//! * `RNGS` — u32 count, then (str name, 4×u64 state words) per dropout RNG.
//!
//! A v2 file with only the `PARA` section is a plain weight checkpoint;
//! version-1 files (raw parameters, no sections, no checksums) still parse,
//! yielding `state: None` so optimizer state is freshly initialized.
//! Unknown section tags are skipped (their CRC is still verified), leaving
//! room for future sections without a version bump.
//!
//! ## Integrity and crash safety
//!
//! Loading never trusts a declared length: every read is bounds-checked
//! against the remaining file *before* any allocation, the file-level CRC is
//! verified before sections are interpreted, and each section's CRC is
//! verified before its payload is decoded. Any truncation or bit flip
//! surfaces as [`CheckpointError::BadFormat`] — never a panic, never a
//! silently wrong tensor. [`save_checkpoint`] writes through a temp file +
//! `fsync` + atomic rename, so a crash at any byte leaves either the old
//! complete checkpoint or the new one on disk, never a hybrid.

use crate::optim::{Adam, WarmupLinearSchedule};
use crate::Layer;
use ntr_tensor::io::{crc32, ByteReader, CrcWriter, ShortRead};
use ntr_tensor::Tensor;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"NTRW";
const TRAILER: &[u8; 4] = b"NTRE";
const VERSION: u32 = 2;

const TAG_PARAMS: &[u8; 4] = b"PARA";
const TAG_ADAM: &[u8; 4] = b"ADAM";
const TAG_SCHEDULE: &[u8; 4] = b"SCHD";
const TAG_CURSOR: &[u8; 4] = b"CURS";
const TAG_RNGS: &[u8; 4] = b"RNGS";

/// Tensors in checkpoints are at most matrices today; a little headroom
/// guards against nonsense `ndim` from corrupt files without rejecting
/// plausible future shapes.
const MAX_NDIM: usize = 16;

/// Errors from checkpoint load/save.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not an `NTRW` checkpoint, is truncated, fails a
    /// checksum, or has a malformed section.
    BadFormat(String),
    /// Checkpoint and model disagree on the parameter set.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadFormat(m) => write!(f, "bad checkpoint format: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint/model mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<ShortRead> for CheckpointError {
    fn from(e: ShortRead) -> Self {
        CheckpointError::BadFormat(e.to_string())
    }
}

/// Position of a training run at checkpoint time: the next example to
/// process, identified by epoch and offset within that epoch's shuffled
/// order, plus the shuffle seed that order derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrainCursor {
    /// Epoch of the next unprocessed example.
    pub epoch: u64,
    /// Offset of the next unprocessed example within the epoch's order.
    pub example: u64,
    /// Shuffle/masking seed of the run (checked on resume).
    pub seed: u64,
}

/// Everything beyond raw weights that bit-identical resume requires.
#[derive(Debug, Clone)]
pub struct TrainState {
    /// Completed optimizer steps (Adam's bias-correction `t`).
    pub steps: u64,
    /// Learning rate at checkpoint time.
    pub lr: f32,
    /// Adam β₁.
    pub beta1: f32,
    /// Adam β₂.
    pub beta2: f32,
    /// Adam ε.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Per-parameter first/second moments, keyed by parameter path.
    pub moments: BTreeMap<String, (Tensor, Tensor)>,
    /// The LR schedule (warmup/total are part of the training contract).
    pub schedule: WarmupLinearSchedule,
    /// Where in the example stream to resume.
    pub cursor: TrainCursor,
    /// Dropout RNG states, keyed by RNG path (see `Layer::visit_rng_state`).
    pub rngs: BTreeMap<String, [u64; 4]>,
}

/// A parsed checkpoint: parameters plus optional training state.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Parameter path → value.
    pub params: BTreeMap<String, Tensor>,
    /// Training state; `None` for v1 files and weight-only checkpoints.
    pub state: Option<TrainState>,
}

/// Collects a layer's parameters into a name → tensor map.
pub fn state_dict(layer: &mut dyn Layer) -> BTreeMap<String, Tensor> {
    let mut map = BTreeMap::new();
    layer.visit_params(&mut |name, p| {
        let prev = map.insert(name.to_string(), p.value.clone());
        assert!(prev.is_none(), "duplicate parameter name {name}");
    });
    map
}

impl TrainCheckpoint {
    /// Captures a weight-only checkpoint of `model`.
    pub fn capture(model: &mut dyn Layer) -> Self {
        Self {
            params: state_dict(model),
            state: None,
        }
    }

    /// Captures the full training state: weights, the moments `adam` holds
    /// for them, the schedule, the dropout RNG streams, and `cursor`.
    pub fn capture_train(
        model: &mut dyn Layer,
        adam: &Adam,
        schedule: &WarmupLinearSchedule,
        cursor: TrainCursor,
    ) -> Self {
        let mut params = BTreeMap::new();
        let mut moments = BTreeMap::new();
        model.visit_params(&mut |name, p| {
            let prev = params.insert(name.to_string(), p.value.clone());
            assert!(prev.is_none(), "duplicate parameter name {name}");
            if let Some((m, v)) = adam.moments_of(p.id()) {
                moments.insert(name.to_string(), (m.clone(), v.clone()));
            }
        });
        let mut rngs = BTreeMap::new();
        model.visit_rng_state(&mut |name, s| {
            rngs.insert(name.to_string(), *s);
        });
        Self {
            params,
            state: Some(TrainState {
                steps: adam.steps(),
                lr: adam.lr(),
                beta1: adam.beta1(),
                beta2: adam.beta2(),
                eps: adam.eps(),
                weight_decay: adam.weight_decay(),
                moments,
                schedule: *schedule,
                cursor,
                rngs,
            }),
        }
    }

    /// Loads the parameters into `model`, strict on names and shapes: the
    /// checkpoint and the model must describe the same parameter set, which
    /// catches architecture drift early.
    pub fn apply_params(&self, model: &mut dyn Layer) -> Result<(), CheckpointError> {
        // Validate every name and shape first, so a mismatch leaves the
        // model completely untouched (no partial loads).
        let mut pending: BTreeMap<&str, &Tensor> =
            self.params.iter().map(|(k, v)| (k.as_str(), v)).collect();
        let mut error: Option<CheckpointError> = None;
        model.visit_params(&mut |name, p| {
            if error.is_some() {
                return;
            }
            match pending.remove(name) {
                Some(t) if t.shape() == p.value.shape() => {}
                Some(t) => {
                    error = Some(CheckpointError::Mismatch(format!(
                        "parameter {name}: checkpoint shape {:?} != model shape {:?}",
                        t.shape(),
                        p.value.shape()
                    )));
                }
                None => {
                    error = Some(CheckpointError::Mismatch(format!(
                        "parameter {name} missing from checkpoint"
                    )));
                }
            }
        });
        if let Some(e) = error {
            return Err(e);
        }
        if let Some(extra) = pending.keys().next() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint contains {} parameter(s) unknown to the model, e.g. {extra}",
                pending.len()
            )));
        }
        model.visit_params(&mut |name, p| p.value = self.params[name].clone());
        Ok(())
    }

    /// Loads parameters into `model` and, when training state is present,
    /// rebuilds the optimizer, schedule and cursor and restores dropout RNG
    /// streams. Returns `None` for weight-only/v1 checkpoints.
    pub fn apply_train(
        &self,
        model: &mut dyn Layer,
    ) -> Result<Option<(Adam, WarmupLinearSchedule, TrainCursor)>, CheckpointError> {
        self.apply_params(model)?;
        let Some(st) = &self.state else {
            return Ok(None);
        };
        let mut adam = Adam::new(st.lr)
            .with_weight_decay(st.weight_decay)
            .with_betas(st.beta1, st.beta2, st.eps);
        adam.set_steps(st.steps);
        let mut pending = st.moments.clone();
        let mut error: Option<CheckpointError> = None;
        model.visit_params(&mut |name, p| {
            if error.is_some() {
                return;
            }
            if let Some((m, v)) = pending.remove(name) {
                if m.shape() != p.value.shape() {
                    error = Some(CheckpointError::Mismatch(format!(
                        "moments for {name}: checkpoint shape {:?} != model shape {:?}",
                        m.shape(),
                        p.value.shape()
                    )));
                } else {
                    adam.set_moments(p.id(), m, v);
                }
            }
        });
        if let Some(e) = error {
            return Err(e);
        }
        if let Some(extra) = pending.keys().next() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has optimizer state for {} parameter(s) unknown to the model, e.g. {extra}",
                pending.len()
            )));
        }
        let mut rng_pending = st.rngs.clone();
        model.visit_rng_state(&mut |name, s| {
            if let Some(saved) = rng_pending.remove(name) {
                *s = saved;
            }
        });
        if let Some(extra) = rng_pending.keys().next() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has RNG state for {} stream(s) unknown to the model, e.g. {extra}",
                rng_pending.len()
            )));
        }
        Ok(Some((adam, st.schedule, st.cursor)))
    }
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_tensor(buf: &mut Vec<u8>, t: &Tensor) {
    buf.extend_from_slice(&(t.ndim() as u32).to_le_bytes());
    for &d in t.shape() {
        buf.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in t.data() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn write_section<W: Write>(
    w: &mut CrcWriter<W>,
    tag: &[u8; 4],
    payload: &[u8],
) -> Result<(), CheckpointError> {
    w.write_all(tag)?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Serializes a checkpoint to `w` in the v2 format.
pub fn write_checkpoint_to(
    ckpt: &TrainCheckpoint,
    w: &mut dyn Write,
) -> Result<(), CheckpointError> {
    let mut cw = CrcWriter::new(w);
    cw.write_all(MAGIC)?;
    cw.write_all(&VERSION.to_le_bytes())?;
    let n_sections: u32 = if ckpt.state.is_some() { 5 } else { 1 };
    cw.write_all(&n_sections.to_le_bytes())?;

    let mut para = Vec::new();
    para.extend_from_slice(&(ckpt.params.len() as u32).to_le_bytes());
    for (name, t) in &ckpt.params {
        put_str(&mut para, name);
        put_tensor(&mut para, t);
    }
    write_section(&mut cw, TAG_PARAMS, &para)?;

    if let Some(st) = &ckpt.state {
        let mut adam = Vec::new();
        adam.extend_from_slice(&st.steps.to_le_bytes());
        for v in [st.lr, st.beta1, st.beta2, st.eps, st.weight_decay] {
            adam.extend_from_slice(&v.to_le_bytes());
        }
        adam.extend_from_slice(&(st.moments.len() as u32).to_le_bytes());
        for (name, (m, v)) in &st.moments {
            put_str(&mut adam, name);
            put_tensor(&mut adam, m);
            put_tensor(&mut adam, v);
        }
        write_section(&mut cw, TAG_ADAM, &adam)?;

        let mut schd = Vec::new();
        schd.extend_from_slice(&st.schedule.peak_lr.to_le_bytes());
        schd.extend_from_slice(&st.schedule.warmup.to_le_bytes());
        schd.extend_from_slice(&st.schedule.total.to_le_bytes());
        write_section(&mut cw, TAG_SCHEDULE, &schd)?;

        let mut curs = Vec::new();
        curs.extend_from_slice(&st.cursor.epoch.to_le_bytes());
        curs.extend_from_slice(&st.cursor.example.to_le_bytes());
        curs.extend_from_slice(&st.cursor.seed.to_le_bytes());
        write_section(&mut cw, TAG_CURSOR, &curs)?;

        let mut rngs = Vec::new();
        rngs.extend_from_slice(&(st.rngs.len() as u32).to_le_bytes());
        for (name, words) in &st.rngs {
            put_str(&mut rngs, name);
            for w64 in words {
                rngs.extend_from_slice(&w64.to_le_bytes());
            }
        }
        write_section(&mut cw, TAG_RNGS, &rngs)?;
    }

    cw.write_all(TRAILER)?;
    let file_crc = cw.crc();
    cw.inner_mut().write_all(&file_crc.to_le_bytes())?;
    Ok(())
}

/// What a crash-safe checkpoint save cost, for observability: the file
/// size and the time spent in the durability syscalls (file fsync, rename,
/// directory fsync). Returned by value so this crate stays free of any
/// observability dependency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaveStats {
    /// Bytes written to the checkpoint file.
    pub bytes: u64,
    /// Wall time of the fsync/rename/dir-fsync tail, in milliseconds.
    pub fsync_ms: u64,
}

/// Saves a checkpoint to `path` crash-safely: the bytes go to a sibling
/// temp file which is flushed, `fsync`ed, and atomically renamed over
/// `path` (the containing directory is then `fsync`ed so the rename itself
/// survives power loss). A crash at any point leaves either the previous
/// checkpoint or the new one — never a partial file under `path`.
pub fn save_checkpoint(ckpt: &TrainCheckpoint, path: &Path) -> Result<(), CheckpointError> {
    save_checkpoint_stats(ckpt, path).map(|_| ())
}

/// [`save_checkpoint`] reporting the written size and fsync cost.
pub fn save_checkpoint_stats(
    ckpt: &TrainCheckpoint,
    path: &Path,
) -> Result<SaveStats, CheckpointError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| -> Result<SaveStats, CheckpointError> {
        let file = std::fs::File::create(&tmp)?;
        let mut bw = io::BufWriter::new(file);
        write_checkpoint_to(ckpt, &mut bw)?;
        bw.flush()?;
        let bytes = bw.get_ref().metadata()?.len();
        let sync_start = std::time::Instant::now();
        bw.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(SaveStats {
            bytes,
            fsync_ms: sync_start.elapsed().as_millis() as u64,
        })
    })();
    let mut stats = match result {
        Ok(stats) => stats,
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
    };
    let dir_sync_start = std::time::Instant::now();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    stats.fsync_ms += dir_sync_start.elapsed().as_millis() as u64;
    Ok(stats)
}

// ---------------------------------------------------------------------
// Parsing (bounds-checked, never trusts declared sizes)
// ---------------------------------------------------------------------

fn get_str(r: &mut ByteReader<'_>) -> Result<String, CheckpointError> {
    let len = r.u32()? as usize;
    let bytes = r.take(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|e| CheckpointError::BadFormat(format!("non-UTF8 name: {e}")))
}

fn get_tensor(r: &mut ByteReader<'_>) -> Result<Tensor, CheckpointError> {
    let ndim = r.u32()? as usize;
    if ndim > MAX_NDIM {
        return Err(CheckpointError::BadFormat(format!(
            "tensor rank {ndim} exceeds the maximum of {MAX_NDIM}"
        )));
    }
    let mut shape = Vec::with_capacity(ndim);
    let mut numel: u64 = 1;
    for _ in 0..ndim {
        let d = r.u32()? as usize;
        numel = numel.saturating_mul(d as u64);
        shape.push(d);
    }
    // Clamp the declared element count against the bytes actually present
    // before allocating — a hostile header can not trigger a huge
    // allocation (`f32s` re-checks, but failing here gives a better error).
    if numel.saturating_mul(4) > r.remaining() as u64 {
        return Err(CheckpointError::BadFormat(format!(
            "tensor of shape {shape:?} declares {numel} element(s) but only {} byte(s) remain",
            r.remaining()
        )));
    }
    let data = r.f32s(numel as usize)?;
    Ok(Tensor::from_vec(data, &shape))
}

fn parse_params(payload: &[u8]) -> Result<BTreeMap<String, Tensor>, CheckpointError> {
    let mut r = ByteReader::new(payload);
    let count = r.u32()?;
    let mut map = BTreeMap::new();
    for _ in 0..count {
        let name = get_str(&mut r)?;
        let t = get_tensor(&mut r)?;
        if map.insert(name.clone(), t).is_some() {
            return Err(CheckpointError::BadFormat(format!(
                "duplicate parameter {name}"
            )));
        }
    }
    if !r.is_empty() {
        return Err(CheckpointError::BadFormat(format!(
            "{} trailing byte(s) in parameter section",
            r.remaining()
        )));
    }
    Ok(map)
}

struct AdamSection {
    steps: u64,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    moments: BTreeMap<String, (Tensor, Tensor)>,
}

fn parse_adam(payload: &[u8]) -> Result<AdamSection, CheckpointError> {
    let mut r = ByteReader::new(payload);
    let steps = r.u64()?;
    let lr = r.f32()?;
    let beta1 = r.f32()?;
    let beta2 = r.f32()?;
    let eps = r.f32()?;
    let weight_decay = r.f32()?;
    let count = r.u32()?;
    let mut moments = BTreeMap::new();
    for _ in 0..count {
        let name = get_str(&mut r)?;
        let m = get_tensor(&mut r)?;
        let v = get_tensor(&mut r)?;
        if m.shape() != v.shape() {
            return Err(CheckpointError::BadFormat(format!(
                "moments for {name} disagree on shape: {:?} vs {:?}",
                m.shape(),
                v.shape()
            )));
        }
        if moments.insert(name.clone(), (m, v)).is_some() {
            return Err(CheckpointError::BadFormat(format!(
                "duplicate optimizer state for {name}"
            )));
        }
    }
    if !r.is_empty() {
        return Err(CheckpointError::BadFormat(format!(
            "{} trailing byte(s) in optimizer section",
            r.remaining()
        )));
    }
    Ok(AdamSection {
        steps,
        lr,
        beta1,
        beta2,
        eps,
        weight_decay,
        moments,
    })
}

fn parse_schedule(payload: &[u8]) -> Result<WarmupLinearSchedule, CheckpointError> {
    let mut r = ByteReader::new(payload);
    let s = WarmupLinearSchedule {
        peak_lr: r.f32()?,
        warmup: r.u64()?,
        total: r.u64()?,
    };
    if !r.is_empty() {
        return Err(CheckpointError::BadFormat(
            "trailing bytes in schedule section".into(),
        ));
    }
    Ok(s)
}

fn parse_cursor(payload: &[u8]) -> Result<TrainCursor, CheckpointError> {
    let mut r = ByteReader::new(payload);
    let c = TrainCursor {
        epoch: r.u64()?,
        example: r.u64()?,
        seed: r.u64()?,
    };
    if !r.is_empty() {
        return Err(CheckpointError::BadFormat(
            "trailing bytes in cursor section".into(),
        ));
    }
    Ok(c)
}

fn parse_rngs(payload: &[u8]) -> Result<BTreeMap<String, [u64; 4]>, CheckpointError> {
    let mut r = ByteReader::new(payload);
    let count = r.u32()?;
    let mut map = BTreeMap::new();
    for _ in 0..count {
        let name = get_str(&mut r)?;
        let words = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        if map.insert(name.clone(), words).is_some() {
            return Err(CheckpointError::BadFormat(format!(
                "duplicate RNG state for {name}"
            )));
        }
    }
    if !r.is_empty() {
        return Err(CheckpointError::BadFormat(format!(
            "{} trailing byte(s) in RNG section",
            r.remaining()
        )));
    }
    Ok(map)
}

fn parse_v2(bytes: &[u8]) -> Result<TrainCheckpoint, CheckpointError> {
    // Smallest possible v2 file: header (12) + empty-PARA section
    // (4+8+4+4) + trailer (8).
    if bytes.len() < 12 + 20 + 8 {
        return Err(CheckpointError::BadFormat(format!(
            "file of {} byte(s) is too short for a v2 checkpoint",
            bytes.len()
        )));
    }
    let body_len = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[body_len..].try_into().expect("4 bytes"));
    if crc32(&bytes[..body_len]) != stored {
        return Err(CheckpointError::BadFormat(
            "file checksum mismatch (truncated or corrupted checkpoint)".into(),
        ));
    }
    if &bytes[body_len - 4..body_len] != TRAILER {
        return Err(CheckpointError::BadFormat(
            "missing NTRE trailer (truncated checkpoint)".into(),
        ));
    }

    let mut r = ByteReader::new(&bytes[8..body_len - 4]);
    let n_sections = r.u32()?;
    let mut params: Option<BTreeMap<String, Tensor>> = None;
    let mut adam: Option<AdamSection> = None;
    let mut schedule: Option<WarmupLinearSchedule> = None;
    let mut cursor: Option<TrainCursor> = None;
    let mut rngs: Option<BTreeMap<String, [u64; 4]>> = None;
    for i in 0..n_sections {
        let tag: [u8; 4] = r.take(4)?.try_into().expect("4 bytes");
        let len64 = r.u64()?;
        let len = usize::try_from(len64).map_err(|_| {
            CheckpointError::BadFormat(format!("section {i} declares absurd length {len64}"))
        })?;
        let payload = r.take(len)?;
        let stored = r.u32()?;
        if crc32(payload) != stored {
            return Err(CheckpointError::BadFormat(format!(
                "section {:?} checksum mismatch",
                String::from_utf8_lossy(&tag)
            )));
        }
        match &tag {
            TAG_PARAMS => params = Some(parse_params(payload)?),
            TAG_ADAM => adam = Some(parse_adam(payload)?),
            TAG_SCHEDULE => schedule = Some(parse_schedule(payload)?),
            TAG_CURSOR => cursor = Some(parse_cursor(payload)?),
            TAG_RNGS => rngs = Some(parse_rngs(payload)?),
            _ => {} // Unknown sections are skipped; their CRC was verified.
        }
    }
    if !r.is_empty() {
        return Err(CheckpointError::BadFormat(format!(
            "{} byte(s) after the last declared section",
            r.remaining()
        )));
    }
    let params = params
        .ok_or_else(|| CheckpointError::BadFormat("checkpoint has no parameter section".into()))?;
    let state = match adam {
        None => None,
        Some(a) => {
            let schedule = schedule.ok_or_else(|| {
                CheckpointError::BadFormat(
                    "optimizer state present but schedule section missing".into(),
                )
            })?;
            let cursor = cursor.ok_or_else(|| {
                CheckpointError::BadFormat(
                    "optimizer state present but cursor section missing".into(),
                )
            })?;
            Some(TrainState {
                steps: a.steps,
                lr: a.lr,
                beta1: a.beta1,
                beta2: a.beta2,
                eps: a.eps,
                weight_decay: a.weight_decay,
                moments: a.moments,
                schedule,
                cursor,
                rngs: rngs.unwrap_or_default(),
            })
        }
    };
    Ok(TrainCheckpoint { params, state })
}

fn parse_v1(bytes: &[u8]) -> Result<TrainCheckpoint, CheckpointError> {
    let mut r = ByteReader::new(&bytes[8..]);
    let count = r.u32()?;
    let mut map = BTreeMap::new();
    for _ in 0..count {
        let name = get_str(&mut r)?;
        let t = get_tensor(&mut r)?;
        if map.insert(name.clone(), t).is_some() {
            return Err(CheckpointError::BadFormat(format!(
                "duplicate parameter {name}"
            )));
        }
    }
    if !r.is_empty() {
        return Err(CheckpointError::BadFormat(format!(
            "{} trailing byte(s) after the last v1 parameter",
            r.remaining()
        )));
    }
    Ok(TrainCheckpoint {
        params: map,
        state: None,
    })
}

/// Parses a checkpoint image (v1 or v2). All integrity checks run here;
/// any truncation, corruption, or hostile length yields
/// [`CheckpointError::BadFormat`] without large allocations or panics.
pub fn parse_checkpoint(bytes: &[u8]) -> Result<TrainCheckpoint, CheckpointError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(CheckpointError::BadFormat(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    match r.u32()? {
        1 => parse_v1(bytes),
        2 => parse_v2(bytes),
        v => Err(CheckpointError::BadFormat(format!(
            "unsupported version {v}"
        ))),
    }
}

/// Reads a full checkpoint (v1 or v2) from `r`.
pub fn read_checkpoint(r: &mut dyn Read) -> Result<TrainCheckpoint, CheckpointError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    parse_checkpoint(&bytes)
}

/// Loads a full checkpoint (v1 or v2) from a file.
pub fn load_checkpoint(path: &Path) -> Result<TrainCheckpoint, CheckpointError> {
    let bytes = std::fs::read(path)?;
    parse_checkpoint(&bytes)
}

// ---------------------------------------------------------------------
// Weight-only convenience API (kept from v1 days, now emitting v2)
// ---------------------------------------------------------------------

/// Serializes a layer's parameters to `w` (weight-only v2 checkpoint).
pub fn save_to(layer: &mut dyn Layer, w: &mut dyn Write) -> Result<(), CheckpointError> {
    write_checkpoint_to(&TrainCheckpoint::capture(layer), w)
}

/// Saves a layer's parameters to a file, atomically (see
/// [`save_checkpoint`]).
pub fn save(layer: &mut dyn Layer, path: &Path) -> Result<(), CheckpointError> {
    save_checkpoint(&TrainCheckpoint::capture(layer), path)
}

/// Reads a checkpoint (v1 or v2) into a name → tensor map.
pub fn read_from(r: &mut dyn Read) -> Result<BTreeMap<String, Tensor>, CheckpointError> {
    Ok(read_checkpoint(r)?.params)
}

/// Loads a checkpoint into a layer, strict on names and shapes.
pub fn load_from(layer: &mut dyn Layer, r: &mut dyn Read) -> Result<(), CheckpointError> {
    read_checkpoint(r)?.apply_params(layer)
}

/// Loads a checkpoint file into a layer.
pub fn load(layer: &mut dyn Layer, path: &Path) -> Result<(), CheckpointError> {
    load_checkpoint(path)?.apply_params(layer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SeededInit;
    use crate::{Encoder, Linear};

    #[test]
    fn roundtrip_linear() {
        let mut a = Linear::new(3, 4, &mut SeededInit::new(1));
        let mut buf = Vec::new();
        save_to(&mut a, &mut buf).unwrap();
        let mut b = Linear::new(3, 4, &mut SeededInit::new(999));
        assert_ne!(a.w.value.data(), b.w.value.data());
        load_from(&mut b, &mut buf.as_slice()).unwrap();
        assert_eq!(a.w.value.data(), b.w.value.data());
        assert_eq!(a.b.value.data(), b.b.value.data());
    }

    #[test]
    fn roundtrip_encoder_with_nested_names() {
        let mut a = Encoder::new(2, 8, 2, 16, 0.0, &mut SeededInit::new(2));
        let mut buf = Vec::new();
        save_to(&mut a, &mut buf).unwrap();
        let dict = read_from(&mut buf.as_slice()).unwrap();
        assert!(dict.keys().any(|k| k.starts_with("layer0/attn/wq/")));
        assert!(dict.contains_key("final_ln/gamma"));
        let mut b = Encoder::new(2, 8, 2, 16, 0.0, &mut SeededInit::new(3));
        load_from(&mut b, &mut buf.as_slice()).unwrap();
        assert_eq!(state_dict(&mut a), state_dict(&mut b));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut a = Linear::new(3, 4, &mut SeededInit::new(4));
        let mut buf = Vec::new();
        save_to(&mut a, &mut buf).unwrap();
        let mut b = Linear::new(3, 5, &mut SeededInit::new(5));
        let err = load_from(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn missing_parameter_is_an_error() {
        let mut small = Linear::new(2, 2, &mut SeededInit::new(6));
        let mut buf = Vec::new();
        save_to(&mut small, &mut buf).unwrap();
        let mut big = Encoder::new(1, 4, 1, 8, 0.0, &mut SeededInit::new(7));
        let err = load_from(&mut big, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn bad_magic_is_an_error() {
        let buf = b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00".to_vec();
        let err = read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::BadFormat(_)), "{err}");
    }

    #[test]
    fn truncated_file_is_bad_format() {
        // v2 files carry a whole-file CRC; any truncation is a clean
        // BadFormat, never a panic and never a partially loaded model.
        let mut a = Linear::new(3, 4, &mut SeededInit::new(8));
        let mut buf = Vec::new();
        save_to(&mut a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut b = Linear::new(3, 4, &mut SeededInit::new(9));
        let err = load_from(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::BadFormat(_)), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ntr_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lin.ntrw");
        let mut a = Linear::new(2, 3, &mut SeededInit::new(10));
        save(&mut a, &path).unwrap();
        let mut b = Linear::new(2, 3, &mut SeededInit::new(11));
        load(&mut b, &path).unwrap();
        assert_eq!(a.w.value.data(), b.w.value.data());
        let _ = std::fs::remove_file(&path);
    }

    /// Writes the legacy v1 image for a parameter map (test-only: the
    /// writer always emits v2 now, but v1 files in the wild must load).
    fn v1_bytes(params: &BTreeMap<String, Tensor>) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&(params.len() as u32).to_le_bytes());
        for (name, t) in params {
            put_str(&mut buf, name);
            put_tensor(&mut buf, t);
        }
        buf
    }

    #[test]
    fn v1_files_still_load_with_fresh_optimizer_state() {
        let mut a = Linear::new(3, 4, &mut SeededInit::new(12));
        let v1 = v1_bytes(&state_dict(&mut a));
        let ckpt = parse_checkpoint(&v1).unwrap();
        assert!(ckpt.state.is_none(), "v1 has no training state");
        let mut b = Linear::new(3, 4, &mut SeededInit::new(13));
        ckpt.apply_params(&mut b).unwrap();
        assert_eq!(a.w.value.data(), b.w.value.data());
    }

    #[test]
    fn v1_hostile_count_is_rejected_without_allocation() {
        // A v1 header declaring u32::MAX parameters (or a huge tensor)
        // must fail cleanly against the actual file size.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = parse_checkpoint(&buf).unwrap_err();
        assert!(matches!(err, CheckpointError::BadFormat(_)), "{err}");

        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // one parameter
        put_str(&mut buf, "w");
        buf.extend_from_slice(&2u32.to_le_bytes()); // ndim 2
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // 4 G rows
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // x 4 G cols
        let err = parse_checkpoint(&buf).unwrap_err();
        assert!(matches!(err, CheckpointError::BadFormat(_)), "{err}");
    }

    #[test]
    fn train_state_roundtrips_bit_exactly() {
        let mut model = Linear::new(3, 4, &mut SeededInit::new(14));
        let mut adam = Adam::new(1e-3).with_weight_decay(0.01);
        // Take two real steps so moments and t are non-trivial.
        for _ in 0..2 {
            let x = SeededInit::new(15).uniform(&[2, 3], -1.0, 1.0);
            let _ = model.forward(&x);
            let _ = model.backward(&SeededInit::new(16).uniform(&[2, 4], -1.0, 1.0));
            let mut step = adam.begin_step();
            model.visit_params(&mut |_, p| step.update(p));
            model.zero_grad();
        }
        let schedule = WarmupLinearSchedule {
            peak_lr: 1e-3,
            warmup: 3,
            total: 17,
        };
        let cursor = TrainCursor {
            epoch: 1,
            example: 5,
            seed: 0xF17E,
        };
        let ckpt = TrainCheckpoint::capture_train(&mut model, &adam, &schedule, cursor);
        let mut buf = Vec::new();
        write_checkpoint_to(&ckpt, &mut buf).unwrap();

        let parsed = parse_checkpoint(&buf).unwrap();
        let mut restored = Linear::new(3, 4, &mut SeededInit::new(99));
        let (adam2, schedule2, cursor2) = parsed
            .apply_train(&mut restored)
            .unwrap()
            .expect("training state present");
        assert_eq!(state_dict(&mut model), state_dict(&mut restored));
        assert_eq!(adam2.steps(), 2);
        assert_eq!(adam2.lr(), adam.lr());
        assert_eq!(schedule2.warmup, 3);
        assert_eq!(schedule2.total, 17);
        assert_eq!(cursor2, cursor);
        restored.visit_params(&mut |name, p| {
            let (m, v) = adam2.moments_of(p.id()).expect("moments restored");
            let (m0, v0) = &ckpt.state.as_ref().unwrap().moments[name];
            assert_eq!(m.data(), m0.data());
            assert_eq!(v.data(), v0.data());
        });
    }

    #[test]
    fn moments_for_unknown_parameter_is_mismatch() {
        let mut model = Linear::new(2, 2, &mut SeededInit::new(17));
        let mut adam = Adam::new(1e-3);
        let x = ntr_tensor::Tensor::ones(&[1, 2]);
        let _ = model.forward(&x);
        let _ = model.backward(&x);
        {
            let mut step = adam.begin_step();
            model.visit_params(&mut |_, p| step.update(p));
        }
        let schedule = WarmupLinearSchedule {
            peak_lr: 1e-3,
            warmup: 1,
            total: 2,
        };
        let mut ckpt =
            TrainCheckpoint::capture_train(&mut model, &adam, &schedule, TrainCursor::default());
        if let Some(st) = &mut ckpt.state {
            let (m, v) = st.moments["w"].clone();
            st.moments.insert("ghost".into(), (m, v));
        }
        let mut other = Linear::new(2, 2, &mut SeededInit::new(18));
        let err = ckpt.apply_train(&mut other).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn atomic_save_replaces_and_cleans_up_tmp() {
        let dir = std::env::temp_dir().join("ntr_ckpt_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ntrw");
        let tmp = dir.join("model.ntrw.tmp");
        // A stale temp file from a "crashed" earlier attempt must not
        // break or corrupt a fresh save.
        std::fs::write(&tmp, b"garbage from a crashed run").unwrap();
        let mut a = Linear::new(2, 2, &mut SeededInit::new(19));
        save(&mut a, &path).unwrap();
        assert!(!tmp.exists(), "temp file must be renamed away");
        let mut b = Linear::new(2, 2, &mut SeededInit::new(20));
        load(&mut b, &path).unwrap();
        assert_eq!(a.w.value.data(), b.w.value.data());
        // Overwriting an existing checkpoint also goes through the
        // temp+rename path and yields a valid file.
        let mut c = Linear::new(2, 2, &mut SeededInit::new(21));
        save(&mut c, &path).unwrap();
        let mut d = Linear::new(2, 2, &mut SeededInit::new(22));
        load(&mut d, &path).unwrap();
        assert_eq!(c.w.value.data(), d.w.value.data());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_and_scalar_tensors_roundtrip() {
        let mut params = BTreeMap::new();
        params.insert("empty".to_string(), Tensor::zeros(&[0]));
        params.insert("one".to_string(), Tensor::from_vec(vec![42.0], &[1]));
        params.insert("mat00".to_string(), Tensor::zeros(&[2, 0]));
        let ckpt = TrainCheckpoint {
            params,
            state: None,
        };
        let mut buf = Vec::new();
        write_checkpoint_to(&ckpt, &mut buf).unwrap();
        let parsed = parse_checkpoint(&buf).unwrap();
        assert_eq!(parsed.params["empty"].shape(), &[0]);
        assert_eq!(parsed.params["one"].data(), &[42.0]);
        assert_eq!(parsed.params["mat00"].shape(), &[2, 0]);
    }
}
