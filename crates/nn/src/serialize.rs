//! Checkpointing: save/load a layer's named parameters to a simple,
//! versioned binary format.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  b"NTRW"
//! u32    version (1)
//! u32    parameter count
//! per parameter:
//!   u32      name length, then UTF-8 name bytes
//!   u32      ndim, then u32 per dim
//!   f32 * n  row-major values
//! ```
//!
//! Loading is strict by name and shape: the checkpoint and the model must
//! describe the same parameter set, which catches architecture drift early.

use crate::Layer;
use ntr_tensor::Tensor;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"NTRW";
const VERSION: u32 = 1;

/// Errors from checkpoint load/save.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not an `NTRW` checkpoint or has a bad version.
    BadFormat(String),
    /// Checkpoint and model disagree on the parameter set.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadFormat(m) => write!(f, "bad checkpoint format: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint/model mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Collects a layer's parameters into a name → tensor map.
pub fn state_dict(layer: &mut dyn Layer) -> BTreeMap<String, Tensor> {
    let mut map = BTreeMap::new();
    layer.visit_params(&mut |name, p| {
        let prev = map.insert(name.to_string(), p.value.clone());
        assert!(prev.is_none(), "duplicate parameter name {name}");
    });
    map
}

/// Serializes a layer's parameters to `w`.
pub fn save_to(layer: &mut dyn Layer, w: &mut dyn Write) -> Result<(), CheckpointError> {
    let dict = state_dict(layer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(dict.len() as u32).to_le_bytes())?;
    for (name, t) in &dict {
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&(t.ndim() as u32).to_le_bytes())?;
        for &d in t.shape() {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in t.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Saves a layer's parameters to a file.
pub fn save(layer: &mut dyn Layer, path: &Path) -> Result<(), CheckpointError> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    save_to(layer, &mut f)
}

/// Reads a checkpoint into a name → tensor map.
pub fn read_from(r: &mut dyn Read) -> Result<BTreeMap<String, Tensor>, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadFormat(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(CheckpointError::BadFormat(format!(
            "unsupported version {version}"
        )));
    }
    let count = read_u32(r)? as usize;
    let mut map = BTreeMap::new();
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| CheckpointError::BadFormat(format!("non-UTF8 name: {e}")))?;
        let ndim = read_u32(r)? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(read_u32(r)? as usize);
        }
        let numel: usize = shape.iter().product();
        let mut data = vec![0.0f32; numel];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        map.insert(name, Tensor::from_vec(data, &shape));
    }
    Ok(map)
}

/// Loads a checkpoint into a layer, strict on names and shapes.
pub fn load_from(layer: &mut dyn Layer, r: &mut dyn Read) -> Result<(), CheckpointError> {
    let mut map = read_from(r)?;
    let mut error: Option<CheckpointError> = None;
    let mut loaded = 0usize;
    layer.visit_params(&mut |name, p| {
        if error.is_some() {
            return;
        }
        match map.remove(name) {
            Some(t) if t.shape() == p.value.shape() => {
                p.value = t;
                loaded += 1;
            }
            Some(t) => {
                error = Some(CheckpointError::Mismatch(format!(
                    "parameter {name}: checkpoint shape {:?} != model shape {:?}",
                    t.shape(),
                    p.value.shape()
                )));
            }
            None => {
                error = Some(CheckpointError::Mismatch(format!(
                    "parameter {name} missing from checkpoint"
                )));
            }
        }
    });
    if let Some(e) = error {
        return Err(e);
    }
    if let Some(extra) = map.keys().next() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint contains {} parameter(s) unknown to the model, e.g. {extra}",
            map.len()
        )));
    }
    Ok(())
}

/// Loads a checkpoint file into a layer.
pub fn load(layer: &mut dyn Layer, path: &Path) -> Result<(), CheckpointError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    load_from(layer, &mut f)
}

fn read_u32(r: &mut dyn Read) -> Result<u32, CheckpointError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SeededInit;
    use crate::{Encoder, Linear};

    #[test]
    fn roundtrip_linear() {
        let mut a = Linear::new(3, 4, &mut SeededInit::new(1));
        let mut buf = Vec::new();
        save_to(&mut a, &mut buf).unwrap();
        let mut b = Linear::new(3, 4, &mut SeededInit::new(999));
        assert_ne!(a.w.value.data(), b.w.value.data());
        load_from(&mut b, &mut buf.as_slice()).unwrap();
        assert_eq!(a.w.value.data(), b.w.value.data());
        assert_eq!(a.b.value.data(), b.b.value.data());
    }

    #[test]
    fn roundtrip_encoder_with_nested_names() {
        let mut a = Encoder::new(2, 8, 2, 16, 0.0, &mut SeededInit::new(2));
        let mut buf = Vec::new();
        save_to(&mut a, &mut buf).unwrap();
        let dict = read_from(&mut buf.as_slice()).unwrap();
        assert!(dict.keys().any(|k| k.starts_with("layer0/attn/wq/")));
        assert!(dict.contains_key("final_ln/gamma"));
        let mut b = Encoder::new(2, 8, 2, 16, 0.0, &mut SeededInit::new(3));
        load_from(&mut b, &mut buf.as_slice()).unwrap();
        assert_eq!(state_dict(&mut a), state_dict(&mut b));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut a = Linear::new(3, 4, &mut SeededInit::new(4));
        let mut buf = Vec::new();
        save_to(&mut a, &mut buf).unwrap();
        let mut b = Linear::new(3, 5, &mut SeededInit::new(5));
        let err = load_from(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn missing_parameter_is_an_error() {
        let mut small = Linear::new(2, 2, &mut SeededInit::new(6));
        let mut buf = Vec::new();
        save_to(&mut small, &mut buf).unwrap();
        let mut big = Encoder::new(1, 4, 1, 8, 0.0, &mut SeededInit::new(7));
        let err = load_from(&mut big, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn bad_magic_is_an_error() {
        let buf = b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00".to_vec();
        let err = read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::BadFormat(_)), "{err}");
    }

    #[test]
    fn truncated_file_is_io_error() {
        let mut a = Linear::new(3, 4, &mut SeededInit::new(8));
        let mut buf = Vec::new();
        save_to(&mut a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut b = Linear::new(3, 4, &mut SeededInit::new(9));
        let err = load_from(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ntr_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lin.ntrw");
        let mut a = Linear::new(2, 3, &mut SeededInit::new(10));
        save(&mut a, &path).unwrap();
        let mut b = Linear::new(2, 3, &mut SeededInit::new(11));
        load(&mut b, &path).unwrap();
        assert_eq!(a.w.value.data(), b.w.value.data());
        let _ = std::fs::remove_file(&path);
    }
}
