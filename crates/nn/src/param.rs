//! Trainable parameters: a value tensor plus an accumulated gradient.

use ntr_tensor::Tensor;

/// A trainable tensor with its gradient accumulator.
///
/// Layers accumulate into `grad` during `backward`; optimizers read `grad`
/// and write `value`. Optimizer state (Adam moments) is keyed off the
/// parameter's stable [`Param::id`], so parameters must not be recreated
/// between optimizer steps.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Accumulated gradient, same shape as `value`.
    pub grad: Tensor,
    id: u64,
}

impl Param {
    /// Wraps an initialized tensor as a trainable parameter.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self {
            value,
            grad,
            id: next_id(),
        }
    }

    /// Stable identity used by optimizers to key per-parameter state.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Accumulates `g` into the gradient.
    ///
    /// # Panics
    /// Panics if `g` has a different shape than the parameter.
    pub fn accumulate(&mut self, g: &Tensor) {
        self.grad.add_assign(g);
    }

    /// Replaces the values while keeping identity and gradient shape.
    ///
    /// # Panics
    /// Panics if the new values have a different shape.
    pub fn load(&mut self, value: Tensor) {
        assert_eq!(
            self.value.shape(),
            value.shape(),
            "Param::load: shape mismatch {:?} vs {:?}",
            self.value.shape(),
            value.shape()
        );
        self.value = value;
    }
}

fn next_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad_and_unique_id() {
        let a = Param::new(Tensor::ones(&[2, 2]));
        let b = Param::new(Tensor::ones(&[2, 2]));
        assert!(a.grad.data().iter().all(|&x| x == 0.0));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn accumulate_then_zero() {
        let mut p = Param::new(Tensor::zeros(&[3]));
        p.accumulate(&Tensor::ones(&[3]));
        p.accumulate(&Tensor::ones(&[3]));
        assert_eq!(p.grad.data(), &[2.0, 2.0, 2.0]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn load_replaces_values_keeps_id() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        let id = p.id();
        p.load(Tensor::ones(&[2]));
        assert_eq!(p.value.data(), &[1.0, 1.0]);
        assert_eq!(p.id(), id);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn load_rejects_shape_change() {
        let mut p = Param::new(Tensor::zeros(&[2]));
        p.load(Tensor::ones(&[3]));
    }
}
