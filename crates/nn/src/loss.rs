//! Loss functions. Each returns `(mean_loss, d loss / d logits)` so callers
//! can feed the gradient straight into a model's backward pass.

use ntr_tensor::Tensor;

/// Sentinel target meaning "do not compute loss at this position" — the
/// convention used for unmasked tokens in MLM-style objectives.
pub const IGNORE_INDEX: usize = usize::MAX;

/// True when every element is finite (no NaN, no ±Inf). The training
/// supervisor's first line of anomaly detection on losses and gradients.
pub fn all_finite(xs: &[f32]) -> bool {
    xs.iter().all(|x| x.is_finite())
}

/// Returns `loss` when it is finite, otherwise a description of what went
/// non-finite — a typed check for training loops that must never silently
/// propagate NaN into optimizer state.
pub fn check_finite_loss(loss: f32) -> Result<f32, String> {
    if loss.is_finite() {
        Ok(loss)
    } else if loss.is_nan() {
        Err("loss is NaN".to_string())
    } else {
        Err(format!("loss is {loss}"))
    }
}

/// Softmax cross-entropy over rows of `logits: [n, classes]`.
///
/// `targets[i]` is the class index for row `i`, or [`IGNORE_INDEX`] to skip
/// the row. The loss is averaged over non-ignored rows; if every row is
/// ignored the loss is `0` and the gradient is all zeros.
///
/// Optional `weights` rescales each row's contribution (used for class
/// balancing); ignored rows contribute nothing regardless of weight.
pub fn softmax_cross_entropy(
    logits: &Tensor,
    targets: &[usize],
    weights: Option<&[f32]>,
) -> (f32, Tensor) {
    assert_eq!(
        logits.ndim(),
        2,
        "softmax_cross_entropy expects [n, classes]"
    );
    let (n, c) = (logits.dim(0), logits.dim(1));
    assert_eq!(
        targets.len(),
        n,
        "target count {} != rows {n}",
        targets.len()
    );
    if let Some(w) = weights {
        assert_eq!(w.len(), n, "weight count {} != rows {n}", w.len());
    }

    let log_probs = logits.log_softmax_rows();
    let mut dlogits = Tensor::zeros(&[n, c]);
    let mut loss = 0.0;
    let mut total_weight = 0.0;
    for (i, &t) in targets.iter().enumerate() {
        if t == IGNORE_INDEX {
            continue;
        }
        assert!(t < c, "target {t} out of range for {c} classes");
        let w = weights.map_or(1.0, |ws| ws[i]);
        loss -= w * log_probs.at(&[i, t]);
        total_weight += w;

        // d/d logits = softmax(logits) − one_hot(target), scaled later.
        let row = log_probs.row(i);
        let drow = dlogits.row_mut(i);
        for j in 0..c {
            drow[j] = w * row[j].exp();
        }
        drow[t] -= w;
    }
    if total_weight == 0.0 {
        return (0.0, dlogits);
    }
    let scale = 1.0 / total_weight;
    (loss * scale, dlogits.scale(scale))
}

/// Per-element binary cross-entropy with logits, for multi-label heads such
/// as TAPAS-style cell selection.
///
/// `targets` are 0.0/1.0 per element; `mask` (same length) zeroes out
/// positions excluded from the loss. Mean is over unmasked positions.
pub fn binary_cross_entropy_with_logits(
    logits: &Tensor,
    targets: &[f32],
    mask: Option<&[f32]>,
) -> (f32, Tensor) {
    let n = logits.numel();
    assert_eq!(targets.len(), n, "target count mismatch");
    if let Some(m) = mask {
        assert_eq!(m.len(), n, "mask length mismatch");
    }
    let mut dlogits = Tensor::zeros(logits.shape());
    let mut loss = 0.0;
    let mut count = 0.0;
    for i in 0..n {
        let m = mask.map_or(1.0, |ms| ms[i]);
        if m == 0.0 {
            continue;
        }
        let x = logits.data()[i];
        let t = targets[i];
        // Numerically stable: max(x,0) − x·t + ln(1 + e^{−|x|})
        loss += m * (x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln());
        let sigmoid = 1.0 / (1.0 + (-x).exp());
        dlogits.data_mut()[i] = m * (sigmoid - t);
        count += m;
    }
    if count == 0.0 {
        return (0.0, dlogits);
    }
    (loss / count, dlogits.scale(1.0 / count))
}

/// Mean squared error between `pred` and `target` of equal shape.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.numel().max(1) as f32;
    let diff = pred.sub(target);
    let loss = diff.data().iter().map(|&d| d * d).sum::<f32>() / n;
    (loss, diff.scale(2.0 / n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, numeric_grad};

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_c() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3], None);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.set(&[0, 1], 100.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1], None);
        assert!(loss < 1e-5);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let logits = crate::init::SeededInit::new(1).uniform(&[3, 4], -2.0, 2.0);
        let targets = [2usize, 0, 3];
        let (_, d) = softmax_cross_entropy(&logits, &targets, None);
        let num = numeric_grad(&logits, 1e-2, |l| {
            softmax_cross_entropy(l, &targets, None).0
        });
        assert_close(&d, &num, 1e-2, "ce");
    }

    #[test]
    fn cross_entropy_ignore_index_skips_rows() {
        let logits = crate::init::SeededInit::new(2).uniform(&[2, 3], -1.0, 1.0);
        let (loss_a, grad_a) = softmax_cross_entropy(&logits, &[1, IGNORE_INDEX], None);
        let (loss_b, _) = softmax_cross_entropy(&logits.rows(0, 1), &[1], None);
        assert!((loss_a - loss_b).abs() < 1e-6);
        assert!(grad_a.row(1).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn cross_entropy_all_ignored_is_zero() {
        let logits = Tensor::ones(&[2, 3]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[IGNORE_INDEX, IGNORE_INDEX], None);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn cross_entropy_weights_rescale() {
        let logits = crate::init::SeededInit::new(3).uniform(&[2, 3], -1.0, 1.0);
        let (unweighted, _) = softmax_cross_entropy(&logits, &[0, 1], None);
        let (weighted, _) = softmax_cross_entropy(&logits, &[0, 1], Some(&[2.0, 2.0]));
        assert!(
            (unweighted - weighted).abs() < 1e-6,
            "uniform weights cancel"
        );
    }

    #[test]
    fn bce_gradcheck() {
        let logits = crate::init::SeededInit::new(4).uniform(&[2, 3], -2.0, 2.0);
        let targets = [1.0, 0.0, 1.0, 0.0, 0.0, 1.0];
        let (_, d) = binary_cross_entropy_with_logits(&logits, &targets, None);
        let num = numeric_grad(&logits, 1e-2, |l| {
            binary_cross_entropy_with_logits(l, &targets, None).0
        });
        assert_close(&d, &num, 1e-2, "bce");
    }

    #[test]
    fn bce_mask_excludes_positions() {
        let logits = Tensor::from_vec(vec![5.0, -5.0], &[1, 2]);
        let (loss, grad) =
            binary_cross_entropy_with_logits(&logits, &[0.0, 0.0], Some(&[0.0, 1.0]));
        // Only the second position counts, and it is a confident correct 0.
        assert!(loss < 0.01);
        assert_eq!(grad.data()[0], 0.0);
    }

    #[test]
    fn bce_extreme_logits_are_finite() {
        let logits = Tensor::from_vec(vec![100.0, -100.0], &[1, 2]);
        let (loss, grad) = binary_cross_entropy_with_logits(&logits, &[1.0, 0.0], None);
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn mse_gradcheck() {
        let pred = crate::init::SeededInit::new(5).uniform(&[2, 2], -1.0, 1.0);
        let target = Tensor::from_vec(vec![0.5, -0.5, 1.0, 0.0], &[2, 2]);
        let (_, d) = mse(&pred, &target);
        let num = numeric_grad(&pred, 1e-3, |p| mse(p, &target).0);
        assert_close(&d, &num, 1e-2, "mse");
    }

    #[test]
    fn finite_checks_catch_nan_and_inf() {
        assert!(all_finite(&[0.0, -1.0, 1e30]));
        assert!(!all_finite(&[0.0, f32::NAN]));
        assert!(!all_finite(&[f32::INFINITY]));
        assert!(all_finite(&[]));
        assert_eq!(check_finite_loss(2.5), Ok(2.5));
        assert_eq!(check_finite_loss(f32::NAN), Err("loss is NaN".into()));
        assert_eq!(check_finite_loss(f32::INFINITY), Err("loss is inf".into()));
    }
}
