//! # ntr-nn
//!
//! Neural-network layers, losses, optimizers and weight serialization for the
//! `ntr` workspace, built on [`ntr_tensor`].
//!
//! ## Architecture
//!
//! Every layer is a plain struct owning its [`Param`]s and an activation
//! cache. Training follows the classic three-step contract:
//!
//! 1. `forward(&mut self, x, train)` computes the output **and records the
//!    activations** needed by the backward pass;
//! 2. `backward(&mut self, grad_out)` consumes the cache, **accumulates**
//!    parameter gradients into each `Param`, and returns the gradient with
//!    respect to the layer input;
//! 3. an [`optim::Adam`] step visits all parameters via [`Layer::visit_params`]
//!    and applies the update, after which `zero_grad` resets accumulators.
//!
//! Backward passes are hand-derived rather than taped: the model zoo in
//! `ntr-models` only needs a fixed set of blocks, and explicit code is easier
//! to verify. Every layer's gradient is pinned by a finite-difference check in
//! its unit tests (see [`gradcheck`]).
//!
//! Sequences are processed unbatched (`[seq_len, d_model]` matrices); batching
//! is a loop over sequences with gradient accumulation, which keeps shapes
//! two-dimensional everywhere and makes the kernels trivially auditable.
//!
//! ## Example: one training step of a tiny MLP
//!
//! ```
//! use ntr_nn::{Linear, Gelu, loss::softmax_cross_entropy, optim::Adam, Layer};
//! use ntr_tensor::Tensor;
//!
//! let mut l1 = Linear::new(4, 8, &mut ntr_nn::init::SeededInit::new(1));
//! let mut act = Gelu::default();
//! let mut l2 = Linear::new(8, 3, &mut ntr_nn::init::SeededInit::new(2));
//! let mut adam = Adam::new(1e-2);
//!
//! let x = Tensor::ones(&[2, 4]);
//! let h = act.forward(&l1.forward(&x));
//! let logits = l2.forward(&h);
//! let (loss, dlogits) = softmax_cross_entropy(&logits, &[0, 2], None);
//! assert!(loss.is_finite());
//! let dh = act.backward(&l2.backward(&dlogits));
//! l1.backward(&dh);
//! let mut step = adam.begin_step();
//! l1.visit_params(&mut |_, p| step.update(p));
//! l2.visit_params(&mut |_, p| step.update(p));
//! ```

pub mod activation;
pub mod attention;
pub mod decoder;
pub mod dropout;
pub mod embedding;
pub mod encoder;
pub mod init;
pub mod layernorm;
pub mod linear;
pub mod loss;
pub mod optim;
pub mod param;
pub mod serialize;

pub use activation::{Gelu, Relu, Tanh};
pub use attention::{AttnMask, MultiHeadAttention};
pub use decoder::{Decoder, DecoderLayer};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use encoder::{Encoder, EncoderLayer};
pub use layernorm::LayerNorm;
pub use linear::{Linear, QuantizedLinear};
pub use param::Param;

/// Visitation interface over a layer's trainable parameters.
///
/// The `name` passed to the visitor is a `/`-separated path that uniquely
/// identifies the parameter within the layer; composite layers prefix the
/// names of their children. Paths are the keys used by [`serialize`].
pub trait Layer {
    /// Calls `f` once per trainable parameter, in a deterministic order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param));

    /// Sets all parameter gradients to zero.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, p| p.zero_grad());
    }

    /// Total number of trainable scalar parameters.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |_, p| n += p.value.numel());
        n
    }

    /// Calls `f` once per internal RNG (dropout mask sources), in a
    /// deterministic order, with a `/`-separated path like
    /// [`Layer::visit_params`] uses. The visitor receives the raw state
    /// words and may mutate them, which is how checkpoints capture *and*
    /// restore the exact mask stream across a kill/resume boundary.
    ///
    /// Layers without stochastic state inherit this no-op default;
    /// composite layers must forward to children that override it.
    fn visit_rng_state(&mut self, _f: &mut dyn FnMut(&str, &mut [u64; 4])) {}
}

/// Prefixes a child layer's RNG-state paths with `prefix/` — the
/// [`visit_rng_state`](Layer::visit_rng_state) counterpart of the name
/// prefixing every composite layer does in `visit_params`.
pub fn visit_rng_child(
    child: &mut dyn Layer,
    prefix: &str,
    f: &mut dyn FnMut(&str, &mut [u64; 4]),
) {
    child.visit_rng_state(&mut |name, s| f(&format!("{prefix}/{name}"), s));
}

/// Adds a clone's accumulated gradients into the master's parameters.
///
/// This is the unrolled-weight-sharing primitive: when one block must
/// process several sequences within a single backward pass (TaBERT's
/// per-row/per-column encoders, bi-encoder retrieval), the block is cloned
/// per sequence (clones share values but have fresh gradient accumulators
/// after `zero_grad`), each clone runs its own forward/backward, and this
/// function folds the clone gradients back into the master. Visit order is
/// deterministic and identical across clones, so the pairing is exact.
///
/// # Panics
/// Panics when the parameter counts (or shapes) of master and clone differ.
pub fn merge_grads(master: &mut dyn Layer, clone: &mut dyn Layer) {
    let mut grads: Vec<ntr_tensor::Tensor> = Vec::new();
    clone.visit_params(&mut |_, p| grads.push(p.grad.clone()));
    let mut i = 0;
    master.visit_params(&mut |name, p| {
        assert!(
            i < grads.len(),
            "clone/master param count mismatch at {name}"
        );
        p.grad.add_assign(&grads[i]);
        i += 1;
    });
    assert_eq!(i, grads.len(), "clone/master param count mismatch");
}

/// Finite-difference gradient checking utilities shared by layer tests.
pub mod gradcheck {
    use ntr_tensor::Tensor;

    /// Numerically estimates `d loss / d x` for a scalar-valued function by
    /// central differences with step `eps`.
    pub fn numeric_grad(x: &Tensor, eps: f32, mut loss: impl FnMut(&Tensor) -> f32) -> Tensor {
        let mut g = Tensor::zeros(x.shape());
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            g.data_mut()[i] = (loss(&xp) - loss(&xm)) / (2.0 * eps);
        }
        g
    }

    /// Asserts that `analytic` and `numeric` agree within a relative
    /// tolerance appropriate for f32 central differences.
    pub fn assert_close(analytic: &Tensor, numeric: &Tensor, tol: f32, what: &str) {
        assert_eq!(analytic.shape(), numeric.shape(), "{what}: shape mismatch");
        for i in 0..analytic.numel() {
            let a = analytic.data()[i];
            let n = numeric.data()[i];
            let denom = a.abs().max(n.abs()).max(1.0);
            assert!(
                (a - n).abs() / denom < tol,
                "{what}: gradient mismatch at {i}: analytic={a} numeric={n}"
            );
        }
    }
}
