//! Fully-connected layer `y = x·W + b` with cached-activation backward,
//! plus an int8 inference snapshot ([`QuantizedLinear`]).

use crate::init::SeededInit;
use crate::{Layer, Param};
use ntr_tensor::quant::{self, QuantizedMatrix};
use ntr_tensor::Tensor;

/// An affine transformation from `d_in` to `d_out` features.
///
/// Forward caches the input so [`Linear::backward`] can compute
/// `dW = xᵀ·dy`, `db = Σ_rows dy`, and return `dx = dy·Wᵀ`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, shape `[d_in, d_out]`.
    pub w: Param,
    /// Bias vector, shape `[d_out]`.
    pub b: Param,
    cache_x: Option<Tensor>,
}

impl Linear {
    /// A new Xavier-initialized layer.
    pub fn new(d_in: usize, d_out: usize, init: &mut SeededInit) -> Self {
        Self {
            w: Param::new(init.xavier(d_in, d_out)),
            b: Param::new(Tensor::zeros(&[d_out])),
            cache_x: None,
        }
    }

    /// Input feature count.
    pub fn d_in(&self) -> usize {
        self.w.value.dim(0)
    }

    /// Output feature count.
    pub fn d_out(&self) -> usize {
        self.w.value.dim(1)
    }

    /// `y = x·W + b` for `x: [n, d_in]`; caches `x` for the backward pass.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let y = x.matmul(&self.w.value).add_row_broadcast(&self.b.value);
        self.cache_x = Some(x.clone());
        y
    }

    /// Same as [`forward`](Self::forward) but without caching — for
    /// inference paths that will never call `backward`.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        x.matmul(&self.w.value).add_row_broadcast(&self.b.value)
    }

    /// Accumulates parameter grads and returns `d loss / d x`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("Linear::backward called without a cached forward");
        self.w.accumulate(&x.matmul_tn(dy));
        self.b.accumulate(&dy.sum_rows());
        dy.matmul_nt(&self.w.value)
    }
}

impl Layer for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        f("w", &mut self.w);
        f("b", &mut self.b);
    }
}

/// An immutable int8 snapshot of a [`Linear`] for quantized inference:
/// the weight is quantized per *output column* (`ntr_tensor::quant`,
/// symmetric, scale = `max|w| / 127`) and the bias stays exact f32.
///
/// Scales are a pure function of the f32 weights — they are *not*
/// checkpointed; a reloaded checkpoint re-derives a bit-identical
/// snapshot (pinned by `ntr-models`' student round-trip test).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLinear {
    /// Per-output-column quantized weight, stored transposed `[d_out, d_in]`.
    pub wq: QuantizedMatrix,
    /// Exact f32 bias, shape `[d_out]`.
    pub b: Tensor,
}

impl QuantizedLinear {
    /// `y ≈ x·W + b` with activations quantized per row on the fly; `on`
    /// routes the integer dot products to the AVX2 lane (both lanes are
    /// bit-identical — the accumulation is exact `i32` math).
    pub fn forward(&self, on: bool, x: &Tensor) -> Tensor {
        quant::matmul_quantized(on, x, &self.wq).add_row_broadcast(&self.b)
    }

    /// Output feature count.
    pub fn d_out(&self) -> usize {
        self.wq.rows
    }
}

impl Linear {
    /// Snapshots this layer for the int8 inference path.
    pub fn quantized(&self) -> QuantizedLinear {
        QuantizedLinear {
            wq: quant::quantize_cols(&self.w.value),
            b: self.b.value.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, numeric_grad};

    fn make() -> Linear {
        Linear::new(3, 2, &mut SeededInit::new(11))
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut l = make();
        l.b.value.data_mut().copy_from_slice(&[1.0, -1.0]);
        let y = l.forward(&Tensor::zeros(&[4, 3]));
        assert_eq!(y.shape(), &[4, 2]);
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn gradcheck_input() {
        let mut l = make();
        let x = SeededInit::new(5).uniform(&[4, 3], -1.0, 1.0);
        let y = l.forward(&x);
        let dy = Tensor::ones(y.shape());
        let dx = l.backward(&dy);
        let w = l.w.value.clone();
        let b = l.b.value.clone();
        let num = numeric_grad(&x, 1e-2, |x| x.matmul(&w).add_row_broadcast(&b).sum());
        assert_close(&dx, &num, 1e-2, "linear dx");
    }

    #[test]
    fn gradcheck_weights_and_bias() {
        let mut l = make();
        let x = SeededInit::new(6).uniform(&[4, 3], -1.0, 1.0);
        let _ = l.forward(&x);
        let _ = l.backward(&Tensor::ones(&[4, 2]));
        let b = l.b.value.clone();
        let numw = numeric_grad(&l.w.value, 1e-2, |w| {
            x.matmul(w).add_row_broadcast(&b).sum()
        });
        assert_close(&l.w.grad, &numw, 1e-2, "linear dw");
        let w = l.w.value.clone();
        let numb = numeric_grad(&l.b.value, 1e-2, |b| {
            x.matmul(&w).add_row_broadcast(b).sum()
        });
        assert_close(&l.b.grad, &numb, 1e-2, "linear db");
    }

    #[test]
    fn grads_accumulate_across_calls() {
        let mut l = make();
        let x = Tensor::ones(&[1, 3]);
        for _ in 0..2 {
            let _ = l.forward(&x);
            let _ = l.backward(&Tensor::ones(&[1, 2]));
        }
        // db after two backward passes of all-ones dy = 2.
        assert_eq!(l.b.grad.data(), &[2.0, 2.0]);
        l.zero_grad();
        assert_eq!(l.b.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "without a cached forward")]
    fn backward_without_forward_panics() {
        let mut l = make();
        let _ = l.backward(&Tensor::ones(&[1, 2]));
    }

    #[test]
    fn quantized_snapshot_tracks_f32_and_rederives_identically() {
        let l = Linear::new(16, 8, &mut SeededInit::new(3));
        let x = SeededInit::new(4).uniform(&[5, 16], -2.0, 2.0);
        let exact = l.forward_inference(&x);
        let q = l.quantized();
        let approx = q.forward(ntr_tensor::simd::active(), &x);
        assert_eq!(approx.shape(), exact.shape());
        for (e, a) in exact.data().iter().zip(approx.data()) {
            assert!((e - a).abs() < 0.05, "int8 {a} too far from f32 {e}");
        }
        // Scales are derived, not stored: a second snapshot is identical.
        assert_eq!(q, l.quantized());
    }

    #[test]
    fn visit_params_order() {
        let mut l = make();
        let mut names = Vec::new();
        l.visit_params(&mut |n, _| names.push(n.to_string()));
        assert_eq!(names, vec!["w", "b"]);
        assert_eq!(l.num_params(), 3 * 2 + 2);
    }
}
