//! Inverted dropout with an explicit, seedable mask source.

use ntr_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: at train time each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1−p)`, so inference is a no-op.
///
/// The layer owns its RNG (seeded at construction) so training runs are
/// reproducible; `forward(x, train=false)` bypasses masking entirely.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    cache_mask: Option<Tensor>,
}

impl Dropout {
    /// A dropout layer with drop probability `p ∈ [0, 1)`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1), got {p}"
        );
        Self {
            p,
            rng: StdRng::seed_from_u64(seed),
            cache_mask: None,
        }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Snapshot of the mask generator's state, for checkpointing.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores a state captured by [`Dropout::rng_state`], so the next
    /// training forward draws exactly the mask it would have drawn had the
    /// process never stopped.
    pub fn set_rng_state(&mut self, s: [u64; 4]) {
        self.rng.set_state(s);
    }

    /// Visits this layer's RNG state under `name` — the building block the
    /// owning layers' [`crate::Layer::visit_rng_state`] impls forward to.
    pub fn visit_rng(&mut self, name: &str, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        let mut s = self.rng.state();
        f(name, &mut s);
        self.rng.set_state(s);
    }

    /// Applies dropout when `train` is true; identity otherwise.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.cache_mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Tensor::from_fn(x.shape(), |_| {
            if self.rng.gen::<f32>() < keep {
                scale
            } else {
                0.0
            }
        });
        let y = x.mul(&mask);
        self.cache_mask = Some(mask);
        y
    }

    /// Propagates the gradient through the same mask used in `forward`.
    /// If the last forward was an inference pass, this is the identity.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        match self.cache_mask.take() {
            Some(mask) => dy.mul(&mask),
            None => dy.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[4, 4]);
        assert_eq!(d.forward(&x, false), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn zero_probability_is_identity_even_in_train() {
        let mut d = Dropout::new(0.0, 1);
        let x = Tensor::ones(&[4, 4]);
        assert_eq!(d.forward(&x, true), x);
    }

    #[test]
    fn train_mask_zeroes_and_rescales() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::ones(&[32, 32]);
        let y = d.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let kept = y.data().iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + kept, 1024, "values must be 0 or 1/(1-p)");
        // With p=0.5 over 1024 elements, both counts are overwhelmingly in (300, 724).
        assert!(zeros > 300 && zeros < 724, "zeros={zeros}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[8, 8]);
        let y = d.forward(&x, true);
        let dx = d.backward(&Tensor::ones(&[8, 8]));
        // Gradient must be zero exactly where the activation was dropped.
        for (a, g) in y.data().iter().zip(dx.data()) {
            assert_eq!(*a == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn same_seed_same_mask_sequence() {
        let x = Tensor::ones(&[4, 4]);
        let a = Dropout::new(0.5, 9).forward(&x, true);
        let b = Dropout::new(0.5, 9).forward(&x, true);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn rejects_p_of_one() {
        let _ = Dropout::new(1.0, 0);
    }
}
