//! Transformer decoder (causal self-attention + cross-attention), used by
//! the TAPEX-style encoder–decoder model in `ntr-models`.

use crate::attention::{visit_child, AttnMask, MultiHeadAttention};
use crate::dropout::Dropout;
use crate::encoder::FeedForward;
use crate::init::SeededInit;
use crate::layernorm::LayerNorm;
use crate::{Layer, Param};
use ntr_tensor::Tensor;

/// One pre-LN decoder layer:
/// causal self-attention → cross-attention over encoder memory → FFN,
/// each wrapped in a residual connection.
#[derive(Debug, Clone)]
pub struct DecoderLayer {
    ln1: LayerNorm,
    self_attn: MultiHeadAttention,
    drop1: Dropout,
    ln2: LayerNorm,
    cross_attn: MultiHeadAttention,
    drop2: Dropout,
    ln3: LayerNorm,
    ffn: FeedForward,
    drop3: Dropout,
}

impl DecoderLayer {
    /// New decoder layer.
    pub fn new(
        d_model: usize,
        n_heads: usize,
        d_ff: usize,
        dropout: f32,
        init: &mut SeededInit,
    ) -> Self {
        let seed_base = init.uniform(&[1], 0.0, 1e9).data()[0] as u64;
        Self {
            ln1: LayerNorm::new(d_model),
            self_attn: MultiHeadAttention::new(d_model, n_heads, init),
            drop1: Dropout::new(dropout, seed_base),
            ln2: LayerNorm::new(d_model),
            cross_attn: MultiHeadAttention::new(d_model, n_heads, init),
            drop2: Dropout::new(dropout, seed_base.wrapping_add(1)),
            ln3: LayerNorm::new(d_model),
            ffn: FeedForward::new(d_model, d_ff, init),
            drop3: Dropout::new(dropout, seed_base.wrapping_add(2)),
        }
    }

    /// Forward over target states `x: [t, d]` attending to encoder `memory:
    /// [s, d]`. A causal mask over `x` is always applied.
    pub fn forward(&mut self, x: &Tensor, memory: &Tensor, train: bool) -> Tensor {
        let causal = AttnMask::causal(x.dim(0));
        let h1 = self.drop1.forward(
            &self
                .self_attn
                .forward_self(&self.ln1.forward(x), Some(&causal)),
            train,
        );
        let x1 = x.add(&h1);
        let h2 = self.drop2.forward(
            &self
                .cross_attn
                .forward_cross(&self.ln2.forward(&x1), memory, None),
            train,
        );
        let x2 = x1.add(&h2);
        let h3 = self
            .drop3
            .forward(&self.ffn.forward(&self.ln3.forward(&x2)), train);
        x2.add(&h3)
    }

    /// Backward; returns `(d/d x, d/d memory)`.
    pub fn backward(&mut self, dy: &Tensor) -> (Tensor, Tensor) {
        let dffn = self
            .ln3
            .backward(&self.ffn.backward(&self.drop3.backward(dy)));
        let dx2 = dy.add(&dffn);
        let (dq, dmem) = self.cross_attn.backward_cross(&self.drop2.backward(&dx2));
        let dx1 = dx2.add(&self.ln2.backward(&dq));
        let dself = self
            .ln1
            .backward(&self.self_attn.backward_self(&self.drop1.backward(&dx1)));
        (dx1.add(&dself), dmem)
    }
}

impl Layer for DecoderLayer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        visit_child(&mut self.ln1, "ln1", f);
        visit_child(&mut self.self_attn, "self_attn", f);
        visit_child(&mut self.ln2, "ln2", f);
        visit_child(&mut self.cross_attn, "cross_attn", f);
        visit_child(&mut self.ln3, "ln3", f);
        visit_child(&mut self.ffn, "ffn", f);
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        self.drop1.visit_rng("drop1", f);
        self.drop2.visit_rng("drop2", f);
        self.drop3.visit_rng("drop3", f);
    }
}

/// A stack of [`DecoderLayer`]s with a final LayerNorm.
#[derive(Debug, Clone)]
pub struct Decoder {
    layers: Vec<DecoderLayer>,
    final_ln: LayerNorm,
}

impl Decoder {
    /// New decoder with `n_layers` layers.
    pub fn new(
        n_layers: usize,
        d_model: usize,
        n_heads: usize,
        d_ff: usize,
        dropout: f32,
        init: &mut SeededInit,
    ) -> Self {
        Self {
            layers: (0..n_layers)
                .map(|_| DecoderLayer::new(d_model, n_heads, d_ff, dropout, init))
                .collect(),
            final_ln: LayerNorm::new(d_model),
        }
    }

    /// Forward through all layers.
    pub fn forward(&mut self, x: &Tensor, memory: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, memory, train);
        }
        self.final_ln.forward(&h)
    }

    /// Backward; returns `(d/d x, d/d memory)` with memory gradients summed
    /// over layers.
    pub fn backward(&mut self, dy: &Tensor) -> (Tensor, Tensor) {
        let mut g = self.final_ln.backward(dy);
        let mut dmem_total: Option<Tensor> = None;
        for layer in self.layers.iter_mut().rev() {
            let (dx, dmem) = layer.backward(&g);
            g = dx;
            dmem_total = Some(match dmem_total {
                Some(t) => t.add(&dmem),
                None => dmem,
            });
        }
        (g, dmem_total.expect("decoder must have at least one layer"))
    }
}

impl Layer for Decoder {
    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            crate::visit_rng_child(layer, &format!("layer{i}"), f);
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            visit_child(layer, &format!("layer{i}"), f);
        }
        visit_child(&mut self.final_ln, "final_ln", f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, numeric_grad};

    #[test]
    fn decoder_layer_shapes() {
        let mut l = DecoderLayer::new(8, 2, 16, 0.0, &mut SeededInit::new(1));
        let x = SeededInit::new(2).uniform(&[3, 8], -1.0, 1.0);
        let mem = SeededInit::new(3).uniform(&[5, 8], -1.0, 1.0);
        let y = l.forward(&x, &mem, false);
        assert_eq!(y.shape(), &[3, 8]);
    }

    #[test]
    fn decoder_layer_gradcheck_x_and_memory() {
        let mut l = DecoderLayer::new(6, 2, 12, 0.0, &mut SeededInit::new(4));
        let x = SeededInit::new(5).uniform(&[2, 6], -0.5, 0.5);
        let mem = SeededInit::new(6).uniform(&[3, 6], -0.5, 0.5);
        let dy = SeededInit::new(7).uniform(&[2, 6], -1.0, 1.0);
        let _ = l.forward(&x, &mem, true);
        let (dx, dmem) = l.backward(&dy);

        let mut probe = l.clone();
        let (memc, dyc) = (mem.clone(), dy.clone());
        let num_x = numeric_grad(&x, 5e-3, |x| probe.forward(x, &memc, false).mul(&dyc).sum());
        assert_close(&dx, &num_x, 3e-2, "decoder dx");

        let mut probe = l.clone();
        let (xc, dyc) = (x.clone(), dy.clone());
        let num_m = numeric_grad(&mem, 5e-3, |m| probe.forward(&xc, m, false).mul(&dyc).sum());
        assert_close(&dmem, &num_m, 3e-2, "decoder dmem");
    }

    #[test]
    fn decoder_stack_accumulates_memory_grad() {
        let mut d = Decoder::new(2, 6, 2, 12, 0.0, &mut SeededInit::new(8));
        let x = SeededInit::new(9).uniform(&[2, 6], -0.5, 0.5);
        let mem = SeededInit::new(10).uniform(&[3, 6], -0.5, 0.5);
        let dy = SeededInit::new(11).uniform(&[2, 6], -1.0, 1.0);
        let _ = d.forward(&x, &mem, true);
        let (dx, dmem) = d.backward(&dy);
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dmem.shape(), mem.shape());

        let mut probe = d.clone();
        let (xc, dyc) = (x.clone(), dy.clone());
        let num_m = numeric_grad(&mem, 5e-3, |m| probe.forward(&xc, m, false).mul(&dyc).sum());
        assert_close(&dmem, &num_m, 3e-2, "decoder stack dmem");
    }

    #[test]
    fn causality_first_position_ignores_later_targets() {
        // Changing x[2] must not change y[0] or y[1].
        let mut d = Decoder::new(1, 8, 2, 16, 0.0, &mut SeededInit::new(12));
        let mem = SeededInit::new(13).uniform(&[4, 8], -1.0, 1.0);
        let mut x = SeededInit::new(14).uniform(&[3, 8], -1.0, 1.0);
        let y1 = d.forward(&x, &mem, false);
        // Perturb a single element (a uniform row shift would sit in
        // LayerNorm's null space and be invisible by design).
        x.row_mut(2)[0] += 10.0;
        let y2 = d.forward(&x, &mem, false);
        for j in 0..8 {
            assert!((y1.at(&[0, j]) - y2.at(&[0, j])).abs() < 1e-5);
            assert!((y1.at(&[1, j]) - y2.at(&[1, j])).abs() < 1e-5);
        }
        // ...but y[2] does change.
        let mut changed = false;
        for j in 0..8 {
            if (y1.at(&[2, j]) - y2.at(&[2, j])).abs() > 1e-4 {
                changed = true;
            }
        }
        assert!(changed);
    }
}
