//! Element-wise activations with cached backward passes.

use ntr_tensor::Tensor;

/// GELU activation (tanh approximation, as used by BERT).
///
/// `gelu(x) = 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    cache_x: Option<Tensor>,
}

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_C: f32 = 0.044_715;

/// The scalar GELU function.
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_C * x * x * x)).tanh())
}

/// Fast GELU for the int8 inference path: the libm `tanh` (~30 ns per
/// element, and the dominant cost of a quantized student encode) is
/// replaced by the `[7/6]` Padé approximant of `tanh`, clamped to the
/// range where it is accurate (absolute error < 5e-5, far below the
/// ~0.4% noise the int8 quantization itself introduces). Branch-free
/// (clamps lower to min/max), so the element-wise map auto-vectorizes —
/// and, being a pure per-element function, it is bit-identical for any
/// thread count or SIMD lane. Training and f32 inference keep the exact
/// [`gelu`].
pub fn gelu_fast(x: f32) -> f32 {
    let u = (SQRT_2_OVER_PI * (x + GELU_C * x * x * x)).clamp(-4.97, 4.97);
    let s = u * u;
    let p = u * (135135.0 + s * (17325.0 + s * (378.0 + s)));
    let q = 135135.0 + s * (62370.0 + s * (3150.0 + s * 28.0));
    let t = (p / q).clamp(-1.0, 1.0);
    0.5 * x * (1.0 + t)
}

/// Derivative of the scalar GELU function.
pub fn gelu_grad(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_C * x * x * x);
    let t = u.tanh();
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

impl Gelu {
    /// Applies GELU element-wise; caches the input.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_x = Some(x.clone());
        x.par_map(gelu)
    }

    /// Forward without caching, for inference paths.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        x.par_map(gelu)
    }

    /// Forward with the fast approximate GELU ([`gelu_fast`]), for the
    /// int8 path where quantization noise already dwarfs the
    /// approximation error.
    pub fn forward_approx(&self, x: &Tensor) -> Tensor {
        x.par_map(gelu_fast)
    }

    /// Returns `dy ⊙ gelu'(x)`, consuming the cached input in place.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut x = self
            .cache_x
            .take()
            .expect("Gelu::backward called without a cached forward");
        x.map_mut(gelu_grad);
        x.mul_assign(dy);
        x
    }
}

/// ReLU activation.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cache_x: Option<Tensor>,
}

impl Relu {
    /// Applies `max(0, x)` element-wise; caches the input.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_x = Some(x.clone());
        x.par_map(|v| v.max(0.0))
    }

    /// Returns `dy ⊙ 1[x > 0]`, consuming the cached input in place.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut x = self
            .cache_x
            .take()
            .expect("Relu::backward called without a cached forward");
        x.map_mut(|v| if v > 0.0 { 1.0 } else { 0.0 });
        x.mul_assign(dy);
        x
    }
}

/// Tanh activation (used for pooler heads).
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cache_y: Option<Tensor>,
}

impl Tanh {
    /// Applies `tanh` element-wise; caches the output.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let y = x.par_map(f32::tanh);
        self.cache_y = Some(y.clone());
        y
    }

    /// Returns `dy ⊙ (1 − y²)`, consuming the cached output in place.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut y = self
            .cache_y
            .take()
            .expect("Tanh::backward called without a cached forward");
        y.map_mut(|v| 1.0 - v * v);
        y.mul_assign(dy);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, numeric_grad};

    #[test]
    fn fast_gelu_tracks_exact_gelu() {
        let mut worst = 0.0f32;
        for i in -8000..=8000 {
            let x = i as f32 * 1e-3;
            worst = worst.max((gelu_fast(x) - gelu(x)).abs());
        }
        assert!(worst < 1e-3, "gelu_fast deviates by {worst}");
        // Exactly identity-like in the saturated tails, like the real thing.
        assert!((gelu_fast(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu_fast(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // GELU is asymptotically identity for large x, ~0 for very negative x.
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_gradcheck() {
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[1, 5]);
        let mut g = Gelu::default();
        let _ = g.forward(&x);
        let dx = g.backward(&Tensor::ones(&[1, 5]));
        let num = numeric_grad(&x, 1e-3, |x| x.map(gelu).sum());
        assert_close(&dx, &num, 1e-2, "gelu");
    }

    #[test]
    fn relu_masks_negative() {
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]);
        let mut r = Relu::default();
        assert_eq!(r.forward(&x).data(), &[0.0, 2.0]);
        let dx = r.backward(&Tensor::from_vec(vec![5.0, 5.0], &[1, 2]));
        assert_eq!(dx.data(), &[0.0, 5.0]);
    }

    #[test]
    fn tanh_gradcheck() {
        let x = Tensor::from_vec(vec![-1.5, 0.0, 0.7], &[1, 3]);
        let mut t = Tanh::default();
        let _ = t.forward(&x);
        let dx = t.backward(&Tensor::ones(&[1, 3]));
        let num = numeric_grad(&x, 1e-3, |x| x.map(f32::tanh).sum());
        assert_close(&dx, &num, 1e-2, "tanh");
    }
}
