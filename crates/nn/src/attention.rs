//! Multi-head scaled-dot-product attention with pluggable additive masks.
//!
//! The mask abstraction is the hook every table-aware architecture in the
//! survey uses:
//!
//! * **TURL** expresses its *visibility matrix* as a shared additive mask
//!   (`0` where attending is allowed, `−inf` where not);
//! * **MATE** gives *each head* its own row- or column-restricted mask;
//! * **TAPEX**'s decoder uses a causal mask;
//! * padding is an everything-may-not-attend-here mask.
//!
//! All of these are [`AttnMask`] values; the attention core is shared and its
//! backward pass is verified once by finite differences.

use crate::init::SeededInit;
use crate::linear::Linear;
use crate::{Layer, Param};
use ntr_tensor::{grain, par, Tensor};

/// Thread count for fanning `n_heads` heads of `work` flops each across the
/// pool, decided by the grain cost model on the total score work. Heads
/// write disjoint column slices and each head's math is identical to the
/// sequential version, so results don't depend on this choice.
fn head_threads(n_heads: usize, work: usize) -> usize {
    grain::threads_for_units(grain::Work::Madds(work.saturating_mul(n_heads)), n_heads, 1)
}

/// Additive attention mask(s), broadcast over heads or specified per head.
///
/// Masks contain `0.0` for allowed pairs and `f32::NEG_INFINITY` (or any
/// large negative value) for disallowed pairs; they are added to the raw
/// attention scores before the softmax.
#[derive(Debug, Clone)]
pub enum AttnMask {
    /// One `[n_q, n_k]` mask shared by every head.
    Shared(Tensor),
    /// One `[n_q, n_k]` mask per head (length must equal `n_heads`).
    PerHead(Vec<Tensor>),
}

impl AttnMask {
    /// A causal (lower-triangular) mask for autoregressive decoding.
    pub fn causal(n: usize) -> Self {
        let mut m = Tensor::zeros(&[n, n]);
        for i in 0..n {
            for j in i + 1..n {
                m.set(&[i, j], f32::NEG_INFINITY);
            }
        }
        AttnMask::Shared(m)
    }

    /// A mask that hides key positions `>= valid_len` from every query —
    /// the padding mask.
    pub fn padding(n_q: usize, n_k: usize, valid_len: usize) -> Self {
        let mut m = Tensor::zeros(&[n_q, n_k]);
        for i in 0..n_q {
            for j in valid_len..n_k {
                m.set(&[i, j], f32::NEG_INFINITY);
            }
        }
        AttnMask::Shared(m)
    }

    fn for_head(&self, h: usize) -> &Tensor {
        match self {
            AttnMask::Shared(m) => m,
            AttnMask::PerHead(ms) => &ms[h],
        }
    }

    fn check(&self, n_heads: usize, n_q: usize, n_k: usize) {
        let check_one = |m: &Tensor| {
            assert_eq!(
                m.shape(),
                &[n_q, n_k],
                "attention mask shape {:?} does not match scores [{n_q}, {n_k}]",
                m.shape()
            );
        };
        match self {
            AttnMask::Shared(m) => check_one(m),
            AttnMask::PerHead(ms) => {
                assert_eq!(ms.len(), n_heads, "PerHead mask count != n_heads");
                ms.iter().for_each(check_one);
            }
        }
    }
}

/// Multi-head attention: Q/K/V/O projections plus the softmax core.
///
/// Supports self-attention ([`MultiHeadAttention::forward_self`]) and
/// cross-attention ([`MultiHeadAttention::forward_cross`]). After any
/// forward, the per-head attention distributions are available via
/// [`MultiHeadAttention::last_attention`] — the inspection hook used by the
/// paper's hands-on §3.3 ("visualize the attention weights").
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    n_heads: usize,
    d_head: usize,
    cache: Option<Cache>,
    last_probs: Vec<Tensor>,
}

#[derive(Debug, Clone)]
struct Cache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    probs: Vec<Tensor>,
    self_attn: bool,
}

impl MultiHeadAttention {
    /// New attention block with `n_heads` heads over `d_model` features.
    ///
    /// # Panics
    /// Panics unless `n_heads` divides `d_model`.
    pub fn new(d_model: usize, n_heads: usize, init: &mut SeededInit) -> Self {
        assert!(
            d_model.is_multiple_of(n_heads),
            "d_model {d_model} must be divisible by n_heads {n_heads}"
        );
        Self {
            wq: Linear::new(d_model, d_model, &mut init.fork()),
            wk: Linear::new(d_model, d_model, &mut init.fork()),
            wv: Linear::new(d_model, d_model, &mut init.fork()),
            wo: Linear::new(d_model, d_model, &mut init.fork()),
            n_heads,
            d_head: d_model / n_heads,
            cache: None,
            last_probs: Vec::new(),
        }
    }

    /// Number of heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.n_heads * self.d_head
    }

    /// Per-head attention distributions from the most recent forward pass.
    /// Each tensor is `[n_q, n_k]`; empty before the first forward.
    pub fn last_attention(&self) -> &[Tensor] {
        &self.last_probs
    }

    /// Self-attention over `x: [n, d]`.
    pub fn forward_self(&mut self, x: &Tensor, mask: Option<&AttnMask>) -> Tensor {
        self.forward(x, x, mask, true)
    }

    /// Cross-attention: queries from `xq: [n_q, d]`, keys/values from
    /// `xkv: [n_k, d]`. Input gradients are returned separately by
    /// [`MultiHeadAttention::backward_cross`].
    pub fn forward_cross(&mut self, xq: &Tensor, xkv: &Tensor, mask: Option<&AttnMask>) -> Tensor {
        self.forward(xq, xkv, mask, false)
    }

    fn forward(
        &mut self,
        xq: &Tensor,
        xkv: &Tensor,
        mask: Option<&AttnMask>,
        self_attn: bool,
    ) -> Tensor {
        let d = self.d_model();
        assert_eq!(
            xq.dim(1),
            d,
            "query input width {} != d_model {d}",
            xq.dim(1)
        );
        assert_eq!(
            xkv.dim(1),
            d,
            "key/value input width {} != d_model {d}",
            xkv.dim(1)
        );
        let (n_q, n_k) = (xq.dim(0), xkv.dim(0));
        if let Some(m) = mask {
            m.check(self.n_heads, n_q, n_k);
        }

        let q = self.wq.forward(xq);
        let k = self.wk.forward(xkv);
        let v = self.wv.forward(xkv);

        let scale = 1.0 / (self.d_head as f32).sqrt();
        let dh = self.d_head;
        let threads = head_threads(self.n_heads, n_q * n_k * dh);
        let heads = par::map_tasks(self.n_heads, threads, |h| {
            let (s, e) = (h * dh, (h + 1) * dh);
            let qh = q.cols(s, e);
            let kh = k.cols(s, e);
            let vh = v.cols(s, e);
            let mut scores = qh.matmul_nt(&kh).scale(scale);
            if let Some(m) = mask {
                scores = scores.add(m.for_head(h));
            }
            let p = scores.softmax_rows();
            let oh = p.matmul(&vh);
            (p, oh)
        });
        let mut concat = Tensor::zeros(&[n_q, d]);
        let mut probs = Vec::with_capacity(self.n_heads);
        for (h, (p, oh)) in heads.into_iter().enumerate() {
            concat.set_cols(h * dh, &oh);
            probs.push(p);
        }
        self.last_probs = probs.clone();
        self.cache = Some(Cache {
            q,
            k,
            v,
            probs,
            self_attn,
        });
        self.wo.forward(&concat)
    }

    /// Backward for self-attention; returns `d loss / d x`.
    ///
    /// # Panics
    /// Panics if the preceding forward was cross-attention (use
    /// [`MultiHeadAttention::backward_cross`]) or missing.
    pub fn backward_self(&mut self, dy: &Tensor) -> Tensor {
        let (dxq, dxkv) = self.backward_inner(dy, true);
        dxq.add(&dxkv)
    }

    /// Backward for cross-attention; returns `(d/d xq, d/d xkv)`.
    pub fn backward_cross(&mut self, dy: &Tensor) -> (Tensor, Tensor) {
        self.backward_inner(dy, false)
    }

    fn backward_inner(&mut self, dy: &Tensor, expect_self: bool) -> (Tensor, Tensor) {
        let cache = self
            .cache
            .take()
            .expect("attention backward called without a cached forward");
        assert_eq!(
            cache.self_attn, expect_self,
            "attention backward variant does not match the forward variant"
        );
        let d = self.d_model();
        let n_q = cache.q.dim(0);
        let n_k = cache.k.dim(0);
        let scale = 1.0 / (self.d_head as f32).sqrt();

        let dconcat = self.wo.backward(dy);
        let dh = self.d_head;
        let threads = head_threads(self.n_heads, n_q * n_k * dh);
        let heads = par::map_tasks(self.n_heads, threads, |h| {
            let (s, e) = (h * dh, (h + 1) * dh);
            let doh = dconcat.cols(s, e);
            let p = &cache.probs[h];
            let vh = cache.v.cols(s, e);
            let qh = cache.q.cols(s, e);
            let kh = cache.k.cols(s, e);

            // dP = dO·Vᵀ ; dV = Pᵀ·dO
            let dp = doh.matmul_nt(&vh);
            let dvh = p.matmul_tn(&doh);

            // Softmax Jacobian row-wise: dS_ij = P_ij (dP_ij − Σ_k dP_ik P_ik)
            let mut ds = Tensor::zeros(&[n_q, n_k]);
            for r in 0..n_q {
                let prow = p.row(r);
                let dprow = dp.row(r);
                let dot: f32 = prow.iter().zip(dprow).map(|(&a, &b)| a * b).sum();
                let dsrow = ds.row_mut(r);
                for j in 0..n_k {
                    dsrow[j] = prow[j] * (dprow[j] - dot);
                }
            }

            let dqh = ds.matmul(&kh).scale(scale);
            let dkh = ds.matmul_tn(&qh).scale(scale);
            (dqh, dkh, dvh)
        });
        let mut dq = Tensor::zeros(&[n_q, d]);
        let mut dk = Tensor::zeros(&[n_k, d]);
        let mut dv = Tensor::zeros(&[n_k, d]);
        for (h, (dqh, dkh, dvh)) in heads.into_iter().enumerate() {
            dq.set_cols(h * dh, &dqh);
            dk.set_cols(h * dh, &dkh);
            dv.set_cols(h * dh, &dvh);
        }

        let dxq = self.wq.backward(&dq);
        let dxk = self.wk.backward(&dk);
        let dxv = self.wv.backward(&dv);
        (dxq, dxk.add(&dxv))
    }
}

impl Layer for MultiHeadAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        visit_child(&mut self.wq, "wq", f);
        visit_child(&mut self.wk, "wk", f);
        visit_child(&mut self.wv, "wv", f);
        visit_child(&mut self.wo, "wo", f);
    }
}

/// Prefixes a child layer's parameter names with `prefix/`.
pub(crate) fn visit_child(
    child: &mut dyn Layer,
    prefix: &str,
    f: &mut dyn FnMut(&str, &mut Param),
) {
    child.visit_params(&mut |name, p| f(&format!("{prefix}/{name}"), p));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, numeric_grad};

    fn mha(d: usize, h: usize, seed: u64) -> MultiHeadAttention {
        MultiHeadAttention::new(d, h, &mut SeededInit::new(seed))
    }

    #[test]
    fn forward_shapes_and_prob_rows_sum_to_one() {
        let mut a = mha(8, 2, 1);
        let x = SeededInit::new(2).uniform(&[5, 8], -1.0, 1.0);
        let y = a.forward_self(&x, None);
        assert_eq!(y.shape(), &[5, 8]);
        assert_eq!(a.last_attention().len(), 2);
        for p in a.last_attention() {
            assert_eq!(p.shape(), &[5, 5]);
            for r in 0..5 {
                let s: f32 = p.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut a = mha(8, 2, 3);
        let x = SeededInit::new(4).uniform(&[4, 8], -1.0, 1.0);
        let mask = AttnMask::causal(4);
        let _ = a.forward_self(&x, Some(&mask));
        for p in a.last_attention() {
            for i in 0..4 {
                for j in i + 1..4 {
                    assert!(p.at(&[i, j]).abs() < 1e-7, "future leak at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn padding_mask_zeroes_padded_keys() {
        let mut a = mha(8, 2, 5);
        let x = SeededInit::new(6).uniform(&[4, 8], -1.0, 1.0);
        let mask = AttnMask::padding(4, 4, 2);
        let _ = a.forward_self(&x, Some(&mask));
        for p in a.last_attention() {
            for i in 0..4 {
                assert!(p.at(&[i, 2]) < 1e-7 && p.at(&[i, 3]) < 1e-7);
            }
        }
    }

    #[test]
    fn per_head_masks_differ_per_head() {
        let mut a = mha(8, 2, 7);
        let x = SeededInit::new(8).uniform(&[3, 8], -1.0, 1.0);
        let mut m0 = Tensor::zeros(&[3, 3]);
        m0.set(&[0, 2], f32::NEG_INFINITY);
        let m1 = Tensor::zeros(&[3, 3]);
        let _ = a.forward_self(&x, Some(&AttnMask::PerHead(vec![m0, m1])));
        assert!(a.last_attention()[0].at(&[0, 2]) < 1e-7);
        assert!(a.last_attention()[1].at(&[0, 2]) > 1e-7);
    }

    /// Full finite-difference check of self-attention input gradients,
    /// through all four projections and the softmax.
    #[test]
    fn gradcheck_self_attention_input() {
        let mut a = mha(6, 2, 9);
        let x = SeededInit::new(10).uniform(&[3, 6], -0.5, 0.5);
        let dy = SeededInit::new(11).uniform(&[3, 6], -1.0, 1.0);

        let _ = a.forward_self(&x, None);
        let dx = a.backward_self(&dy);

        let mut probe = a.clone();
        let dyc = dy.clone();
        let num = numeric_grad(&x, 5e-3, |x| probe.forward_self(x, None).mul(&dyc).sum());
        assert_close(&dx, &num, 3e-2, "mha dx");
    }

    #[test]
    fn gradcheck_projection_weights() {
        let mut a = mha(6, 2, 12);
        let x = SeededInit::new(13).uniform(&[3, 6], -0.5, 0.5);
        let dy = SeededInit::new(14).uniform(&[3, 6], -1.0, 1.0);
        let _ = a.forward_self(&x, None);
        let _ = a.backward_self(&dy);

        let wq = a.wq.w.value.clone();
        let mut probe = a.clone();
        let xc = x.clone();
        let dyc = dy.clone();
        let num = numeric_grad(&wq, 5e-3, |w| {
            probe.wq.w.value = w.clone();
            probe.forward_self(&xc, None).mul(&dyc).sum()
        });
        assert_close(&a.wq.w.grad, &num, 3e-2, "mha dwq");
    }

    #[test]
    fn gradcheck_cross_attention_both_inputs() {
        let mut a = mha(6, 2, 15);
        let xq = SeededInit::new(16).uniform(&[2, 6], -0.5, 0.5);
        let xkv = SeededInit::new(17).uniform(&[4, 6], -0.5, 0.5);
        let dy = SeededInit::new(18).uniform(&[2, 6], -1.0, 1.0);
        let _ = a.forward_cross(&xq, &xkv, None);
        let (dxq, dxkv) = a.backward_cross(&dy);

        let mut probe = a.clone();
        let (xkvc, dyc) = (xkv.clone(), dy.clone());
        let num_q = numeric_grad(&xq, 5e-3, |q| {
            probe.forward_cross(q, &xkvc, None).mul(&dyc).sum()
        });
        assert_close(&dxq, &num_q, 3e-2, "cross dxq");

        let mut probe = a.clone();
        let (xqc, dyc) = (xq.clone(), dy.clone());
        let num_kv = numeric_grad(&xkv, 5e-3, |kv| {
            probe.forward_cross(&xqc, kv, None).mul(&dyc).sum()
        });
        assert_close(&dxkv, &num_kv, 3e-2, "cross dxkv");
    }

    #[test]
    #[should_panic(expected = "does not match the forward variant")]
    fn mismatched_backward_variant_panics() {
        let mut a = mha(4, 1, 19);
        let x = Tensor::ones(&[2, 4]);
        let _ = a.forward_self(&x, None);
        let _ = a.backward_cross(&Tensor::ones(&[2, 4]));
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_indivisible_heads() {
        let _ = mha(7, 2, 0);
    }
}
