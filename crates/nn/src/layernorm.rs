//! Layer normalization over the feature dimension, with learned scale/shift.

use crate::{Layer, Param};
use ntr_tensor::{simd, Tensor};

/// LayerNorm: per-row normalization of a `[n, d]` tensor followed by a
/// learned affine transform `γ·x̂ + β`.
///
/// The backward pass uses the standard closed form
/// `dx = (γ/σ) · (dŷ − mean(dŷ) − x̂·mean(dŷ·x̂))` where `dŷ = dy·γ`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale, shape `[d]`, initialized to ones.
    pub gamma: Param,
    /// Shift, shape `[d]`, initialized to zeros.
    pub beta: Param,
    eps: f32,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    xhat: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// A new LayerNorm over `d` features with ε = 1e-5.
    pub fn new(d: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::ones(&[d])),
            beta: Param::new(Tensor::zeros(&[d])),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Feature count this layer normalizes over.
    pub fn dim(&self) -> usize {
        self.gamma.value.numel()
    }

    /// Normalizes each row of `x: [n, d]`; caches normalized activations.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let (out, xhat, inv_std) = self.compute(x);
        self.cache = Some(Cache { xhat, inv_std });
        out
    }

    /// Forward without caching, for inference paths.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        self.compute(x).0
    }

    fn compute(&self, x: &Tensor) -> (Tensor, Tensor, Vec<f32>) {
        assert_eq!(x.ndim(), 2, "LayerNorm expects [n, d], got {:?}", x.shape());
        let d = self.dim();
        assert_eq!(x.dim(1), d, "LayerNorm dim mismatch: {} vs {d}", x.dim(1));
        let n = x.dim(0);
        let mut xhat = Tensor::zeros(&[n, d]);
        let mut out = Tensor::zeros(&[n, d]);
        let mut inv_std = Vec::with_capacity(n);
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();
        // SIMD captured once for the whole call; the scalar fallbacks of
        // these helpers replicate the original loops' operation order, so
        // default builds stay bit-identical to the pre-SIMD kernel.
        let on = simd::active();
        for r in 0..n {
            let row = x.row(r);
            let mean = simd::sum(on, row) / d as f32;
            let var = simd::sq_dev_sum(on, row, mean) / d as f32;
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std.push(istd);
            simd::shift_scale(on, xhat.row_mut(r), row, mean, istd);
            simd::affine(on, out.row_mut(r), xhat.row(r), gamma, beta);
        }
        (out, xhat, inv_std)
    }

    /// Accumulates γ/β grads and returns `d loss / d x`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let Cache { xhat, inv_std } = self
            .cache
            .take()
            .expect("LayerNorm::backward called without a cached forward");
        let (n, d) = (xhat.dim(0), xhat.dim(1));
        assert_eq!(
            dy.shape(),
            xhat.shape(),
            "LayerNorm::backward shape mismatch"
        );

        // Parameter grads.
        self.gamma.accumulate(&dy.mul(&xhat).sum_rows());
        self.beta.accumulate(&dy.sum_rows());

        // Input grad. (Same SIMD policy as `compute`: scalar fallbacks are
        // the original loops, the fused pass included.)
        let mut dx = Tensor::zeros(&[n, d]);
        let gamma = self.gamma.value.data();
        let on = simd::active();
        let mut dyh = vec![0.0f32; d];
        for (r, &istd) in inv_std.iter().enumerate().take(n) {
            let dyr = dy.row(r);
            let xhr = xhat.row(r);
            simd::mul_into(on, &mut dyh, dyr, gamma);
            let (sum_dyh, dot_dyh_xh) = simd::sum_and_dot(on, &dyh, xhr);
            let mean_dyh = sum_dyh / d as f32;
            let mean_dyh_xh = dot_dyh_xh / d as f32;
            simd::ln_dx_row(on, dx.row_mut(r), &dyh, xhr, istd, mean_dyh, mean_dyh_xh);
        }
        dx
    }
}

impl Layer for LayerNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        f("gamma", &mut self.gamma);
        f("beta", &mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, numeric_grad};
    use crate::init::SeededInit;

    #[test]
    fn output_rows_are_normalized() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0], &[2, 4]);
        let y = ln.forward(&x);
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn affine_params_apply() {
        let mut ln = LayerNorm::new(2);
        ln.gamma.value.data_mut().copy_from_slice(&[2.0, 2.0]);
        ln.beta.value.data_mut().copy_from_slice(&[1.0, 1.0]);
        let y = ln.forward(&Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]));
        // x̂ = [-1, 1] (up to eps), so y ≈ [-1, 3].
        assert!((y.at(&[0, 0]) + 1.0).abs() < 1e-2);
        assert!((y.at(&[0, 1]) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn gradcheck_input_and_params() {
        let mut init = SeededInit::new(4);
        let mut ln = LayerNorm::new(5);
        ln.gamma.value = init.uniform(&[5], 0.5, 1.5);
        ln.beta.value = init.uniform(&[5], -0.5, 0.5);
        let x = init.uniform(&[3, 5], -2.0, 2.0);

        let _ = ln.forward(&x);
        // Weighted-sum loss keeps the check sensitive to all directions.
        let dy = init.uniform(&[3, 5], -1.0, 1.0);
        let dx = ln.backward(&dy);

        let gamma = ln.gamma.value.clone();
        let beta = ln.beta.value.clone();
        let dyc = dy.clone();
        let num_dx = numeric_grad(&x, 1e-2, |x| {
            let mut probe = LayerNorm::new(5);
            probe.gamma.value = gamma.clone();
            probe.beta.value = beta.clone();
            probe.forward_inference(x).mul(&dyc).sum()
        });
        assert_close(&dx, &num_dx, 2e-2, "layernorm dx");

        let xc = x.clone();
        let betac = beta.clone();
        let num_dg = numeric_grad(&gamma, 1e-2, |g| {
            let mut probe = LayerNorm::new(5);
            probe.gamma.value = g.clone();
            probe.beta.value = betac.clone();
            probe.forward_inference(&xc).mul(&dyc).sum()
        });
        assert_close(&ln.gamma.grad, &num_dg, 2e-2, "layernorm dgamma");
    }

    #[test]
    fn constant_row_does_not_produce_nan() {
        let mut ln = LayerNorm::new(3);
        let y = ln.forward(&Tensor::full(&[1, 3], 5.0));
        assert!(y.data().iter().all(|x| x.is_finite()));
        let dx = ln.backward(&Tensor::ones(&[1, 3]));
        assert!(dx.data().iter().all(|x| x.is_finite()));
    }
}
