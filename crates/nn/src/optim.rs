//! Optimizers and learning-rate schedules.

use crate::Param;
use ntr_tensor::{grain, par, Tensor};
use std::collections::HashMap;

/// AdamW: Adam with decoupled weight decay and bias correction.
///
/// Per-parameter moment state is keyed by [`Param::id`], so the same `Adam`
/// instance can be shared across all of a model's parameters and across
/// steps. Usage per step:
///
/// ```text
/// let mut step = adam.begin_step();      // advances t once
/// model.visit_params(&mut |_, p| step.update(p));
/// model.zero_grad();
/// ```
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    state: HashMap<u64, Moments>,
}

#[derive(Debug)]
struct Moments {
    m: Tensor,
    v: Tensor,
}

impl Adam {
    /// Adam with standard β=(0.9, 0.999), ε=1e-8, no weight decay.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// Sets decoupled weight decay (AdamW).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Overrides the learning rate (e.g. from a schedule) before a step.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Overrides the completed-step counter (checkpoint resume). Bias
    /// correction depends on `t`, so resuming must restore it exactly.
    pub fn set_steps(&mut self, t: u64) {
        self.t = t;
    }

    /// Overrides β₁/β₂/ε (checkpoint resume).
    pub fn with_betas(mut self, beta1: f32, beta2: f32, eps: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self.eps = eps;
        self
    }

    /// First-moment decay β₁.
    pub fn beta1(&self) -> f32 {
        self.beta1
    }

    /// Second-moment decay β₂.
    pub fn beta2(&self) -> f32 {
        self.beta2
    }

    /// Denominator stabilizer ε.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Decoupled weight-decay coefficient.
    pub fn weight_decay(&self) -> f32 {
        self.weight_decay
    }

    /// The moment pair for a parameter id, if that parameter has been
    /// updated at least once.
    pub fn moments_of(&self, id: u64) -> Option<(&Tensor, &Tensor)> {
        self.state.get(&id).map(|s| (&s.m, &s.v))
    }

    /// Installs a moment pair for a parameter id (checkpoint resume).
    ///
    /// # Panics
    /// Panics if `m` and `v` disagree on shape.
    pub fn set_moments(&mut self, id: u64, m: Tensor, v: Tensor) {
        assert_eq!(m.shape(), v.shape(), "Adam moment shape mismatch");
        self.state.insert(id, Moments { m, v });
    }

    /// Begins one optimizer step: advances the timestep and returns a guard
    /// whose [`AdamStep::update`] applies the update to each parameter.
    pub fn begin_step(&mut self) -> AdamStep<'_> {
        self.t += 1;
        AdamStep { adam: self }
    }
}

/// Guard for a single optimizer step. See [`Adam::begin_step`].
pub struct AdamStep<'a> {
    adam: &'a mut Adam,
}

impl AdamStep<'_> {
    /// Applies the AdamW update to `p` using its accumulated gradient.
    /// Does **not** zero the gradient; callers do that after the full step.
    pub fn update(&mut self, p: &mut Param) {
        let a = &mut *self.adam;
        let entry = a.state.entry(p.id()).or_insert_with(|| Moments {
            m: Tensor::zeros(p.value.shape()),
            v: Tensor::zeros(p.value.shape()),
        });
        assert_eq!(
            entry.m.shape(),
            p.value.shape(),
            "Adam state shape mismatch: parameter was recreated or resized"
        );
        let bc1 = 1.0 - a.beta1.powi(a.t as i32);
        let bc2 = 1.0 - a.beta2.powi(a.t as i32);
        let (lr, beta1, beta2, eps, wd) = (a.lr, a.beta1, a.beta2, a.eps, a.weight_decay);
        let n = p.value.numel();
        // Priced as transcendental work: the per-element sqrt + divides
        // dominate, not the four-buffer memory traffic.
        let threads = grain::threads_for(grain::Work::Transcendental(n));
        // The update is purely element-wise, so any chunking of the four
        // buffers produces bit-identical results.
        let Moments { m, v } = entry;
        par::for_zip3_mut(
            p.value.data_mut(),
            m.data_mut(),
            v.data_mut(),
            p.grad.data(),
            threads,
            |w, m, v, g| {
                for i in 0..w.len() {
                    let gi = g[i];
                    m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
                    v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
                    let mhat = m[i] / bc1;
                    let vhat = v[i] / bc2;
                    w[i] -= lr * (mhat / (vhat.sqrt() + eps) + wd * w[i]);
                }
            },
        );
    }
}

/// Linear warmup followed by linear decay to zero — the standard BERT
/// fine-tuning schedule.
#[derive(Debug, Clone, Copy)]
pub struct WarmupLinearSchedule {
    /// Peak learning rate reached at the end of warmup.
    pub peak_lr: f32,
    /// Number of warmup steps.
    pub warmup: u64,
    /// Total training steps (decay reaches zero here).
    pub total: u64,
}

impl WarmupLinearSchedule {
    /// Learning rate at step `t` (0-based).
    pub fn lr_at(&self, t: u64) -> f32 {
        if self.total == 0 {
            return self.peak_lr;
        }
        if t < self.warmup {
            return self.peak_lr * (t + 1) as f32 / self.warmup.max(1) as f32;
        }
        let remaining = self.total.saturating_sub(t) as f32;
        let decay_span = self.total.saturating_sub(self.warmup).max(1) as f32;
        self.peak_lr * (remaining / decay_span).clamp(0.0, 1.0)
    }
}

/// Global-norm gradient clipping: scales every gradient so the concatenated
/// gradient vector has norm at most `max_norm`. Returns the pre-clip norm.
/// Global L2 norm over **all** of `model`'s gradients, without modifying
/// them. Returns NaN/Inf when any gradient is non-finite — the signal the
/// training supervisor uses for anomaly detection.
pub fn global_grad_norm(model: &mut dyn crate::Layer) -> f32 {
    let mut total = 0.0f32;
    model.visit_params(&mut |_, p| {
        total += p.grad.data().iter().map(|&g| g * g).sum::<f32>();
    });
    total.sqrt()
}

/// [`clip_grad_norm`] over a whole [`crate::Layer`]: measures the global
/// gradient norm across every parameter and, when it exceeds `max_norm`,
/// scales all gradients down to it. Returns the **pre-clip** norm. A
/// non-finite norm clips nothing (scaling NaN stays NaN); callers must
/// treat it as an anomaly instead.
pub fn clip_global_grad_norm(model: &mut dyn crate::Layer, max_norm: f32) -> f32 {
    let total = global_grad_norm(model);
    if total.is_finite() && total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        model.visit_params(&mut |_, p| p.grad.map_mut(|g| g * scale));
    }
    total
}

pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .map(|p| p.grad.data().iter().map(|&g| g * g).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params.iter_mut() {
            p.grad.map_mut(|g| g * scale);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_step(adam: &mut Adam, p: &mut Param) {
        // loss = Σ w², grad = 2w
        p.zero_grad();
        let g = p.value.scale(2.0);
        p.accumulate(&g);
        let mut step = adam.begin_step();
        step.update(p);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut p = Param::new(Tensor::from_vec(vec![5.0, -3.0], &[2]));
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            quadratic_step(&mut adam, &mut p);
        }
        assert!(p.value.norm() < 1e-2, "did not converge: {:?}", p.value);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut p = Param::new(Tensor::from_vec(vec![1.0], &[1]));
        let mut adam = Adam::new(0.01).with_weight_decay(0.1);
        for _ in 0..100 {
            p.zero_grad();
            let mut step = adam.begin_step();
            step.update(&mut p);
        }
        assert!(p.value.data()[0] < 1.0);
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // With bias correction, the first Adam step has magnitude ≈ lr.
        let mut p = Param::new(Tensor::from_vec(vec![0.0], &[1]));
        p.accumulate(&Tensor::from_vec(vec![123.0], &[1]));
        let mut adam = Adam::new(0.5);
        adam.begin_step().update(&mut p);
        assert!((p.value.data()[0].abs() - 0.5).abs() < 1e-3);
    }

    #[test]
    fn schedule_warms_up_then_decays() {
        let s = WarmupLinearSchedule {
            peak_lr: 1.0,
            warmup: 10,
            total: 110,
        };
        assert!(s.lr_at(0) > 0.0 && s.lr_at(0) <= 0.1 + 1e-6);
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(60) < 1.0 && s.lr_at(60) > 0.0);
        assert_eq!(s.lr_at(110), 0.0);
        assert!(s.lr_at(30) > s.lr_at(90), "monotone decay");
    }

    #[test]
    fn schedule_degenerate_totals_are_safe() {
        let s = WarmupLinearSchedule {
            peak_lr: 1.0,
            warmup: 0,
            total: 0,
        };
        assert_eq!(s.lr_at(0), 1.0);
    }

    #[test]
    fn clip_grad_norm_scales_down_only_when_needed() {
        let mut a = Param::new(Tensor::zeros(&[2]));
        a.accumulate(&Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let norm = clip_grad_norm(&mut [&mut a], 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((a.grad.norm() - 1.0).abs() < 1e-5);

        let mut b = Param::new(Tensor::zeros(&[1]));
        b.accumulate(&Tensor::from_vec(vec![0.1], &[1]));
        clip_grad_norm(&mut [&mut b], 1.0);
        assert!(
            (b.grad.data()[0] - 0.1).abs() < 1e-7,
            "small grads untouched"
        );
    }

    #[test]
    fn global_clip_covers_every_parameter() {
        let mut lin = crate::Linear::new(2, 2, &mut crate::init::SeededInit::new(7));
        lin.w
            .accumulate(&Tensor::from_vec(vec![3.0, 0.0, 0.0, 0.0], &[2, 2]));
        lin.b.accumulate(&Tensor::from_vec(vec![0.0, 4.0], &[2]));
        let norm = clip_global_grad_norm(&mut lin, 1.0);
        assert!((norm - 5.0).abs() < 1e-6, "norm spans both params: {norm}");
        let clipped = global_grad_norm(&mut lin);
        assert!(
            (clipped - 1.0).abs() < 1e-5,
            "clipped to max_norm: {clipped}"
        );

        // Under the threshold nothing moves.
        let before = lin.w.grad.clone();
        let n2 = clip_global_grad_norm(&mut lin, 10.0);
        assert!((n2 - 1.0).abs() < 1e-5);
        assert_eq!(lin.w.grad, before);
    }

    #[test]
    fn global_norm_reports_nonfinite_without_clipping() {
        let mut lin = crate::Linear::new(2, 2, &mut crate::init::SeededInit::new(8));
        lin.w
            .accumulate(&Tensor::from_vec(vec![f32::NAN, 0.0, 0.0, 0.0], &[2, 2]));
        lin.b.accumulate(&Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let norm = clip_global_grad_norm(&mut lin, 0.5);
        assert!(norm.is_nan(), "NaN grads must surface in the norm");
        assert_eq!(
            lin.b.grad.data(),
            &[1.0, 2.0],
            "no clipping applied on a non-finite norm"
        );
    }
}
