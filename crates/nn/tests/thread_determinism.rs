//! End-to-end thread-count invariance: a full attention forward/backward and
//! an Adam step must produce bit-identical results whatever the pool size,
//! which is what makes `NTR_THREADS=1` reproduce multithreaded training runs
//! exactly.

use ntr_nn::init::SeededInit;
use ntr_nn::optim::Adam;
use ntr_nn::{MultiHeadAttention, Param};
use ntr_tensor::{par, Tensor};

fn attention_round_trip(threads: usize) -> (Tensor, Tensor) {
    par::with_threads(threads, || {
        let mut attn = MultiHeadAttention::new(64, 4, &mut SeededInit::new(7));
        let x = SeededInit::new(8).uniform(&[48, 64], -0.5, 0.5);
        let dy = SeededInit::new(9).uniform(&[48, 64], -1.0, 1.0);
        let y = attn.forward_self(&x, None);
        let dx = attn.backward_self(&dy);
        (y, dx)
    })
}

#[test]
fn attention_is_bit_identical_across_thread_counts() {
    let (y1, dx1) = attention_round_trip(1);
    for threads in [2usize, 3, 6] {
        let (y, dx) = attention_round_trip(threads);
        assert_eq!(y1.data(), y.data(), "forward differs at threads={threads}");
        assert_eq!(
            dx1.data(),
            dx.data(),
            "backward differs at threads={threads}"
        );
    }
}

fn adam_round_trip(threads: usize) -> Tensor {
    par::with_threads(threads, || {
        // Large enough to cross the optimizer's parallel threshold.
        let mut p = Param::new(SeededInit::new(10).uniform(&[256, 256], -0.1, 0.1));
        let g = SeededInit::new(11).uniform(&[256, 256], -1.0, 1.0);
        let mut adam = Adam::new(1e-3).with_weight_decay(0.01);
        for _ in 0..3 {
            p.zero_grad();
            p.accumulate(&g);
            adam.begin_step().update(&mut p);
        }
        p.value.clone()
    })
}

#[test]
fn adam_updates_are_bit_identical_across_thread_counts() {
    let w1 = adam_round_trip(1);
    for threads in [2usize, 5, 8] {
        let w = adam_round_trip(threads);
        assert_eq!(w1.data(), w.data(), "weights differ at threads={threads}");
    }
}
