//! Property-based gradient checks: every layer's backward must match
//! central finite differences for random shapes, inputs and weights.

use ntr_nn::gradcheck::numeric_grad;
use ntr_nn::init::SeededInit;
use ntr_nn::loss::softmax_cross_entropy;
use ntr_nn::{Gelu, LayerNorm, Linear, MultiHeadAttention};
use proptest::prelude::*;

fn close(analytic: &ntr_tensor::Tensor, numeric: &ntr_tensor::Tensor, tol: f32) -> bool {
    analytic
        .data()
        .iter()
        .zip(numeric.data())
        .all(|(&a, &n)| (a - n).abs() / a.abs().max(n.abs()).max(1.0) < tol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn linear_input_gradient_matches(seed in 0u64..1000, n in 1usize..5, d_in in 1usize..5, d_out in 1usize..5) {
        let mut init = SeededInit::new(seed);
        let mut layer = Linear::new(d_in, d_out, &mut init.fork());
        let x = init.uniform(&[n, d_in], -1.0, 1.0);
        let dy = init.uniform(&[n, d_out], -1.0, 1.0);
        let _ = layer.forward(&x);
        let dx = layer.backward(&dy);
        let probe = layer.clone();
        let dyc = dy.clone();
        let num = numeric_grad(&x, 1e-2, |x| probe.forward_inference(x).mul(&dyc).sum());
        prop_assert!(close(&dx, &num, 3e-2));
    }

    #[test]
    fn gelu_gradient_matches(seed in 0u64..1000, n in 1usize..6) {
        let mut init = SeededInit::new(seed);
        let x = init.uniform(&[1, n], -2.0, 2.0);
        let mut g = Gelu::default();
        let _ = g.forward(&x);
        let dx = g.backward(&ntr_tensor::Tensor::ones(&[1, n]));
        let num = numeric_grad(&x, 1e-3, |x| x.map(ntr_nn::activation::gelu).sum());
        prop_assert!(close(&dx, &num, 2e-2));
    }

    #[test]
    fn layernorm_input_gradient_matches(seed in 0u64..1000, n in 1usize..4, d in 2usize..6) {
        let mut init = SeededInit::new(seed);
        let mut ln = LayerNorm::new(d);
        ln.gamma.value = init.uniform(&[d], 0.5, 1.5);
        let x = init.uniform(&[n, d], -2.0, 2.0);
        let dy = init.uniform(&[n, d], -1.0, 1.0);
        // LayerNorm's gradient near a constant row is dominated by the ε
        // term and wildly curved, so an h=1e-2 central difference is not a
        // valid probe there; only well-spread rows are checkable.
        let degenerate = (0..n).any(|r| {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            (row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32) < 0.1
        });
        if degenerate {
            return Ok(());
        }
        let _ = ln.forward(&x);
        let dx = ln.backward(&dy);
        let probe = ln.clone();
        let dyc = dy.clone();
        let num = numeric_grad(&x, 1e-2, |x| probe.forward_inference(x).mul(&dyc).sum());
        prop_assert!(close(&dx, &num, 5e-2));
    }

    #[test]
    fn attention_input_gradient_matches(seed in 0u64..200, n in 2usize..4) {
        let mut init = SeededInit::new(seed);
        let mut attn = MultiHeadAttention::new(4, 2, &mut init);
        let x = init.uniform(&[n, 4], -0.5, 0.5);
        let dy = init.uniform(&[n, 4], -1.0, 1.0);
        let _ = attn.forward_self(&x, None);
        let dx = attn.backward_self(&dy);
        let mut probe = attn.clone();
        let dyc = dy.clone();
        let num = numeric_grad(&x, 5e-3, |x| probe.forward_self(x, None).mul(&dyc).sum());
        prop_assert!(close(&dx, &num, 6e-2));
    }

    #[test]
    fn cross_entropy_gradient_matches(seed in 0u64..1000, n in 1usize..4, c in 2usize..6) {
        let mut init = SeededInit::new(seed);
        let logits = init.uniform(&[n, c], -2.0, 2.0);
        let targets: Vec<usize> = (0..n).map(|i| (i * 7 + seed as usize) % c).collect();
        let (_, d) = softmax_cross_entropy(&logits, &targets, None);
        let t = targets.clone();
        let num = numeric_grad(&logits, 1e-2, |l| softmax_cross_entropy(l, &t, None).0);
        prop_assert!(close(&d, &num, 3e-2));
    }

    #[test]
    fn softmax_cross_entropy_loss_is_nonnegative(seed in 0u64..1000, n in 1usize..4, c in 2usize..6) {
        let mut init = SeededInit::new(seed);
        let logits = init.uniform(&[n, c], -5.0, 5.0);
        let targets: Vec<usize> = (0..n).map(|i| i % c).collect();
        let (loss, _) = softmax_cross_entropy(&logits, &targets, None);
        prop_assert!(loss >= 0.0);
        prop_assert!(loss.is_finite());
    }
}
