//! Property tests for the `NTRW` v2 checkpoint format: arbitrary parameter
//! maps and optimizer states must survive a save → parse round trip
//! **exactly** (f32 bit patterns, shapes, names), including the edge cases
//! a hand-written test suite forgets — empty tensors, one-element tensors,
//! names longer than a u16.

use ntr_nn::optim::WarmupLinearSchedule;
use ntr_nn::serialize::{
    parse_checkpoint, write_checkpoint_to, TrainCheckpoint, TrainCursor, TrainState,
};
use ntr_tensor::Tensor;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Deterministic pseudo-random f32 with interesting bit patterns: normals,
/// subnormals, zeros, and exact negatives.
fn f32_from(seed: u64, i: usize) -> f32 {
    let x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    match x % 7 {
        0 => 0.0,
        1 => -0.0,
        2 => f32::from_bits((x as u32) & 0x007F_FFFF), // subnormal
        3 => -(x as u32 as f32) / 1e3,
        _ => f32::from_bits((x as u32) & 0x7F7F_FFFF).min(f32::MAX), // finite
    }
}

fn tensor_from(seed: u64, shape: &[usize]) -> Tensor {
    let numel: usize = shape.iter().product();
    Tensor::from_vec((0..numel).map(|i| f32_from(seed, i)).collect(), shape)
}

fn name_from(seed: u64, len: usize) -> String {
    (0..len)
        .map(|i| {
            let c = (seed.wrapping_add(i as u64).wrapping_mul(31)) % 26;
            (b'a' + c as u8) as char
        })
        .collect()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary parameter maps (arbitrary shapes, including empty and
    /// 1-element tensors, and arbitrary name lengths) round-trip exactly.
    #[test]
    fn params_roundtrip_exactly(
        seed in 0u64..10_000,
        n_params in 0usize..6,
        rows in 0usize..5,
        cols in 0usize..5,
        name_len in 1usize..24,
    ) {
        let mut params = BTreeMap::new();
        for k in 0..n_params {
            let name = format!("{}{k}", name_from(seed ^ k as u64, name_len));
            let shape: Vec<usize> = match k % 3 {
                0 => vec![rows, cols],
                1 => vec![rows],
                _ => vec![rows * cols],
            };
            params.insert(name, tensor_from(seed ^ (k as u64) << 8, &shape));
        }
        let ckpt = TrainCheckpoint { params, state: None };
        let mut buf = Vec::new();
        write_checkpoint_to(&ckpt, &mut buf).unwrap();
        let parsed = parse_checkpoint(&buf).unwrap();
        prop_assert_eq!(parsed.params.len(), ckpt.params.len());
        for (name, t) in &ckpt.params {
            let p = &parsed.params[name];
            prop_assert_eq!(p.shape(), t.shape());
            prop_assert_eq!(bits(p), bits(t));
        }
        prop_assert!(parsed.state.is_none());
    }

    /// Full training state (moments, schedule, cursor, RNG streams)
    /// round-trips exactly, bit for bit.
    #[test]
    fn train_state_roundtrips_exactly(
        seed in 0u64..10_000,
        n_params in 1usize..4,
        dim in 1usize..6,
        steps in 0u64..1_000_000,
        epoch in 0u64..50,
        example in 0u64..10_000,
    ) {
        let mut params = BTreeMap::new();
        let mut moments = BTreeMap::new();
        for k in 0..n_params {
            let name = format!("p{k}");
            params.insert(name.clone(), tensor_from(seed ^ k as u64, &[dim]));
            moments.insert(
                name,
                (
                    tensor_from(seed ^ 0x1111 ^ k as u64, &[dim]),
                    tensor_from(seed ^ 0x2222 ^ k as u64, &[dim]),
                ),
            );
        }
        let mut rngs = BTreeMap::new();
        rngs.insert(
            "enc/drop0".to_string(),
            [seed, seed ^ 1, seed ^ 2, seed | 1],
        );
        let state = TrainState {
            steps,
            lr: f32_from(seed, 0).abs().min(1.0),
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            moments,
            schedule: WarmupLinearSchedule {
                peak_lr: 3e-3,
                warmup: steps / 10 + 1,
                total: steps + 1,
            },
            cursor: TrainCursor { epoch, example, seed },
            rngs,
        };
        let ckpt = TrainCheckpoint { params, state: Some(state) };
        let mut buf = Vec::new();
        write_checkpoint_to(&ckpt, &mut buf).unwrap();
        let parsed = parse_checkpoint(&buf).unwrap();
        let got = parsed.state.as_ref().unwrap();
        let want = ckpt.state.as_ref().unwrap();
        prop_assert_eq!(got.steps, want.steps);
        prop_assert_eq!(got.lr.to_bits(), want.lr.to_bits());
        prop_assert_eq!(got.beta1.to_bits(), want.beta1.to_bits());
        prop_assert_eq!(got.beta2.to_bits(), want.beta2.to_bits());
        prop_assert_eq!(got.eps.to_bits(), want.eps.to_bits());
        prop_assert_eq!(got.weight_decay.to_bits(), want.weight_decay.to_bits());
        prop_assert_eq!(got.schedule.warmup, want.schedule.warmup);
        prop_assert_eq!(got.schedule.total, want.schedule.total);
        prop_assert_eq!(got.cursor, want.cursor);
        prop_assert_eq!(&got.rngs, &want.rngs);
        prop_assert_eq!(got.moments.len(), want.moments.len());
        for (name, (m, v)) in &want.moments {
            let (gm, gv) = &got.moments[name];
            prop_assert_eq!(bits(gm), bits(m));
            prop_assert_eq!(bits(gv), bits(v));
        }
    }
}

/// Parameter names longer than a u16 (65 535 bytes) must round-trip —
/// the format uses u32 lengths and the parser clamps against remaining
/// bytes rather than a fixed cap.
#[test]
fn names_longer_than_u16_roundtrip() {
    let long_name = name_from(7, 70_000);
    assert!(long_name.len() > u16::MAX as usize);
    let mut params = BTreeMap::new();
    params.insert(long_name.clone(), tensor_from(1, &[3]));
    params.insert(String::new(), tensor_from(2, &[1])); // empty name too
    let ckpt = TrainCheckpoint {
        params,
        state: None,
    };
    let mut buf = Vec::new();
    write_checkpoint_to(&ckpt, &mut buf).unwrap();
    let parsed = parse_checkpoint(&buf).unwrap();
    assert_eq!(
        bits(&parsed.params[&long_name]),
        bits(&ckpt.params[&long_name])
    );
    assert!(parsed.params.contains_key(""));
}

/// NaN payloads and infinities are preserved bit-exactly (a resumed run
/// must see exactly the floats the crashed run had, pathological or not).
#[test]
fn nan_and_inf_bit_patterns_survive() {
    let weird = Tensor::from_vec(
        vec![
            f32::NAN,
            f32::from_bits(0x7FC0_1234), // NaN with payload
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE / 2.0, // subnormal
            -0.0,
        ],
        &[6],
    );
    let mut params = BTreeMap::new();
    params.insert("weird".to_string(), weird.clone());
    let ckpt = TrainCheckpoint {
        params,
        state: None,
    };
    let mut buf = Vec::new();
    write_checkpoint_to(&ckpt, &mut buf).unwrap();
    let parsed = parse_checkpoint(&buf).unwrap();
    assert_eq!(bits(&parsed.params["weird"]), bits(&weird));
}
