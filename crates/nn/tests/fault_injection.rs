//! Fault-injection suite for the `NTRW` v2 checkpoint format.
//!
//! A checkpoint that crashed mid-write, hit disk corruption, or was
//! hostile-crafted must surface as a clean [`CheckpointError`] — **never** a
//! panic, never a silently wrong model. This sweep exercises every
//! byte-truncation prefix and every single-bit flip of a small real
//! checkpoint.

use ntr_nn::init::SeededInit;
use ntr_nn::optim::{Adam, WarmupLinearSchedule};
use ntr_nn::serialize::{
    parse_checkpoint, write_checkpoint_to, CheckpointError, TrainCheckpoint, TrainCursor,
};
use ntr_nn::{Layer, Linear};
use ntr_tensor::Tensor;

/// A small but fully-featured v2 checkpoint: parameters, Adam moments,
/// schedule, cursor, and an RNG stream.
fn small_checkpoint() -> Vec<u8> {
    let mut model = Linear::new(3, 2, &mut SeededInit::new(42));
    let mut adam = Adam::new(1e-3).with_weight_decay(0.01);
    let _ = model.forward(&Tensor::ones(&[1, 3]));
    let _ = model.backward(&Tensor::ones(&[1, 2]));
    {
        let mut step = adam.begin_step();
        model.visit_params(&mut |_, p| step.update(p));
    }
    model.zero_grad();
    let schedule = WarmupLinearSchedule {
        peak_lr: 1e-3,
        warmup: 2,
        total: 9,
    };
    let cursor = TrainCursor {
        epoch: 1,
        example: 3,
        seed: 0xF17E,
    };
    let mut ckpt = TrainCheckpoint::capture_train(&mut model, &adam, &schedule, cursor);
    if let Some(st) = &mut ckpt.state {
        st.rngs.insert("encoder/layer0/drop1".into(), [1, 2, 3, 4]);
    }
    let mut buf = Vec::new();
    write_checkpoint_to(&ckpt, &mut buf).unwrap();
    buf
}

#[test]
fn intact_checkpoint_parses() {
    let bytes = small_checkpoint();
    let ckpt = parse_checkpoint(&bytes).expect("intact file must parse");
    assert!(ckpt.state.is_some());
    assert_eq!(ckpt.params.len(), 2, "w and b");
}

/// Every proper prefix of the file must fail cleanly. This is exactly the
/// family of states a crash mid-write could leave behind if the atomic
/// rename protocol were bypassed.
#[test]
fn every_truncation_prefix_is_rejected_without_panic() {
    let bytes = small_checkpoint();
    for len in 0..bytes.len() {
        let result = std::panic::catch_unwind(|| parse_checkpoint(&bytes[..len]))
            .unwrap_or_else(|_| panic!("parse_checkpoint PANICKED on a {len}-byte truncation"));
        match result {
            Err(CheckpointError::BadFormat(_)) => {}
            Err(other) => panic!("truncation to {len} bytes gave {other:?}, want BadFormat"),
            Ok(_) => panic!("truncation to {len} bytes silently parsed"),
        }
    }
}

/// Every single-bit flip must be detected (CRC-32 detects all single-bit
/// errors) and surface as `BadFormat` or `Mismatch` — never success, never
/// a panic.
#[test]
fn every_single_bit_flip_is_detected() {
    let bytes = small_checkpoint();
    for byte_idx in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte_idx] ^= 1 << bit;
            let result =
                std::panic::catch_unwind(|| parse_checkpoint(&corrupt)).unwrap_or_else(|_| {
                    panic!("parse_checkpoint PANICKED on bit {bit} of byte {byte_idx}")
                });
            match result {
                Err(CheckpointError::BadFormat(_)) | Err(CheckpointError::Mismatch(_)) => {}
                Err(CheckpointError::Io(e)) => {
                    panic!("bit {bit} of byte {byte_idx} gave Io({e}), want BadFormat/Mismatch")
                }
                Ok(_) => panic!("bit {bit} of byte {byte_idx} flipped silently"),
            }
        }
    }
}

/// Appending trailing garbage must also be rejected: the byte count is part
/// of what the file-level CRC protects.
#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = small_checkpoint();
    bytes.extend_from_slice(b"garbage");
    assert!(matches!(
        parse_checkpoint(&bytes),
        Err(CheckpointError::BadFormat(_))
    ));
}

/// Hostile headers: enormous declared section lengths, parameter counts,
/// and tensor dims must fail against the actual remaining bytes instead of
/// attempting multi-GiB allocations.
#[test]
fn hostile_declared_lengths_do_not_allocate() {
    let bytes = small_checkpoint();
    // Overwrite the first section's length field (magic 4 + version 4 +
    // n_sections 4 + tag 4 = offset 16) with u64::MAX.
    let mut hostile = bytes.clone();
    hostile[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        parse_checkpoint(&hostile),
        Err(CheckpointError::BadFormat(_))
    ));
    // And with a "plausible" huge length (1 TiB) that still exceeds the file.
    let mut hostile = bytes;
    hostile[16..24].copy_from_slice(&(1u64 << 40).to_le_bytes());
    assert!(matches!(
        parse_checkpoint(&hostile),
        Err(CheckpointError::BadFormat(_))
    ));
}
