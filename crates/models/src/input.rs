//! [`EncoderInput`]: the id/metadata bundle every model consumes.

use ntr_table::masking::MaskedExample;
use ntr_table::EncodedTable;

/// Token ids plus aligned structural-id streams, ready for embedding.
///
/// Built from an [`EncodedTable`] (optionally with MLM/MER-corrupted ids);
/// all streams have equal length.
#[derive(Debug, Clone)]
pub struct EncoderInput {
    /// Token ids.
    pub ids: Vec<usize>,
    /// Row ids (0 = outside grid).
    pub rows: Vec<usize>,
    /// Column ids (0 = outside grid).
    pub cols: Vec<usize>,
    /// Segment ids (0 = context, 1 = table).
    pub segments: Vec<usize>,
    /// Token-kind ids (see `ntr_table::EncodedTable::kind_ids`).
    pub kinds: Vec<usize>,
    /// Numeric-rank ids (0 = no rank; TAPAS-style rank embeddings).
    pub ranks: Vec<usize>,
}

impl EncoderInput {
    /// Builds from an encoded table, using its original ids.
    pub fn from_encoded(e: &EncodedTable) -> Self {
        Self {
            ids: e.ids().to_vec(),
            rows: e.row_ids(),
            cols: e.col_ids(),
            segments: e.segment_ids(),
            kinds: e.kind_ids(),
            ranks: e.rank_ids(),
        }
    }

    /// Builds from an encoded table but with corrupted ids (MLM/MER input).
    ///
    /// # Panics
    /// Panics when lengths disagree.
    pub fn from_encoded_with_ids(e: &EncodedTable, ids: Vec<usize>) -> Self {
        assert_eq!(ids.len(), e.len(), "override ids length mismatch");
        Self {
            ids,
            rows: e.row_ids(),
            cols: e.col_ids(),
            segments: e.segment_ids(),
            kinds: e.kind_ids(),
            ranks: e.rank_ids(),
        }
    }

    /// Builds from an encoded table and an MLM masking result.
    pub fn from_masked(e: &EncodedTable, m: &MaskedExample) -> Self {
        Self::from_encoded_with_ids(e, m.input_ids.clone())
    }

    /// Builds a plain-text input (no table structure), e.g. for a decoder
    /// prefix or a pure-text baseline.
    pub fn from_text_ids(ids: Vec<usize>) -> Self {
        let n = ids.len();
        Self {
            ids,
            rows: vec![0; n],
            cols: vec![0; n],
            segments: vec![0; n],
            kinds: vec![1; n],
            ranks: vec![0; n],
        }
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_table::{Linearizer, LinearizerOptions, RowMajorLinearizer, Table};
    use ntr_tokenizer::{train::WordPieceTrainer, WordPieceTokenizer};

    fn encoded() -> EncodedTable {
        let tok = WordPieceTokenizer::new(
            WordPieceTrainer::new(200).train(["a b c d | : one two three"]),
        );
        let t = Table::from_strings("t", &["a", "b"], &[&["one", "two"], &["three", "one"]]);
        RowMajorLinearizer.linearize(&t, "c d", &tok, &LinearizerOptions::default())
    }

    #[test]
    fn from_encoded_aligns_all_streams() {
        let e = encoded();
        let inp = EncoderInput::from_encoded(&e);
        assert_eq!(inp.len(), e.len());
        assert_eq!(inp.rows.len(), inp.len());
        assert_eq!(inp.cols.len(), inp.len());
        assert_eq!(inp.segments.len(), inp.len());
        assert_eq!(inp.kinds.len(), inp.len());
        assert_eq!(inp.ranks.len(), inp.len());
        assert_eq!(inp.ids, e.ids());
    }

    #[test]
    fn override_ids_keeps_structure() {
        let e = encoded();
        let corrupted = vec![4; e.len()];
        let inp = EncoderInput::from_encoded_with_ids(&e, corrupted.clone());
        assert_eq!(inp.ids, corrupted);
        assert_eq!(inp.rows, e.row_ids());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn override_ids_validates_length() {
        let e = encoded();
        let _ = EncoderInput::from_encoded_with_ids(&e, vec![0; 3]);
    }

    #[test]
    fn text_input_has_no_structure() {
        let inp = EncoderInput::from_text_ids(vec![2, 9, 9, 3]);
        assert_eq!(inp.rows, vec![0; 4]);
        assert_eq!(inp.segments, vec![0; 4]);
        assert!(!inp.is_empty());
    }
}
