//! Structure-aware input embeddings.
//!
//! The survey's "input level" extension point (§2.3): TAPAS-style models
//! *add extra dimensions to the embedding vector to account for cell, row,
//! and column positions*. [`TableEmbeddings`] is that mechanism — the sum
//! of word, absolute-position, and any enabled structural embeddings
//! (segment, row, column, token-kind), followed by LayerNorm.

use crate::config::ModelConfig;
use crate::input::EncoderInput;
use ntr_nn::init::SeededInit;
use ntr_nn::{Dropout, Embedding, Layer, LayerNorm, Param};
use ntr_tensor::Tensor;

/// Which structural embedding tables a model enables.
#[derive(Debug, Clone, Copy)]
pub struct EmbeddingFlags {
    /// Segment (context vs. table).
    pub segments: bool,
    /// Row ids.
    pub rows: bool,
    /// Column ids.
    pub cols: bool,
    /// Token kinds (special/context/header/cell/template).
    pub kinds: bool,
    /// Numeric ranks (TAPAS's rank embeddings).
    pub ranks: bool,
}

impl EmbeddingFlags {
    /// BERT: words + positions + segments only.
    pub fn text_only() -> Self {
        Self {
            segments: true,
            rows: false,
            cols: false,
            kinds: false,
            ranks: false,
        }
    }

    /// TAPAS/TURL/MATE: everything.
    pub fn structural() -> Self {
        Self {
            segments: true,
            rows: true,
            cols: true,
            kinds: true,
            ranks: true,
        }
    }
}

/// Sum-of-tables input embedding with LayerNorm and dropout.
#[derive(Debug, Clone)]
pub struct TableEmbeddings {
    word: Embedding,
    position: Embedding,
    segment: Option<Embedding>,
    row: Option<Embedding>,
    col: Option<Embedding>,
    kind: Option<Embedding>,
    rank: Option<Embedding>,
    ln: LayerNorm,
    dropout: Dropout,
    max_seq: usize,
    max_rows: usize,
    max_cols: usize,
}

impl TableEmbeddings {
    /// Builds the embedding stack for `cfg` with the given flags.
    pub fn new(cfg: &ModelConfig, flags: EmbeddingFlags, init: &mut SeededInit) -> Self {
        cfg.validate();
        let d = cfg.d_model;
        Self {
            word: Embedding::new(cfg.vocab_size, d, &mut init.fork()),
            position: Embedding::new(cfg.max_seq, d, &mut init.fork()),
            segment: flags
                .segments
                .then(|| Embedding::new(2, d, &mut init.fork())),
            row: flags
                .rows
                .then(|| Embedding::new(cfg.max_rows, d, &mut init.fork())),
            col: flags
                .cols
                .then(|| Embedding::new(cfg.max_cols, d, &mut init.fork())),
            kind: flags.kinds.then(|| Embedding::new(5, d, &mut init.fork())),
            rank: flags
                .ranks
                .then(|| Embedding::new(cfg.max_rows, d, &mut init.fork())),
            ln: LayerNorm::new(d),
            dropout: Dropout::new(cfg.dropout, cfg.seed ^ 0xE88),
            max_seq: cfg.max_seq,
            max_rows: cfg.max_rows,
            max_cols: cfg.max_cols,
        }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.word.dim()
    }

    /// Direct access to the word table (weight tying with MLM heads).
    pub fn word_table(&self) -> &Embedding {
        &self.word
    }

    /// Embeds an input: sum of enabled tables → LayerNorm → dropout.
    ///
    /// Sequence positions, row ids and column ids beyond the configured
    /// maxima are clamped to the last bucket rather than panicking, so
    /// oversized tables degrade gracefully.
    pub fn forward(&mut self, input: &EncoderInput, train: bool) -> Tensor {
        let n = input.len();
        let positions: Vec<usize> = (0..n).map(|i| i.min(self.max_seq - 1)).collect();
        let mut x = self.word.forward(&input.ids);
        x.add_assign(&self.position.forward(&positions));
        if let Some(seg) = &mut self.segment {
            x.add_assign(&seg.forward(&input.segments));
        }
        if let Some(row) = &mut self.row {
            let rows: Vec<usize> = input
                .rows
                .iter()
                .map(|&r| r.min(self.max_rows - 1))
                .collect();
            x.add_assign(&row.forward(&rows));
        }
        if let Some(col) = &mut self.col {
            let cols: Vec<usize> = input
                .cols
                .iter()
                .map(|&c| c.min(self.max_cols - 1))
                .collect();
            x.add_assign(&col.forward(&cols));
        }
        if let Some(kind) = &mut self.kind {
            x.add_assign(&kind.forward(&input.kinds));
        }
        if let Some(rank) = &mut self.rank {
            let ranks: Vec<usize> = input
                .ranks
                .iter()
                .map(|&r| r.min(self.max_rows - 1))
                .collect();
            x.add_assign(&rank.forward(&ranks));
        }
        self.dropout.forward(&self.ln.forward(&x), train)
    }

    /// Backpropagates into every enabled table. Embeddings are sources, so
    /// nothing is returned.
    pub fn backward(&mut self, dy: &Tensor) {
        let dx = self.ln.backward(&self.dropout.backward(dy));
        // The sum distributes the same gradient to every table.
        self.word.backward(&dx);
        self.position.backward(&dx);
        if let Some(seg) = &mut self.segment {
            seg.backward(&dx);
        }
        if let Some(row) = &mut self.row {
            row.backward(&dx);
        }
        if let Some(col) = &mut self.col {
            col.backward(&dx);
        }
        if let Some(kind) = &mut self.kind {
            kind.backward(&dx);
        }
        if let Some(rank) = &mut self.rank {
            rank.backward(&dx);
        }
    }
}

impl Layer for TableEmbeddings {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        visit(&mut self.word, "word", f);
        visit(&mut self.position, "position", f);
        if let Some(e) = &mut self.segment {
            visit(e, "segment", f);
        }
        if let Some(e) = &mut self.row {
            visit(e, "row", f);
        }
        if let Some(e) = &mut self.col {
            visit(e, "col", f);
        }
        if let Some(e) = &mut self.kind {
            visit(e, "kind", f);
        }
        if let Some(e) = &mut self.rank {
            visit(e, "rank", f);
        }
        visit(&mut self.ln, "ln", f);
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        self.dropout.visit_rng("dropout", f);
    }
}

fn visit(child: &mut dyn Layer, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
    child.visit_params(&mut |name, p| f(&format!("{prefix}/{name}"), p));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(n: usize) -> EncoderInput {
        EncoderInput {
            ids: (0..n).map(|i| 7 + (i % 5)).collect(),
            rows: (0..n).map(|i| i % 4).collect(),
            cols: (0..n).map(|i| i % 3).collect(),
            segments: (0..n).map(|i| usize::from(i > n / 2)).collect(),
            kinds: vec![3; n],
            ranks: (0..n).map(|i| i % 3).collect(),
        }
    }

    fn cfg() -> ModelConfig {
        ModelConfig::tiny(64)
    }

    #[test]
    fn forward_shape_and_determinism() {
        let mut a = TableEmbeddings::new(
            &cfg(),
            EmbeddingFlags::structural(),
            &mut SeededInit::new(1),
        );
        let mut b = TableEmbeddings::new(
            &cfg(),
            EmbeddingFlags::structural(),
            &mut SeededInit::new(1),
        );
        let x = a.forward(&input(10), false);
        let y = b.forward(&input(10), false);
        assert_eq!(x.shape(), &[10, 16]);
        assert_eq!(x, y);
    }

    #[test]
    fn structural_ids_change_the_embedding() {
        let mut e = TableEmbeddings::new(
            &cfg(),
            EmbeddingFlags::structural(),
            &mut SeededInit::new(2),
        );
        let base = input(6);
        let mut moved = base.clone();
        moved.rows[3] = (base.rows[3] + 1) % 4;
        let a = e.forward(&base, false);
        let b = e.forward(&moved, false);
        assert_ne!(a.row(3), b.row(3), "row id must matter");
        assert_eq!(a.row(0), b.row(0), "untouched positions unchanged");
    }

    #[test]
    fn text_only_ignores_rows_and_cols() {
        let mut e =
            TableEmbeddings::new(&cfg(), EmbeddingFlags::text_only(), &mut SeededInit::new(3));
        let base = input(6);
        let mut moved = base.clone();
        moved.rows[2] = 0;
        moved.cols[2] = 0;
        assert_eq!(e.forward(&base, false), e.forward(&moved, false));
    }

    #[test]
    fn out_of_range_ids_clamp_not_panic() {
        let mut e = TableEmbeddings::new(
            &cfg(),
            EmbeddingFlags::structural(),
            &mut SeededInit::new(4),
        );
        let mut big = input(70); // longer than max_seq=64
        big.rows[0] = 999;
        big.cols[0] = 999;
        big.ranks[0] = 999;
        let out = e.forward(&big, false);
        assert_eq!(out.shape(), &[70, 16]);
    }

    #[test]
    fn backward_accumulates_word_grads_per_id() {
        let mut e = TableEmbeddings::new(
            &cfg(),
            EmbeddingFlags::structural(),
            &mut SeededInit::new(5),
        );
        let inp = input(8);
        let _ = e.forward(&inp, true);
        e.backward(&Tensor::ones(&[8, 16]));
        let mut any = 0.0;
        e.visit_params(&mut |name, p| {
            if name.starts_with("word/") {
                any += p.grad.data().iter().map(|g| g.abs()).sum::<f32>();
            }
        });
        assert!(any > 0.0);
    }

    #[test]
    fn param_names_are_unique() {
        let mut e = TableEmbeddings::new(
            &cfg(),
            EmbeddingFlags::structural(),
            &mut SeededInit::new(6),
        );
        let mut names = Vec::new();
        e.visit_params(&mut |n, _| names.push(n.to_string()));
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(names.iter().any(|n| n == "row/weight"));
    }
}
