//! MATE-style model: multi-view attention for table transformer
//! *efficiency* — half the heads attend within rows, half within columns.
//!
//! The survey's efficiency exemplar: "Eisenschlos et al. employ sparse
//! attention to efficiently attend to rows and columns" (§2.3). Two
//! implementations share the same math:
//!
//! * **training path** — per-head additive masks over the dense attention
//!   core (exact, differentiable, reuses the verified backward);
//! * **inference kernel** — [`sparse_attention`], which only visits allowed
//!   (query, key) pairs, giving the real `O(N·√N)`-class scaling the E6
//!   experiment measures (dense masked attention would hide it).

use crate::config::ModelConfig;
use crate::embeddings::{EmbeddingFlags, TableEmbeddings};
use crate::heads::MlmHead;
use crate::input::EncoderInput;
use crate::SequenceEncoder;
use ntr_nn::init::SeededInit;
use ntr_nn::{AttnMask, Encoder, Layer, Param};
use ntr_tensor::Tensor;

/// Which structural axis a sparse head attends along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseAxis {
    /// Tokens attend within their row (plus globals).
    Row,
    /// Tokens attend within their column (plus globals).
    Col,
}

/// MATE-style encoder: row heads + column heads.
#[derive(Debug, Clone)]
pub struct Mate {
    /// Structure-aware input embeddings.
    pub embeddings: TableEmbeddings,
    /// Transformer encoder with per-head masks.
    pub encoder: Encoder,
    /// Masked-language-modeling head for pretraining.
    pub mlm: MlmHead,
    head_axes: Vec<SparseAxis>,
    cfg: ModelConfig,
}

impl Mate {
    /// Builds the model; the first half of the heads are row heads, the
    /// rest column heads.
    pub fn new(cfg: &ModelConfig) -> Self {
        cfg.validate();
        let mut init = SeededInit::new(cfg.seed ^ 0x3A7E);
        // Alternate axes so both views exist for any head count (a single
        // head becomes a row head rather than silently dropping the row view).
        let head_axes = (0..cfg.n_heads)
            .map(|h| {
                if h % 2 == 0 {
                    SparseAxis::Row
                } else {
                    SparseAxis::Col
                }
            })
            .collect();
        Self {
            embeddings: TableEmbeddings::new(cfg, EmbeddingFlags::structural(), &mut init),
            encoder: Encoder::new(
                cfg.n_layers,
                cfg.d_model,
                cfg.n_heads,
                cfg.d_ff,
                cfg.dropout,
                &mut init,
            ),
            mlm: MlmHead::new(cfg.d_model, cfg.vocab_size, &mut init.fork()),
            head_axes,
            cfg: *cfg,
        }
    }

    /// The model's config.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Per-head axis assignment.
    pub fn head_axes(&self) -> &[SparseAxis] {
        &self.head_axes
    }

    /// Builds the per-head additive masks for an input.
    pub fn head_masks(&self, input: &EncoderInput) -> AttnMask {
        let masks = self
            .head_axes
            .iter()
            .map(|axis| axis_mask(input, *axis))
            .collect();
        AttnMask::PerHead(masks)
    }
}

fn is_global(input: &EncoderInput, i: usize) -> bool {
    matches!(input.kinds[i], 0 | 1 | 4)
}

fn axis_mask(input: &EncoderInput, axis: SparseAxis) -> Tensor {
    let n = input.len();
    let mut m = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            if i == j || is_global(input, i) || is_global(input, j) {
                continue;
            }
            let same = match axis {
                SparseAxis::Row => input.rows[i] == input.rows[j],
                SparseAxis::Col => input.cols[i] == input.cols[j],
            };
            if !same {
                m.set(&[i, j], f32::NEG_INFINITY);
            }
        }
    }
    m
}

impl SequenceEncoder for Mate {
    fn d_model(&self) -> usize {
        self.cfg.d_model
    }

    fn vocab_size(&self) -> usize {
        self.cfg.vocab_size
    }

    fn encode(&mut self, input: &EncoderInput, train: bool) -> Tensor {
        let mask = self.head_masks(input);
        let x = self.embeddings.forward(input, train);
        self.encoder.forward(&x, Some(&mask), train)
    }

    fn backward(&mut self, d_states: &Tensor) {
        let dx = self.encoder.backward(d_states);
        self.embeddings.backward(&dx);
    }

    fn family(&self) -> &'static str {
        "mate"
    }
}

impl Layer for Mate {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.embeddings
            .visit_params(&mut |n, p| f(&format!("embeddings/{n}"), p));
        self.encoder
            .visit_params(&mut |n, p| f(&format!("encoder/{n}"), p));
        self.mlm.visit_params(&mut |n, p| f(&format!("mlm/{n}"), p));
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        ntr_nn::visit_rng_child(&mut self.embeddings, "embeddings", f);
        ntr_nn::visit_rng_child(&mut self.encoder, "encoder", f);
    }
}

// ---------------------------------------------------------------------
// Genuinely sparse attention kernel (inference / efficiency experiments)
// ---------------------------------------------------------------------

/// Precomputed sparsity pattern: for each query, which keys it may attend
/// to. Built from structural metadata along one axis.
#[derive(Debug, Clone)]
pub struct SparsePattern {
    /// For each query index, the sorted allowed key indices.
    pub allowed: Vec<Vec<usize>>,
}

impl SparsePattern {
    /// Builds the pattern for one axis: globals attend everywhere and are
    /// attended by everyone; grid tokens attend within their group.
    pub fn from_input(input: &EncoderInput, axis: SparseAxis) -> Self {
        let n = input.len();
        let globals: Vec<usize> = (0..n).filter(|&i| is_global(input, i)).collect();
        let key_of = |i: usize| match axis {
            SparseAxis::Row => input.rows[i],
            SparseAxis::Col => input.cols[i],
        };
        // Group non-global tokens by axis id.
        let mut groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..n {
            if !is_global(input, i) {
                groups.entry(key_of(i)).or_default().push(i);
            }
        }
        let all: Vec<usize> = (0..n).collect();
        let allowed = (0..n)
            .map(|i| {
                if is_global(input, i) {
                    all.clone()
                } else {
                    let mut a = globals.clone();
                    a.extend(groups[&key_of(i)].iter().copied());
                    a.sort_unstable();
                    a.dedup();
                    a
                }
            })
            .collect();
        Self { allowed }
    }

    /// Total number of (query, key) pairs visited — the kernel's work.
    pub fn n_pairs(&self) -> usize {
        self.allowed.iter().map(Vec::len).sum()
    }
}

/// Sparse scaled-dot-product attention for one head: only allowed pairs are
/// visited. `q, k, v` are `[n, d_head]`; returns `[n, d_head]`.
///
/// Numerically identical (up to f32 rounding) to dense attention with the
/// corresponding `-inf` mask.
pub fn sparse_attention(q: &Tensor, k: &Tensor, v: &Tensor, pattern: &SparsePattern) -> Tensor {
    let n = q.dim(0);
    let d = q.dim(1);
    assert_eq!(k.shape(), q.shape(), "sparse_attention q/k shape mismatch");
    assert_eq!(v.shape(), q.shape(), "sparse_attention q/v shape mismatch");
    assert_eq!(pattern.allowed.len(), n, "pattern length mismatch");
    let scale = 1.0 / (d as f32).sqrt();
    let mut out = Tensor::zeros(&[n, d]);
    let mut scores: Vec<f32> = Vec::new();
    for i in 0..n {
        let keys = &pattern.allowed[i];
        scores.clear();
        scores.reserve(keys.len());
        let qi = q.row(i);
        let mut max = f32::NEG_INFINITY;
        for &j in keys {
            let s = dot(qi, k.row(j)) * scale;
            scores.push(s);
            max = max.max(s);
        }
        let mut sum = 0.0;
        for s in scores.iter_mut() {
            *s = (*s - max).exp();
            sum += *s;
        }
        let orow = out.row_mut(i);
        for (idx, &j) in keys.iter().enumerate() {
            let w = scores[idx] / sum;
            for (o, &vv) in orow.iter_mut().zip(v.row(j)) {
                *o += w * vv;
            }
        }
    }
    out
}

/// Multiply–add count for one sparse head over the pattern: each visited
/// pair costs a `d`-dot for the score and a `d`-AXPY for the value mix.
pub fn sparse_attention_flops(pattern: &SparsePattern, d_head: usize) -> usize {
    pattern.n_pairs() * d_head * 4
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::input_sample;
    use ntr_tensor::allclose;

    #[test]
    fn row_and_col_heads_have_different_masks() {
        let cfg = ModelConfig::tiny(300);
        let m = Mate::new(&cfg);
        let inp = input_sample();
        let AttnMask::PerHead(masks) = m.head_masks(&inp) else {
            panic!("expected per-head masks")
        };
        assert_eq!(masks.len(), cfg.n_heads);
        assert_ne!(masks[0], masks[cfg.n_heads - 1]);
    }

    #[test]
    fn encode_differs_from_dense_tapas_semantics() {
        let cfg = ModelConfig::tiny(300);
        let mut m = Mate::new(&cfg);
        let inp = input_sample();
        let out = m.encode(&inp, false);
        assert_eq!(out.shape(), &[inp.len(), cfg.d_model]);
    }

    #[test]
    fn sparse_kernel_matches_masked_dense() {
        let inp = input_sample();
        let n = inp.len();
        let d = 8;
        let mut init = SeededInit::new(11);
        let q = init.uniform(&[n, d], -1.0, 1.0);
        let k = init.uniform(&[n, d], -1.0, 1.0);
        let v = init.uniform(&[n, d], -1.0, 1.0);
        for axis in [SparseAxis::Row, SparseAxis::Col] {
            let pattern = SparsePattern::from_input(&inp, axis);
            let sparse = sparse_attention(&q, &k, &v, &pattern);

            // Dense reference with the additive mask.
            let mask = axis_mask(&inp, axis);
            let scale = 1.0 / (d as f32).sqrt();
            let dense = q
                .matmul_nt(&k)
                .scale(scale)
                .add(&mask)
                .softmax_rows()
                .matmul(&v);
            assert!(
                allclose(sparse.data(), dense.data(), 1e-4, 1e-5),
                "{axis:?} kernel diverges from dense reference"
            );
        }
    }

    #[test]
    fn sparsity_reduces_visited_pairs() {
        let inp = input_sample();
        let n = inp.len();
        let pattern = SparsePattern::from_input(&inp, SparseAxis::Row);
        assert!(
            pattern.n_pairs() < n * n,
            "pattern should be sparser than dense ({} vs {})",
            pattern.n_pairs(),
            n * n
        );
        assert!(sparse_attention_flops(&pattern, 8) > 0);
    }

    #[test]
    fn globals_attend_everywhere() {
        let inp = input_sample();
        let pattern = SparsePattern::from_input(&inp, SparseAxis::Row);
        // Token 0 is [CLS] (global).
        assert_eq!(pattern.allowed[0].len(), inp.len());
    }
}
