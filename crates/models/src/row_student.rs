//! `RowStudent` — the distilled per-row student encoder.
//!
//! RoTaR-style serving economics (PAPERS.md, DESIGN.md §13): the teacher
//! families pay full-sequence self-attention (`O(n²·d)`) on every encode;
//! the student replaces attention with one *row-mean context* mix plus a
//! per-token MLP (`O(n·d·d_ff)`), which is the whole point — a cache miss
//! through the student costs roughly a tenth of a teacher miss at the
//! same output interface (`[seq, d_model]` states that the existing
//! `TableEncoding` pooling consumes unchanged).
//!
//! The student is trained only by distillation ([`DistillRun`] in
//! `ntr-tasks`) against frozen teacher embeddings; it has no MLM head and
//! no self-supervised objective of its own.
//!
//! # Precision
//!
//! A student carries a [`QuantSpec`]: at `F32` inference is the exact
//! reference path; at `Int8` the two MLP matmuls run through
//! `ntr_tensor::quant` on an int8 snapshot of the weights
//! ([`ntr_nn::QuantizedLinear`]) that is re-derived lazily whenever the
//! parameters change (any `visit_params` call invalidates it). Scales are
//! a pure function of the f32 weights, so a checkpoint round-trip
//! re-derives bit-identical snapshots — pinned by tests below. Training
//! always runs the f32 path.

use crate::config::{ModelConfig, QuantSpec};
use crate::embeddings::{EmbeddingFlags, TableEmbeddings};
use crate::input::EncoderInput;
use crate::SequenceEncoder;
use ntr_nn::init::SeededInit;
use ntr_nn::{Gelu, Layer, LayerNorm, Linear, Param, QuantizedLinear};
use ntr_tensor::{simd, Tensor};

/// Shallow per-row encoder: embeddings → row-mean context mix → per-token
/// MLP with residual → LayerNorm. No attention anywhere.
#[derive(Debug, Clone)]
pub struct RowStudent {
    /// Input embeddings (word + position + full structural tables — the
    /// student leans on row/col ids precisely because it cannot attend).
    pub embeddings: TableEmbeddings,
    /// MLP up-projection, `d_model → d_ff`.
    pub proj1: Linear,
    /// MLP down-projection, `d_ff → d_model`.
    pub proj2: Linear,
    /// Output normalization.
    pub ln: LayerNorm,
    cfg: ModelConfig,
    precision: QuantSpec,
    /// Int8 snapshots of (proj1, proj2); `None` until first int8 encode
    /// and after any parameter mutation.
    qcache: Option<(QuantizedLinear, QuantizedLinear)>,
    /// Row ids and MLP activation from the last training forward.
    cache: Option<TrainCache>,
}

#[derive(Debug, Clone)]
struct TrainCache {
    rows: Vec<usize>,
    gelu: Gelu,
}

/// Adds to each token the mean embedding of its row group (tokens sharing
/// a `rows[t]` id), in place. Returns the per-group `1/|g|` weights used,
/// keyed by row id, so backward can reuse the grouping.
fn mix_row_means(x: &mut Tensor, rows: &[usize]) {
    let (n, d) = (x.dim(0), x.dim(1));
    debug_assert_eq!(rows.len(), n);
    let groups = rows.iter().copied().max().map_or(0, |m| m + 1);
    let mut sums = vec![0.0f32; groups * d];
    let mut counts = vec![0u32; groups];
    for (t, &r) in rows.iter().enumerate() {
        counts[r] += 1;
        let row = x.row(t);
        let acc = &mut sums[r * d..(r + 1) * d];
        for (a, &v) in acc.iter_mut().zip(row) {
            *a += v;
        }
    }
    for (t, &r) in rows.iter().enumerate() {
        let inv = 1.0 / counts[r] as f32;
        let mean = &sums[r * d..(r + 1) * d];
        let row = x.row_mut(t);
        for (v, &m) in row.iter_mut().zip(mean) {
            *v += m * inv;
        }
    }
}

/// Backward of [`mix_row_means`]: `de[u] = dh[u] + (1/|g|) Σ_{t∈g} dh[t]`.
fn mix_row_means_backward(dh: &Tensor, rows: &[usize]) -> Tensor {
    let mut de = dh.clone();
    mix_row_means(&mut de, rows);
    de
}

impl RowStudent {
    /// Builds the student from a config, at f32 precision.
    pub fn new(cfg: &ModelConfig) -> Self {
        cfg.validate();
        let mut init = SeededInit::new(cfg.seed);
        Self {
            embeddings: TableEmbeddings::new(cfg, EmbeddingFlags::structural(), &mut init),
            proj1: Linear::new(cfg.d_model, cfg.d_ff, &mut init.fork()),
            proj2: Linear::new(cfg.d_ff, cfg.d_model, &mut init.fork()),
            ln: LayerNorm::new(cfg.d_model),
            cfg: *cfg,
            precision: QuantSpec::F32,
            qcache: None,
            cache: None,
        }
    }

    /// The model's config.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The precision eval-mode encodes run at.
    pub fn precision(&self) -> QuantSpec {
        self.precision
    }

    /// Sets the inference precision (training is always f32).
    pub fn set_precision(&mut self, precision: QuantSpec) {
        self.precision = precision;
    }

    /// The int8 weight snapshots, deriving them if stale. Exposed so
    /// tests can pin that a checkpoint round-trip re-derives identical
    /// scales.
    pub fn quantized_mlp(&mut self) -> &(QuantizedLinear, QuantizedLinear) {
        if self.qcache.is_none() {
            self.qcache = Some((self.proj1.quantized(), self.proj2.quantized()));
        }
        self.qcache.as_ref().expect("just filled")
    }

    /// The f32 reference forward (training and `F32` inference).
    fn forward_f32(&mut self, input: &EncoderInput, train: bool) -> Tensor {
        let mut h = self.embeddings.forward(input, train);
        mix_row_means(&mut h, &input.rows);
        if train {
            let mut gelu = Gelu::default();
            let y = self.proj2.forward(&gelu.forward(&self.proj1.forward(&h)));
            self.cache = Some(TrainCache {
                rows: input.rows.clone(),
                gelu,
            });
            self.ln.forward(&h.add(&y))
        } else {
            let y = self.proj2.forward_inference(
                &Gelu::default().forward_inference(&self.proj1.forward_inference(&h)),
            );
            self.ln.forward_inference(&h.add(&y))
        }
    }

    /// The int8 inference forward: embeddings/context/LayerNorm stay f32,
    /// the two MLP matmuls run on the quantized snapshot.
    fn forward_int8(&mut self, input: &EncoderInput) -> Tensor {
        let on = simd::active();
        let mut h = self.embeddings.forward(input, false);
        mix_row_means(&mut h, &input.rows);
        let (q1, q2) = self.quantized_mlp();
        // The fast GELU's approximation error (< 5e-5) is far below the
        // int8 quantization noise on either side of it.
        let y = q2.forward(on, &Gelu::default().forward_approx(&q1.forward(on, &h)));
        self.ln.forward_inference(&h.add(&y))
    }
}

impl SequenceEncoder for RowStudent {
    fn d_model(&self) -> usize {
        self.cfg.d_model
    }

    fn vocab_size(&self) -> usize {
        self.cfg.vocab_size
    }

    fn encode(&mut self, input: &EncoderInput, train: bool) -> Tensor {
        if !train && self.precision == QuantSpec::Int8 {
            self.forward_int8(input)
        } else {
            self.forward_f32(input, train)
        }
    }

    fn backward(&mut self, d_states: &Tensor) {
        let TrainCache { rows, mut gelu } = self
            .cache
            .take()
            .expect("RowStudent::backward called without a cached training forward");
        let dz = self.ln.backward(d_states);
        // z = h + proj2(gelu(proj1(h))): both branches feed dh.
        let dh_mlp = self
            .proj1
            .backward(&gelu.backward(&self.proj2.backward(&dz)));
        let dh = dz.add(&dh_mlp);
        let de = mix_row_means_backward(&dh, &rows);
        self.embeddings.backward(&de);
    }

    fn family(&self) -> &'static str {
        "row-student"
    }
}

impl Layer for RowStudent {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        // Any visit may mutate weights (optimizer step, checkpoint load),
        // so the int8 snapshot is stale from here on.
        self.qcache = None;
        self.embeddings
            .visit_params(&mut |n, p| f(&format!("embeddings/{n}"), p));
        self.proj1
            .visit_params(&mut |n, p| f(&format!("proj1/{n}"), p));
        self.proj2
            .visit_params(&mut |n, p| f(&format!("proj2/{n}"), p));
        self.ln.visit_params(&mut |n, p| f(&format!("ln/{n}"), p));
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        ntr_nn::visit_rng_child(&mut self.embeddings, "embeddings", f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::input_sample;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn encode_shape_and_determinism() {
        let cfg = ModelConfig::tiny(300);
        let mut a = RowStudent::new(&cfg);
        let mut b = RowStudent::new(&cfg);
        let inp = input_sample();
        let x = a.encode(&inp, false);
        assert_eq!(x.shape(), &[inp.len(), cfg.d_model]);
        assert_eq!(x, b.encode(&inp, false));
    }

    #[test]
    fn row_ids_do_affect_the_student() {
        // Unlike VanillaBert, the student's only cross-token signal is the
        // row grouping — erasing it must change the encoding.
        let cfg = ModelConfig::tiny(300);
        let mut m = RowStudent::new(&cfg);
        let inp = input_sample();
        let mut flat = inp.clone();
        for r in &mut flat.rows {
            *r = 0;
        }
        assert_ne!(m.encode(&inp, false), m.encode(&flat, false));
    }

    #[test]
    fn int8_tracks_f32_closely() {
        let cfg = ModelConfig::tiny(300);
        let mut m = RowStudent::new(&cfg);
        let inp = input_sample();
        let f = m.encode(&inp, false);
        m.set_precision(QuantSpec::Int8);
        let q = m.encode(&inp, false);
        let (mut dot, mut nf, mut nq) = (0.0f64, 0.0f64, 0.0f64);
        for (a, b) in f.data().iter().zip(q.data()) {
            dot += (*a as f64) * (*b as f64);
            nf += (*a as f64) * (*a as f64);
            nq += (*b as f64) * (*b as f64);
        }
        let cos = dot / (nf.sqrt() * nq.sqrt());
        assert!(cos > 0.99, "int8 states diverged from f32: cosine {cos}");
    }

    #[test]
    fn int8_is_deterministic_and_lanes_agree() {
        let cfg = ModelConfig::tiny(300);
        let mut m = RowStudent::new(&cfg);
        m.set_precision(QuantSpec::Int8);
        let inp = input_sample();
        // Within a lane the whole encode is bit-identical across repeats:
        // the quantized matmuls are integer-exact and everything else is
        // deterministic f32.
        let fast = m.encode(&inp, false);
        assert_eq!(bits(&fast), bits(&m.encode(&inp, false)));
        let slow = simd::force_scalar(|| m.encode(&inp, false));
        let slow2 = simd::force_scalar(|| m.encode(&inp, false));
        assert_eq!(bits(&slow), bits(&slow2), "scalar lane must repeat exactly");
        // Across lanes only the f32 LayerNorm reductions reassociate
        // (same tolerance class as every other f32 kernel); the int8
        // matmuls themselves are lane-exact, pinned in `ntr_tensor::quant`.
        for (f, s) in fast.data().iter().zip(slow.data()) {
            assert!(
                (f - s).abs() <= 1e-4,
                "lanes disagree beyond LayerNorm rounding: {f} vs {s}"
            );
        }
    }

    #[test]
    fn parameter_mutation_invalidates_the_quant_snapshot() {
        let cfg = ModelConfig::tiny(300);
        let mut m = RowStudent::new(&cfg);
        m.set_precision(QuantSpec::Int8);
        let inp = input_sample();
        let before = m.encode(&inp, false);
        m.visit_params(&mut |name, p| {
            if name.starts_with("proj1/w") {
                p.value.map_mut(|v| v * 2.0);
            }
        });
        assert_ne!(
            bits(&before),
            bits(&m.encode(&inp, false)),
            "stale int8 snapshot survived a weight change"
        );
    }

    #[test]
    fn gradients_flow_to_every_parameter_group() {
        let cfg = ModelConfig::tiny(300);
        let mut m = RowStudent::new(&cfg);
        let inp = input_sample();
        let states = m.encode(&inp, true);
        SequenceEncoder::backward(&mut m, &Tensor::ones(states.shape()));
        let mut nonzero = std::collections::BTreeSet::new();
        m.visit_params(&mut |name, p| {
            if p.grad.data().iter().any(|&g| g != 0.0) {
                nonzero.insert(name.split('/').next().unwrap().to_string());
            }
        });
        for group in ["embeddings", "proj1", "proj2", "ln"] {
            assert!(nonzero.contains(group), "no gradient reached {group}");
        }
    }

    #[test]
    fn checkpoint_roundtrip_rederives_identical_scales() {
        let cfg = ModelConfig::tiny(120);
        let mut a = RowStudent::new(&cfg);
        let mut buf = Vec::new();
        ntr_nn::serialize::save_to(&mut a, &mut buf).unwrap();
        let mut b = RowStudent::new(&ModelConfig { seed: 999, ..cfg });
        ntr_nn::serialize::load_from(&mut b, &mut buf.as_slice()).unwrap();
        // Derived int8 snapshots (weights *and* scales) are bit-identical…
        assert_eq!(a.quantized_mlp(), b.quantized_mlp());
        // …and so are both precisions' encodes.
        let inp = input_sample();
        assert_eq!(a.encode(&inp, false), b.encode(&inp, false));
        a.set_precision(QuantSpec::Int8);
        b.set_precision(QuantSpec::Int8);
        assert_eq!(bits(&a.encode(&inp, false)), bits(&b.encode(&inp, false)));
    }
}
