//! TAPAS-style model: structural embeddings plus cell-selection and
//! aggregation heads.
//!
//! The survey's input-level exemplar: "Herzig et al. add extra dimensions
//! to the embedding vector to account for cell, row, and column positions"
//! (§2.3). On top of the structure-aware encoder sit the weak-supervision
//! QA heads: a per-token score head whose cell-level means select answer
//! cells, and a `[CLS]` classifier choosing an aggregation operator.

use crate::config::ModelConfig;
use crate::embeddings::{EmbeddingFlags, TableEmbeddings};
use crate::heads::{ClassifierHead, MlmHead, TokenScoreHead};
use crate::input::EncoderInput;
use crate::SequenceEncoder;
use ntr_nn::init::SeededInit;
use ntr_nn::{Encoder, Layer, Param};
use ntr_table::EncodedTable;
use ntr_tensor::Tensor;

/// Aggregation operators TAPAS can predict (NONE = pick the cell itself).
pub const AGG_OPS: [&str; 4] = ["none", "count", "sum", "average"];

/// TAPAS-style encoder with QA heads.
#[derive(Debug, Clone)]
pub struct Tapas {
    /// Structure-aware input embeddings.
    pub embeddings: TableEmbeddings,
    /// Transformer encoder.
    pub encoder: Encoder,
    /// Per-token cell-selection scores.
    pub cell_head: TokenScoreHead,
    /// `[CLS]` aggregation-operator classifier.
    pub agg_head: ClassifierHead,
    /// Masked-language-modeling head (TAPAS pretrains with MLM over
    /// Wikipedia tables before its QA fine-tuning).
    pub mlm: MlmHead,
    cfg: ModelConfig,
}

impl Tapas {
    /// Builds the model from a config (full structural embeddings).
    pub fn new(cfg: &ModelConfig) -> Self {
        Self::with_embeddings(cfg, EmbeddingFlags::structural())
    }

    /// Builds the model with explicit embedding flags — the hook the
    /// structural-embedding ablation (E14) uses to strip row/column/kind
    /// tables while keeping everything else identical.
    pub fn with_embeddings(cfg: &ModelConfig, flags: EmbeddingFlags) -> Self {
        cfg.validate();
        let mut init = SeededInit::new(cfg.seed ^ 0x7A9A5);
        Self {
            embeddings: TableEmbeddings::new(cfg, flags, &mut init),
            encoder: Encoder::new(
                cfg.n_layers,
                cfg.d_model,
                cfg.n_heads,
                cfg.d_ff,
                cfg.dropout,
                &mut init,
            ),
            cell_head: TokenScoreHead::new(cfg.d_model, &mut init.fork()),
            agg_head: ClassifierHead::new(cfg.d_model, AGG_OPS.len(), &mut init.fork()),
            mlm: MlmHead::new(cfg.d_model, cfg.vocab_size, &mut init.fork()),
            cfg: *cfg,
        }
    }

    /// The model's config.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Scores every encoded cell of `e` by the mean of its token logits in
    /// `token_scores: [n, 1]`; returns `((row, col), score)` pairs in grid
    /// order.
    pub fn cell_scores(
        &self,
        e: &EncodedTable,
        token_scores: &Tensor,
    ) -> Vec<((usize, usize), f32)> {
        e.cells()
            .map(|(coord, span)| {
                let mean =
                    span.clone().map(|i| token_scores.at(&[i, 0])).sum::<f32>() / span.len() as f32;
                (coord, mean)
            })
            .collect()
    }
}

impl SequenceEncoder for Tapas {
    fn d_model(&self) -> usize {
        self.cfg.d_model
    }

    fn vocab_size(&self) -> usize {
        self.cfg.vocab_size
    }

    fn encode(&mut self, input: &EncoderInput, train: bool) -> Tensor {
        let x = self.embeddings.forward(input, train);
        self.encoder.forward(&x, None, train)
    }

    fn backward(&mut self, d_states: &Tensor) {
        let dx = self.encoder.backward(d_states);
        self.embeddings.backward(&dx);
    }

    fn family(&self) -> &'static str {
        "tapas"
    }
}

impl Layer for Tapas {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.embeddings
            .visit_params(&mut |n, p| f(&format!("embeddings/{n}"), p));
        self.encoder
            .visit_params(&mut |n, p| f(&format!("encoder/{n}"), p));
        self.cell_head
            .visit_params(&mut |n, p| f(&format!("cell_head/{n}"), p));
        self.agg_head
            .visit_params(&mut |n, p| f(&format!("agg_head/{n}"), p));
        self.mlm.visit_params(&mut |n, p| f(&format!("mlm/{n}"), p));
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        ntr_nn::visit_rng_child(&mut self.embeddings, "embeddings", f);
        ntr_nn::visit_rng_child(&mut self.encoder, "encoder", f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded_sample, input_sample};

    #[test]
    fn structural_ids_change_encoding_unlike_bert() {
        let cfg = ModelConfig::tiny(300);
        let mut m = Tapas::new(&cfg);
        let inp = input_sample();
        let mut flat = inp.clone();
        for r in &mut flat.rows {
            *r = 0;
        }
        for c in &mut flat.cols {
            *c = 0;
        }
        assert_ne!(m.encode(&inp, false), m.encode(&flat, false));
    }

    #[test]
    fn cell_scores_cover_all_cells() {
        let cfg = ModelConfig::tiny(300);
        let mut m = Tapas::new(&cfg);
        let e = encoded_sample();
        let inp = EncoderInput::from_encoded(&e);
        let states = m.encode(&inp, false);
        let scores = m.cell_head.forward(&states);
        let cells = m.cell_scores(&e, &scores);
        assert_eq!(cells.len(), 6, "2 rows × 3 cols");
        for ((r, c), s) in cells {
            assert!(r < 2 && c < 3);
            assert!(s.is_finite());
        }
    }

    #[test]
    fn aggregation_head_has_four_ops() {
        let cfg = ModelConfig::tiny(300);
        let mut m = Tapas::new(&cfg);
        let inp = input_sample();
        let states = m.encode(&inp, false);
        let pooled = states.rows(0, 1);
        let logits = m.agg_head.forward(&pooled);
        assert_eq!(logits.shape(), &[1, AGG_OPS.len()]);
    }

    #[test]
    fn full_backward_accumulates_grads_everywhere() {
        let cfg = ModelConfig::tiny(300);
        let mut m = Tapas::new(&cfg);
        let inp = input_sample();
        let states = m.encode(&inp, true);
        let scores = m.cell_head.forward(&states);
        let d = m.cell_head.backward(&Tensor::ones(scores.shape()));
        SequenceEncoder::backward(&mut m, &d);
        let mut zero_params = Vec::new();
        m.visit_params(&mut |n, p| {
            // Heads not used in this pass legitimately have zero grads.
            if n.starts_with("agg_head") {
                return;
            }
            if p.grad.data().iter().all(|&g| g == 0.0) {
                zero_params.push(n.to_string());
            }
        });
        // Structural embedding tables may have zero grad only if unused ids
        // dominate; the encoder itself must always receive gradient.
        assert!(
            !zero_params.iter().any(|n| n.starts_with("encoder/layer")),
            "zero grads in {zero_params:?}"
        );
    }
}
