//! TURL-style model: visibility-matrix attention plus the two pretraining
//! heads the paper's hands-on §3.3 demonstrates — masked language modeling
//! (MLM) and masked entity recovery (MER).
//!
//! The survey's internal-level exemplar: TURL constrains self-attention so
//! each grid token only attends to *structurally related* tokens. Here the
//! visibility matrix is derived from linearizer metadata and applied as a
//! shared additive attention mask:
//!
//! * context / special / template tokens are globally visible (and see all);
//! * grid tokens (headers, cells) see each other iff they share a row or a
//!   column (headers live in row 0, so all headers are mutually visible and
//!   each header sees its column).

use crate::config::ModelConfig;
use crate::embeddings::{EmbeddingFlags, TableEmbeddings};
use crate::heads::MlmHead;
use crate::input::EncoderInput;
use crate::SequenceEncoder;
use ntr_nn::init::SeededInit;
use ntr_nn::{AttnMask, Encoder, Layer, Param};
use ntr_tensor::Tensor;

/// TURL-style encoder with MLM and MER heads.
#[derive(Debug, Clone)]
pub struct Turl {
    /// Structure-aware input embeddings.
    pub embeddings: TableEmbeddings,
    /// Transformer encoder (visibility-masked).
    pub encoder: Encoder,
    /// Masked-language-modeling head (word vocabulary).
    pub mlm: MlmHead,
    /// Masked-entity-recovery head (entity vocabulary).
    pub mer: MlmHead,
    cfg: ModelConfig,
}

impl Turl {
    /// Builds the model. Requires `cfg.n_entities > 0` (the MER label
    /// space).
    ///
    /// # Panics
    /// Panics when `cfg.n_entities == 0`.
    pub fn new(cfg: &ModelConfig) -> Self {
        cfg.validate();
        assert!(
            cfg.n_entities > 0,
            "TURL requires an entity vocabulary (cfg.n_entities)"
        );
        let mut init = SeededInit::new(cfg.seed ^ 0x70421);
        Self {
            embeddings: TableEmbeddings::new(cfg, EmbeddingFlags::structural(), &mut init),
            encoder: Encoder::new(
                cfg.n_layers,
                cfg.d_model,
                cfg.n_heads,
                cfg.d_ff,
                cfg.dropout,
                &mut init,
            ),
            mlm: MlmHead::new(cfg.d_model, cfg.vocab_size, &mut init.fork()),
            mer: MlmHead::new(cfg.d_model, cfg.n_entities, &mut init.fork()),
            cfg: *cfg,
        }
    }

    /// The model's config.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Builds the visibility matrix for an input as an additive mask.
    pub fn visibility_mask(input: &EncoderInput) -> AttnMask {
        let n = input.len();
        let mut m = Tensor::zeros(&[n, n]);
        let is_global = |i: usize| {
            // kinds: 0 special, 1 context, 2 header, 3 cell, 4 template
            matches!(input.kinds[i], 0 | 1 | 4)
        };
        for i in 0..n {
            for j in 0..n {
                if i == j || is_global(i) || is_global(j) {
                    continue;
                }
                let same_row = input.rows[i] == input.rows[j];
                let same_col = input.cols[i] == input.cols[j];
                if !(same_row || same_col) {
                    m.set(&[i, j], f32::NEG_INFINITY);
                }
            }
        }
        AttnMask::Shared(m)
    }

    /// Entity embedding for linking tasks: the MER decoder's column for the
    /// entity, shape `[1, d]`.
    pub fn entity_embedding(&self, entity: u32) -> Tensor {
        self.mer.label_embedding(entity as usize)
    }
}

impl SequenceEncoder for Turl {
    fn d_model(&self) -> usize {
        self.cfg.d_model
    }

    fn vocab_size(&self) -> usize {
        self.cfg.vocab_size
    }

    fn encode(&mut self, input: &EncoderInput, train: bool) -> Tensor {
        let mask = Self::visibility_mask(input);
        let x = self.embeddings.forward(input, train);
        self.encoder.forward(&x, Some(&mask), train)
    }

    fn backward(&mut self, d_states: &Tensor) {
        let dx = self.encoder.backward(d_states);
        self.embeddings.backward(&dx);
    }

    fn family(&self) -> &'static str {
        "turl"
    }
}

impl Layer for Turl {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.embeddings
            .visit_params(&mut |n, p| f(&format!("embeddings/{n}"), p));
        self.encoder
            .visit_params(&mut |n, p| f(&format!("encoder/{n}"), p));
        self.mlm.visit_params(&mut |n, p| f(&format!("mlm/{n}"), p));
        self.mer.visit_params(&mut |n, p| f(&format!("mer/{n}"), p));
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        ntr_nn::visit_rng_child(&mut self.embeddings, "embeddings", f);
        ntr_nn::visit_rng_child(&mut self.encoder, "encoder", f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded_sample, input_sample};

    fn cfg() -> ModelConfig {
        ModelConfig {
            n_entities: 10,
            ..ModelConfig::tiny(300)
        }
    }

    #[test]
    fn visibility_blocks_unrelated_cells() {
        let e = encoded_sample();
        let inp = input_sample();
        let AttnMask::Shared(m) = Turl::visibility_mask(&inp) else {
            panic!("expected shared mask")
        };
        // Cell (0,0) and cell (1,1) share neither row nor column → blocked.
        let a = e.cell_span(0, 0).unwrap().start;
        let b = e.cell_span(1, 1).unwrap().start;
        assert_eq!(m.at(&[a, b]), f32::NEG_INFINITY);
        assert_eq!(m.at(&[b, a]), f32::NEG_INFINITY);
        // Same row → visible.
        let c = e.cell_span(0, 1).unwrap().start;
        assert_eq!(m.at(&[a, c]), 0.0);
        // Same column → visible.
        let d = e.cell_span(1, 0).unwrap().start;
        assert_eq!(m.at(&[a, d]), 0.0);
        // Header of column 0 sees its cells.
        let h = e.header_span(0).unwrap().start;
        assert_eq!(m.at(&[h, a]), 0.0);
        // CLS (position 0) is global.
        assert_eq!(m.at(&[0, b]), 0.0);
        assert_eq!(m.at(&[b, 0]), 0.0);
    }

    #[test]
    fn encode_respects_visibility() {
        // Perturbing a structurally unrelated cell must not change a cell's
        // encoding in a single-layer model (no multi-hop leakage).
        let one_layer = ModelConfig {
            n_layers: 1,
            n_entities: 10,
            dropout: 0.0,
            ..ModelConfig::tiny(300)
        };
        let mut m = Turl::new(&one_layer);
        let e = encoded_sample();
        let inp = EncoderInput::from_encoded(&e);
        let a_span = e.cell_span(0, 0).unwrap();
        let b_span = e.cell_span(1, 1).unwrap();

        let states1 = m.encode(&inp, false);
        let mut corrupted = inp.clone();
        for i in b_span.clone() {
            corrupted.ids[i] = (corrupted.ids[i] + 1) % 300;
        }
        let states2 = m.encode(&corrupted, false);
        for i in a_span {
            for j in 0..m.d_model() {
                let x = states1.at(&[i, j]);
                let y = states2.at(&[i, j]);
                assert!(
                    (x - y).abs() < 1e-5,
                    "cell (0,0) token {i} leaked info from unrelated cell"
                );
            }
        }
        // But a same-row cell does see the change... verify sensitivity via
        // the corrupted cell itself.
        let bi = b_span.start;
        assert_ne!(states1.row(bi), states2.row(bi));
    }

    #[test]
    fn requires_entity_vocab() {
        let result = std::panic::catch_unwind(|| Turl::new(&ModelConfig::tiny(300)));
        assert!(result.is_err());
    }

    #[test]
    fn mer_head_and_entity_embeddings() {
        let mut m = Turl::new(&cfg());
        let inp = input_sample();
        let states = m.encode(&inp, false);
        let logits = m.mer.forward(&states.rows(0, 2));
        assert_eq!(logits.shape(), &[2, 10]);
        let emb = m.entity_embedding(3);
        assert_eq!(emb.shape(), &[1, m.d_model()]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Turl::new(&cfg());
        let mut b = Turl::new(&cfg());
        let inp = input_sample();
        assert_eq!(a.encode(&inp, false), b.encode(&inp, false));
    }
}
