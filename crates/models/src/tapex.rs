//! TAPEX-style encoder–decoder: "table pre-training via learning a neural
//! SQL executor" (Liu et al., the survey's pretraining-objective exemplar).
//!
//! The encoder reads `SQL-query [SEP] linearized-table` (the
//! `TapexLinearizer` format); the decoder autoregressively emits the
//! query's answer string. Pretraining supervision comes from the *real*
//! SQL executor in `ntr-sql` — exactly the paper's recipe, at laptop scale.

use crate::config::ModelConfig;
use crate::embeddings::{EmbeddingFlags, TableEmbeddings};
use crate::input::EncoderInput;
use ntr_nn::init::SeededInit;
use ntr_nn::loss::softmax_cross_entropy;
use ntr_nn::{Decoder, Encoder, Layer, Linear, Param};
use ntr_tokenizer::SpecialToken;

/// Encoder–decoder table model.
pub struct Tapex {
    /// Encoder-side structural embeddings.
    pub embeddings: TableEmbeddings,
    /// Encoder stack.
    pub encoder: Encoder,
    /// Decoder-side (text-only) embeddings.
    pub dec_embeddings: TableEmbeddings,
    /// Decoder stack (causal self-attention + cross-attention).
    pub decoder: Decoder,
    /// Vocabulary projection for generation.
    pub lm_head: Linear,
    cfg: ModelConfig,
}

impl Tapex {
    /// Builds the model from a config (decoder depth = encoder depth).
    pub fn new(cfg: &ModelConfig) -> Self {
        cfg.validate();
        let mut init = SeededInit::new(cfg.seed ^ 0x7A9E7);
        Self {
            embeddings: TableEmbeddings::new(cfg, EmbeddingFlags::structural(), &mut init),
            encoder: Encoder::new(
                cfg.n_layers,
                cfg.d_model,
                cfg.n_heads,
                cfg.d_ff,
                cfg.dropout,
                &mut init,
            ),
            dec_embeddings: TableEmbeddings::new(cfg, EmbeddingFlags::text_only(), &mut init),
            decoder: Decoder::new(
                cfg.n_layers,
                cfg.d_model,
                cfg.n_heads,
                cfg.d_ff,
                cfg.dropout,
                &mut init,
            ),
            lm_head: Linear::new(cfg.d_model, cfg.vocab_size, &mut init.fork()),
            cfg: *cfg,
        }
    }

    /// The model's config.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// One teacher-forced training step on `(input, target_ids)`.
    ///
    /// The decoder input is `[BOS] target[..-1]`; the loss is cross-entropy
    /// of each position against `target_ids`. Accumulates gradients and
    /// returns the mean loss.
    ///
    /// # Panics
    /// Panics on an empty target.
    pub fn train_step(&mut self, input: &EncoderInput, target_ids: &[usize]) -> f32 {
        assert!(!target_ids.is_empty(), "empty decoder target");
        let memory = self
            .encoder
            .forward(&self.embeddings.forward(input, true), None, true);

        let mut dec_input = Vec::with_capacity(target_ids.len());
        dec_input.push(SpecialToken::Bos.id());
        dec_input.extend_from_slice(&target_ids[..target_ids.len() - 1]);
        let dec_inp = EncoderInput::from_text_ids(dec_input);

        let states =
            self.decoder
                .forward(&self.dec_embeddings.forward(&dec_inp, true), &memory, true);
        let logits = self.lm_head.forward(&states);
        let (loss, dlogits) = softmax_cross_entropy(&logits, target_ids, None);

        let dstates = self.lm_head.backward(&dlogits);
        let (d_dec, d_memory) = self.decoder.backward(&dstates);
        self.dec_embeddings.backward(&d_dec);
        let d_enc = self.encoder.backward(&d_memory);
        self.embeddings.backward(&d_enc);
        loss
    }

    /// Beam-search generation with `beam_width` hypotheses; returns the
    /// highest-scoring finished sequence (without the final `[SEP]`).
    /// Scores are mean token log-probabilities, which avoids the
    /// short-sequence bias of summed log-probs.
    pub fn generate_beam(
        &mut self,
        input: &EncoderInput,
        max_len: usize,
        beam_width: usize,
    ) -> Vec<usize> {
        assert!(beam_width >= 1, "beam width must be at least 1");
        let memory = self
            .encoder
            .forward(&self.embeddings.forward(input, false), None, false);
        // (tokens, total log-prob, finished)
        let mut beams: Vec<(Vec<usize>, f32, bool)> = vec![(Vec::new(), 0.0, false)];
        for _ in 0..max_len {
            if beams.iter().all(|(_, _, done)| *done) {
                break;
            }
            let mut next: Vec<(Vec<usize>, f32, bool)> = Vec::new();
            for (tokens, score, done) in &beams {
                if *done {
                    next.push((tokens.clone(), *score, true));
                    continue;
                }
                let mut dec_input = Vec::with_capacity(tokens.len() + 1);
                dec_input.push(SpecialToken::Bos.id());
                dec_input.extend_from_slice(tokens);
                let dec_inp = EncoderInput::from_text_ids(dec_input);
                let states = self.decoder.forward(
                    &self.dec_embeddings.forward(&dec_inp, false),
                    &memory,
                    false,
                );
                let logits = self.lm_head.forward(&states);
                let last = logits.rows(logits.dim(0) - 1, logits.dim(0));
                let log_probs = last.log_softmax_rows();
                // Top beam_width continuations of this beam.
                let mut scored: Vec<(usize, f32)> = (0..log_probs.dim(1))
                    .map(|t| (t, log_probs.at(&[0, t])))
                    .collect();
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite log-probs"));
                for &(t, lp) in scored.iter().take(beam_width) {
                    if t == SpecialToken::Sep.id() {
                        next.push((tokens.clone(), score + lp, true));
                    } else {
                        let mut ext = tokens.clone();
                        ext.push(t);
                        next.push((ext, score + lp, false));
                    }
                }
            }
            // Keep the best beam_width by mean log-prob.
            next.sort_by(|a, b| {
                let la = a.1 / (a.0.len() + 1) as f32;
                let lb = b.1 / (b.0.len() + 1) as f32;
                lb.partial_cmp(&la).expect("finite scores")
            });
            next.truncate(beam_width);
            beams = next;
        }
        beams
            .into_iter()
            .max_by(|a, b| {
                let la = a.1 / (a.0.len() + 1) as f32;
                let lb = b.1 / (b.0.len() + 1) as f32;
                la.partial_cmp(&lb).expect("finite scores")
            })
            .map(|(tokens, _, _)| tokens)
            .unwrap_or_default()
    }

    /// Greedy generation: encodes `input`, then emits tokens until `[SEP]`
    /// or `max_len`. Returns the generated ids (without the final `[SEP]`).
    pub fn generate(&mut self, input: &EncoderInput, max_len: usize) -> Vec<usize> {
        let memory = self
            .encoder
            .forward(&self.embeddings.forward(input, false), None, false);
        let mut out: Vec<usize> = Vec::new();
        for _ in 0..max_len {
            let mut dec_input = Vec::with_capacity(out.len() + 1);
            dec_input.push(SpecialToken::Bos.id());
            dec_input.extend_from_slice(&out);
            let dec_inp = EncoderInput::from_text_ids(dec_input);
            let states = self.decoder.forward(
                &self.dec_embeddings.forward(&dec_inp, false),
                &memory,
                false,
            );
            let logits = self.lm_head.forward(&states);
            let last = logits.rows(logits.dim(0) - 1, logits.dim(0));
            let next = last.argmax_rows()[0];
            if next == SpecialToken::Sep.id() {
                break;
            }
            out.push(next);
        }
        out
    }
}

impl Layer for Tapex {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.embeddings
            .visit_params(&mut |n, p| f(&format!("embeddings/{n}"), p));
        self.encoder
            .visit_params(&mut |n, p| f(&format!("encoder/{n}"), p));
        self.dec_embeddings
            .visit_params(&mut |n, p| f(&format!("dec_embeddings/{n}"), p));
        self.decoder
            .visit_params(&mut |n, p| f(&format!("decoder/{n}"), p));
        self.lm_head
            .visit_params(&mut |n, p| f(&format!("lm_head/{n}"), p));
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        ntr_nn::visit_rng_child(&mut self.embeddings, "embeddings", f);
        ntr_nn::visit_rng_child(&mut self.encoder, "encoder", f);
        ntr_nn::visit_rng_child(&mut self.dec_embeddings, "dec_embeddings", f);
        ntr_nn::visit_rng_child(&mut self.decoder, "decoder", f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{input_sample, tokenizer};
    use ntr_nn::optim::Adam;

    fn cfg() -> ModelConfig {
        ModelConfig {
            dropout: 0.0,
            ..ModelConfig::tiny(300)
        }
    }

    #[test]
    fn generate_is_bounded_and_deterministic() {
        let mut m = Tapex::new(&cfg());
        let inp = input_sample();
        let a = m.generate(&inp, 8);
        let b = m.generate(&inp, 8);
        assert!(a.len() <= 8);
        assert_eq!(a, b);
    }

    #[test]
    fn overfits_one_pair() {
        // The classic seq2seq sanity check: memorize a single
        // (input → answer) pair.
        let mut m = Tapex::new(&cfg());
        let inp = input_sample();
        let tok = tokenizer();
        let mut target = tok.encode("paris");
        target.push(SpecialToken::Sep.id());

        let mut adam = Adam::new(1e-2);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let loss = m.train_step(&inp, &target);
            first.get_or_insert(loss);
            last = loss;
            let mut step = adam.begin_step();
            m.visit_params(&mut |_, p| step.update(p));
            m.zero_grad();
        }
        assert!(last < first.unwrap() * 0.2, "{first:?} → {last}");
        let generated = m.generate(&inp, 10);
        assert_eq!(
            generated,
            &target[..target.len() - 1],
            "greedy decode should reproduce the memorized answer"
        );
    }

    #[test]
    fn beam_width_one_matches_greedy() {
        let mut m = Tapex::new(&cfg());
        let inp = input_sample();
        let greedy = m.generate(&inp, 8);
        let beam = m.generate_beam(&inp, 8, 1);
        assert_eq!(greedy, beam);
    }

    #[test]
    fn beam_search_finds_memorized_sequence() {
        let mut m = Tapex::new(&cfg());
        let inp = input_sample();
        let tok = tokenizer();
        let mut target = tok.encode("paris");
        target.push(SpecialToken::Sep.id());
        let mut adam = Adam::new(1e-2);
        for _ in 0..60 {
            let _ = m.train_step(&inp, &target);
            let mut step = adam.begin_step();
            m.visit_params(&mut |_, p| step.update(p));
            m.zero_grad();
        }
        let beam = m.generate_beam(&inp, 10, 3);
        assert_eq!(beam, &target[..target.len() - 1]);
    }

    #[test]
    #[should_panic(expected = "empty decoder target")]
    fn rejects_empty_target() {
        let mut m = Tapex::new(&cfg());
        let _ = m.train_step(&input_sample(), &[]);
    }
}
