//! TaBERT-style model: each row is encoded separately together with the
//! NL context, then **vertical self-attention** layers run across the rows
//! of each column to fuse information — the survey's internal-level
//! exemplar "Yin et al. use vertical self-attention layers" (§2.3).
//!
//! ## Weight sharing across rows/columns
//!
//! The row encoder processes every row with the *same* weights, and the
//! vertical encoder every column with the same weights. Layers in `ntr-nn`
//! keep one activation cache each, so sharing is implemented by cloning
//! the master block per row/column for the forward pass and merging the
//! clones' accumulated gradients back into the master during backward
//! (clone order is deterministic, so the pairing is exact). This is the
//! standard unrolled-weight-sharing construction; the finite-difference
//! test below pins its correctness end-to-end.

use crate::config::ModelConfig;
use crate::embeddings::{EmbeddingFlags, TableEmbeddings};
use crate::heads::{pool_mean, pool_mean_backward};
use crate::input::EncoderInput;
use ntr_nn::init::SeededInit;
use ntr_nn::{merge_grads, Encoder, Layer, Param};
use ntr_table::{Linearizer, LinearizerOptions, RowMajorLinearizer, Table};
use ntr_tensor::Tensor;
use ntr_tokenizer::WordPieceTokenizer;
use std::ops::Range;

/// Output of one TaBERT table encoding.
#[derive(Debug, Clone)]
pub struct TabertOutput {
    /// Per-cell representations, shape `[n_rows * n_cols, d]`, row-major
    /// over the grid.
    pub cells: Tensor,
    /// Per-column summaries (mean over rows of the vertical outputs),
    /// shape `[n_cols, d]`.
    pub columns: Tensor,
    /// Grid rows encoded.
    pub n_rows: usize,
    /// Grid columns.
    pub n_cols: usize,
}

impl TabertOutput {
    /// The `[1, d]` representation of cell `(r, c)`.
    pub fn cell(&self, r: usize, c: usize) -> Tensor {
        let idx = r * self.n_cols + c;
        self.cells.rows(idx, idx + 1)
    }
}

struct RowPass {
    embeddings: TableEmbeddings,
    encoder: Encoder,
    spans: Vec<Option<Range<usize>>>, // per column
    seq_len: usize,
}

struct ColPass {
    encoder: Encoder,
}

struct Cache {
    rows: Vec<RowPass>,
    cols: Vec<ColPass>,
    n_rows: usize,
    n_cols: usize,
}

/// TaBERT-style encoder.
pub struct TaBert {
    /// Master input embeddings (shared across rows).
    pub embeddings: TableEmbeddings,
    /// Master horizontal (per-row) encoder.
    pub row_encoder: Encoder,
    /// Master vertical (per-column, across rows) encoder.
    pub vertical: Encoder,
    cfg: ModelConfig,
    max_tokens_per_row: usize,
    cache: Option<Cache>,
}

impl TaBert {
    /// Builds the model. The vertical stack uses a single layer (TaBERT
    /// uses few vertical layers; one keeps the unrolled backward cheap).
    pub fn new(cfg: &ModelConfig) -> Self {
        cfg.validate();
        let mut init = SeededInit::new(cfg.seed ^ 0x7AB7);
        Self {
            embeddings: TableEmbeddings::new(cfg, EmbeddingFlags::structural(), &mut init),
            row_encoder: Encoder::new(
                cfg.n_layers,
                cfg.d_model,
                cfg.n_heads,
                cfg.d_ff,
                cfg.dropout,
                &mut init,
            ),
            vertical: Encoder::new(
                1,
                cfg.d_model,
                cfg.n_heads,
                cfg.d_ff,
                cfg.dropout,
                &mut init,
            ),
            cfg: *cfg,
            max_tokens_per_row: cfg.max_seq,
            cache: None,
        }
    }

    /// The model's config.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.cfg.d_model
    }

    /// Encodes a table: every row is linearized with the context and
    /// encoded by the shared row encoder; cell vectors are mean-pooled
    /// spans; the shared vertical encoder then attends across rows within
    /// each column.
    pub fn encode_table(
        &mut self,
        table: &Table,
        context: &str,
        tok: &WordPieceTokenizer,
        train: bool,
    ) -> TabertOutput {
        let n_rows = table.n_rows();
        let n_cols = table.n_cols();
        assert!(
            n_rows > 0 && n_cols > 0,
            "TaBert cannot encode an empty table"
        );
        let d = self.cfg.d_model;
        let opts = LinearizerOptions {
            max_tokens: self.max_tokens_per_row,
            ..Default::default()
        };

        // Horizontal passes (one clone of the shared blocks per row).
        let mut rows = Vec::with_capacity(n_rows);
        let mut cell_vecs = Tensor::zeros(&[n_rows * n_cols, d]);
        for r in 0..n_rows {
            let row_table = table.select_rows(&[r]);
            let encoded = RowMajorLinearizer.linearize(&row_table, context, tok, &opts);
            let input = EncoderInput::from_encoded(&encoded);
            let mut embeddings = self.embeddings.clone();
            let mut encoder = self.row_encoder.clone();
            embeddings.zero_grad();
            encoder.zero_grad();
            let states = encoder.forward(&embeddings.forward(&input, train), None, train);
            let mut spans = Vec::with_capacity(n_cols);
            for c in 0..n_cols {
                let span = encoded.cell_span(0, c);
                if let Some(span) = &span {
                    let pooled = pool_mean(&states, span);
                    cell_vecs
                        .row_mut(r * n_cols + c)
                        .copy_from_slice(pooled.data());
                }
                spans.push(span);
            }
            rows.push(RowPass {
                embeddings,
                encoder,
                spans,
                seq_len: states.dim(0),
            });
        }

        // Vertical passes (one clone per column) + column summaries.
        let mut cols = Vec::with_capacity(n_cols);
        let mut out_cells = Tensor::zeros(&[n_rows * n_cols, d]);
        let mut columns = Tensor::zeros(&[n_cols, d]);
        for c in 0..n_cols {
            let mut col_seq = Tensor::zeros(&[n_rows, d]);
            for r in 0..n_rows {
                col_seq
                    .row_mut(r)
                    .copy_from_slice(cell_vecs.row(r * n_cols + c));
            }
            let mut encoder = self.vertical.clone();
            encoder.zero_grad();
            let fused = encoder.forward(&col_seq, None, train);
            for r in 0..n_rows {
                out_cells
                    .row_mut(r * n_cols + c)
                    .copy_from_slice(fused.row(r));
            }
            let summary = fused.mean_rows();
            columns.row_mut(c).copy_from_slice(summary.data());
            cols.push(ColPass { encoder });
        }

        self.cache = Some(Cache {
            rows,
            cols,
            n_rows,
            n_cols,
        });
        TabertOutput {
            cells: out_cells,
            columns,
            n_rows,
            n_cols,
        }
    }

    /// Backpropagates through the last [`TaBert::encode_table`] call.
    ///
    /// `d_cells` is the gradient w.r.t. [`TabertOutput::cells`]
    /// (`[n_rows*n_cols, d]`); `d_columns` optionally adds gradient w.r.t.
    /// the column summaries (`[n_cols, d]`).
    ///
    /// # Panics
    /// Panics if called without a cached forward or with bad shapes.
    pub fn backward(&mut self, d_cells: &Tensor, d_columns: Option<&Tensor>) {
        let mut cache = self
            .cache
            .take()
            .expect("TaBert::backward without a cached encode_table");
        let (n_rows, n_cols) = (cache.n_rows, cache.n_cols);
        let d = self.cfg.d_model;
        assert_eq!(d_cells.shape(), &[n_rows * n_cols, d], "d_cells shape");
        if let Some(dc) = d_columns {
            assert_eq!(dc.shape(), &[n_cols, d], "d_columns shape");
        }

        // Vertical backward per column → gradient on pooled cell vectors.
        let mut d_cell_vecs = Tensor::zeros(&[n_rows * n_cols, d]);
        for (c, col) in cache.cols.iter_mut().enumerate() {
            let mut d_fused = Tensor::zeros(&[n_rows, d]);
            for r in 0..n_rows {
                let src = d_cells.row(r * n_cols + c);
                d_fused.row_mut(r).copy_from_slice(src);
            }
            if let Some(dc) = d_columns {
                // Column summary was a mean over rows.
                let scale = 1.0 / n_rows as f32;
                for r in 0..n_rows {
                    let row = d_fused.row_mut(r);
                    for (x, &g) in row.iter_mut().zip(dc.row(c)) {
                        *x += g * scale;
                    }
                }
            }
            let d_in = col.encoder.backward(&d_fused);
            for r in 0..n_rows {
                d_cell_vecs
                    .row_mut(r * n_cols + c)
                    .copy_from_slice(d_in.row(r));
            }
            merge_grads(&mut self.vertical, &mut col.encoder);
        }

        // Horizontal backward per row.
        for (r, row) in cache.rows.iter_mut().enumerate() {
            let mut d_states = Tensor::zeros(&[row.seq_len, d]);
            for (c, span) in row.spans.iter().enumerate() {
                let Some(span) = span else { continue };
                let d_pooled = d_cell_vecs.rows(r * n_cols + c, r * n_cols + c + 1);
                d_states.add_assign(&pool_mean_backward(&d_pooled, span, row.seq_len));
            }
            let dx = row.encoder.backward(&d_states);
            row.embeddings.backward(&dx);
            merge_grads(&mut self.row_encoder, &mut row.encoder);
            merge_grads(&mut self.embeddings, &mut row.embeddings);
        }
    }
}

impl Layer for TaBert {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.embeddings
            .visit_params(&mut |n, p| f(&format!("embeddings/{n}"), p));
        self.row_encoder
            .visit_params(&mut |n, p| f(&format!("row_encoder/{n}"), p));
        self.vertical
            .visit_params(&mut |n, p| f(&format!("vertical/{n}"), p));
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        ntr_nn::visit_rng_child(&mut self.embeddings, "embeddings", f);
        ntr_nn::visit_rng_child(&mut self.row_encoder, "row_encoder", f);
        ntr_nn::visit_rng_child(&mut self.vertical, "vertical", f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{sample_table, tokenizer};
    use ntr_nn::gradcheck::numeric_grad;
    use ntr_nn::optim::Adam;

    fn cfg() -> ModelConfig {
        ModelConfig {
            dropout: 0.0,
            ..ModelConfig::tiny(300)
        }
    }

    #[test]
    fn output_shapes() {
        let mut m = TaBert::new(&cfg());
        let t = sample_table();
        let tok = tokenizer();
        let out = m.encode_table(&t, &t.caption, &tok, false);
        assert_eq!(out.n_rows, 2);
        assert_eq!(out.n_cols, 3);
        assert_eq!(out.cells.shape(), &[6, 16]);
        assert_eq!(out.columns.shape(), &[3, 16]);
        assert_eq!(out.cell(1, 2).shape(), &[1, 16]);
    }

    #[test]
    fn vertical_attention_mixes_rows() {
        // Changing a cell in row 1 must change row 0's representation of
        // the same column (via vertical attention) — the whole point of
        // TaBERT over per-row BERT.
        let mut m = TaBert::new(&cfg());
        let tok = tokenizer();
        let t = sample_table();
        let out1 = m.encode_table(&t, "", &tok, false);
        let mut t2 = t.clone();
        *t2.cell_mut(1, 2) = ntr_table::Cell::new("999.9");
        let out2 = m.encode_table(&t2, "", &tok, false);
        let a = out1.cell(0, 2);
        let b = out2.cell(0, 2);
        assert_ne!(a, b, "row 0 must see row 1 through vertical attention");
    }

    #[test]
    fn deterministic() {
        let mut a = TaBert::new(&cfg());
        let mut b = TaBert::new(&cfg());
        let t = sample_table();
        let tok = tokenizer();
        assert_eq!(
            a.encode_table(&t, &t.caption, &tok, false).cells,
            b.encode_table(&t, &t.caption, &tok, false).cells
        );
    }

    /// End-to-end finite-difference check of the shared-weight backward:
    /// gradient w.r.t. the vertical encoder's final LayerNorm γ and the
    /// row encoder's final LayerNorm γ.
    #[test]
    fn gradcheck_shared_weight_merging() {
        let mut m = TaBert::new(&cfg());
        let tok = tokenizer();
        let t = sample_table();
        let dy = SeededInit::new(5).uniform(&[6, 16], -1.0, 1.0);

        let _ = m.encode_table(&t, "ctx", &tok, true);
        m.zero_grad();
        let _ = m.encode_table(&t, "ctx", &tok, true);
        m.backward(&dy, None);

        for target in ["vertical/final_ln/gamma", "row_encoder/final_ln/gamma"] {
            let mut analytic = None;
            let mut value = None;
            m.visit_params(&mut |n, p| {
                if n == target {
                    analytic = Some(p.grad.clone());
                    value = Some(p.value.clone());
                }
            });
            let analytic = analytic.expect("param exists");
            let value = value.expect("param exists");

            let dyc = dy.clone();
            let tc = t.clone();
            let tokc = tok.clone();
            let num = numeric_grad(&value, 1e-2, |gamma| {
                let mut probe = TaBert::new(&cfg());
                probe.visit_params(&mut |n, p| {
                    if n == target {
                        p.value = gamma.clone();
                    }
                });
                let out = probe.encode_table(&tc, "ctx", &tokc, false);
                out.cells.mul(&dyc).sum()
            });
            ntr_nn::gradcheck::assert_close(&analytic, &num, 5e-2, target);
        }
    }

    #[test]
    fn trains_toward_a_target() {
        // Minimize MSE between column summaries and a fixed target; loss
        // must drop, proving the merged gradients point downhill.
        let mut m = TaBert::new(&cfg());
        let tok = tokenizer();
        let t = sample_table();
        let target = SeededInit::new(9).uniform(&[3, 16], -0.5, 0.5);
        let mut adam = Adam::new(5e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..10 {
            let out = m.encode_table(&t, &t.caption, &tok, true);
            let (loss, dcols) = ntr_nn::loss::mse(&out.columns, &target);
            first.get_or_insert(loss);
            last = loss;
            m.backward(&Tensor::zeros(&[6, 16]), Some(&dcols));
            let mut step = adam.begin_step();
            m.visit_params(&mut |_, p| step.update(p));
            m.zero_grad();
        }
        assert!(last < first.unwrap() * 0.8, "{first:?} → {last}");
    }

    #[test]
    #[should_panic(expected = "without a cached encode_table")]
    fn backward_requires_forward() {
        let mut m = TaBert::new(&cfg());
        m.backward(&Tensor::zeros(&[1, 16]), None);
    }
}
