//! Shared model hyperparameters and the serving-precision spec.

/// Numeric precision an encoder runs inference at.
///
/// `F32` is the exact reference path every model supports; `Int8` routes
/// eligible matmuls through `ntr_tensor::quant` (symmetric per-row int8,
/// integer-exact and therefore bit-identical across SIMD lanes and
/// thread counts — see DESIGN.md §13). Only [`crate::RowStudent`]
/// implements the int8 path; requesting it for another family is a typed
/// `BadModelChoice` at the zoo/serve layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantSpec {
    /// Exact f32 inference (the default).
    #[default]
    F32,
    /// Symmetric per-row int8 quantized inference.
    Int8,
}

impl QuantSpec {
    /// Every precision, in wire/CLI order.
    pub const ALL: [QuantSpec; 2] = [QuantSpec::F32, QuantSpec::Int8];

    /// Stable lowercase name used by the CLI, wire protocol, and index
    /// metadata alike.
    pub fn name(self) -> &'static str {
        match self {
            QuantSpec::F32 => "f32",
            QuantSpec::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for QuantSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for QuantSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        QuantSpec::ALL
            .into_iter()
            .find(|q| q.name() == s)
            .ok_or_else(|| format!("unknown precision {s:?}; expected one of f32, int8"))
    }
}

/// Hyperparameters shared by every model family.
///
/// Defaults target the laptop-scale regime this reproduction trains in
/// (see DESIGN.md §4): d_model 64, 2 layers, 4 heads.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// WordPiece vocabulary size (sizes the word-embedding table and heads).
    pub vocab_size: usize,
    /// Entity vocabulary size (TURL's MER label space; 0 disables).
    pub n_entities: usize,
    /// Hidden width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// Encoder (and, for TAPEX, decoder) layers.
    pub n_layers: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Maximum sequence length (sizes the position table).
    pub max_seq: usize,
    /// Maximum distinct row ids (0 = outside grid, 1.. data rows; clamped).
    pub max_rows: usize,
    /// Maximum distinct column ids (clamped like rows).
    pub max_cols: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Master init seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            vocab_size: 2000,
            n_entities: 0,
            d_model: 64,
            n_heads: 4,
            n_layers: 2,
            d_ff: 128,
            max_seq: 256,
            max_rows: 32,
            max_cols: 16,
            dropout: 0.1,
            seed: 42,
        }
    }
}

impl ModelConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            n_entities: 0,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_seq: 64,
            max_rows: 8,
            max_cols: 8,
            dropout: 0.0,
            seed: 7,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on inconsistent settings (e.g. heads not dividing width).
    pub fn validate(&self) {
        assert!(self.vocab_size > 7, "vocab must include the special tokens");
        assert!(self.d_model > 0 && self.n_heads > 0 && self.n_layers > 0);
        assert_eq!(
            self.d_model % self.n_heads,
            0,
            "n_heads {} must divide d_model {}",
            self.n_heads,
            self.d_model
        );
        assert!(self.max_seq > 0 && self.max_rows > 1 && self.max_cols > 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ModelConfig::default().validate();
        ModelConfig::tiny(100).validate();
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible_heads() {
        ModelConfig {
            d_model: 10,
            n_heads: 3,
            ..Default::default()
        }
        .validate();
    }
}
