//! Shared model hyperparameters.

/// Hyperparameters shared by every model family.
///
/// Defaults target the laptop-scale regime this reproduction trains in
/// (see DESIGN.md §4): d_model 64, 2 layers, 4 heads.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// WordPiece vocabulary size (sizes the word-embedding table and heads).
    pub vocab_size: usize,
    /// Entity vocabulary size (TURL's MER label space; 0 disables).
    pub n_entities: usize,
    /// Hidden width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub n_heads: usize,
    /// Encoder (and, for TAPEX, decoder) layers.
    pub n_layers: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Maximum sequence length (sizes the position table).
    pub max_seq: usize,
    /// Maximum distinct row ids (0 = outside grid, 1.. data rows; clamped).
    pub max_rows: usize,
    /// Maximum distinct column ids (clamped like rows).
    pub max_cols: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Master init seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            vocab_size: 2000,
            n_entities: 0,
            d_model: 64,
            n_heads: 4,
            n_layers: 2,
            d_ff: 128,
            max_seq: 256,
            max_rows: 32,
            max_cols: 16,
            dropout: 0.1,
            seed: 42,
        }
    }
}

impl ModelConfig {
    /// A tiny configuration for fast unit tests.
    pub fn tiny(vocab_size: usize) -> Self {
        Self {
            vocab_size,
            n_entities: 0,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            d_ff: 32,
            max_seq: 64,
            max_rows: 8,
            max_cols: 8,
            dropout: 0.0,
            seed: 7,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on inconsistent settings (e.g. heads not dividing width).
    pub fn validate(&self) {
        assert!(self.vocab_size > 7, "vocab must include the special tokens");
        assert!(self.d_model > 0 && self.n_heads > 0 && self.n_layers > 0);
        assert_eq!(
            self.d_model % self.n_heads,
            0,
            "n_heads {} must divide d_model {}",
            self.n_heads,
            self.d_model
        );
        assert!(self.max_seq > 0 && self.max_rows > 1 && self.max_cols > 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ModelConfig::default().validate();
        ModelConfig::tiny(100).validate();
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible_heads() {
        ModelConfig {
            d_model: 10,
            n_heads: 3,
            ..Default::default()
        }
        .validate();
    }
}
