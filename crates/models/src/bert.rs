//! The vanilla-BERT baseline: the serialized table is treated as plain
//! text (word + position + segment embeddings, full attention, MLM head).
//!
//! This is the model the hands-on §3.1 starts from — "we programmatically
//! linearize the raw table header and values into sequences compatible with
//! BERT" — and the baseline every structure-aware extension is compared to.

use crate::config::ModelConfig;
use crate::embeddings::{EmbeddingFlags, TableEmbeddings};
use crate::heads::MlmHead;
use crate::input::EncoderInput;
use crate::SequenceEncoder;
use ntr_nn::init::SeededInit;
use ntr_nn::{Encoder, Layer, Param};
use ntr_tensor::Tensor;

/// BERT-style text encoder with an MLM head.
#[derive(Debug, Clone)]
pub struct VanillaBert {
    /// Input embeddings (word + position + segment).
    pub embeddings: TableEmbeddings,
    /// Transformer encoder stack.
    pub encoder: Encoder,
    /// Masked-language-modeling head.
    pub mlm: MlmHead,
    cfg: ModelConfig,
}

impl VanillaBert {
    /// Builds the model from a config.
    pub fn new(cfg: &ModelConfig) -> Self {
        cfg.validate();
        let mut init = SeededInit::new(cfg.seed);
        Self {
            embeddings: TableEmbeddings::new(cfg, EmbeddingFlags::text_only(), &mut init),
            encoder: Encoder::new(
                cfg.n_layers,
                cfg.d_model,
                cfg.n_heads,
                cfg.d_ff,
                cfg.dropout,
                &mut init,
            ),
            mlm: MlmHead::new(cfg.d_model, cfg.vocab_size, &mut init.fork()),
            cfg: *cfg,
        }
    }

    /// The model's config.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }
}

impl SequenceEncoder for VanillaBert {
    fn d_model(&self) -> usize {
        self.cfg.d_model
    }

    fn vocab_size(&self) -> usize {
        self.cfg.vocab_size
    }

    fn encode(&mut self, input: &EncoderInput, train: bool) -> Tensor {
        let x = self.embeddings.forward(input, train);
        self.encoder.forward(&x, None, train)
    }

    fn backward(&mut self, d_states: &Tensor) {
        let dx = self.encoder.backward(d_states);
        self.embeddings.backward(&dx);
    }

    fn family(&self) -> &'static str {
        "bert"
    }
}

impl Layer for VanillaBert {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.embeddings
            .visit_params(&mut |n, p| f(&format!("embeddings/{n}"), p));
        self.encoder
            .visit_params(&mut |n, p| f(&format!("encoder/{n}"), p));
        self.mlm.visit_params(&mut |n, p| f(&format!("mlm/{n}"), p));
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        ntr_nn::visit_rng_child(&mut self.embeddings, "embeddings", f);
        ntr_nn::visit_rng_child(&mut self.encoder, "encoder", f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{encoded_sample, input_sample};
    use ntr_nn::loss::softmax_cross_entropy;

    #[test]
    fn encode_shape_and_determinism() {
        let cfg = ModelConfig::tiny(300);
        let mut a = VanillaBert::new(&cfg);
        let mut b = VanillaBert::new(&cfg);
        let inp = input_sample();
        let x = a.encode(&inp, false);
        assert_eq!(x.shape(), &[inp.len(), cfg.d_model]);
        assert_eq!(x, b.encode(&inp, false));
    }

    #[test]
    fn row_ids_do_not_affect_bert() {
        // The baseline is structure-blind by construction.
        let cfg = ModelConfig::tiny(300);
        let mut m = VanillaBert::new(&cfg);
        let inp = input_sample();
        let mut moved = inp.clone();
        for r in &mut moved.rows {
            *r = 0;
        }
        for c in &mut moved.cols {
            *c = 0;
        }
        assert_eq!(m.encode(&inp, false), m.encode(&moved, false));
    }

    #[test]
    fn one_training_step_reduces_mlm_loss() {
        let cfg = ModelConfig::tiny(300);
        let mut m = VanillaBert::new(&cfg);
        let e = encoded_sample();
        let masked = ntr_table::masking::mask_mlm(
            &e,
            &ntr_table::masking::MlmConfig::bert(cfg.vocab_size),
            3,
        );
        let inp = EncoderInput::from_masked(&e, &masked);
        let mut adam = ntr_nn::optim::Adam::new(5e-3);
        let mut losses = Vec::new();
        for _ in 0..12 {
            let states = m.encode(&inp, true);
            let logits = m.mlm.forward(&states);
            let (loss, dlogits) = softmax_cross_entropy(&logits, &masked.targets, None);
            losses.push(loss);
            let dstates = m.mlm.backward(&dlogits);
            SequenceEncoder::backward(&mut m, &dstates);
            let mut step = adam.begin_step();
            m.visit_params(&mut |_, p| step.update(p));
            m.zero_grad();
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.7),
            "loss did not drop: {losses:?}"
        );
    }

    #[test]
    fn checkpoint_roundtrip() {
        let cfg = ModelConfig::tiny(120);
        let mut a = VanillaBert::new(&cfg);
        let mut buf = Vec::new();
        ntr_nn::serialize::save_to(&mut a, &mut buf).unwrap();
        let mut b = VanillaBert::new(&ModelConfig { seed: 999, ..cfg });
        ntr_nn::serialize::load_from(&mut b, &mut buf.as_slice()).unwrap();
        let inp = input_sample();
        assert_eq!(a.encode(&inp, false), b.encode(&inp, false));
    }
}
