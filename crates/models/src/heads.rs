//! Output heads: the survey's "output level" extension point — "manifested
//! mostly by the addition of classification layers" (§2.3).

use ntr_nn::init::SeededInit;
use ntr_nn::{Gelu, Layer, LayerNorm, Linear, Param, Tanh};
use ntr_tensor::Tensor;
use std::ops::Range;

/// Masked-token prediction head: `Linear → GELU → LayerNorm → Linear(vocab)`
/// (the BERT MLM head shape). Also serves as TURL's MER head with the
/// entity vocabulary as its label space, and as TAPEX's generation head.
#[derive(Debug, Clone)]
pub struct MlmHead {
    transform: Linear,
    act: Gelu,
    ln: LayerNorm,
    decoder: Linear,
}

impl MlmHead {
    /// New head mapping `d_model` states to `vocab` logits.
    pub fn new(d_model: usize, vocab: usize, init: &mut SeededInit) -> Self {
        Self {
            transform: Linear::new(d_model, d_model, &mut init.fork()),
            act: Gelu::default(),
            ln: LayerNorm::new(d_model),
            decoder: Linear::new(d_model, vocab, &mut init.fork()),
        }
    }

    /// Label-space size.
    pub fn vocab(&self) -> usize {
        self.decoder.d_out()
    }

    /// `[n, d] → [n, vocab]` logits.
    pub fn forward(&mut self, states: &Tensor) -> Tensor {
        self.decoder.forward(
            &self
                .ln
                .forward(&self.act.forward(&self.transform.forward(states))),
        )
    }

    /// Backward; returns `d/d states`.
    pub fn backward(&mut self, dlogits: &Tensor) -> Tensor {
        self.transform.backward(
            &self
                .act
                .backward(&self.ln.backward(&self.decoder.backward(dlogits))),
        )
    }

    /// Rows of the decoder weight, used as output-space embeddings (e.g.
    /// TURL entity embeddings for linking): shape `[vocab, d]` transposed
    /// view of the `[d, vocab]` weight.
    pub fn label_embedding(&self, label: usize) -> Tensor {
        let w = &self.decoder.w.value; // [d, vocab]
        let d = w.dim(0);
        let mut out = Tensor::zeros(&[1, d]);
        for i in 0..d {
            out.data_mut()[i] = w.at(&[i, label]);
        }
        out
    }
}

impl Layer for MlmHead {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        visit(&mut self.transform, "transform", f);
        visit(&mut self.ln, "ln", f);
        visit(&mut self.decoder, "decoder", f);
    }
}

/// Sequence-classification head: pooled `[CLS]` state → `Tanh` pooler →
/// logits (BERT's sentence-classification shape). Used for NLI, aggregate
/// prediction, and CTA.
#[derive(Debug, Clone)]
pub struct ClassifierHead {
    pooler: Linear,
    act: Tanh,
    out: Linear,
}

impl ClassifierHead {
    /// New head with `n_classes` outputs.
    pub fn new(d_model: usize, n_classes: usize, init: &mut SeededInit) -> Self {
        Self {
            pooler: Linear::new(d_model, d_model, &mut init.fork()),
            act: Tanh::default(),
            out: Linear::new(d_model, n_classes, &mut init.fork()),
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.out.d_out()
    }

    /// `[1, d]` pooled state → `[1, n_classes]` logits.
    pub fn forward(&mut self, pooled: &Tensor) -> Tensor {
        self.out
            .forward(&self.act.forward(&self.pooler.forward(pooled)))
    }

    /// Backward; returns `d/d pooled`.
    pub fn backward(&mut self, dlogits: &Tensor) -> Tensor {
        self.pooler
            .backward(&self.act.backward(&self.out.backward(dlogits)))
    }
}

impl Layer for ClassifierHead {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        visit(&mut self.pooler, "pooler", f);
        visit(&mut self.out, "out", f);
    }
}

/// Per-token scoring head (one logit per token) — TAPAS-style cell
/// selection scores cells by mean token score.
#[derive(Debug, Clone)]
pub struct TokenScoreHead {
    score: Linear,
}

impl TokenScoreHead {
    /// New single-logit head.
    pub fn new(d_model: usize, init: &mut SeededInit) -> Self {
        Self {
            score: Linear::new(d_model, 1, &mut init.fork()),
        }
    }

    /// `[n, d] → [n, 1]` per-token logits.
    pub fn forward(&mut self, states: &Tensor) -> Tensor {
        self.score.forward(states)
    }

    /// Backward; returns `d/d states`.
    pub fn backward(&mut self, dlogits: &Tensor) -> Tensor {
        self.score.backward(dlogits)
    }
}

impl Layer for TokenScoreHead {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        visit(&mut self.score, "score", f);
    }
}

/// Mean-pools token states over a span: `[n, d] → [1, d]`.
///
/// # Panics
/// Panics on an empty or out-of-bounds span.
pub fn pool_mean(states: &Tensor, span: &Range<usize>) -> Tensor {
    assert!(
        !span.is_empty() && span.end <= states.dim(0),
        "pool_mean: bad span {span:?} for {} tokens",
        states.dim(0)
    );
    states
        .rows(span.start, span.end)
        .mean_rows()
        .reshape(&[1, states.dim(1)])
}

/// Distributes a pooled gradient back over the span (the backward of
/// [`pool_mean`]): each token receives `d_pooled / span_len`.
pub fn pool_mean_backward(d_pooled: &Tensor, span: &Range<usize>, seq_len: usize) -> Tensor {
    let d = d_pooled.numel();
    let mut out = Tensor::zeros(&[seq_len, d]);
    let scale = 1.0 / span.len() as f32;
    for i in span.clone() {
        for j in 0..d {
            out.data_mut()[i * d + j] = d_pooled.data()[j] * scale;
        }
    }
    out
}

fn visit(child: &mut dyn Layer, prefix: &str, f: &mut dyn FnMut(&str, &mut Param)) {
    child.visit_params(&mut |name, p| f(&format!("{prefix}/{name}"), p));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_nn::gradcheck::{assert_close, numeric_grad};

    #[test]
    fn mlm_head_shapes_and_gradcheck() {
        let mut h = MlmHead::new(8, 20, &mut SeededInit::new(1));
        let x = SeededInit::new(2).uniform(&[3, 8], -1.0, 1.0);
        let logits = h.forward(&x);
        assert_eq!(logits.shape(), &[3, 20]);
        let dy = SeededInit::new(3).uniform(&[3, 20], -0.1, 0.1);
        let dx = h.backward(&dy);
        let mut probe = h.clone();
        let dyc = dy.clone();
        let num = numeric_grad(&x, 5e-3, |x| probe.forward(x).mul(&dyc).sum());
        assert_close(&dx, &num, 3e-2, "mlm head dx");
    }

    #[test]
    fn label_embedding_matches_decoder_column() {
        let h = MlmHead::new(4, 6, &mut SeededInit::new(4));
        let e = h.label_embedding(2);
        assert_eq!(e.shape(), &[1, 4]);
        for i in 0..4 {
            assert_eq!(e.data()[i], h.decoder.w.value.at(&[i, 2]));
        }
    }

    #[test]
    fn classifier_head_gradcheck() {
        let mut h = ClassifierHead::new(6, 3, &mut SeededInit::new(5));
        let x = SeededInit::new(6).uniform(&[1, 6], -1.0, 1.0);
        let logits = h.forward(&x);
        assert_eq!(logits.shape(), &[1, 3]);
        let dy = Tensor::ones(&[1, 3]);
        let dx = h.backward(&dy);
        let mut probe = h.clone();
        let num = numeric_grad(&x, 5e-3, |x| probe.forward(x).sum());
        assert_close(&dx, &num, 3e-2, "cls head dx");
    }

    #[test]
    fn token_score_head_is_one_logit_per_token() {
        let mut h = TokenScoreHead::new(4, &mut SeededInit::new(7));
        let x = Tensor::ones(&[5, 4]);
        assert_eq!(h.forward(&x).shape(), &[5, 1]);
    }

    #[test]
    fn pool_mean_and_backward_are_adjoint() {
        let states = SeededInit::new(8).uniform(&[6, 4], -1.0, 1.0);
        let span = 2..5;
        let pooled = pool_mean(&states, &span);
        assert_eq!(pooled.shape(), &[1, 4]);
        // Numeric check of the backward.
        let dp = SeededInit::new(9).uniform(&[1, 4], -1.0, 1.0);
        let dx = pool_mean_backward(&dp, &span, 6);
        let dpc = dp.clone();
        let num = numeric_grad(&states, 1e-2, |s| pool_mean(s, &span).mul(&dpc).sum());
        assert_close(&dx, &num, 1e-2, "pool_mean backward");
    }

    #[test]
    #[should_panic(expected = "bad span")]
    fn pool_mean_rejects_empty_span() {
        let _ = pool_mean(&Tensor::ones(&[3, 2]), &(1..1));
    }
}
