//! # ntr-models
//!
//! The model zoo: the transformer architecture families the paper surveys
//! (§2.3), each built from the shared `ntr-nn` blocks and differing exactly
//! where the survey says they differ — input embeddings, attention
//! structure, and output heads.
//!
//! | Model | Survey exemplar | Structural mechanism |
//! |---|---|---|
//! | [`VanillaBert`] | BERT | none: serialized table is just text |
//! | [`Tapas`] | TaPas (Herzig et al.) | extra row/column/segment embeddings + cell-selection head |
//! | [`TaBert`] | TaBERT (Yin et al.) | per-row encoding + **vertical self-attention** across rows |
//! | [`Turl`] | TURL (Deng et al.) | **visibility matrix** attention + entity embeddings + MER |
//! | [`Mate`] | MATE (Eisenschlos et al.) | per-head **row/column sparse attention** |
//! | [`Tapex`] | TAPEX (Liu et al.) | encoder–decoder pretrained as a neural SQL executor |
//!
//! All models share [`EncoderInput`] (token ids + structural metadata from
//! `ntr-table`'s linearizers) and implement [`SequenceEncoder`], so the
//! fine-tuning heads in `ntr-tasks` are generic over the family.

mod config;
mod embeddings;
mod heads;
mod input;

mod bert;
mod mate;
mod row_student;
mod tabert;
mod tapas;
mod tapex;
mod turl;

pub use bert::VanillaBert;
pub use config::{ModelConfig, QuantSpec};
pub use embeddings::EmbeddingFlags;
pub use embeddings::TableEmbeddings;
pub use heads::{pool_mean, pool_mean_backward, ClassifierHead, MlmHead, TokenScoreHead};
pub use input::EncoderInput;
pub use mate::{sparse_attention, sparse_attention_flops, Mate, SparseAxis, SparsePattern};
pub use row_student::RowStudent;
pub use tabert::TaBert;
pub use tapas::Tapas;
pub use tapex::Tapex;
pub use turl::Turl;

use ntr_nn::Layer;
use ntr_tensor::Tensor;

/// Common interface of the encoder-style models: turn an [`EncoderInput`]
/// into per-token hidden states `[seq, d_model]`.
///
/// `train=true` enables dropout and records caches;
/// [`SequenceEncoder::backward`] then propagates a `[seq, d_model]` gradient
/// and accumulates parameter gradients.
pub trait SequenceEncoder: Layer {
    /// Model width.
    fn d_model(&self) -> usize;

    /// WordPiece vocabulary size the embedding table was built for. Input
    /// ids must be `< vocab_size()`; callers (e.g. the serving pipeline)
    /// check this up front so a tokenizer/model mismatch surfaces as a
    /// typed error instead of an embedding-lookup panic.
    fn vocab_size(&self) -> usize;

    /// Encodes an input into hidden states.
    fn encode(&mut self, input: &EncoderInput, train: bool) -> Tensor;

    /// Backpropagates through the last `encode` call.
    fn backward(&mut self, d_states: &Tensor);

    /// Short, stable model-family name for reports.
    fn family(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for model tests: a small tokenizer, a linearized
    //! sample table, and the corresponding encoder input.

    use crate::input::EncoderInput;
    use ntr_table::{EncodedTable, Linearizer, LinearizerOptions, RowMajorLinearizer, Table};
    use ntr_tokenizer::{train::WordPieceTrainer, WordPieceTokenizer};

    pub fn tokenizer() -> WordPieceTokenizer {
        let corpus = [
            "country capital population france paris australia canberra japan tokyo",
            "row 1 2 3 : | ; is col population in million by country",
            "67.8 25.69 125.7 which what of the",
        ];
        WordPieceTokenizer::new(WordPieceTrainer::new(280).train(corpus.iter().copied()))
    }

    pub fn sample_table() -> Table {
        let mut t = Table::from_strings(
            "t",
            &["Country", "Capital", "Population"],
            &[
                &["France", "Paris", "67.8"],
                &["Australia", "Canberra", "25.69"],
            ],
        )
        .with_caption("Population in Million by Country");
        t.cell_mut(0, 0).entity = Some(1);
        t.cell_mut(0, 1).entity = Some(2);
        t.cell_mut(1, 0).entity = Some(3);
        t.cell_mut(1, 1).entity = Some(4);
        t
    }

    pub fn encoded_sample() -> EncodedTable {
        let tok = tokenizer();
        let t = sample_table();
        RowMajorLinearizer.linearize(
            &t,
            &t.caption,
            &tok,
            &LinearizerOptions {
                max_tokens: 64,
                ..Default::default()
            },
        )
    }

    pub fn input_sample() -> EncoderInput {
        EncoderInput::from_encoded(&encoded_sample())
    }
}
