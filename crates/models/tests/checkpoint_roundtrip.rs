//! Every model family round-trips through an `NTRW` checkpoint exactly:
//! capture → serialize → parse → apply into a differently-initialized
//! instance → identical state dict, bit for bit.

use ntr_models::{Mate, ModelConfig, TaBert, Tapas, Tapex, Turl, VanillaBert};
use ntr_nn::serialize::{parse_checkpoint, write_checkpoint_to, TrainCheckpoint};
use ntr_nn::Layer;

fn cfg(seed: u64) -> ModelConfig {
    ModelConfig {
        n_entities: 7, // exercises TURL's MER head
        seed,
        ..ModelConfig::tiny(300)
    }
}

/// Bit patterns of every parameter, keyed by name.
fn state_bits(model: &mut dyn Layer) -> Vec<(String, Vec<usize>, Vec<u32>)> {
    TrainCheckpoint::capture(model)
        .params
        .into_iter()
        .map(|(n, t)| {
            let shape = t.shape().to_vec();
            let bits = t.data().iter().map(|v| v.to_bits()).collect();
            (n, shape, bits)
        })
        .collect()
}

fn roundtrip(name: &str, a: &mut dyn Layer, b: &mut dyn Layer) {
    let before = state_bits(a);
    assert!(!before.is_empty(), "{name}: model exposes no parameters");
    assert_ne!(
        before,
        state_bits(b),
        "{name}: differently-seeded models must start from different weights"
    );
    let ckpt = TrainCheckpoint::capture(a);
    let mut buf = Vec::new();
    write_checkpoint_to(&ckpt, &mut buf).unwrap();
    let parsed = parse_checkpoint(&buf).unwrap();
    parsed.apply_params(b).unwrap();
    assert_eq!(
        before,
        state_bits(b),
        "{name}: state dict differs after checkpoint round trip"
    );
}

#[test]
fn vanilla_bert_roundtrips() {
    let mut a = VanillaBert::new(&cfg(1));
    let mut b = VanillaBert::new(&cfg(0xDEAD));
    roundtrip("VanillaBert", &mut a, &mut b);
}

#[test]
fn tapas_roundtrips() {
    let mut a = Tapas::new(&cfg(1));
    let mut b = Tapas::new(&cfg(0xDEAD));
    roundtrip("Tapas", &mut a, &mut b);
}

#[test]
fn turl_roundtrips() {
    let mut a = Turl::new(&cfg(1));
    let mut b = Turl::new(&cfg(0xDEAD));
    roundtrip("Turl", &mut a, &mut b);
}

#[test]
fn mate_roundtrips() {
    let mut a = Mate::new(&cfg(1));
    let mut b = Mate::new(&cfg(0xDEAD));
    roundtrip("Mate", &mut a, &mut b);
}

#[test]
fn tabert_roundtrips() {
    let mut a = TaBert::new(&cfg(1));
    let mut b = TaBert::new(&cfg(0xDEAD));
    roundtrip("TaBert", &mut a, &mut b);
}

#[test]
fn tapex_roundtrips() {
    let mut a = Tapex::new(&cfg(1));
    let mut b = Tapex::new(&cfg(0xDEAD));
    roundtrip("Tapex", &mut a, &mut b);
}

/// Loading a Tapas checkpoint into a TURL model must fail loudly (different
/// parameter sets), not partially apply.
#[test]
fn cross_family_load_is_a_mismatch() {
    let mut tapas = Tapas::new(&cfg(1));
    let ckpt = TrainCheckpoint::capture(&mut tapas);
    let mut buf = Vec::new();
    write_checkpoint_to(&ckpt, &mut buf).unwrap();
    let parsed = parse_checkpoint(&buf).unwrap();
    let mut turl = Turl::new(&cfg(2));
    let before = state_bits(&mut turl);
    let err = parsed.apply_params(&mut turl).unwrap_err();
    assert!(
        matches!(err, ntr_nn::serialize::CheckpointError::Mismatch(_)),
        "{err}"
    );
    assert_eq!(
        before,
        state_bits(&mut turl),
        "a failed load must not partially mutate the model"
    );
}
