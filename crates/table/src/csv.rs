//! A hand-rolled RFC 4180 CSV reader/writer.
//!
//! Part of the system under reproduction (the paper's hands-on §3.1 starts
//! by "loading a given table from a CSV file"), so it is implemented here
//! rather than pulled in as a dependency. Supports quoted fields, escaped
//! quotes (`""`), embedded newlines and CRLF line endings.

use crate::cell::Cell;
use crate::table::{Column, Table, TableError};
use std::fmt;
use std::path::Path;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// I/O failure reading the file.
    Io(std::io::Error),
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line where the field started.
        line: usize,
    },
    /// Text after a closing quote that is not a separator/newline.
    TrailingAfterQuote {
        /// 1-based line number.
        line: usize,
    },
    /// Rows have inconsistent field counts.
    Ragged(TableError),
    /// The input contained no rows at all.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv I/O error: {e}"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::TrailingAfterQuote { line } => {
                write!(f, "unexpected text after closing quote on line {line}")
            }
            CsvError::Ragged(e) => write!(f, "ragged csv: {e}"),
            CsvError::Empty => write!(f, "csv input contains no rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses CSV text into raw records (no header interpretation).
pub fn parse_csv(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    let mut in_quotes = false;
    let mut quote_start_line = 1usize;
    let mut any_char = false;

    while let Some(c) = chars.next() {
        any_char = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                        // Only separator, newline or EOF may follow.
                        match chars.peek() {
                            None | Some(',') | Some('\n') | Some('\r') => {}
                            Some(_) => return Err(CsvError::TrailingAfterQuote { line }),
                        }
                    }
                }
                '\n' => {
                    field.push(c);
                    line += 1;
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' if field.is_empty() => {
                    in_quotes = true;
                    quote_start_line = line;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // Swallow; the following \n ends the record.
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote {
            line: quote_start_line,
        });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any_char || records.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(records)
}

/// Escapes one field for CSV output.
fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serializes records to CSV text (LF line endings).
pub fn write_csv(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for rec in records {
        let line: Vec<String> = rec.iter().map(|f| escape(f)).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

impl Table {
    /// Parses a table from CSV text. The first record is the header; a
    /// `use_header=false` caller gets synthetic `col0..colN` names and keeps
    /// the first record as data (the paper's "tables without descriptive
    /// headers" case).
    pub fn from_csv_str(id: &str, input: &str, use_header: bool) -> Result<Table, CsvError> {
        let records = parse_csv(input)?;
        let (columns, data_start): (Vec<Column>, usize) = if use_header {
            (records[0].iter().map(Column::new).collect(), 1)
        } else {
            (
                (0..records[0].len())
                    .map(|i| Column::new(format!("col{i}")))
                    .collect(),
                0,
            )
        };
        let rows: Vec<Vec<Cell>> = records[data_start..]
            .iter()
            .map(|rec| rec.iter().map(Cell::new).collect())
            .collect();
        Table::new(id, columns, rows).map_err(CsvError::Ragged)
    }

    /// Loads a table from a CSV file; the file stem becomes the table id.
    pub fn from_csv_path(path: &Path) -> Result<Table, CsvError> {
        let text = std::fs::read_to_string(path)?;
        let id = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "table".to_string());
        Table::from_csv_str(&id, &text, true)
    }

    /// Serializes the table (header + rows) to CSV text.
    pub fn to_csv_string(&self) -> String {
        let mut records = Vec::with_capacity(self.n_rows() + 1);
        records.push(self.columns().iter().map(|c| c.name.clone()).collect());
        for row in self.rows() {
            records.push(row.iter().map(|c| c.raw.clone()).collect());
        }
        write_csv(&records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_csv() {
        let recs = parse_csv("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(recs, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn handles_missing_trailing_newline() {
        let recs = parse_csv("a,b\n1,2").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let recs = parse_csv("name,notes\n\"Doe, Jane\",\"line1\nline2\"\n").unwrap();
        assert_eq!(recs[1][0], "Doe, Jane");
        assert_eq!(recs[1][1], "line1\nline2");
    }

    #[test]
    fn escaped_quotes() {
        let recs = parse_csv("a\n\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(recs[1][0], "he said \"hi\"");
    }

    #[test]
    fn crlf_line_endings() {
        let recs = parse_csv("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn empty_fields_preserved() {
        let recs = parse_csv("a,,c\n,,\n").unwrap();
        assert_eq!(recs[0], vec!["a", "", "c"]);
        assert_eq!(recs[1], vec!["", "", ""]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        let err = parse_csv("a\n\"oops\n").unwrap_err();
        assert!(
            matches!(err, CsvError::UnterminatedQuote { line: 2 }),
            "{err}"
        );
    }

    #[test]
    fn trailing_after_quote_is_error() {
        let err = parse_csv("\"x\"y\n").unwrap_err();
        assert!(matches!(err, CsvError::TrailingAfterQuote { .. }), "{err}");
    }

    #[test]
    fn empty_input_is_error() {
        assert!(matches!(parse_csv(""), Err(CsvError::Empty)));
    }

    #[test]
    fn roundtrip_with_special_characters() {
        let records = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["with\"quote".to_string(), "with\nnewline".to_string()],
        ];
        let text = write_csv(&records);
        let back = parse_csv(&text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn table_from_csv_with_header() {
        let t = Table::from_csv_str("t", "Country,Population\nFrance,67.8\n", true).unwrap();
        assert_eq!(t.columns()[0].name, "Country");
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.cell(0, 1).text(), "67.8");
    }

    #[test]
    fn table_from_csv_headerless() {
        let t = Table::from_csv_str("t", "1,2\n3,4\n", false).unwrap();
        assert_eq!(t.columns()[0].name, "col0");
        assert_eq!(t.n_rows(), 2);
        assert!(t.is_headerless());
    }

    #[test]
    fn ragged_csv_is_error() {
        let err = Table::from_csv_str("t", "a,b\n1\n", true).unwrap_err();
        assert!(matches!(err, CsvError::Ragged(_)), "{err}");
    }

    #[test]
    fn table_csv_roundtrip() {
        let t = Table::from_strings("r", &["a", "b"], &[&["1", "x,y"], &["", "q\"uote"]]);
        let text = t.to_csv_string();
        let back = Table::from_csv_str("r", &text, true).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.cell(0, 1).text(), "x,y");
        assert_eq!(back.cell(1, 1).text(), "q\"uote");
        assert!(back.cell(1, 0).is_null());
    }
}
