//! Table → token-sequence linearization strategies (the paper's Fig. 2b).
//!
//! Each [`Linearizer`] flattens a 2-D [`Table`] plus its natural-language
//! context into an [`EncodedTable`]. All strategies:
//!
//! * respect a token budget by truncating **whole data rows** (recording how
//!   many were dropped — the paper's "data retrieval and filtering" step);
//! * record per-token row/column/segment/kind metadata and cell spans;
//! * carry entity links from cells into token metadata (for TURL-style
//!   masked entity recovery).
//!
//! The context can be placed before or after the table
//! ([`ContextPosition`]), the ablation the survey (§2.3) notes a few works
//! evaluated ("context followed by serialized table vs. table appended by
//! context").

use crate::cell::Cell;
use crate::encoded::{EncodedTable, Segment, TokenKind, TokenMeta};
use crate::table::Table;
use ntr_tokenizer::{SpecialToken, WordPieceTokenizer};
use std::collections::HashMap as RankMap;
use std::collections::HashMap;
use std::ops::Range;

/// Where the natural-language context goes relative to the table tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContextPosition {
    /// `[CLS] context [SEP] table…` (the common choice).
    #[default]
    Before,
    /// `[CLS] table… [SEP] context`.
    After,
}

/// Options shared by all linearizers.
#[derive(Debug, Clone)]
pub struct LinearizerOptions {
    /// Hard cap on the encoded sequence length.
    pub max_tokens: usize,
    /// Context placement.
    pub context_position: ContextPosition,
}

impl Default for LinearizerOptions {
    fn default() -> Self {
        Self {
            max_tokens: 256,
            context_position: ContextPosition::Before,
        }
    }
}

/// A strategy for flattening a table (+context) into tokens.
pub trait Linearizer {
    /// Stable strategy name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Linearizes `table` with natural-language `context` (caption,
    /// question, …; may be empty).
    fn linearize(
        &self,
        table: &Table,
        context: &str,
        tok: &WordPieceTokenizer,
        opts: &LinearizerOptions,
    ) -> EncodedTable;
}

/// The serialization strategies by name — the closed set a builder or CLI
/// can select from — with [`LinearizerKind::Custom`] as the escape hatch
/// for out-of-tree [`Linearizer`] implementations.
#[derive(Default)]
pub enum LinearizerKind {
    /// [`RowMajorLinearizer`] (the default).
    #[default]
    RowMajor,
    /// [`ColumnMajorLinearizer`].
    ColumnMajor,
    /// [`TemplateLinearizer`].
    Template,
    /// [`TapexLinearizer`].
    Tapex,
    /// [`TurlLinearizer`].
    Turl,
    /// Any other strategy.
    Custom(Box<dyn Linearizer + Send + Sync>),
}

impl LinearizerKind {
    /// The names [`LinearizerKind::parse`] accepts, in display order.
    pub const NAMES: [&'static str; 5] = ["row-major", "column-major", "template", "tapex", "turl"];

    /// Resolves a strategy name (as printed by [`Linearizer::name`]).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "row-major" => Some(Self::RowMajor),
            "column-major" => Some(Self::ColumnMajor),
            "template" => Some(Self::Template),
            "tapex" => Some(Self::Tapex),
            "turl" => Some(Self::Turl),
            _ => None,
        }
    }

    /// Converts the kind into its boxed strategy.
    pub fn into_boxed(self) -> Box<dyn Linearizer + Send + Sync> {
        match self {
            Self::RowMajor => Box::new(RowMajorLinearizer),
            Self::ColumnMajor => Box::new(ColumnMajorLinearizer),
            Self::Template => Box::new(TemplateLinearizer),
            Self::Tapex => Box::new(TapexLinearizer),
            Self::Turl => Box::new(TurlLinearizer),
            Self::Custom(b) => b,
        }
    }
}

impl std::fmt::Debug for LinearizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RowMajor => f.write_str("RowMajor"),
            Self::ColumnMajor => f.write_str("ColumnMajor"),
            Self::Template => f.write_str("Template"),
            Self::Tapex => f.write_str("Tapex"),
            Self::Turl => f.write_str("Turl"),
            Self::Custom(b) => write!(f, "Custom({:?})", b.name()),
        }
    }
}

// ---------------------------------------------------------------------
// Shared sequence builder
// ---------------------------------------------------------------------

struct SeqBuilder<'a> {
    tok: &'a WordPieceTokenizer,
    ids: Vec<usize>,
    meta: Vec<TokenMeta>,
    cell_spans: HashMap<(usize, usize), Range<usize>>,
    header_spans: HashMap<usize, Range<usize>>,
    ranks: RankMap<(usize, usize), usize>,
}

impl<'a> SeqBuilder<'a> {
    fn new_for(tok: &'a WordPieceTokenizer, table: &Table) -> Self {
        Self {
            tok,
            ids: Vec::new(),
            meta: Vec::new(),
            cell_spans: HashMap::new(),
            header_spans: HashMap::new(),
            ranks: numeric_ranks(table),
        }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn push_special(&mut self, s: SpecialToken, segment: Segment) {
        self.ids.push(s.id());
        self.meta
            .push(TokenMeta::outside(segment, TokenKind::Special));
    }

    /// Tokenizes `text` and appends it with `template` metadata; returns the
    /// appended token range. NULL text yields a single `[EMPTY]` token.
    fn push_text(&mut self, text: &str, template: TokenMeta) -> Range<usize> {
        let start = self.ids.len();
        let ids = self.tok.encode(text);
        if ids.is_empty() {
            self.ids.push(SpecialToken::Empty.id());
            self.meta.push(template);
        } else {
            for id in ids {
                self.ids.push(id);
                self.meta.push(template);
            }
        }
        start..self.ids.len()
    }

    fn push_cell(&mut self, cell: &Cell, row: usize, col: usize) {
        let template = TokenMeta {
            row: row + 1,
            col: col + 1,
            segment: Segment::Table,
            kind: TokenKind::Cell,
            entity: cell.entity,
            rank: self.ranks.get(&(row, col)).copied().unwrap_or(0),
        };
        let span = self.push_text(cell.text(), template);
        self.cell_spans.insert((row, col), span);
    }

    fn push_header(&mut self, name: &str, col: usize) {
        let template = TokenMeta {
            row: 0,
            col: col + 1,
            segment: Segment::Table,
            kind: TokenKind::Header,
            entity: None,
            rank: 0,
        };
        let span = self.push_text(name, template);
        self.header_spans.insert(col, span);
    }

    /// Structural filler (separators, `row`, `is`, …) attributed to a grid
    /// position when meaningful.
    fn push_template(&mut self, text: &str, row: usize, col: usize) {
        let template = TokenMeta {
            row,
            col,
            segment: Segment::Table,
            kind: TokenKind::Template,
            entity: None,
            rank: 0,
        };
        let _ = self.push_text(text, template);
    }

    fn push_context(&mut self, context: &str) {
        if context.trim().is_empty() {
            return;
        }
        let template = TokenMeta::outside(Segment::Context, TokenKind::Context);
        let _ = self.push_text(context, template);
    }

    /// Rolls the builder back to `len` tokens, dropping spans that start at
    /// or beyond the cut (used for whole-row truncation).
    fn truncate_to(&mut self, len: usize) {
        self.ids.truncate(len);
        self.meta.truncate(len);
        self.cell_spans.retain(|_, s| s.end <= len);
        self.header_spans.retain(|_, s| s.end <= len);
    }

    fn finish(
        mut self,
        max_tokens: usize,
        n_rows_encoded: usize,
        n_cols: usize,
        truncated_rows: usize,
        name: &'static str,
    ) -> EncodedTable {
        if self.ids.len() > max_tokens {
            self.truncate_to(max_tokens);
        }
        EncodedTable::new(
            self.ids,
            self.meta,
            self.cell_spans,
            self.header_spans,
            n_rows_encoded,
            n_cols,
            truncated_rows,
            name,
        )
    }
}

/// Appends rows via `append_row` until the budget is exhausted; returns
/// `(rows_encoded, rows_truncated)`.
fn fill_rows(
    b: &mut SeqBuilder<'_>,
    table: &Table,
    budget: usize,
    mut append_row: impl FnMut(&mut SeqBuilder<'_>, usize),
) -> (usize, usize) {
    let mut encoded = 0;
    for r in 0..table.n_rows() {
        let snapshot = b.len();
        append_row(b, r);
        if b.len() > budget {
            b.truncate_to(snapshot);
            break;
        }
        encoded += 1;
    }
    (encoded, table.n_rows() - encoded)
}

/// TAPAS-style numeric ranks: for every numeric column, the 1-based rank
/// of each non-null cell's value in ascending order (ties share the lower
/// rank's position order). Non-numeric columns and null cells get no rank.
fn numeric_ranks(table: &Table) -> RankMap<(usize, usize), usize> {
    let mut ranks = RankMap::new();
    for c in 0..table.n_cols() {
        // Non-finite values (a NaN/inf cell) get no rank rather than
        // poisoning the sort.
        let mut vals: Vec<(usize, f64)> = (0..table.n_rows())
            .filter_map(|r| table.cell(r, c).value.as_number().map(|v| (r, v)))
            .filter(|(_, v)| v.is_finite())
            .collect();
        // Only rank columns that are predominantly numeric.
        if vals.len() * 2 <= table.n_rows() || vals.is_empty() {
            continue;
        }
        vals.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        for (rank, (r, _)) in vals.into_iter().enumerate() {
            ranks.insert((r, c), rank + 1);
        }
    }
    ranks
}

// ---------------------------------------------------------------------
// Row-major (BERT/TAPAS style)
// ---------------------------------------------------------------------

/// `[CLS] context [SEP] h₁ | h₂ | h₃ [SEP] v₁₁ | v₁₂ | v₁₃ [SEP] v₂₁ …`
///
/// The format the hands-on §3.1 builds by hand for BERT, and (with the
/// row/column metadata this crate always records) the input format of
/// TAPAS-style models.
#[derive(Debug, Clone, Default)]
pub struct RowMajorLinearizer;

impl Linearizer for RowMajorLinearizer {
    fn name(&self) -> &'static str {
        "row-major"
    }

    fn linearize(
        &self,
        table: &Table,
        context: &str,
        tok: &WordPieceTokenizer,
        opts: &LinearizerOptions,
    ) -> EncodedTable {
        let mut b = SeqBuilder::new_for(tok, table);
        b.push_special(SpecialToken::Cls, Segment::Context);
        if opts.context_position == ContextPosition::Before {
            b.push_context(context);
            b.push_special(SpecialToken::Sep, Segment::Context);
        }
        for (c, col) in table.columns().iter().enumerate() {
            if c > 0 {
                b.push_template("|", 0, 0);
            }
            b.push_header(&col.name, c);
        }
        b.push_special(SpecialToken::Sep, Segment::Table);

        // Reserve room for the trailing context when it comes after.
        let tail = if opts.context_position == ContextPosition::After {
            tok.encode(context).len() + 1
        } else {
            0
        };
        let budget = opts.max_tokens.saturating_sub(tail);
        let (encoded, truncated) = fill_rows(&mut b, table, budget, |b, r| {
            for c in 0..table.n_cols() {
                if c > 0 {
                    b.push_template("|", r + 1, 0);
                }
                b.push_cell(table.cell(r, c), r, c);
            }
            b.push_special(SpecialToken::Sep, Segment::Table);
        });

        if opts.context_position == ContextPosition::After {
            b.push_context(context);
            b.push_special(SpecialToken::Sep, Segment::Context);
        }
        b.finish(
            opts.max_tokens,
            encoded,
            table.n_cols(),
            truncated,
            self.name(),
        )
    }
}

// ---------------------------------------------------------------------
// Template ("row one Country is Australia; …")
// ---------------------------------------------------------------------

/// Natural-text templates, Fig. 2b(2) of the paper:
/// `row 1 : Country is Australia ; Capital is Sydney ; … row 2 : …`
#[derive(Debug, Clone, Default)]
pub struct TemplateLinearizer;

impl Linearizer for TemplateLinearizer {
    fn name(&self) -> &'static str {
        "template"
    }

    fn linearize(
        &self,
        table: &Table,
        context: &str,
        tok: &WordPieceTokenizer,
        opts: &LinearizerOptions,
    ) -> EncodedTable {
        let mut b = SeqBuilder::new_for(tok, table);
        b.push_special(SpecialToken::Cls, Segment::Context);
        b.push_context(context);
        b.push_special(SpecialToken::Sep, Segment::Context);

        let (encoded, truncated) = fill_rows(&mut b, table, opts.max_tokens, |b, r| {
            b.push_template(&format!("row {}", r + 1), r + 1, 0);
            b.push_template(":", r + 1, 0);
            for c in 0..table.n_cols() {
                b.push_header(&table.columns()[c].name, c);
                b.push_template("is", r + 1, c + 1);
                b.push_cell(table.cell(r, c), r, c);
                b.push_template(";", r + 1, c + 1);
            }
        });
        b.finish(
            opts.max_tokens,
            encoded,
            table.n_cols(),
            truncated,
            self.name(),
        )
    }
}

// ---------------------------------------------------------------------
// Column-major
// ---------------------------------------------------------------------

/// Per-column serialization:
/// `[CLS] context [SEP] h₁ : v₁₁ | v₂₁ [SEP] h₂ : v₁₂ | v₂₂ [SEP] …`
///
/// The row-budget is honored by finding the largest row prefix whose
/// column-major encoding fits, so E7 compares row- vs column-major on equal
/// cell coverage.
#[derive(Debug, Clone, Default)]
pub struct ColumnMajorLinearizer;

impl ColumnMajorLinearizer {
    fn build<'a>(
        table: &Table,
        context: &str,
        tok: &'a WordPieceTokenizer,
        n_rows: usize,
    ) -> SeqBuilder<'a> {
        let mut b = SeqBuilder::new_for(tok, table);
        b.push_special(SpecialToken::Cls, Segment::Context);
        b.push_context(context);
        b.push_special(SpecialToken::Sep, Segment::Context);
        for c in 0..table.n_cols() {
            b.push_header(&table.columns()[c].name, c);
            b.push_template(":", 0, c + 1);
            for r in 0..n_rows {
                if r > 0 {
                    b.push_template("|", 0, c + 1);
                }
                b.push_cell(table.cell(r, c), r, c);
            }
            b.push_special(SpecialToken::Sep, Segment::Table);
        }
        b
    }
}

impl Linearizer for ColumnMajorLinearizer {
    fn name(&self) -> &'static str {
        "column-major"
    }

    fn linearize(
        &self,
        table: &Table,
        context: &str,
        tok: &WordPieceTokenizer,
        opts: &LinearizerOptions,
    ) -> EncodedTable {
        let mut n_rows = table.n_rows();
        loop {
            let b = Self::build(table, context, tok, n_rows);
            if b.len() <= opts.max_tokens || n_rows == 0 {
                let truncated = table.n_rows() - n_rows;
                return b.finish(
                    opts.max_tokens,
                    n_rows,
                    table.n_cols(),
                    truncated,
                    self.name(),
                );
            }
            n_rows -= 1;
        }
    }
}

// ---------------------------------------------------------------------
// TAPEX style
// ---------------------------------------------------------------------

/// TAPEX's flattening: `[CLS] context [SEP] col : h₁ | h₂ row 1 : v₁₁ | v₁₂
/// row 2 : …` — the format its neural SQL executor is trained on.
#[derive(Debug, Clone, Default)]
pub struct TapexLinearizer;

impl Linearizer for TapexLinearizer {
    fn name(&self) -> &'static str {
        "tapex"
    }

    fn linearize(
        &self,
        table: &Table,
        context: &str,
        tok: &WordPieceTokenizer,
        opts: &LinearizerOptions,
    ) -> EncodedTable {
        let mut b = SeqBuilder::new_for(tok, table);
        b.push_special(SpecialToken::Cls, Segment::Context);
        b.push_context(context);
        b.push_special(SpecialToken::Sep, Segment::Context);
        b.push_template("col", 0, 0);
        b.push_template(":", 0, 0);
        for (c, col) in table.columns().iter().enumerate() {
            if c > 0 {
                b.push_template("|", 0, 0);
            }
            b.push_header(&col.name, c);
        }
        let (encoded, truncated) = fill_rows(&mut b, table, opts.max_tokens, |b, r| {
            b.push_template(&format!("row {}", r + 1), r + 1, 0);
            b.push_template(":", r + 1, 0);
            for c in 0..table.n_cols() {
                if c > 0 {
                    b.push_template("|", r + 1, 0);
                }
                b.push_cell(table.cell(r, c), r, c);
            }
        });
        b.finish(
            opts.max_tokens,
            encoded,
            table.n_cols(),
            truncated,
            self.name(),
        )
    }
}

// ---------------------------------------------------------------------
// TURL style
// ---------------------------------------------------------------------

/// TURL's entity-focused compact form: context and headers, then one
/// contiguous token group per cell with **no separators**, entity links in
/// metadata. Paired with the visibility-matrix attention in `ntr-models`,
/// this reproduces the structure Fig. 2b(2) of the paper shows (Token /
/// Type / Position rows).
#[derive(Debug, Clone, Default)]
pub struct TurlLinearizer;

impl Linearizer for TurlLinearizer {
    fn name(&self) -> &'static str {
        "turl"
    }

    fn linearize(
        &self,
        table: &Table,
        context: &str,
        tok: &WordPieceTokenizer,
        opts: &LinearizerOptions,
    ) -> EncodedTable {
        let mut b = SeqBuilder::new_for(tok, table);
        b.push_special(SpecialToken::Cls, Segment::Context);
        b.push_context(context);
        b.push_special(SpecialToken::Sep, Segment::Context);
        for (c, col) in table.columns().iter().enumerate() {
            b.push_header(&col.name, c);
        }
        b.push_special(SpecialToken::Sep, Segment::Table);
        let (encoded, truncated) = fill_rows(&mut b, table, opts.max_tokens, |b, r| {
            for c in 0..table.n_cols() {
                b.push_cell(table.cell(r, c), r, c);
            }
        });
        b.finish(
            opts.max_tokens,
            encoded,
            table.n_cols(),
            truncated,
            self.name(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_tokenizer::train::WordPieceTrainer;

    fn tokenizer() -> WordPieceTokenizer {
        let corpus = [
            "country capital population france paris australia canberra japan tokyo",
            "row 1 2 3 4 5 : | ; is col country capital population",
            "population in million by country which city 67.8 25.69 125.7",
            "row 1 : | ; is col row 2 : | ; row 3 : | ;",
        ];
        WordPieceTokenizer::new(WordPieceTrainer::new(600).train(corpus.iter().copied()))
    }

    fn sample() -> Table {
        Table::from_strings(
            "t",
            &["Country", "Capital", "Population"],
            &[
                &["France", "Paris", "67.8"],
                &["Australia", "Canberra", "25.69"],
                &["Japan", "Tokyo", "125.7"],
            ],
        )
        .with_caption("Population in Million by Country")
    }

    fn all_linearizers() -> Vec<Box<dyn Linearizer>> {
        vec![
            Box::new(RowMajorLinearizer),
            Box::new(TemplateLinearizer),
            Box::new(ColumnMajorLinearizer),
            Box::new(TapexLinearizer),
            Box::new(TurlLinearizer),
        ]
    }

    #[test]
    fn every_linearizer_encodes_all_cells_when_budget_allows() {
        let tok = tokenizer();
        let t = sample();
        let opts = LinearizerOptions::default();
        for lin in all_linearizers() {
            let e = lin.linearize(&t, &t.caption, &tok, &opts);
            assert_eq!(e.truncated_rows(), 0, "{}", lin.name());
            assert_eq!(e.n_rows_encoded(), 3, "{}", lin.name());
            for r in 0..3 {
                for c in 0..3 {
                    let span = e
                        .cell_span(r, c)
                        .unwrap_or_else(|| panic!("{}: missing cell ({r},{c})", lin.name()));
                    assert!(!span.is_empty());
                    // Every token in the span carries the right coordinates.
                    for i in span {
                        assert_eq!(e.meta()[i].row, r + 1, "{}", lin.name());
                        assert_eq!(e.meta()[i].col, c + 1, "{}", lin.name());
                    }
                }
            }
            for c in 0..3 {
                assert!(e.header_span(c).is_some(), "{}: header {c}", lin.name());
            }
        }
    }

    #[test]
    fn starts_with_cls() {
        let tok = tokenizer();
        let t = sample();
        for lin in all_linearizers() {
            let e = lin.linearize(&t, "", &tok, &LinearizerOptions::default());
            assert_eq!(e.ids()[0], SpecialToken::Cls.id(), "{}", lin.name());
        }
    }

    #[test]
    fn truncation_drops_whole_rows_and_counts_them() {
        let tok = tokenizer();
        let t = sample();
        for lin in all_linearizers() {
            let opts = LinearizerOptions {
                max_tokens: 30,
                ..Default::default()
            };
            let e = lin.linearize(&t, &t.caption, &tok, &opts);
            assert!(e.len() <= 30, "{}: {} tokens", lin.name(), e.len());
            assert_eq!(e.n_rows_encoded() + e.truncated_rows(), 3, "{}", lin.name());
            // No partial rows: every encoded row has all its cells.
            for r in 0..e.n_rows_encoded() {
                for c in 0..3 {
                    assert!(e.cell_span(r, c).is_some(), "{} row {r}", lin.name());
                }
            }
            for r in e.n_rows_encoded()..3 {
                for c in 0..3 {
                    assert!(e.cell_span(r, c).is_none(), "{} row {r}", lin.name());
                }
            }
        }
    }

    #[test]
    fn context_position_after_places_context_at_end() {
        let tok = tokenizer();
        let t = sample();
        let before =
            RowMajorLinearizer.linearize(&t, &t.caption, &tok, &LinearizerOptions::default());
        let after = RowMajorLinearizer.linearize(
            &t,
            &t.caption,
            &tok,
            &LinearizerOptions {
                context_position: ContextPosition::After,
                ..Default::default()
            },
        );
        let ctx_positions = |e: &EncodedTable| -> Vec<usize> {
            e.meta()
                .iter()
                .enumerate()
                .filter(|(_, m)| m.kind == TokenKind::Context)
                .map(|(i, _)| i)
                .collect()
        };
        let pb = ctx_positions(&before);
        let pa = ctx_positions(&after);
        assert!(!pb.is_empty() && !pa.is_empty());
        assert!(
            pb.iter().max() < pa.iter().min(),
            "context must move to the end"
        );
        // Same cells encoded either way.
        assert_eq!(before.n_rows_encoded(), after.n_rows_encoded());
    }

    #[test]
    fn null_cells_become_empty_token() {
        let tok = tokenizer();
        let t = Table::from_strings("n", &["a", "b"], &[&["1", ""]]);
        let e = RowMajorLinearizer.linearize(&t, "", &tok, &LinearizerOptions::default());
        let span = e.cell_span(0, 1).unwrap();
        assert_eq!(span.len(), 1);
        assert_eq!(e.ids()[span.start], SpecialToken::Empty.id());
    }

    #[test]
    fn entities_flow_into_metadata() {
        let tok = tokenizer();
        let mut t = sample();
        t.cell_mut(0, 0).entity = Some(42);
        let e = TurlLinearizer.linearize(&t, "", &tok, &LinearizerOptions::default());
        let span = e.cell_span(0, 0).unwrap();
        for i in span {
            assert_eq!(e.meta()[i].entity, Some(42));
        }
        let other = e.cell_span(0, 1).unwrap();
        assert_eq!(e.meta()[other.start].entity, None);
    }

    #[test]
    fn empty_table_still_produces_frame() {
        let tok = tokenizer();
        let t = Table::new("e", vec![crate::table::Column::new("only")], vec![]).unwrap();
        for lin in all_linearizers() {
            let e = lin.linearize(&t, "caption", &tok, &LinearizerOptions::default());
            assert!(e.len() >= 2, "{}", lin.name());
            assert_eq!(e.n_rows_encoded(), 0);
        }
    }

    #[test]
    fn tiny_budget_never_overflows_or_panics() {
        let tok = tokenizer();
        let t = sample();
        for lin in all_linearizers() {
            for max in [1, 2, 3, 5, 8] {
                let opts = LinearizerOptions {
                    max_tokens: max,
                    ..Default::default()
                };
                let e = lin.linearize(&t, &t.caption, &tok, &opts);
                assert!(e.len() <= max, "{} budget {max}", lin.name());
            }
        }
    }

    #[test]
    fn numeric_ranks_order_cells_within_columns() {
        let tok = tokenizer();
        let t = sample(); // Population column: 67.8, 25.69, 125.7
        let e = RowMajorLinearizer.linearize(&t, "", &tok, &LinearizerOptions::default());
        let rank_of = |r: usize, c: usize| {
            let span = e.cell_span(r, c).unwrap();
            e.meta()[span.start].rank
        };
        // Population (column 2) is numeric: 25.69 < 67.8 < 125.7.
        assert_eq!(rank_of(1, 2), 1, "25.69 is smallest");
        assert_eq!(rank_of(0, 2), 2, "67.8 is middle");
        assert_eq!(rank_of(2, 2), 3, "125.7 is largest");
        // Text columns carry no rank.
        assert_eq!(rank_of(0, 0), 0);
        assert_eq!(rank_of(0, 1), 0);
        // Header/context/special tokens carry no rank.
        for (i, m) in e.meta().iter().enumerate() {
            if m.kind != TokenKind::Cell {
                assert_eq!(m.rank, 0, "token {i}");
            }
        }
    }

    #[test]
    fn linearizer_names_are_distinct() {
        let names: Vec<&str> = all_linearizers().iter().map(|l| l.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
