//! Content snapshots: selecting the table rows most relevant to a query
//! before linearization — the paper's "data retrieval and filtering" input-
//! processing step (TaBERT calls this a *content snapshot*).

use crate::table::Table;
use std::collections::HashSet;

/// Scores one row's lexical overlap with the query: the fraction of query
/// words that appear (case-insensitively, as substrings of cell text) in
/// the row. Header words count toward every row.
pub fn row_relevance(table: &Table, row: usize, query: &str) -> f64 {
    let words: Vec<String> = query
        .split_whitespace()
        .map(|w| {
            w.trim_matches(|c: char| !c.is_alphanumeric())
                .to_lowercase()
        })
        .filter(|w| !w.is_empty())
        .collect();
    if words.is_empty() {
        return 0.0;
    }
    let mut haystack: Vec<String> = table
        .row(row)
        .iter()
        .map(|c| c.text().to_lowercase())
        .collect();
    haystack.extend(table.columns().iter().map(|c| c.name.to_lowercase()));
    let hits = words
        .iter()
        .filter(|w| haystack.iter().any(|h| h.contains(*w)))
        .count();
    hits as f64 / words.len() as f64
}

/// Selects up to `k` rows most relevant to `query`, preserving the original
/// row order among the selected (ties keep earlier rows). With an empty
/// query, the first `k` rows are returned.
pub fn select_rows(table: &Table, query: &str, k: usize) -> Vec<usize> {
    let k = k.min(table.n_rows());
    if k == 0 {
        return Vec::new();
    }
    let mut scored: Vec<(usize, f64)> = (0..table.n_rows())
        .map(|r| (r, row_relevance(table, r, query)))
        .collect();
    // Stable sort by descending score; stability keeps original order on ties.
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
    let keep: HashSet<usize> = scored[..k].iter().map(|&(r, _)| r).collect();
    (0..table.n_rows()).filter(|r| keep.contains(r)).collect()
}

/// Builds the snapshot table directly: `table.select_rows(select_rows(...))`.
pub fn snapshot(table: &Table, query: &str, k: usize) -> Table {
    table.select_rows(&select_rows(table, query, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn countries() -> Table {
        Table::from_strings(
            "c",
            &["Country", "Capital", "Population"],
            &[
                &["France", "Paris", "67.8"],
                &["Australia", "Canberra", "25.69"],
                &["Japan", "Tokyo", "125.7"],
                &["Kenya", "Nairobi", "54.0"],
            ],
        )
    }

    #[test]
    fn relevant_row_scores_higher() {
        let t = countries();
        let q = "what is the population of France";
        assert!(row_relevance(&t, 0, q) > row_relevance(&t, 2, q));
    }

    #[test]
    fn header_words_count_for_all_rows() {
        let t = countries();
        let q = "population";
        for r in 0..t.n_rows() {
            assert!(row_relevance(&t, r, q) > 0.0, "row {r}");
        }
    }

    #[test]
    fn select_rows_picks_the_mentioned_row_first() {
        let t = countries();
        let rows = select_rows(&t, "capital of Japan", 1);
        assert_eq!(rows, vec![2]);
    }

    #[test]
    fn select_rows_preserves_original_order() {
        let t = countries();
        let rows = select_rows(&t, "France and Kenya", 2);
        assert_eq!(rows, vec![0, 3]);
    }

    #[test]
    fn empty_query_takes_prefix() {
        let t = countries();
        assert_eq!(select_rows(&t, "", 2), vec![0, 1]);
    }

    #[test]
    fn k_larger_than_table_is_clamped() {
        let t = countries();
        assert_eq!(select_rows(&t, "x", 99).len(), 4);
        assert!(select_rows(&t, "x", 0).is_empty());
    }

    #[test]
    fn snapshot_builds_subtable() {
        let t = countries();
        let s = snapshot(&t, "population of Australia", 1);
        assert_eq!(s.n_rows(), 1);
        assert_eq!(s.cell(0, 0).text(), "Australia");
    }

    #[test]
    fn case_and_punctuation_insensitive() {
        let t = countries();
        assert!(row_relevance(&t, 0, "FRANCE?") > 0.9);
    }
}
