//! Cell values, type inference, and column semantic types.

use std::fmt;

/// A typed cell value, inferred from the raw string by [`CellValue::infer`].
#[derive(Debug, Clone, PartialEq)]
pub enum CellValue {
    /// Free text.
    Text(String),
    /// Integer (fits in `i64`).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// Boolean (`true/false/yes/no`, case-insensitive).
    Bool(bool),
    /// Calendar date, year-month-day (parsed from `YYYY-MM-DD`).
    Date { year: i32, month: u8, day: u8 },
    /// Missing/NULL (empty string, `null`, `na`, `n/a`, `-`).
    Null,
}

impl CellValue {
    /// Infers a typed value from raw text, trimming whitespace first.
    pub fn infer(raw: &str) -> CellValue {
        let s = raw.trim();
        if s.is_empty() {
            return CellValue::Null;
        }
        match s.to_ascii_lowercase().as_str() {
            "null" | "na" | "n/a" | "none" | "-" | "nan" => return CellValue::Null,
            "true" | "yes" => return CellValue::Bool(true),
            "false" | "no" => return CellValue::Bool(false),
            _ => {}
        }
        if let Ok(i) = s.parse::<i64>() {
            return CellValue::Int(i);
        }
        // Thousands separators: "25,690" → 25690.
        if s.contains(',') && !s.contains('.') {
            let cleaned: String = s.chars().filter(|&c| c != ',').collect();
            if cleaned.chars().all(|c| c.is_ascii_digit() || c == '-') {
                if let Ok(i) = cleaned.parse::<i64>() {
                    return CellValue::Int(i);
                }
            }
        }
        if let Ok(f) = s.parse::<f64>() {
            if f.is_finite() {
                return CellValue::Float(f);
            }
        }
        if let Some(d) = parse_date(s) {
            return d;
        }
        CellValue::Text(s.to_string())
    }

    /// The value's semantic type.
    pub fn semantic_type(&self) -> SemanticType {
        match self {
            CellValue::Text(_) => SemanticType::Text,
            CellValue::Int(_) => SemanticType::Integer,
            CellValue::Float(_) => SemanticType::Float,
            CellValue::Bool(_) => SemanticType::Boolean,
            CellValue::Date { .. } => SemanticType::Date,
            CellValue::Null => SemanticType::Unknown,
        }
    }

    /// Numeric view: `Int`/`Float`/`Bool` as `f64`, else `None`.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            CellValue::Int(i) => Some(*i as f64),
            CellValue::Float(f) => Some(*f),
            CellValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// True for [`CellValue::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, CellValue::Null)
    }
}

impl fmt::Display for CellValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellValue::Text(s) => write!(f, "{s}"),
            CellValue::Int(i) => write!(f, "{i}"),
            CellValue::Float(x) => write!(f, "{x}"),
            CellValue::Bool(b) => write!(f, "{b}"),
            CellValue::Date { year, month, day } => write!(f, "{year:04}-{month:02}-{day:02}"),
            CellValue::Null => Ok(()),
        }
    }
}

fn parse_date(s: &str) -> Option<CellValue> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return None;
    }
    let year: i32 = parts[0].parse().ok()?;
    let month: u8 = parts[1].parse().ok()?;
    let day: u8 = parts[2].parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) || !(0..=9999).contains(&year) {
        return None;
    }
    Some(CellValue::Date { year, month, day })
}

/// A table cell: the raw surface string, its inferred value, and an optional
/// link to an entity in a knowledge base (used by TURL-style models).
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Original text as loaded.
    pub raw: String,
    /// Typed value inferred from `raw`.
    pub value: CellValue,
    /// Knowledge-base entity this cell mentions, when known.
    pub entity: Option<u32>,
}

impl Cell {
    /// Builds a cell by inferring the value from text.
    pub fn new(raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let value = CellValue::infer(&raw);
        Self {
            raw,
            value,
            entity: None,
        }
    }

    /// Builds a cell linked to a knowledge-base entity.
    pub fn with_entity(raw: impl Into<String>, entity: u32) -> Self {
        let mut c = Self::new(raw);
        c.entity = Some(entity);
        c
    }

    /// An explicit NULL cell.
    pub fn null() -> Self {
        Self {
            raw: String::new(),
            value: CellValue::Null,
            entity: None,
        }
    }

    /// True when the cell holds no value.
    pub fn is_null(&self) -> bool {
        self.value.is_null()
    }

    /// Display text: the trimmed raw string (empty for NULL).
    pub fn text(&self) -> &str {
        if self.is_null() {
            ""
        } else {
            self.raw.trim()
        }
    }
}

/// Column-level semantic type, inferred by majority over non-null cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticType {
    /// Free text.
    Text,
    /// Integers.
    Integer,
    /// Floating-point numbers.
    Float,
    /// Booleans.
    Boolean,
    /// Dates.
    Date,
    /// Entity mentions (cells linked to a knowledge base).
    Entity,
    /// No single type reaches a majority.
    Mixed,
    /// No evidence (all nulls / no rows).
    Unknown,
}

impl SemanticType {
    /// Infers a column type from its cells: entity if most non-null cells
    /// are entity-linked, else the majority value type, else `Mixed`.
    pub fn infer_column(cells: &[&Cell]) -> SemanticType {
        let non_null: Vec<&&Cell> = cells.iter().filter(|c| !c.is_null()).collect();
        if non_null.is_empty() {
            return SemanticType::Unknown;
        }
        let linked = non_null.iter().filter(|c| c.entity.is_some()).count();
        if linked * 2 > non_null.len() {
            return SemanticType::Entity;
        }
        let mut counts: [usize; 6] = [0; 6];
        for c in &non_null {
            let idx = match c.value.semantic_type() {
                SemanticType::Text => 0,
                SemanticType::Integer => 1,
                SemanticType::Float => 2,
                SemanticType::Boolean => 3,
                SemanticType::Date => 4,
                _ => 5,
            };
            counts[idx] += 1;
        }
        // Integers count toward Float majorities (1, 2.5, 3 is a float column).
        let types = [
            SemanticType::Text,
            SemanticType::Integer,
            SemanticType::Float,
            SemanticType::Boolean,
            SemanticType::Date,
        ];
        let (best_idx, &best) = counts[..5]
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("non-empty");
        if best * 2 > non_null.len() {
            return types[best_idx];
        }
        if (counts[1] + counts[2]) * 2 > non_null.len() {
            return SemanticType::Float;
        }
        SemanticType::Mixed
    }

    /// Human-readable name (used as a classification label in `ntr-tasks`).
    pub fn name(self) -> &'static str {
        match self {
            SemanticType::Text => "text",
            SemanticType::Integer => "integer",
            SemanticType::Float => "float",
            SemanticType::Boolean => "boolean",
            SemanticType::Date => "date",
            SemanticType::Entity => "entity",
            SemanticType::Mixed => "mixed",
            SemanticType::Unknown => "unknown",
        }
    }

    /// All types, for building classifier label spaces.
    pub const ALL: [SemanticType; 8] = [
        SemanticType::Text,
        SemanticType::Integer,
        SemanticType::Float,
        SemanticType::Boolean,
        SemanticType::Date,
        SemanticType::Entity,
        SemanticType::Mixed,
        SemanticType::Unknown,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_scalar_types() {
        assert_eq!(CellValue::infer("42"), CellValue::Int(42));
        assert_eq!(CellValue::infer("-7"), CellValue::Int(-7));
        assert_eq!(CellValue::infer("25.69"), CellValue::Float(25.69));
        assert_eq!(CellValue::infer("true"), CellValue::Bool(true));
        assert_eq!(CellValue::infer("No"), CellValue::Bool(false));
        assert_eq!(
            CellValue::infer("2023-06-18"),
            CellValue::Date {
                year: 2023,
                month: 6,
                day: 18
            }
        );
        assert_eq!(CellValue::infer("Paris"), CellValue::Text("Paris".into()));
    }

    #[test]
    fn infers_nulls() {
        for s in ["", "  ", "null", "N/A", "-", "NaN", "none"] {
            assert_eq!(CellValue::infer(s), CellValue::Null, "for {s:?}");
        }
    }

    #[test]
    fn thousands_separators_parse_as_int() {
        assert_eq!(CellValue::infer("25,690"), CellValue::Int(25690));
        assert_eq!(CellValue::infer("1,234,567"), CellValue::Int(1234567));
        // But a comma-bearing word stays text.
        assert_eq!(CellValue::infer("a,b"), CellValue::Text("a,b".into()));
    }

    #[test]
    fn invalid_dates_stay_text() {
        assert_eq!(
            CellValue::infer("2023-13-01"),
            CellValue::Text("2023-13-01".into())
        );
        assert_eq!(
            CellValue::infer("2023-00-10"),
            CellValue::Text("2023-00-10".into())
        );
    }

    #[test]
    fn as_number_views() {
        assert_eq!(CellValue::Int(3).as_number(), Some(3.0));
        assert_eq!(CellValue::Float(2.5).as_number(), Some(2.5));
        assert_eq!(CellValue::Bool(true).as_number(), Some(1.0));
        assert_eq!(CellValue::Text("x".into()).as_number(), None);
        assert_eq!(CellValue::Null.as_number(), None);
    }

    #[test]
    fn display_roundtrips_reasonably() {
        assert_eq!(CellValue::Int(42).to_string(), "42");
        assert_eq!(
            CellValue::Date {
                year: 5,
                month: 1,
                day: 2
            }
            .to_string(),
            "0005-01-02"
        );
        assert_eq!(CellValue::Null.to_string(), "");
    }

    #[test]
    fn cell_text_trims_and_nulls() {
        assert_eq!(Cell::new(" Paris ").text(), "Paris");
        assert_eq!(Cell::new("null").text(), "");
        assert!(Cell::null().is_null());
    }

    #[test]
    fn column_type_majority() {
        let ints: Vec<Cell> = ["1", "2", "3", "x"].iter().map(|&s| Cell::new(s)).collect();
        let refs: Vec<&Cell> = ints.iter().collect();
        assert_eq!(SemanticType::infer_column(&refs), SemanticType::Integer);
    }

    #[test]
    fn column_type_numeric_mix_is_float() {
        let cells: Vec<Cell> = ["1", "2.5", "3", "4.1"]
            .iter()
            .map(|&s| Cell::new(s))
            .collect();
        let refs: Vec<&Cell> = cells.iter().collect();
        assert_eq!(SemanticType::infer_column(&refs), SemanticType::Float);
    }

    #[test]
    fn column_type_entity_dominates() {
        let cells = [
            Cell::with_entity("France", 1),
            Cell::with_entity("Spain", 2),
            Cell::new("other"),
        ];
        let refs: Vec<&Cell> = cells.iter().collect();
        assert_eq!(SemanticType::infer_column(&refs), SemanticType::Entity);
    }

    #[test]
    fn column_type_all_null_is_unknown_and_mixed_detected() {
        let nulls = [Cell::null(), Cell::null()];
        let refs: Vec<&Cell> = nulls.iter().collect();
        assert_eq!(SemanticType::infer_column(&refs), SemanticType::Unknown);

        let mixed: Vec<Cell> = ["x", "true", "2023-01-01", "y", "false", "2020-02-02"]
            .iter()
            .map(|&s| Cell::new(s))
            .collect();
        let refs: Vec<&Cell> = mixed.iter().collect();
        assert_eq!(SemanticType::infer_column(&refs), SemanticType::Mixed);
    }
}
