//! # ntr-table
//!
//! The relational-table data model and the *input processing* half of the
//! paper's framework (Fig. 1, first module): loading tables from CSV, typing
//! their cells, filtering rows to fit a transformer's budget, **serializing**
//! 2-D tables into 1-D token sequences with structural metadata, and masking
//! tokens/entities for pretraining.
//!
//! The paper's hands-on §3.2 contrasts several linearization procedures
//! (its Fig. 2b); each is a [`Linearizer`] implementation here:
//!
//! | Linearizer | Style | Survey exemplar |
//! |---|---|---|
//! | [`RowMajorLinearizer`] | `[CLS] ctx [SEP] h₁ \| h₂ [SEP] v₁₁ \| v₁₂ …` | BERT/TAPAS |
//! | [`TemplateLinearizer`] | `row one Country is Australia; …` | natural-text templates |
//! | [`ColumnMajorLinearizer`] | per-column header+values | column-centric models |
//! | [`TapexLinearizer`] | `col : … row 1 : …` | TAPEX |
//! | [`TurlLinearizer`] | entity-cell focused with type/position roles | TURL |
//!
//! Every linearizer produces an [`EncodedTable`]: token ids plus per-token
//! structural metadata (row, column, segment, kind) and a cell → token-span
//! index, which is exactly what the structure-aware embeddings and heads in
//! `ntr-models` consume.

mod cell;
mod csv;
mod encoded;
mod linearize;
pub mod masking;
pub mod snapshot;
mod table;

pub use cell::{Cell, CellValue, SemanticType};
pub use csv::{parse_csv, write_csv, CsvError};
pub use encoded::{EncodedTable, Segment, TokenKind, TokenMeta};
pub use linearize::{
    ColumnMajorLinearizer, ContextPosition, Linearizer, LinearizerKind, LinearizerOptions,
    RowMajorLinearizer, TapexLinearizer, TemplateLinearizer, TurlLinearizer,
};
pub use table::{Column, Table, TableError};
