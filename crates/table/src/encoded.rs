//! [`EncodedTable`]: the 1-D token sequence a linearizer produces, with the
//! per-token structural metadata that lets models stay "data structure
//! aware" after flattening.

use std::collections::HashMap;
use std::ops::Range;

/// Which segment a token belongs to (BERT's segment-embedding notion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Natural-language context: caption, title, question.
    Context,
    /// Serialized table content.
    Table,
}

/// Structural role of a token within the linearization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// `[CLS]`, `[SEP]`, `[PAD]`-like framing tokens.
    Special,
    /// Context (caption/question) tokens.
    Context,
    /// Header-cell tokens.
    Header,
    /// Data-cell tokens.
    Cell,
    /// Structural filler emitted by template linearizers (`row`, `is`, `|`).
    Template,
}

/// Per-token structural metadata.
///
/// `row`/`col` use the TAPAS convention: `0` means "not part of the grid"
/// (context and special tokens); header tokens have `row == 0` but a real
/// `col`; data cells are `1`-based in both coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenMeta {
    /// 1-based data row, or 0.
    pub row: usize,
    /// 1-based column, or 0.
    pub col: usize,
    /// Segment.
    pub segment: Segment,
    /// Structural role.
    pub kind: TokenKind,
    /// Knowledge-base entity the enclosing cell links to, if any.
    pub entity: Option<u32>,
    /// 1-based numeric rank of the cell's value within its column
    /// (TAPAS-style rank embeddings); 0 for non-numeric cells and
    /// non-cell tokens.
    pub rank: usize,
}

impl TokenMeta {
    /// Metadata for tokens outside the grid.
    pub fn outside(segment: Segment, kind: TokenKind) -> Self {
        Self {
            row: 0,
            col: 0,
            segment,
            kind,
            entity: None,
            rank: 0,
        }
    }
}

/// A linearized, tokenized table: ids, aligned metadata, and the cell →
/// token-span index models use to pool cell representations.
#[derive(Debug, Clone)]
pub struct EncodedTable {
    ids: Vec<usize>,
    meta: Vec<TokenMeta>,
    cell_spans: HashMap<(usize, usize), Range<usize>>,
    header_spans: HashMap<usize, Range<usize>>,
    n_rows_encoded: usize,
    n_cols: usize,
    truncated_rows: usize,
    linearizer: &'static str,
}

impl EncodedTable {
    /// Assembles an encoded table; used by [`crate::Linearizer`]
    /// implementations.
    ///
    /// # Panics
    /// Panics when `ids` and `meta` lengths differ or a span is out of
    /// bounds.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ids: Vec<usize>,
        meta: Vec<TokenMeta>,
        cell_spans: HashMap<(usize, usize), Range<usize>>,
        header_spans: HashMap<usize, Range<usize>>,
        n_rows_encoded: usize,
        n_cols: usize,
        truncated_rows: usize,
        linearizer: &'static str,
    ) -> Self {
        assert_eq!(ids.len(), meta.len(), "ids/meta length mismatch");
        for (coord, span) in &cell_spans {
            assert!(
                span.end <= ids.len() && span.start <= span.end,
                "cell span {coord:?} = {span:?} out of bounds for {} tokens",
                ids.len()
            );
        }
        Self {
            ids,
            meta,
            cell_spans,
            header_spans,
            n_rows_encoded,
            n_cols,
            truncated_rows,
            linearizer,
        }
    }

    /// Token ids.
    pub fn ids(&self) -> &[usize] {
        &self.ids
    }

    /// Per-token metadata, aligned with [`EncodedTable::ids`].
    pub fn meta(&self) -> &[TokenMeta] {
        &self.meta
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no tokens were produced.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Token span of the data cell at 0-based `(row, col)`, if encoded.
    pub fn cell_span(&self, row: usize, col: usize) -> Option<Range<usize>> {
        self.cell_spans.get(&(row, col)).cloned()
    }

    /// Token span of a 0-based column's header, if encoded.
    pub fn header_span(&self, col: usize) -> Option<Range<usize>> {
        self.header_spans.get(&col).cloned()
    }

    /// Iterates over encoded cells as `((row, col), span)`, in grid order.
    pub fn cells(&self) -> impl Iterator<Item = ((usize, usize), Range<usize>)> + '_ {
        let mut coords: Vec<_> = self.cell_spans.keys().copied().collect();
        coords.sort_unstable();
        coords
            .into_iter()
            .map(move |c| (c, self.cell_spans[&c].clone()))
    }

    /// Data rows that made it into the encoding (before truncation cut off
    /// the rest).
    pub fn n_rows_encoded(&self) -> usize {
        self.n_rows_encoded
    }

    /// Column count of the source table.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Rows dropped by the token-budget truncation.
    pub fn truncated_rows(&self) -> usize {
        self.truncated_rows
    }

    /// Name of the linearizer that produced this encoding.
    pub fn linearizer(&self) -> &'static str {
        self.linearizer
    }

    /// Row ids per token (for row embeddings).
    pub fn row_ids(&self) -> Vec<usize> {
        self.meta.iter().map(|m| m.row).collect()
    }

    /// Column ids per token (for column embeddings).
    pub fn col_ids(&self) -> Vec<usize> {
        self.meta.iter().map(|m| m.col).collect()
    }

    /// Segment ids per token: 0 = context, 1 = table.
    pub fn segment_ids(&self) -> Vec<usize> {
        self.meta
            .iter()
            .map(|m| match m.segment {
                Segment::Context => 0,
                Segment::Table => 1,
            })
            .collect()
    }

    /// Numeric-rank ids per token (0 = no rank).
    pub fn rank_ids(&self) -> Vec<usize> {
        self.meta.iter().map(|m| m.rank).collect()
    }

    /// Token-kind ids per token (stable small ints for kind embeddings).
    pub fn kind_ids(&self) -> Vec<usize> {
        self.meta
            .iter()
            .map(|m| match m.kind {
                TokenKind::Special => 0,
                TokenKind::Context => 1,
                TokenKind::Header => 2,
                TokenKind::Cell => 3,
                TokenKind::Template => 4,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EncodedTable {
        let ids = vec![2, 10, 3, 11, 12];
        let meta = vec![
            TokenMeta::outside(Segment::Context, TokenKind::Special),
            TokenMeta::outside(Segment::Context, TokenKind::Context),
            TokenMeta::outside(Segment::Table, TokenKind::Special),
            TokenMeta {
                row: 0,
                col: 1,
                segment: Segment::Table,
                kind: TokenKind::Header,
                entity: None,
                rank: 0,
            },
            TokenMeta {
                row: 1,
                col: 1,
                segment: Segment::Table,
                kind: TokenKind::Cell,
                entity: Some(7),
                rank: 2,
            },
        ];
        let mut cells = HashMap::new();
        cells.insert((0usize, 0usize), 4..5);
        let mut headers = HashMap::new();
        headers.insert(0usize, 3..4);
        EncodedTable::new(ids, meta, cells, headers, 1, 1, 0, "test")
    }

    #[test]
    fn accessors() {
        let e = tiny();
        assert_eq!(e.len(), 5);
        assert!(!e.is_empty());
        assert_eq!(e.cell_span(0, 0), Some(4..5));
        assert_eq!(e.cell_span(5, 5), None);
        assert_eq!(e.header_span(0), Some(3..4));
        assert_eq!(e.row_ids(), vec![0, 0, 0, 0, 1]);
        assert_eq!(e.col_ids(), vec![0, 0, 0, 1, 1]);
        assert_eq!(e.segment_ids(), vec![0, 0, 1, 1, 1]);
        assert_eq!(e.kind_ids(), vec![0, 1, 0, 2, 3]);
        assert_eq!(e.rank_ids(), vec![0, 0, 0, 0, 2]);
        assert_eq!(e.meta()[4].entity, Some(7));
    }

    #[test]
    fn cells_iterates_in_grid_order() {
        let e = tiny();
        let cells: Vec<_> = e.cells().collect();
        assert_eq!(cells, vec![((0, 0), 4..5)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_misaligned_meta() {
        let _ = EncodedTable::new(
            vec![1, 2],
            vec![TokenMeta::outside(Segment::Context, TokenKind::Special)],
            HashMap::new(),
            HashMap::new(),
            0,
            0,
            0,
            "test",
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_bad_span() {
        let mut cells = HashMap::new();
        cells.insert((0usize, 0usize), 0..9);
        let _ = EncodedTable::new(
            vec![1],
            vec![TokenMeta::outside(Segment::Context, TokenKind::Special)],
            cells,
            HashMap::new(),
            0,
            0,
            0,
            "test",
        );
    }
}
