//! Pretraining masking: masked language modeling (MLM) over tokens and
//! masked entity recovery (MER) over entity cells — the two TURL objectives
//! the paper's hands-on §3.3 walks through.

use crate::encoded::{EncodedTable, TokenKind};
use ntr_tokenizer::SpecialToken;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Output of a masking pass: the corrupted input ids plus per-position
/// recovery targets (`IGNORE` where no prediction is required).
#[derive(Debug, Clone)]
pub struct MaskedExample {
    /// Input ids after corruption.
    pub input_ids: Vec<usize>,
    /// Target token id per position, or [`MaskedExample::IGNORE`].
    pub targets: Vec<usize>,
}

impl MaskedExample {
    /// Sentinel meaning "no loss at this position" (matches
    /// `ntr_nn::loss::IGNORE_INDEX`).
    pub const IGNORE: usize = usize::MAX;

    /// Number of positions with a real target.
    pub fn n_masked(&self) -> usize {
        self.targets.iter().filter(|&&t| t != Self::IGNORE).count()
    }
}

/// Configuration for BERT-style MLM masking.
#[derive(Debug, Clone, Copy)]
pub struct MlmConfig {
    /// Probability a maskable token is selected (BERT uses 0.15).
    pub mask_prob: f64,
    /// Of selected tokens: fraction replaced by `[MASK]` (0.8), the rest
    /// split evenly between a random token and keeping the original.
    pub mask_token_frac: f64,
    /// Vocabulary size, for sampling random replacement tokens.
    pub vocab_size: usize,
}

impl MlmConfig {
    /// BERT defaults (15% selection, 80/10/10 corruption).
    pub fn bert(vocab_size: usize) -> Self {
        Self {
            mask_prob: 0.15,
            mask_token_frac: 0.8,
            vocab_size,
        }
    }
}

/// Applies MLM masking to an encoded table.
///
/// Only `Context`, `Header` and `Cell` tokens are maskable; specials and
/// template filler are never masked (there is nothing to learn from
/// recovering a separator). Guarantees at least one masked position when
/// any position is maskable.
pub fn mask_mlm(encoded: &EncodedTable, cfg: &MlmConfig, seed: u64) -> MaskedExample {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = encoded.ids();
    let mut input_ids = ids.to_vec();
    let mut targets = vec![MaskedExample::IGNORE; ids.len()];

    let maskable: Vec<usize> = encoded
        .meta()
        .iter()
        .enumerate()
        .filter(|(_, m)| {
            matches!(
                m.kind,
                TokenKind::Context | TokenKind::Header | TokenKind::Cell
            )
        })
        .map(|(i, _)| i)
        .collect();

    let mut any = false;
    for &i in &maskable {
        if rng.gen::<f64>() < cfg.mask_prob {
            corrupt(&mut input_ids, &mut targets, i, ids[i], cfg, &mut rng);
            any = true;
        }
    }
    if !any && !maskable.is_empty() {
        let i = maskable[rng.gen_range(0..maskable.len())];
        corrupt(&mut input_ids, &mut targets, i, ids[i], cfg, &mut rng);
    }
    MaskedExample { input_ids, targets }
}

fn corrupt(
    input_ids: &mut [usize],
    targets: &mut [usize],
    i: usize,
    original: usize,
    cfg: &MlmConfig,
    rng: &mut StdRng,
) {
    targets[i] = original;
    let roll: f64 = rng.gen();
    let rand_frac = (1.0 - cfg.mask_token_frac) / 2.0;
    if roll < cfg.mask_token_frac {
        input_ids[i] = SpecialToken::Mask.id();
    } else if roll < cfg.mask_token_frac + rand_frac {
        // Random replacement, avoiding special ids.
        let lo = SpecialToken::ALL.len();
        if cfg.vocab_size > lo {
            input_ids[i] = rng.gen_range(lo..cfg.vocab_size);
        } else {
            input_ids[i] = SpecialToken::Mask.id();
        }
    } // else: keep original (still predicted).
}

/// One masked-entity-recovery example: an entity cell whose tokens were all
/// replaced by `[MASK]`, to be recovered from the **entity vocabulary**.
#[derive(Debug, Clone)]
pub struct MaskedEntity {
    /// Grid coordinate of the masked cell (0-based).
    pub coord: (usize, usize),
    /// Token positions that were masked.
    pub positions: Vec<usize>,
    /// The entity id to recover.
    pub entity: u32,
}

/// Applies MER masking: each entity-linked cell is independently selected
/// with probability `mask_prob`; selected cells have their entire token
/// span replaced by `[MASK]`. Returns the corrupted ids and the recovery
/// targets. Guarantees at least one masked entity when any cell is linked.
pub fn mask_entities(
    encoded: &EncodedTable,
    mask_prob: f64,
    seed: u64,
) -> (Vec<usize>, Vec<MaskedEntity>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut input_ids = encoded.ids().to_vec();
    let mut masked = Vec::new();

    let entity_cells: Vec<((usize, usize), std::ops::Range<usize>, u32)> = encoded
        .cells()
        .filter_map(|(coord, span)| encoded.meta()[span.start].entity.map(|e| (coord, span, e)))
        .collect();

    for (coord, span, entity) in &entity_cells {
        if rng.gen::<f64>() < mask_prob {
            mask_span(&mut input_ids, span, &mut masked, *coord, *entity);
        }
    }
    if masked.is_empty() && !entity_cells.is_empty() {
        let (coord, span, entity) = &entity_cells[rng.gen_range(0..entity_cells.len())];
        mask_span(&mut input_ids, span, &mut masked, *coord, *entity);
    }
    (input_ids, masked)
}

fn mask_span(
    input_ids: &mut [usize],
    span: &std::ops::Range<usize>,
    masked: &mut Vec<MaskedEntity>,
    coord: (usize, usize),
    entity: u32,
) {
    for i in span.clone() {
        input_ids[i] = SpecialToken::Mask.id();
    }
    masked.push(MaskedEntity {
        coord,
        positions: span.clone().collect(),
        entity,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linearizer, LinearizerOptions, RowMajorLinearizer, Table, TurlLinearizer};
    use ntr_tokenizer::{train::WordPieceTrainer, WordPieceTokenizer};

    fn setup() -> (Table, WordPieceTokenizer, EncodedTable) {
        let corpus = ["country capital france paris australia canberra | ; : row is col"];
        let tok = WordPieceTokenizer::new(WordPieceTrainer::new(300).train(corpus.iter().copied()));
        let mut t = Table::from_strings(
            "t",
            &["Country", "Capital"],
            &[&["France", "Paris"], &["Australia", "Canberra"]],
        );
        t.cell_mut(0, 0).entity = Some(100);
        t.cell_mut(1, 0).entity = Some(101);
        let e = RowMajorLinearizer.linearize(&t, "countries", &tok, &LinearizerOptions::default());
        (t, tok, e)
    }

    #[test]
    fn mlm_masks_some_positions_and_records_targets() {
        let (_, tok, e) = setup();
        let cfg = MlmConfig::bert(tok.vocab_size());
        let m = mask_mlm(&e, &cfg, 7);
        assert_eq!(m.input_ids.len(), e.len());
        assert!(m.n_masked() >= 1);
        for (i, &t) in m.targets.iter().enumerate() {
            if t != MaskedExample::IGNORE {
                assert_eq!(t, e.ids()[i], "target must be the original id");
            } else {
                assert_eq!(m.input_ids[i], e.ids()[i], "unmasked positions unchanged");
            }
        }
    }

    #[test]
    fn mlm_never_masks_specials_or_templates() {
        let (_, tok, e) = setup();
        let cfg = MlmConfig {
            mask_prob: 1.0,
            mask_token_frac: 1.0,
            vocab_size: tok.vocab_size(),
        };
        let m = mask_mlm(&e, &cfg, 3);
        for (i, meta) in e.meta().iter().enumerate() {
            match meta.kind {
                TokenKind::Special | TokenKind::Template => {
                    assert_eq!(m.targets[i], MaskedExample::IGNORE, "pos {i}");
                    assert_eq!(m.input_ids[i], e.ids()[i]);
                }
                _ => assert_ne!(m.targets[i], MaskedExample::IGNORE, "pos {i}"),
            }
        }
    }

    #[test]
    fn mlm_is_deterministic_per_seed() {
        let (_, tok, e) = setup();
        let cfg = MlmConfig::bert(tok.vocab_size());
        let a = mask_mlm(&e, &cfg, 42);
        let b = mask_mlm(&e, &cfg, 42);
        assert_eq!(a.input_ids, b.input_ids);
        let c = mask_mlm(&e, &cfg, 43);
        assert!(a.input_ids != c.input_ids || a.targets != c.targets);
    }

    #[test]
    fn mlm_guarantees_at_least_one_mask() {
        let (_, tok, e) = setup();
        let cfg = MlmConfig {
            mask_prob: 0.0,
            mask_token_frac: 0.8,
            vocab_size: tok.vocab_size(),
        };
        let m = mask_mlm(&e, &cfg, 1);
        assert_eq!(m.n_masked(), 1);
    }

    #[test]
    fn mer_masks_whole_entity_cells() {
        let (t, tok, _) = setup();
        let e = TurlLinearizer.linearize(&t, "", &tok, &LinearizerOptions::default());
        let (ids, masked) = mask_entities(&e, 1.0, 5);
        assert_eq!(masked.len(), 2, "both entity cells selected at p=1");
        for m in &masked {
            let span = e.cell_span(m.coord.0, m.coord.1).unwrap();
            assert_eq!(m.positions, span.clone().collect::<Vec<_>>());
            for i in span {
                assert_eq!(ids[i], SpecialToken::Mask.id());
            }
        }
        let entities: Vec<u32> = masked.iter().map(|m| m.entity).collect();
        assert!(entities.contains(&100) && entities.contains(&101));
    }

    #[test]
    fn mer_ignores_unlinked_cells() {
        let (t, tok, _) = setup();
        let e = TurlLinearizer.linearize(&t, "", &tok, &LinearizerOptions::default());
        let (_, masked) = mask_entities(&e, 1.0, 5);
        for m in &masked {
            assert_eq!(m.coord.1, 0, "only column 0 has entities");
        }
    }

    #[test]
    fn mer_guarantees_one_mask_when_possible() {
        let (t, tok, _) = setup();
        let e = TurlLinearizer.linearize(&t, "", &tok, &LinearizerOptions::default());
        let (_, masked) = mask_entities(&e, 0.0, 9);
        assert_eq!(masked.len(), 1);
    }

    #[test]
    fn mer_on_entity_free_table_is_empty() {
        let (_, tok, _) = setup();
        let plain = Table::from_strings("p", &["a"], &[&["x"]]);
        let e = TurlLinearizer.linearize(&plain, "", &tok, &LinearizerOptions::default());
        let (ids, masked) = mask_entities(&e, 1.0, 2);
        assert!(masked.is_empty());
        assert_eq!(ids, e.ids());
    }
}
