//! The [`Table`] type: named, captioned, rectangular grids of typed cells.

use crate::cell::{Cell, SemanticType};
use std::fmt;

/// A column: a header name plus an (inferable) semantic type.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Header text. May be a synthetic `col0`, `col1`… for headerless data.
    pub name: String,
    /// Semantic type; [`SemanticType::Unknown`] until inferred.
    pub sem_type: SemanticType,
}

impl Column {
    /// A column with an unknown type.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            sem_type: SemanticType::Unknown,
        }
    }
}

/// Errors constructing or mutating tables.
#[derive(Debug, PartialEq, Eq)]
pub enum TableError {
    /// A row's cell count does not match the column count.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
        /// Cells found in that row.
        found: usize,
        /// Cells expected (column count).
        expected: usize,
    },
    /// Referenced column does not exist.
    NoSuchColumn(String),
    /// A row or column index is out of range — the typed alternative the
    /// `try_*` accessors return instead of a slice-index panic on
    /// malformed or truncated input.
    OutOfBounds {
        /// What was indexed ("row" or "column").
        axis: &'static str,
        /// The offending index.
        index: usize,
        /// Valid length on that axis.
        len: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::RaggedRow {
                row,
                found,
                expected,
            } => write!(f, "row {row} has {found} cells, expected {expected}"),
            TableError::NoSuchColumn(c) => write!(f, "no such column: {c:?}"),
            TableError::OutOfBounds { axis, index, len } => {
                write!(f, "{axis} index {index} out of range for {len} {axis}(s)")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// A relational table: identifier, optional caption (the *context* the
/// paper's Fig. 1 concatenates with the serialized table), columns, and a
/// rectangular grid of [`Cell`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Stable identifier (e.g. filename or corpus id).
    pub id: String,
    /// Caption / title / page context. Empty when absent.
    pub caption: String,
    columns: Vec<Column>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates a table, validating rectangularity.
    pub fn new(
        id: impl Into<String>,
        columns: Vec<Column>,
        rows: Vec<Vec<Cell>>,
    ) -> Result<Self, TableError> {
        let expected = columns.len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != expected {
                return Err(TableError::RaggedRow {
                    row: i,
                    found: r.len(),
                    expected,
                });
            }
        }
        let mut t = Self {
            id: id.into(),
            caption: String::new(),
            columns,
            rows,
        };
        t.infer_column_types();
        Ok(t)
    }

    /// Convenience constructor from string data.
    ///
    /// # Panics
    /// Panics on ragged input (intended for literals in tests/examples).
    pub fn from_strings(id: &str, headers: &[&str], rows: &[&[&str]]) -> Self {
        let columns = headers.iter().map(|h| Column::new(*h)).collect();
        let rows = rows
            .iter()
            .map(|r| r.iter().map(|&s| Cell::new(s)).collect())
            .collect();
        Self::new(id, columns, rows).expect("literal table must be rectangular")
    }

    /// Sets the caption, builder-style.
    pub fn with_caption(mut self, caption: impl Into<String>) -> Self {
        self.caption = caption.into();
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Row `r` as a cell slice.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn row(&self, r: usize) -> &[Cell] {
        &self.rows[r]
    }

    /// Row `r` as a cell slice, with a typed error when out of range.
    pub fn try_row(&self, r: usize) -> Result<&[Cell], TableError> {
        self.rows
            .get(r)
            .map(Vec::as_slice)
            .ok_or(TableError::OutOfBounds {
                axis: "row",
                index: r,
                len: self.rows.len(),
            })
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Cell at `(row, col)`.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn cell(&self, row: usize, col: usize) -> &Cell {
        &self.rows[row][col]
    }

    /// Mutable cell at `(row, col)`.
    pub fn cell_mut(&mut self, row: usize, col: usize) -> &mut Cell {
        &mut self.rows[row][col]
    }

    /// Cell at `(row, col)`, with a typed error when either index is out
    /// of range.
    pub fn try_cell(&self, row: usize, col: usize) -> Result<&Cell, TableError> {
        self.try_row(row)?.get(col).ok_or(TableError::OutOfBounds {
            axis: "column",
            index: col,
            len: self.columns.len(),
        })
    }

    /// Mutable cell at `(row, col)`, with a typed error when either index
    /// is out of range.
    pub fn try_cell_mut(&mut self, row: usize, col: usize) -> Result<&mut Cell, TableError> {
        let (n_rows, n_cols) = (self.rows.len(), self.columns.len());
        self.rows
            .get_mut(row)
            .ok_or(TableError::OutOfBounds {
                axis: "row",
                index: row,
                len: n_rows,
            })?
            .get_mut(col)
            .ok_or(TableError::OutOfBounds {
                axis: "column",
                index: col,
                len: n_cols,
            })
    }

    /// Index of the column named `name` (exact match, then
    /// case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .or_else(|| {
                self.columns
                    .iter()
                    .position(|c| c.name.eq_ignore_ascii_case(name))
            })
    }

    /// All cells of column `col`.
    pub fn column_cells(&self, col: usize) -> Vec<&Cell> {
        self.rows.iter().map(|r| &r[col]).collect()
    }

    /// All cells of column `col`, with a typed error when out of range.
    pub fn try_column_cells(&self, col: usize) -> Result<Vec<&Cell>, TableError> {
        if col >= self.columns.len() {
            return Err(TableError::OutOfBounds {
                axis: "column",
                index: col,
                len: self.columns.len(),
            });
        }
        Ok(self.column_cells(col))
    }

    /// Re-infers every column's semantic type from its current cells.
    pub fn infer_column_types(&mut self) {
        for c in 0..self.columns.len() {
            let cells: Vec<&Cell> = self.rows.iter().map(|r| &r[c]).collect();
            self.columns[c].sem_type = SemanticType::infer_column(&cells);
        }
    }

    /// A new table containing only the given row indices (in that order).
    ///
    /// # Panics
    /// Panics when an index is out of range.
    pub fn select_rows(&self, indices: &[usize]) -> Table {
        let rows = indices.iter().map(|&i| self.rows[i].clone()).collect();
        let mut t = Table {
            id: self.id.clone(),
            caption: self.caption.clone(),
            columns: self.columns.clone(),
            rows,
        };
        t.infer_column_types();
        t
    }

    /// A new table containing only the given column indices (in that order).
    pub fn select_columns(&self, indices: &[usize]) -> Table {
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        let rows = self
            .rows
            .iter()
            .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Table {
            id: self.id.clone(),
            caption: self.caption.clone(),
            columns,
            rows,
        }
    }

    /// Like [`Table::select_rows`], with a typed error on any
    /// out-of-range index instead of a panic.
    pub fn try_select_rows(&self, indices: &[usize]) -> Result<Table, TableError> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.rows.len()) {
            return Err(TableError::OutOfBounds {
                axis: "row",
                index: bad,
                len: self.rows.len(),
            });
        }
        Ok(self.select_rows(indices))
    }

    /// Like [`Table::select_columns`], with a typed error on any
    /// out-of-range index instead of a panic.
    pub fn try_select_columns(&self, indices: &[usize]) -> Result<Table, TableError> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.columns.len()) {
            return Err(TableError::OutOfBounds {
                axis: "column",
                index: bad,
                len: self.columns.len(),
            });
        }
        Ok(self.select_columns(indices))
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<Cell>) -> Result<(), TableError> {
        if row.len() != self.columns.len() {
            return Err(TableError::RaggedRow {
                row: self.rows.len(),
                found: row.len(),
                expected: self.columns.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Fraction of cells that are NULL (0.0 for an empty table).
    pub fn null_fraction(&self) -> f64 {
        let total = self.n_rows() * self.n_cols();
        if total == 0 {
            return 0.0;
        }
        let nulls = self
            .rows
            .iter()
            .flat_map(|r| r.iter())
            .filter(|c| c.is_null())
            .count();
        nulls as f64 / total as f64
    }

    /// True when headers look synthetic/uninformative (`col0`, `col1`, …,
    /// empty, or single characters) — one of the failure slices the paper's
    /// hands-on §3.4 examines.
    pub fn is_headerless(&self) -> bool {
        self.columns.iter().all(|c| {
            let n = c.name.trim();
            n.is_empty()
                || n.chars().count() <= 1
                || (n.to_ascii_lowercase().starts_with("col")
                    && n[3.min(n.len())..].chars().all(|ch| ch.is_ascii_digit()))
        })
    }

    /// True when a majority of columns are numeric — the "numeric tables"
    /// failure slice of §3.4.
    pub fn is_mostly_numeric(&self) -> bool {
        let numeric = self
            .columns
            .iter()
            .filter(|c| matches!(c.sem_type, SemanticType::Integer | SemanticType::Float))
            .count();
        numeric * 2 > self.columns.len().max(1)
    }
}

impl fmt::Display for Table {
    /// Pretty-prints as a compact markdown-like grid (for examples/demos).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.caption.is_empty() {
            writeln!(f, "# {}", self.caption)?;
        }
        let names: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
        writeln!(f, "| {} |", names.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<&str> = row.iter().map(|c| c.text()).collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_strings(
            "t1",
            &["Country", "Capital", "Population"],
            &[
                &["France", "Paris", "67.8"],
                &["Australia", "Canberra", "25.69"],
                &["Japan", "Tokyo", "125.7"],
            ],
        )
        .with_caption("Population in Million by Country")
    }

    #[test]
    fn construction_and_shape() {
        let t = sample();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.cell(1, 1).text(), "Canberra");
        assert_eq!(t.caption, "Population in Million by Country");
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = Table::new(
            "bad",
            vec![Column::new("a"), Column::new("b")],
            vec![vec![Cell::new("1")]],
        )
        .unwrap_err();
        assert_eq!(
            err,
            TableError::RaggedRow {
                row: 0,
                found: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn column_types_inferred_on_construction() {
        let t = sample();
        assert_eq!(t.columns()[0].sem_type, SemanticType::Text);
        assert_eq!(t.columns()[2].sem_type, SemanticType::Float);
    }

    #[test]
    fn column_index_is_case_insensitive_fallback() {
        let t = sample();
        assert_eq!(t.column_index("Capital"), Some(1));
        assert_eq!(t.column_index("capital"), Some(1));
        assert_eq!(t.column_index("nope"), None);
    }

    #[test]
    fn select_rows_and_columns() {
        let t = sample();
        let top = t.select_rows(&[2, 0]);
        assert_eq!(top.n_rows(), 2);
        assert_eq!(top.cell(0, 0).text(), "Japan");
        let narrow = t.select_columns(&[2, 0]);
        assert_eq!(narrow.columns()[0].name, "Population");
        assert_eq!(narrow.cell(0, 1).text(), "France");
    }

    #[test]
    fn push_row_validates_width() {
        let mut t = sample();
        assert!(t.push_row(vec![Cell::new("x")]).is_err());
        assert!(t
            .push_row(vec![
                Cell::new("Kenya"),
                Cell::new("Nairobi"),
                Cell::new("54")
            ])
            .is_ok());
        assert_eq!(t.n_rows(), 4);
    }

    #[test]
    fn null_fraction_counts() {
        let t = Table::from_strings("n", &["a", "b"], &[&["1", ""], &["null", "2"]]);
        assert!((t.null_fraction() - 0.5).abs() < 1e-12);
        let empty = Table::new("e", vec![Column::new("a")], vec![]).unwrap();
        assert_eq!(empty.null_fraction(), 0.0);
    }

    #[test]
    fn headerless_detection() {
        let t = Table::from_strings("h", &["col0", "col1"], &[&["1", "2"]]);
        assert!(t.is_headerless());
        let t2 = Table::from_strings("h2", &["", "x"], &[&["1", "2"]]);
        assert!(t2.is_headerless());
        assert!(!sample().is_headerless());
    }

    #[test]
    fn numeric_table_detection() {
        let t = Table::from_strings(
            "n",
            &["a", "b", "c"],
            &[&["1", "2.5", "x"], &["3", "4.5", "y"]],
        );
        assert!(t.is_mostly_numeric());
        assert!(!sample().is_mostly_numeric());
    }

    #[test]
    fn display_renders_grid() {
        let s = sample().to_string();
        assert!(s.contains("# Population in Million by Country"));
        assert!(s.contains("| France | Paris | 67.8 |"));
    }

    #[test]
    fn try_accessors_return_typed_errors_not_panics() {
        let mut t = sample();
        let (rows, cols) = (t.n_rows(), t.n_cols());
        assert!(t.try_row(0).is_ok());
        assert_eq!(
            t.try_row(rows),
            Err(TableError::OutOfBounds {
                axis: "row",
                index: rows,
                len: rows
            })
        );
        assert_eq!(t.try_cell(0, 0).unwrap(), t.cell(0, 0));
        assert!(matches!(
            t.try_cell(0, cols),
            Err(TableError::OutOfBounds { axis: "column", .. })
        ));
        assert!(matches!(
            t.try_cell(rows, 0),
            Err(TableError::OutOfBounds { axis: "row", .. })
        ));
        assert!(t.try_cell_mut(0, 0).is_ok());
        assert!(t.try_cell_mut(rows, 0).is_err());
        assert_eq!(t.try_column_cells(0).unwrap().len(), rows);
        assert!(t.try_column_cells(cols).is_err());
        assert!(t.try_select_rows(&[0, rows]).is_err());
        assert_eq!(t.try_select_rows(&[0]).unwrap().n_rows(), 1);
        assert!(t.try_select_columns(&[cols]).is_err());
        assert_eq!(t.try_select_columns(&[1, 0]).unwrap().n_cols(), 2);
        let msg = t.try_row(rows).unwrap_err().to_string();
        assert!(msg.contains("out of range"), "{msg}");
    }
}
