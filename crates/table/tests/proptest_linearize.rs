//! Property tests for the linearizers: structural invariants over random
//! tables, budgets and strategies.

use ntr_table::{
    ColumnMajorLinearizer, Linearizer, LinearizerOptions, RowMajorLinearizer, Table,
    TapexLinearizer, TemplateLinearizer, TokenKind, TurlLinearizer,
};
use ntr_tokenizer::{train::WordPieceTrainer, WordPieceTokenizer};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    prop_oneof![
        proptest::string::string_regex("[a-z]{1,8}").expect("regex"),
        (0i64..10000).prop_map(|n| n.to_string()),
        Just(String::new()), // null cells
    ]
}

fn table() -> impl Strategy<Value = Table> {
    ((1usize..5), (1usize..4)).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(word(), rows * cols).prop_map(move |cells| {
            let headers: Vec<String> = (0..cols).map(|c| format!("h{c}")).collect();
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let row_strs: Vec<Vec<&str>> = (0..rows)
                .map(|r| (0..cols).map(|c| cells[r * cols + c].as_str()).collect())
                .collect();
            let slices: Vec<&[&str]> = row_strs.iter().map(Vec::as_slice).collect();
            Table::from_strings("prop", &header_refs, &slices).with_caption("a caption")
        })
    })
}

fn tokenizer() -> WordPieceTokenizer {
    let corpus = ["a b c d e f g h i j k l m n o p q r s t u v w x y z 0 1 2 3 4 5 6 7 8 9 | : ; , . h0 h1 h2 caption row col is the"];
    WordPieceTokenizer::new(WordPieceTrainer::new(400).train(corpus.iter().copied()))
}

fn all_linearizers() -> Vec<Box<dyn Linearizer>> {
    vec![
        Box::new(RowMajorLinearizer),
        Box::new(TemplateLinearizer),
        Box::new(ColumnMajorLinearizer),
        Box::new(TapexLinearizer),
        Box::new(TurlLinearizer),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn budgets_are_never_exceeded(t in table(), budget in 1usize..80) {
        let tok = tokenizer();
        let opts = LinearizerOptions { max_tokens: budget, ..Default::default() };
        for lin in all_linearizers() {
            let e = lin.linearize(&t, &t.caption, &tok, &opts);
            prop_assert!(e.len() <= budget, "{} exceeded {budget}: {}", lin.name(), e.len());
        }
    }

    #[test]
    fn coordinates_stay_within_table_bounds(t in table()) {
        let tok = tokenizer();
        let opts = LinearizerOptions::default();
        for lin in all_linearizers() {
            let e = lin.linearize(&t, &t.caption, &tok, &opts);
            for m in e.meta() {
                prop_assert!(m.row <= t.n_rows(), "{}", lin.name());
                prop_assert!(m.col <= t.n_cols(), "{}", lin.name());
                prop_assert!(m.rank <= t.n_rows(), "{}", lin.name());
                if m.kind == TokenKind::Cell {
                    prop_assert!(m.row >= 1 && m.col >= 1, "{}", lin.name());
                }
            }
        }
    }

    #[test]
    fn generous_budget_covers_every_cell(t in table()) {
        let tok = tokenizer();
        let opts = LinearizerOptions { max_tokens: 4096, ..Default::default() };
        for lin in all_linearizers() {
            let e = lin.linearize(&t, &t.caption, &tok, &opts);
            prop_assert_eq!(e.truncated_rows(), 0, "{}", lin.name());
            for r in 0..t.n_rows() {
                for c in 0..t.n_cols() {
                    prop_assert!(e.cell_span(r, c).is_some(), "{} ({r},{c})", lin.name());
                }
            }
        }
    }

    #[test]
    fn spans_are_disjoint_and_in_bounds(t in table()) {
        let tok = tokenizer();
        let opts = LinearizerOptions::default();
        for lin in all_linearizers() {
            let e = lin.linearize(&t, &t.caption, &tok, &opts);
            let mut seen = vec![false; e.len()];
            for (_, span) in e.cells() {
                prop_assert!(span.end <= e.len(), "{}", lin.name());
                for i in span {
                    prop_assert!(!seen[i], "{}: overlapping cell spans", lin.name());
                    seen[i] = true;
                }
            }
        }
    }

    #[test]
    fn encoding_is_deterministic(t in table()) {
        let tok = tokenizer();
        let opts = LinearizerOptions::default();
        for lin in all_linearizers() {
            let a = lin.linearize(&t, &t.caption, &tok, &opts);
            let b = lin.linearize(&t, &t.caption, &tok, &opts);
            prop_assert_eq!(a.ids(), b.ids(), "{}", lin.name());
        }
    }
}
