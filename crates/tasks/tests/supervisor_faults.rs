//! Fault drills for the self-healing supervisor: every injected fault
//! class — NaN gradients, a panicking pool worker, a simulated hard kill,
//! a corrupted checkpoint — must end in either a finite, complete training
//! run (`Ok`) or a typed [`TrainError`] after the retry budget, and
//! **never** a panic or abort. Runs under `NTR_THREADS={1,4}` ×
//! `NTR_FAULTS` on/off in CI.

use ntr_corpus::tables::{CorpusConfig, TableCorpus};
use ntr_corpus::{World, WorldConfig};
use ntr_models::{ModelConfig, VanillaBert};
use ntr_nn::init::SeededInit;
use ntr_nn::serialize::load_checkpoint;
use ntr_nn::Linear;
use ntr_table::RowMajorLinearizer;
use ntr_tasks::supervisor::{run_supervised, SupervisorConfig, TrainError};
use ntr_tasks::trainer::{TrainConfig, TrainerOptions};
use ntr_tasks::TrainRun;
use ntr_tensor::faults::FaultPlan;
use ntr_tensor::par;
use ntr_tokenizer::WordPieceTokenizer;
use std::path::PathBuf;

fn small_world() -> (TableCorpus, WordPieceTokenizer) {
    let w = World::generate(WorldConfig {
        n_countries: 8,
        n_people: 10,
        n_films: 8,
        n_clubs: 6,
        seed: 5,
    });
    let corpus = TableCorpus::generate_entity_only(
        &w,
        &CorpusConfig {
            n_tables: 8,
            min_rows: 3,
            max_rows: 5,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 6,
        },
    );
    let tok = ntr_corpus::vocab::train_tokenizer(&corpus, &[], 1200);
    (corpus, tok)
}

fn tiny_model(tok: &WordPieceTokenizer) -> VanillaBert {
    VanillaBert::new(&ModelConfig {
        vocab_size: tok.vocab_size(),
        ..ModelConfig::tiny(tok.vocab_size())
    })
}

fn drill_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        lr: 3e-3,
        batch_size: 4,
        warmup_frac: 0.1,
        seed: 11,
    }
}

/// Rollback-enabled supervisor with the given fault plan and no clipping
/// (anomalies are detected through the unclipped global gradient norm).
fn healing(plan: &str, max_retries: u32) -> SupervisorConfig {
    SupervisorConfig {
        clip_norm: None,
        rollback: true,
        max_retries,
        spike_factor: 0.0, // drills target injected faults, not EMA noise
        ema_alpha: 0.1,
        lr_backoff: 0.5,
        snapshot_every: 1,
        faults: Some(FaultPlan::parse(plan).unwrap()),
    }
}

fn ckpt_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ntr_supervisor_faults");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn nan_fault_rolls_back_and_skips_the_poisoned_batch() {
    let (corpus, tok) = small_world();
    let mut baseline = tiny_model(&tok);
    let reference = TrainRun::new(drill_cfg())
        .max_tokens(48)
        .linearizer(&RowMajorLinearizer)
        .trainer(&TrainerOptions::default())
        .mlm(&mut baseline, &corpus, &tok)
        .map_err(TrainError::into_checkpoint_error)
        .unwrap();
    assert!(reference.mlm_loss.len() >= 4);

    let mut model = tiny_model(&tok);
    let report = TrainRun::new(drill_cfg())
        .max_tokens(48)
        .linearizer(&RowMajorLinearizer)
        .trainer(&TrainerOptions::default())
        .supervisor(&healing("nan@2", 3))
        .mlm(&mut model, &corpus, &tok)
        .unwrap();

    // One batch window was skipped; every surviving loss is finite, and the
    // pre-fault prefix is bit-identical to the unsupervised baseline.
    assert_eq!(report.mlm_loss.len(), reference.mlm_loss.len() - 1);
    assert!(report.mlm_loss.iter().all(|l| l.is_finite()));
    assert_eq!(
        bits(&report.mlm_loss[..2]),
        bits(&reference.mlm_loss[..2]),
        "healthy steps before the fault must match the baseline"
    );
}

#[test]
fn worker_panic_fault_recovers_under_four_threads() {
    let (corpus, tok) = small_world();
    for threads in [1usize, 4] {
        par::with_threads(threads, || {
            let mut model = tiny_model(&tok);
            let report = TrainRun::new(drill_cfg())
                .max_tokens(48)
                .linearizer(&RowMajorLinearizer)
                .trainer(&TrainerOptions::default())
                .supervisor(&healing("panic@1", 3))
                .mlm(&mut model, &corpus, &tok)
                .unwrap();
            assert!(
                report.mlm_loss.iter().all(|l| l.is_finite()),
                "threads={threads}"
            );
            assert!(!report.mlm_loss.is_empty(), "threads={threads}");
        });
    }
}

#[test]
fn crash_fault_resumes_from_disk_and_stays_bit_identical() {
    let (corpus, tok) = small_world();
    let mut baseline = tiny_model(&tok);
    let reference = TrainRun::new(drill_cfg())
        .max_tokens(48)
        .linearizer(&RowMajorLinearizer)
        .trainer(&TrainerOptions::default())
        .mlm(&mut baseline, &corpus, &tok)
        .map_err(TrainError::into_checkpoint_error)
        .unwrap();

    // Checkpoint every step: the simulated kill at step 3 restores the
    // exact pre-kill state, so the full loss trace matches the
    // uninterrupted run bit for bit.
    let path = ckpt_path("crash_drill.ntrw");
    let mut model = tiny_model(&tok);
    let report = TrainRun::new(drill_cfg())
        .max_tokens(48)
        .linearizer(&RowMajorLinearizer)
        .trainer(&TrainerOptions {
            checkpoint: Some((path.clone(), 1)),
            resume: None,
            halt_after: None,
            obs: Default::default(),
        })
        .supervisor(&healing("crash@3", 0))
        .mlm(&mut model, &corpus, &tok)
        .unwrap();
    assert_eq!(bits(&report.mlm_loss), bits(&reference.mlm_loss));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_ckpt_fault_leaves_a_detectably_broken_file() {
    let (corpus, tok) = small_world();
    let path = ckpt_path("corrupt_drill.ntrw");
    let mut model = tiny_model(&tok);
    TrainRun::new(drill_cfg())
        .max_tokens(48)
        .linearizer(&RowMajorLinearizer)
        .trainer(&TrainerOptions {
            checkpoint: Some((path.clone(), 2)),
            resume: None,
            halt_after: Some(2),
            obs: Default::default(),
        })
        .supervisor(&healing("corrupt-ckpt@2", 0))
        .mlm(&mut model, &corpus, &tok)
        .unwrap();
    // The checkpoint written at step 2 was bit-flipped; the CRC-checked
    // loader must reject it with a typed error, not garbage weights.
    assert!(path.exists());
    assert!(load_checkpoint(&path).is_err());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn crash_with_corrupt_checkpoint_falls_back_to_initial_state() {
    let (corpus, tok) = small_world();
    let mut baseline = tiny_model(&tok);
    let reference = TrainRun::new(drill_cfg())
        .max_tokens(48)
        .linearizer(&RowMajorLinearizer)
        .trainer(&TrainerOptions::default())
        .mlm(&mut baseline, &corpus, &tok)
        .map_err(TrainError::into_checkpoint_error)
        .unwrap();
    assert!(reference.mlm_loss.len() >= 6);

    // The step-3 checkpoint is corrupted, then the kill hits at step 4
    // (before step 6 would write a fresh one). Recovery falls back to the
    // initial state and deterministically replays, so the final trace is
    // still bit-identical to the uninterrupted run.
    let path = ckpt_path("corrupt_crash_drill.ntrw");
    let mut model = tiny_model(&tok);
    let report = TrainRun::new(drill_cfg())
        .max_tokens(48)
        .linearizer(&RowMajorLinearizer)
        .trainer(&TrainerOptions {
            checkpoint: Some((path.clone(), 3)),
            resume: None,
            halt_after: None,
            obs: Default::default(),
        })
        .supervisor(&healing("corrupt-ckpt@3,crash@4", 0))
        .mlm(&mut model, &corpus, &tok)
        .unwrap();
    assert_eq!(bits(&report.mlm_loss), bits(&reference.mlm_loss));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exhausted_retries_abort_with_a_typed_error() {
    let (corpus, tok) = small_world();
    let mut model = tiny_model(&tok);
    // Four NaN faults all due from step 1 on; two retries allowed. The
    // third anomaly must abort with RetriesExhausted — not a panic.
    let err = TrainRun::new(drill_cfg())
        .max_tokens(48)
        .linearizer(&RowMajorLinearizer)
        .trainer(&TrainerOptions::default())
        .supervisor(&healing("nan@1,nan@1,nan@1,nan@1", 2))
        .mlm(&mut model, &corpus, &tok)
        .unwrap_err();
    match err {
        TrainError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 2),
        other => panic!("expected RetriesExhausted, got: {other}"),
    }
}

#[test]
fn anomaly_without_rollback_is_a_typed_error() {
    let (corpus, tok) = small_world();
    let mut model = tiny_model(&tok);
    let err = TrainRun::new(drill_cfg())
        .max_tokens(48)
        .linearizer(&RowMajorLinearizer)
        .trainer(&TrainerOptions::default())
        .supervisor(&SupervisorConfig {
            clip_norm: Some(1.0),
            rollback: false,
            faults: Some(FaultPlan::parse("nan@0").unwrap()),
            ..SupervisorConfig::default()
        })
        .mlm(&mut model, &corpus, &tok)
        .unwrap_err();
    match err {
        TrainError::Anomaly { step, ref anomaly } => {
            assert_eq!(step, 0);
            assert!(anomaly.contains("gradient norm"), "{anomaly}");
        }
        other => panic!("expected Anomaly, got: {other}"),
    }
}

#[test]
fn loss_spike_is_rolled_back_and_skipped() {
    // Synthetic driver: a scripted loss of 50.0 at batch (epoch 0, pos 2)
    // against a baseline of 1.0 must trip the 4× EMA detector; the window
    // is skipped and every surviving loss is the baseline.
    let mut model = Linear::new(2, 2, &mut SeededInit::new(7));
    let cfg = TrainConfig {
        epochs: 2,
        lr: 1e-3,
        batch_size: 2,
        warmup_frac: 0.0,
        seed: 3,
    };
    let scfg = SupervisorConfig {
        rollback: true,
        max_retries: 3,
        spike_factor: 4.0,
        ema_alpha: 0.1,
        lr_backoff: 0.5,
        ..SupervisorConfig::default()
    };
    let out = run_supervised(
        &mut model,
        &cfg,
        8,
        &TrainerOptions::default(),
        &scfg,
        |l: &f32| *l,
        |_, batch, _obs| {
            if batch[0].epoch == 0 && batch[0].pos == 2 {
                50.0
            } else {
                1.0
            }
        },
    )
    .unwrap();
    assert_eq!(out.len(), 7, "one of 8 batch windows is skipped");
    assert!(out.iter().all(|&l| l == 1.0));
}

#[test]
fn env_fault_plan_drill_survives_any_schedule() {
    // The CI fault-matrix leg sets NTR_FAULTS; locally the drill uses a
    // default schedule. Whatever the plan says, a rollback-enabled run
    // with checkpointing must end Ok with finite losses.
    let plan = match FaultPlan::from_env() {
        Ok(Some(p)) => p,
        Ok(None) => FaultPlan::parse("nan@1,crash@3,panic@4").unwrap(),
        Err(e) => panic!("malformed NTR_FAULTS: {e}"),
    };
    let (corpus, tok) = small_world();
    let path = ckpt_path("env_drill.ntrw");
    let mut model = tiny_model(&tok);
    let scfg = SupervisorConfig {
        faults: Some(plan),
        ..SupervisorConfig::resilient()
    };
    let report = TrainRun::new(drill_cfg())
        .max_tokens(48)
        .linearizer(&RowMajorLinearizer)
        .trainer(&TrainerOptions {
            checkpoint: Some((path.clone(), 2)),
            resume: None,
            halt_after: None,
            obs: Default::default(),
        })
        .supervisor(&scfg)
        .mlm(&mut model, &corpus, &tok)
        .unwrap();
    assert!(!report.mlm_loss.is_empty());
    assert!(report.mlm_loss.iter().all(|l| l.is_finite()));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disabled_supervisor_is_bit_identical_to_resumable() {
    let (corpus, tok) = small_world();
    let mut a = tiny_model(&tok);
    let ra = TrainRun::new(drill_cfg())
        .max_tokens(48)
        .linearizer(&RowMajorLinearizer)
        .trainer(&TrainerOptions::default())
        .mlm(&mut a, &corpus, &tok)
        .map_err(TrainError::into_checkpoint_error)
        .unwrap();
    let mut b = tiny_model(&tok);
    let rb = TrainRun::new(drill_cfg())
        .max_tokens(48)
        .linearizer(&RowMajorLinearizer)
        .trainer(&TrainerOptions::default())
        .supervisor(&SupervisorConfig::default())
        .mlm(&mut b, &corpus, &tok)
        .unwrap();
    assert_eq!(bits(&ra.mlm_loss), bits(&rb.mlm_loss));
    assert_eq!(bits(&ra.mlm_acc), bits(&rb.mlm_acc));
}
