//! The headline checkpointing guarantee, end to end: training 2N steps
//! straight versus training N steps, "crashing", and resuming for N more
//! must produce **bit-identical** parameters, optimizer moments, and loss
//! traces — for TURL pretraining and imputation fine-tuning, with dropout
//! active so the checkpointed RNG streams are load-bearing.
//!
//! These tests are run under `NTR_THREADS=1` and `NTR_THREADS=4` in CI; the
//! guarantee must hold regardless of the thread count.

use ntr_corpus::datasets::ImputationDataset;
use ntr_corpus::tables::{CorpusConfig, TableCorpus};
use ntr_corpus::{World, WorldConfig};
use ntr_models::{ModelConfig, Turl, VanillaBert};
use ntr_nn::serialize::TrainCheckpoint;
use ntr_nn::Layer;
use ntr_tasks::imputation::finetune_resumable;
use ntr_tasks::supervisor::TrainError;
use ntr_tasks::trainer::{TrainConfig, TrainerOptions};
use ntr_tasks::TrainRun;
use ntr_tokenizer::WordPieceTokenizer;
use std::path::PathBuf;

fn small_world() -> (World, TableCorpus, WordPieceTokenizer) {
    let w = World::generate(WorldConfig {
        n_countries: 8,
        n_people: 10,
        n_films: 8,
        n_clubs: 6,
        seed: 5,
    });
    let corpus = TableCorpus::generate_entity_only(
        &w,
        &CorpusConfig {
            n_tables: 8,
            min_rows: 3,
            max_rows: 5,
            null_prob: 0.0,
            headerless_prob: 0.0,
            seed: 6,
        },
    );
    let tok = ntr_corpus::vocab::train_tokenizer(&corpus, &[], 1200);
    (w, corpus, tok)
}

fn ckpt_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ntr_resume_equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Bit patterns of every parameter, keyed by name.
fn param_bits(model: &mut dyn Layer) -> Vec<(String, Vec<u32>)> {
    TrainCheckpoint::capture(model)
        .params
        .into_iter()
        .map(|(n, t)| (n, t.data().iter().map(|v| v.to_bits()).collect()))
        .collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn turl_pretraining_resume_is_bit_identical() {
    let (w, corpus, tok) = small_world();
    let mcfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        n_entities: w.n_entities(),
        dropout: 0.1, // dropout ON: the RNG streams must survive the resume
        ..ModelConfig::tiny(tok.vocab_size())
    };
    let tcfg = TrainConfig {
        epochs: 2,
        lr: 3e-3,
        batch_size: 4,
        warmup_frac: 0.1,
        seed: 42,
    };
    let path = ckpt_path("turl.ntrw");

    // Reference: one uninterrupted run.
    let mut straight = Turl::new(&mcfg);
    let full = TrainRun::new(tcfg)
        .max_tokens(64)
        .trainer(&TrainerOptions::default())
        .turl(&mut straight, &corpus, &tok)
        .map_err(TrainError::into_checkpoint_error)
        .unwrap();
    assert!(full.mlm_loss.len() >= 4, "need ≥4 steps to halt mid-run");
    let halt_at = (full.mlm_loss.len() / 2) as u64;

    // "Crashed" run: checkpoint every step, stop halfway.
    let mut crashed = Turl::new(&mcfg);
    let head = TrainRun::new(tcfg)
        .max_tokens(64)
        .trainer(&TrainerOptions {
            checkpoint: Some((path.clone(), 1)),
            resume: None,
            halt_after: Some(halt_at),
            obs: Default::default(),
        })
        .turl(&mut crashed, &corpus, &tok)
        .map_err(TrainError::into_checkpoint_error)
        .unwrap();
    assert_eq!(head.mlm_loss.len() as u64, halt_at);

    // Resume into a *differently initialized* model: every weight, moment,
    // and RNG stream must come from the checkpoint, not the constructor.
    let mut resumed = Turl::new(&ModelConfig {
        seed: 0xDEAD,
        ..mcfg
    });
    let tail = TrainRun::new(tcfg)
        .max_tokens(64)
        .trainer(&TrainerOptions {
            checkpoint: None,
            resume: Some(path.clone()),
            halt_after: None,
            obs: Default::default(),
        })
        .turl(&mut resumed, &corpus, &tok)
        .map_err(TrainError::into_checkpoint_error)
        .unwrap();

    // Loss traces: head ++ tail == full, bit for bit, on both objectives.
    let stitched_mlm: Vec<u32> = bits(&head.mlm_loss)
        .into_iter()
        .chain(bits(&tail.mlm_loss))
        .collect();
    assert_eq!(stitched_mlm, bits(&full.mlm_loss), "MLM loss trace differs");
    let stitched_mer: Vec<u32> = bits(&head.mer_loss)
        .into_iter()
        .chain(bits(&tail.mer_loss))
        .collect();
    assert_eq!(stitched_mer, bits(&full.mer_loss), "MER loss trace differs");

    // Final parameters bit-identical.
    assert_eq!(
        param_bits(&mut straight),
        param_bits(&mut resumed),
        "final parameters differ after resume"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn imputation_finetune_resume_is_bit_identical() {
    let (_, corpus, tok) = small_world();
    let ds = ImputationDataset::build(&corpus, 2, 4);
    let mcfg = ModelConfig {
        vocab_size: tok.vocab_size(),
        dropout: 0.1,
        ..ModelConfig::tiny(tok.vocab_size())
    };
    let tcfg = TrainConfig {
        epochs: 2,
        lr: 3e-3,
        batch_size: 4,
        warmup_frac: 0.1,
        seed: 9,
    };
    let path = ckpt_path("imputation.ntrw");

    let mut straight = VanillaBert::new(&mcfg);
    let full = finetune_resumable(
        &mut straight,
        &ds,
        &tok,
        &tcfg,
        96,
        &TrainerOptions::default(),
    )
    .unwrap();
    assert!(full.len() >= 4, "need ≥4 steps to halt mid-run");
    let halt_at = (full.len() / 2) as u64;

    let mut crashed = VanillaBert::new(&mcfg);
    let head = finetune_resumable(
        &mut crashed,
        &ds,
        &tok,
        &tcfg,
        96,
        &TrainerOptions {
            checkpoint: Some((path.clone(), 1)),
            resume: None,
            halt_after: Some(halt_at),
            obs: Default::default(),
        },
    )
    .unwrap();

    let mut resumed = VanillaBert::new(&ModelConfig {
        seed: 0xDEAD,
        ..mcfg
    });
    let tail = finetune_resumable(
        &mut resumed,
        &ds,
        &tok,
        &tcfg,
        96,
        &TrainerOptions {
            checkpoint: None,
            resume: Some(path.clone()),
            halt_after: None,
            obs: Default::default(),
        },
    )
    .unwrap();

    let stitched: Vec<u32> = bits(&head).into_iter().chain(bits(&tail)).collect();
    assert_eq!(stitched, bits(&full), "fine-tuning loss trace differs");
    assert_eq!(
        param_bits(&mut straight),
        param_bits(&mut resumed),
        "final parameters differ after resume"
    );
    let _ = std::fs::remove_file(&path);
}
