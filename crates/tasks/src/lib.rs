//! # ntr-tasks
//!
//! Training loops, evaluation metrics, non-neural baselines and analysis
//! probes for every downstream task in the paper's §2.1:
//!
//! * [`pretrain`] — the hands-on §3.3: MLM pretraining for any encoder,
//!   joint MLM + masked-entity-recovery for TURL, and neural-SQL-executor
//!   pretraining for TAPEX — all behind one [`Objective`] dispatch;
//! * [`distill`] — teacher–student distillation of a frozen encoder into
//!   the per-row student that serves at int8 (DESIGN.md §13);
//! * [`imputation`] — the hands-on §3.4: fine-tune for data imputation,
//!   evaluate accuracy/F1 with failure slices (numeric / headerless);
//! * [`qa`] — TAPAS-style cell-selection question answering;
//! * [`nli`] — tabular fact verification (TabFact-like);
//! * [`retrieval`] — dense table retrieval vs. a lexical baseline;
//! * [`cta`] — column type annotation (metadata prediction);
//! * [`linking`] — entity linking with TURL entity embeddings;
//! * [`text2sql`] — seq2seq semantic parsing evaluated by denotation;
//! * [`supervisor`] — the self-healing training supervisor: anomaly
//!   detection, checkpoint rollback, retry with LR backoff, and
//!   deterministic fault drills;
//! * [`probes`] — §2.4's "consistency of the data representation" tests
//!   (row/column-order invariance, header sensitivity);
//! * [`aggqa`] — TAPAS-style aggregation prediction (operator + column);
//! * [`visualize`] — §3.3's attention/encoding inspection utilities;
//! * [`metrics`] — accuracy, P/R/F1, MRR, NDCG, Hits@k.

pub mod aggqa;
pub mod cta;
pub mod distill;
pub mod imputation;
pub mod linking;
pub mod metrics;
pub mod nli;
pub mod pretrain;
pub mod probes;
pub mod qa;
pub mod retrieval;
pub mod supervisor;
pub mod text2sql;
pub mod trainer;
pub mod visualize;

pub use distill::{DistillReport, DistillRun};
pub use pretrain::{Objective, RunReport, TrainRun};
pub use trainer::TrainConfig;
