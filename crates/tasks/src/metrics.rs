//! Evaluation metrics shared by every task.
//!
//! The classification metrics come in two forms: `try_*` variants that
//! return a typed [`MetricsError`] on mismatched input lengths, and the
//! original infallible names, which **saturate** instead of panicking —
//! they score the common prefix and record a `warn/metric_len_mismatch`
//! counter in `ntr-obs` (the no-panic policy: an eval harness bug must
//! not kill a training run that already paid for its steps).

/// Typed failure from an evaluation metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// Prediction and gold slices have different lengths.
    LengthMismatch {
        /// Which metric was called.
        metric: &'static str,
        /// Predictions supplied.
        pred: usize,
        /// Golds supplied.
        gold: usize,
    },
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::LengthMismatch { metric, pred, gold } => write!(
                f,
                "{metric}: length mismatch ({pred} predictions vs {gold} golds)"
            ),
        }
    }
}

impl std::error::Error for MetricsError {}

/// Checks pred/gold lengths for `metric`.
fn check_lengths(metric: &'static str, pred: usize, gold: usize) -> Result<(), MetricsError> {
    if pred == gold {
        Ok(())
    } else {
        Err(MetricsError::LengthMismatch { metric, pred, gold })
    }
}

/// On a length mismatch, records the traced warning and returns the
/// common-prefix length both slices can be scored over.
fn saturate(pred: usize, gold: usize) -> usize {
    if pred != gold {
        ntr_obs::warnings::metric_len_mismatch();
    }
    pred.min(gold)
}

/// Fraction of correct predictions. Returns 0.0 on empty input. Mismatched
/// lengths saturate to the common prefix (see [`try_accuracy`] for the
/// typed-error form).
pub fn accuracy<T: PartialEq>(pred: &[T], gold: &[T]) -> f64 {
    let n = saturate(pred.len(), gold.len());
    if n == 0 {
        return 0.0;
    }
    let hits = pred[..n]
        .iter()
        .zip(&gold[..n])
        .filter(|(p, g)| p == g)
        .count();
    hits as f64 / n as f64
}

/// [`accuracy`] with a typed error on mismatched input lengths.
pub fn try_accuracy<T: PartialEq>(pred: &[T], gold: &[T]) -> Result<f64, MetricsError> {
    check_lengths("accuracy", pred.len(), gold.len())?;
    Ok(accuracy(pred, gold))
}

/// Binary precision / recall / F1 for boolean predictions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prf {
    /// Precision (0 when no positive predictions).
    pub precision: f64,
    /// Recall (0 when no positive golds).
    pub recall: f64,
    /// F1 (harmonic mean; 0 when both are 0).
    pub f1: f64,
}

/// Binary P/R/F1, treating `true` as the positive class. Mismatched
/// lengths saturate to the common prefix (see [`try_binary_prf`]).
pub fn binary_prf(pred: &[bool], gold: &[bool]) -> Prf {
    let n = saturate(pred.len(), gold.len());
    let (pred, gold) = (&pred[..n], &gold[..n]);
    let tp = pred.iter().zip(gold).filter(|(&p, &g)| p && g).count() as f64;
    let fp = pred.iter().zip(gold).filter(|(&p, &g)| p && !g).count() as f64;
    let fn_ = pred.iter().zip(gold).filter(|(&p, &g)| !p && g).count() as f64;
    let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
    let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    Prf {
        precision,
        recall,
        f1,
    }
}

/// [`binary_prf`] with a typed error on mismatched input lengths.
pub fn try_binary_prf(pred: &[bool], gold: &[bool]) -> Result<Prf, MetricsError> {
    check_lengths("binary_prf", pred.len(), gold.len())?;
    Ok(binary_prf(pred, gold))
}

/// Macro-averaged F1 over `n_classes` classes: per-class one-vs-rest F1,
/// averaged with equal class weight (classes absent from gold and pred
/// contribute 0, matching scikit-learn's default). Mismatched lengths
/// saturate to the common prefix (see [`try_macro_f1`]).
pub fn macro_f1(pred: &[usize], gold: &[usize], n_classes: usize) -> f64 {
    let n = saturate(pred.len(), gold.len());
    let (pred, gold) = (&pred[..n], &gold[..n]);
    if n_classes == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for class in 0..n_classes {
        let p: Vec<bool> = pred.iter().map(|&x| x == class).collect();
        let g: Vec<bool> = gold.iter().map(|&x| x == class).collect();
        // Skip classes that never occur anywhere (keeps small test sets fair).
        if !p.iter().any(|&x| x) && !g.iter().any(|&x| x) {
            continue;
        }
        total += binary_prf(&p, &g).f1;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// [`macro_f1`] with a typed error on mismatched input lengths.
pub fn try_macro_f1(pred: &[usize], gold: &[usize], n_classes: usize) -> Result<f64, MetricsError> {
    check_lengths("macro_f1", pred.len(), gold.len())?;
    Ok(macro_f1(pred, gold, n_classes))
}

/// Mean reciprocal rank: for each query, `ranks[i]` is the 1-based rank of
/// the first relevant item (`None` when absent → contributes 0).
pub fn mrr(ranks: &[Option<usize>]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks
        .iter()
        .map(|r| r.map_or(0.0, |rank| 1.0 / rank as f64))
        .sum::<f64>()
        / ranks.len() as f64
}

/// Hits@k: fraction of queries whose first relevant item ranks ≤ k.
pub fn hits_at_k(ranks: &[Option<usize>], k: usize) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks
        .iter()
        .filter(|r| matches!(r, Some(rank) if *rank <= k))
        .count() as f64
        / ranks.len() as f64
}

/// NDCG@k with binary relevance and a single relevant item per query:
/// `1 / log2(rank + 1)` when the item ranks ≤ k, else 0 (IDCG = 1).
pub fn ndcg_at_k(ranks: &[Option<usize>], k: usize) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks
        .iter()
        .map(|r| match r {
            Some(rank) if *rank <= k => 1.0 / ((*rank as f64) + 1.0).log2(),
            _ => 0.0,
        })
        .sum::<f64>()
        / ranks.len() as f64
}

/// Ranks items by descending score and returns the 1-based rank of
/// `target` (ties resolved against the target, i.e. pessimistically).
pub fn rank_of(scores: &[f64], target: usize) -> Option<usize> {
    if target >= scores.len() {
        return None;
    }
    let t = scores[target];
    if !t.is_finite() {
        return None;
    }
    let better = scores
        .iter()
        .enumerate()
        .filter(|&(i, &s)| i != target && (s > t || (s == t && i < target)))
        .count();
    Some(better + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 9, 3]), 2.0 / 3.0);
        assert_eq!(accuracy::<usize>(&[], &[]), 0.0);
    }

    #[test]
    fn mismatched_lengths_saturate_instead_of_panicking() {
        let before = ntr_obs::warnings::metric_len_mismatches();
        // Scores the common prefix [1, 2] vs [1, 9].
        assert_eq!(accuracy(&[1, 2, 3], &[1, 9]), 0.5);
        assert_eq!(binary_prf(&[true], &[true, false]).f1, 1.0);
        assert_eq!(macro_f1(&[0, 0], &[0], 2), 1.0);
        assert!(
            ntr_obs::warnings::metric_len_mismatches() >= before + 3,
            "each saturation must record a warning"
        );
    }

    #[test]
    fn try_variants_return_typed_errors() {
        assert_eq!(try_accuracy(&[1, 2], &[1, 2]), Ok(1.0));
        assert_eq!(
            try_accuracy(&[1, 2, 3], &[1, 9]),
            Err(MetricsError::LengthMismatch {
                metric: "accuracy",
                pred: 3,
                gold: 2
            })
        );
        assert!(try_binary_prf(&[true], &[true, false]).is_err());
        assert!(try_macro_f1(&[0], &[0, 1], 2).is_err());
        let msg = try_macro_f1(&[0], &[0, 1], 2).unwrap_err().to_string();
        assert!(msg.contains("macro_f1") && msg.contains("1 predictions vs 2 golds"));
    }

    #[test]
    fn binary_prf_hand_checked() {
        // pred: T T F F ; gold: T F T F → tp=1 fp=1 fn=1
        let m = binary_prf(&[true, true, false, false], &[true, false, true, false]);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!((m.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn binary_prf_degenerate() {
        let m = binary_prf(&[false, false], &[false, false]);
        assert_eq!(m.f1, 0.0);
        let m = binary_prf(&[true, true], &[true, true]);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn macro_f1_weighs_classes_equally() {
        // Class 1 perfectly predicted, class 0 never predicted correctly.
        let pred = [1, 1, 1, 1, 1];
        let gold = [1, 1, 1, 1, 0];
        let f1 = macro_f1(&pred, &gold, 2);
        // class1: p=4/5, r=1 → f1=8/9 ; class0: 0 → macro = 4/9
        assert!((f1 - 4.0 / 9.0).abs() < 1e-9, "{f1}");
    }

    #[test]
    fn macro_f1_skips_absent_classes() {
        let f1 = macro_f1(&[0, 0], &[0, 0], 10);
        assert_eq!(f1, 1.0, "only class 0 occurs and it is perfect");
    }

    #[test]
    fn ranking_metrics() {
        let ranks = [Some(1), Some(2), None, Some(5)];
        assert!((mrr(&ranks) - (1.0 + 0.5 + 0.0 + 0.2) / 4.0).abs() < 1e-12);
        assert_eq!(hits_at_k(&ranks, 1), 0.25);
        assert_eq!(hits_at_k(&ranks, 2), 0.5);
        assert_eq!(hits_at_k(&ranks, 5), 0.75);
        let n = ndcg_at_k(&ranks, 5);
        let expect = (1.0 + 1.0 / 3f64.log2() + 0.0 + 1.0 / 6f64.log2()) / 4.0;
        assert!((n - expect).abs() < 1e-9);
    }

    #[test]
    fn rank_of_is_pessimistic_on_ties() {
        assert_eq!(rank_of(&[0.5, 0.9, 0.5], 0), Some(2));
        assert_eq!(
            rank_of(&[0.5, 0.9, 0.5], 2),
            Some(3),
            "tie at lower index wins"
        );
        assert_eq!(rank_of(&[0.1], 0), Some(1));
        assert_eq!(rank_of(&[0.1], 5), None);
        assert_eq!(rank_of(&[f64::NAN, 1.0], 0), None);
    }
}
