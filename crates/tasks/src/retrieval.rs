//! Table retrieval (§2.1): rank a table pool for a natural-language query.
//!
//! Two systems, as in the survey's comparison of neural vs. traditional:
//!
//! * **dense bi-encoder** — one shared [`SequenceEncoder`] embeds queries
//!   and tables ( `[CLS]` state); cosine similarity ranks. Optional
//!   contrastive fine-tuning (in-batch negatives) uses clone-and-merge
//!   weight sharing (`ntr_nn::merge_grads`);
//! * **lexical tf-idf baseline** — classic bag-of-words cosine.

use crate::metrics::{hits_at_k, mrr, ndcg_at_k, rank_of};
use crate::trainer::{epoch_order, ScheduledOptimizer, TrainConfig};
use ntr_corpus::datasets::RetrievalDataset;
use ntr_corpus::Split;
use ntr_models::{EncoderInput, SequenceEncoder};
use ntr_nn::loss::softmax_cross_entropy;
use ntr_nn::merge_grads;
use ntr_table::{Linearizer, LinearizerOptions, RowMajorLinearizer, Table};
use ntr_tensor::Tensor;
use ntr_tokenizer::{SpecialToken, WordPieceTokenizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Builds the query-side encoder input: `[CLS] query-tokens`.
pub fn query_input(query: &str, tok: &WordPieceTokenizer) -> EncoderInput {
    let mut ids = vec![SpecialToken::Cls.id()];
    ids.extend(tok.encode(query));
    EncoderInput::from_text_ids(ids)
}

/// Builds the table-side encoder input (caption + row-major content).
pub fn table_input(
    table: &Table,
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> EncoderInput {
    let e = RowMajorLinearizer.linearize(table, &table.caption, tok, opts);
    EncoderInput::from_encoded(&e)
}

/// Embeds an input as its `[CLS]` state, shape `[1, d]`.
pub fn embed<M: SequenceEncoder>(model: &mut M, input: &EncoderInput) -> Tensor {
    let states = model.encode(input, false);
    states.rows(0, 1)
}

/// Retrieval quality over a split.
#[derive(Debug, Clone, Default)]
pub struct RetrievalEval {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// NDCG@5.
    pub ndcg5: f64,
    /// Hits@1.
    pub hits1: f64,
    /// Queries evaluated.
    pub n: usize,
}

fn eval_from_ranks(ranks: &[Option<usize>]) -> RetrievalEval {
    RetrievalEval {
        mrr: mrr(ranks),
        ndcg5: ndcg_at_k(ranks, 5),
        hits1: hits_at_k(ranks, 1),
        n: ranks.len(),
    }
}

/// Dense retrieval evaluation: embeds the full pool once, then ranks each
/// query by cosine.
pub fn evaluate_dense<M: SequenceEncoder>(
    model: &mut M,
    ds: &RetrievalDataset,
    split: Split,
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> RetrievalEval {
    let table_embs: Vec<Tensor> = ds
        .corpus
        .tables
        .iter()
        .map(|t| embed(model, &table_input(t, tok, opts)))
        .collect();
    let mut ranks = Vec::new();
    for &qi in &ds.indices(split) {
        let q = &ds.queries[qi];
        let q_emb = embed(model, &query_input(&q.text, tok));
        let scores: Vec<f64> = table_embs.iter().map(|t| q_emb.cosine(t) as f64).collect();
        ranks.push(rank_of(&scores, q.positive));
    }
    eval_from_ranks(&ranks)
}

/// Contrastive fine-tuning: for each training query, score the positive
/// against `n_negatives` sampled tables and apply cross-entropy over the
/// cosine logits (temperature-scaled). The shared encoder is cloned per
/// sequence and the gradients merged (`ntr_nn::merge_grads`).
pub fn finetune_contrastive<M: SequenceEncoder + Clone>(
    model: &mut M,
    ds: &RetrievalDataset,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    opts: &LinearizerOptions,
    n_negatives: usize,
) {
    const TEMPERATURE: f32 = 10.0; // scales cosine logits into a useful range
    let train_idx = ds.indices(Split::Train);
    let steps = (train_idx.len() * cfg.epochs).div_ceil(cfg.batch_size) as u64;
    let mut opt = ScheduledOptimizer::new(cfg, steps);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x8E);
    let mut in_batch = 0;

    for epoch in 0..cfg.epochs {
        for &order_i in &epoch_order(train_idx.len(), epoch, cfg.seed) {
            let q = &ds.queries[train_idx[order_i]];
            // Candidates: positive first, then sampled negatives.
            let mut cand_ids = vec![q.positive];
            while cand_ids.len() < n_negatives + 1 {
                let t = rng.gen_range(0..ds.corpus.len());
                if t != q.positive {
                    cand_ids.push(t);
                }
            }

            // Clone-per-sequence forward.
            let q_input = query_input(&q.text, tok);
            let mut q_clone = model.clone();
            q_clone.zero_grad();
            let q_states = q_clone.encode(&q_input, true);
            let q_emb = q_states.rows(0, 1);

            let mut t_clones = Vec::with_capacity(cand_ids.len());
            let mut t_embs = Vec::with_capacity(cand_ids.len());
            for &ti in &cand_ids {
                let input = table_input(&ds.corpus.tables[ti], tok, opts);
                let mut c = model.clone();
                c.zero_grad();
                let states = c.encode(&input, true);
                t_embs.push(states.rows(0, 1));
                t_clones.push((c, states.dim(0)));
            }

            // Cosine logits and CE (positive is class 0).
            let d = q_emb.numel();
            let qn = q_emb.norm().max(1e-6);
            let mut logits = Tensor::zeros(&[1, cand_ids.len()]);
            for (k, t_emb) in t_embs.iter().enumerate() {
                logits.data_mut()[k] = TEMPERATURE * q_emb.cosine(t_emb);
            }
            let (_, dlogits) = softmax_cross_entropy(&logits, &[0], None);

            // Backward through the cosine: for u·v/(|u||v|),
            // d/du = v/(|u||v|) − cos·u/|u|².
            let mut d_q = Tensor::zeros(&[1, d]);
            for (k, t_emb) in t_embs.iter().enumerate() {
                let g = dlogits.data()[k] * TEMPERATURE;
                if g == 0.0 {
                    continue;
                }
                let tn = t_emb.norm().max(1e-6);
                let cos = q_emb.cosine(t_emb);
                // d/d q_emb
                let mut dq = t_emb.scale(1.0 / (qn * tn));
                dq.axpy(-cos / (qn * qn), &q_emb);
                d_q.axpy(g, &dq);
                // d/d t_emb
                let mut dt = q_emb.scale(1.0 / (qn * tn));
                dt.axpy(-cos / (tn * tn), t_emb);
                let (clone, seq_len) = &mut t_clones[k];
                let mut dstates = Tensor::zeros(&[*seq_len, d]);
                dstates.row_mut(0).copy_from_slice(dt.scale(g).data());
                clone.backward(&dstates);
            }
            let mut dq_states = Tensor::zeros(&[q_states.dim(0), d]);
            dq_states.row_mut(0).copy_from_slice(d_q.data());
            q_clone.backward(&dq_states);

            // Merge clone grads into the master.
            merge_grads(model, &mut q_clone);
            for (clone, _) in &mut t_clones {
                merge_grads(model, clone);
            }

            in_batch += 1;
            if in_batch == cfg.batch_size {
                opt.step(model);
                in_batch = 0;
            }
        }
    }
    if in_batch > 0 {
        opt.step(model);
    }
}

/// Lexical tf-idf retrieval baseline.
pub struct TfIdfIndex {
    doc_vectors: Vec<HashMap<String, f64>>,
    idf: HashMap<String, f64>,
}

impl TfIdfIndex {
    /// Indexes the corpus (caption + headers + cell text per table).
    pub fn build(ds: &RetrievalDataset) -> Self {
        let docs: Vec<Vec<String>> = ds.corpus.tables.iter().map(tokenize_table).collect();
        let n = docs.len() as f64;
        let mut df: HashMap<String, usize> = HashMap::new();
        for doc in &docs {
            let mut seen: Vec<&String> = doc.iter().collect();
            seen.sort_unstable();
            seen.dedup();
            for w in seen {
                *df.entry(w.clone()).or_insert(0) += 1;
            }
        }
        let idf: HashMap<String, f64> = df
            .into_iter()
            .map(|(w, c)| (w, (n / c as f64).ln() + 1.0))
            .collect();
        let doc_vectors = docs
            .iter()
            .map(|doc| {
                let mut v: HashMap<String, f64> = HashMap::new();
                for w in doc {
                    *v.entry(w.clone()).or_insert(0.0) += 1.0;
                }
                for (w, x) in v.iter_mut() {
                    *x *= idf.get(w).copied().unwrap_or(1.0);
                }
                v
            })
            .collect();
        Self { doc_vectors, idf }
    }

    fn score(&self, query: &str, doc: usize) -> f64 {
        let dv = &self.doc_vectors[doc];
        let mut qv: HashMap<String, f64> = HashMap::new();
        for w in tokenize_text(query) {
            *qv.entry(w).or_insert(0.0) += 1.0;
        }
        let mut dot = 0.0;
        let mut qn = 0.0;
        for (w, x) in qv.iter_mut() {
            *x *= self.idf.get(w).copied().unwrap_or(1.0);
            qn += *x * *x;
            dot += *x * dv.get(w).copied().unwrap_or(0.0);
        }
        let dn: f64 = dv.values().map(|x| x * x).sum();
        if qn == 0.0 || dn == 0.0 {
            0.0
        } else {
            dot / (qn.sqrt() * dn.sqrt())
        }
    }

    /// Evaluates the baseline on a split.
    pub fn evaluate(&self, ds: &RetrievalDataset, split: Split) -> RetrievalEval {
        let mut ranks = Vec::new();
        for &qi in &ds.indices(split) {
            let q = &ds.queries[qi];
            let scores: Vec<f64> = (0..ds.corpus.len())
                .map(|t| self.score(&q.text, t))
                .collect();
            ranks.push(rank_of(&scores, q.positive));
        }
        eval_from_ranks(&ranks)
    }
}

fn tokenize_text(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect()
}

fn tokenize_table(t: &Table) -> Vec<String> {
    let mut words = tokenize_text(&t.caption);
    for c in t.columns() {
        words.extend(tokenize_text(&c.name));
    }
    for row in t.rows() {
        for cell in row {
            words.extend(tokenize_text(cell.text()));
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_corpus::tables::{CorpusConfig, TableCorpus};
    use ntr_corpus::{World, WorldConfig};
    use ntr_models::{ModelConfig, VanillaBert};

    fn setup() -> (RetrievalDataset, WordPieceTokenizer) {
        let w = World::generate(WorldConfig {
            n_countries: 8,
            n_people: 8,
            n_films: 6,
            n_clubs: 4,
            seed: 41,
        });
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 10,
                min_rows: 3,
                max_rows: 4,
                null_prob: 0.0,
                headerless_prob: 0.0,
                seed: 42,
            },
        );
        let tok = ntr_corpus::vocab::train_tokenizer(&corpus, &[], 1200);
        (RetrievalDataset::build(corpus, 2, 43), tok)
    }

    #[test]
    fn tfidf_baseline_finds_positives() {
        let (ds, _) = setup();
        let index = TfIdfIndex::build(&ds);
        let eval = index.evaluate(&ds, Split::Train);
        assert!(eval.n > 0);
        // Queries mention subjects unique to their table; tf-idf should be
        // strong — that is the bar for the dense model.
        assert!(eval.mrr > 0.5, "{eval:?}");
    }

    #[test]
    fn dense_eval_runs_and_bounds() {
        let (ds, tok) = setup();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let mut model = VanillaBert::new(&cfg);
        let eval = evaluate_dense(
            &mut model,
            &ds,
            Split::Train,
            &tok,
            &LinearizerOptions::default(),
        );
        assert!(eval.n > 0);
        assert!(eval.mrr >= 0.0 && eval.mrr <= 1.0);
        assert!(eval.hits1 <= eval.mrr + 1e-9);
    }

    #[test]
    fn contrastive_finetuning_improves_mrr() {
        let (ds, tok) = setup();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let opts = LinearizerOptions {
            max_tokens: 96,
            ..Default::default()
        };
        let mut model = VanillaBert::new(&cfg);
        let before = evaluate_dense(&mut model, &ds, Split::Train, &tok, &opts);
        finetune_contrastive(
            &mut model,
            &ds,
            &tok,
            &TrainConfig {
                epochs: 3,
                lr: 2e-3,
                batch_size: 2,
                warmup_frac: 0.1,
                seed: 5,
            },
            &opts,
            3,
        );
        let after = evaluate_dense(&mut model, &ds, Split::Train, &tok, &opts);
        assert!(
            after.mrr > before.mrr,
            "contrastive training must help on train: {before:?} → {after:?}"
        );
    }
}
