//! Column type annotation ("table metadata prediction", §2.1): predict a
//! column's logical name from its values — headers are hidden.

use crate::metrics::{accuracy, macro_f1};
use crate::trainer::{epoch_order, ScheduledOptimizer, TrainConfig};
use ntr_corpus::datasets::CtaDataset;
use ntr_corpus::Split;
use ntr_models::{ClassifierHead, EncoderInput, SequenceEncoder};
use ntr_nn::init::SeededInit;
use ntr_nn::loss::softmax_cross_entropy;
use ntr_nn::{Layer, Param};
use ntr_table::{EncodedTable, Linearizer, LinearizerOptions, RowMajorLinearizer};
use ntr_tensor::Tensor;
use ntr_tokenizer::WordPieceTokenizer;

/// A column classifier: encoder + label head over the mean of the target
/// column's cell tokens.
pub struct ColumnAnnotator<M: SequenceEncoder> {
    /// The encoder.
    pub encoder: M,
    /// Label head (one logit per header label).
    pub head: ClassifierHead,
}

impl<M: SequenceEncoder> ColumnAnnotator<M> {
    /// Wraps an encoder with a fresh head over `n_labels` classes.
    pub fn new(encoder: M, n_labels: usize, seed: u64) -> Self {
        let d = encoder.d_model();
        Self {
            encoder,
            head: ClassifierHead::new(d, n_labels, &mut SeededInit::new(seed)),
        }
    }
}

impl<M: SequenceEncoder> Layer for ColumnAnnotator<M> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.encoder
            .visit_params(&mut |n, p| f(&format!("encoder/{n}"), p));
        self.head
            .visit_params(&mut |n, p| f(&format!("head/{n}"), p));
    }
}

/// Positions of cell tokens in column `col` (0-based).
fn column_positions(encoded: &EncodedTable, col: usize) -> Vec<usize> {
    encoded
        .meta()
        .iter()
        .enumerate()
        .filter(|(_, m)| m.col == col + 1 && m.kind == ntr_table::TokenKind::Cell)
        .map(|(i, _)| i)
        .collect()
}

fn pool_positions(states: &Tensor, positions: &[usize]) -> Tensor {
    let d = states.dim(1);
    let mut out = Tensor::zeros(&[1, d]);
    for &p in positions {
        for j in 0..d {
            out.data_mut()[j] += states.at(&[p, j]);
        }
    }
    out.scale(1.0 / positions.len().max(1) as f32)
}

fn scatter_positions(d_pooled: &Tensor, positions: &[usize], seq_len: usize) -> Tensor {
    let d = d_pooled.numel();
    let mut out = Tensor::zeros(&[seq_len, d]);
    let scale = 1.0 / positions.len().max(1) as f32;
    for &p in positions {
        for j in 0..d {
            out.data_mut()[p * d + j] = d_pooled.data()[j] * scale;
        }
    }
    out
}

fn prepare(
    ds: &CtaDataset,
    idx: &[usize],
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> Vec<(EncoderInput, Vec<usize>, usize)> {
    idx.iter()
        .filter_map(|&i| {
            let ex = &ds.examples[i];
            let encoded = RowMajorLinearizer.linearize(&ex.table, "", tok, opts);
            let positions = column_positions(&encoded, ex.col);
            if positions.is_empty() {
                return None;
            }
            Some((EncoderInput::from_encoded(&encoded), positions, ex.label))
        })
        .collect()
}

/// Fine-tunes the annotator on the training split.
pub fn finetune<M: SequenceEncoder>(
    model: &mut ColumnAnnotator<M>,
    ds: &CtaDataset,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    opts: &LinearizerOptions,
) {
    let prepared = prepare(ds, &ds.indices(Split::Train), tok, opts);
    let steps = (prepared.len() * cfg.epochs).div_ceil(cfg.batch_size) as u64;
    let mut opt = ScheduledOptimizer::new(cfg, steps);
    let mut in_batch = 0;
    for epoch in 0..cfg.epochs {
        for &i in &epoch_order(prepared.len(), epoch, cfg.seed) {
            let (input, positions, label) = &prepared[i];
            let states = model.encoder.encode(input, true);
            let pooled = pool_positions(&states, positions);
            let logits = model.head.forward(&pooled);
            let (_, dlogits) = softmax_cross_entropy(&logits, &[*label], None);
            let d_pooled = model.head.backward(&dlogits);
            let dstates = scatter_positions(&d_pooled, positions, states.dim(0));
            model.encoder.backward(&dstates);
            in_batch += 1;
            if in_batch == cfg.batch_size {
                opt.step(model);
                in_batch = 0;
            }
        }
    }
    if in_batch > 0 {
        opt.step(model);
    }
}

/// CTA evaluation: accuracy + macro-F1 over the label space.
#[derive(Debug, Clone, Default)]
pub struct CtaEval {
    /// Exact label accuracy.
    pub accuracy: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
    /// Examples evaluated.
    pub n: usize,
}

/// Evaluates the annotator on a split.
pub fn evaluate<M: SequenceEncoder>(
    model: &mut ColumnAnnotator<M>,
    ds: &CtaDataset,
    split: Split,
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> CtaEval {
    let prepared = prepare(ds, &ds.indices(split), tok, opts);
    let mut pred = Vec::with_capacity(prepared.len());
    let mut gold = Vec::with_capacity(prepared.len());
    for (input, positions, label) in &prepared {
        let states = model.encoder.encode(input, false);
        let pooled = pool_positions(&states, positions);
        let logits = model.head.forward(&pooled);
        pred.push(logits.argmax_rows()[0]);
        gold.push(*label);
    }
    CtaEval {
        accuracy: accuracy(&pred, &gold),
        macro_f1: macro_f1(&pred, &gold, ds.labels.len()),
        n: pred.len(),
    }
}

/// Majority-class baseline (most frequent training label).
pub fn baseline_majority(ds: &CtaDataset, split: Split) -> CtaEval {
    let train = ds.indices(Split::Train);
    let mut counts = vec![0usize; ds.labels.len()];
    for &i in &train {
        counts[ds.examples[i].label] += 1;
    }
    let majority = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let idx = ds.indices(split);
    let pred: Vec<usize> = vec![majority; idx.len()];
    let gold: Vec<usize> = idx.iter().map(|&i| ds.examples[i].label).collect();
    CtaEval {
        accuracy: accuracy(&pred, &gold),
        macro_f1: macro_f1(&pred, &gold, ds.labels.len()),
        n: idx.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_corpus::tables::{CorpusConfig, TableCorpus};
    use ntr_corpus::{World, WorldConfig};
    use ntr_models::{ModelConfig, Tapas};

    fn setup() -> (CtaDataset, WordPieceTokenizer) {
        let w = World::generate(WorldConfig {
            n_countries: 8,
            n_people: 8,
            n_films: 6,
            n_clubs: 4,
            seed: 31,
        });
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 12,
                min_rows: 3,
                max_rows: 4,
                null_prob: 0.0,
                headerless_prob: 0.0,
                seed: 32,
            },
        );
        let tok = ntr_corpus::vocab::train_tokenizer(&corpus, &[], 1200);
        (CtaDataset::build(&corpus, 33), tok)
    }

    #[test]
    fn column_positions_find_only_that_column() {
        let (ds, tok) = setup();
        let ex = &ds.examples[0];
        let encoded =
            RowMajorLinearizer.linearize(&ex.table, "", &tok, &LinearizerOptions::default());
        let positions = column_positions(&encoded, ex.col);
        assert!(!positions.is_empty());
        for &p in &positions {
            assert_eq!(encoded.meta()[p].col, ex.col + 1);
        }
    }

    #[test]
    fn finetuning_beats_majority_baseline_on_train_fit() {
        let (ds, tok) = setup();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let opts = LinearizerOptions {
            max_tokens: 128,
            ..Default::default()
        };
        let mut model = ColumnAnnotator::new(Tapas::new(&cfg), ds.labels.len(), 3);
        finetune(
            &mut model,
            &ds,
            &tok,
            &TrainConfig {
                epochs: 5,
                lr: 3e-3,
                batch_size: 4,
                warmup_frac: 0.1,
                seed: 4,
            },
            &opts,
        );
        let fit = evaluate(&mut model, &ds, Split::Train, &tok, &opts);
        let majority = baseline_majority(&ds, Split::Train);
        assert!(fit.n > 0);
        assert!(
            fit.accuracy > majority.accuracy,
            "CTA training must beat majority: {fit:?} vs {majority:?}"
        );
    }

    #[test]
    fn majority_baseline_bounds() {
        let (ds, _) = setup();
        let eval = baseline_majority(&ds, Split::Test);
        assert!(eval.n > 0);
        // A constant predictor over a ~20-label space is weak; it may even
        // score 0 on a small test split.
        assert!((0.0..0.9).contains(&eval.accuracy), "{eval:?}");
        assert!(
            eval.macro_f1 <= eval.accuracy + 1e-9,
            "majority macro-F1 is weak"
        );
    }
}
