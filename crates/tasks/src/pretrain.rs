//! Pretraining objectives (the paper's hands-on §3.3): masked language
//! modeling, TURL's joint MLM + masked entity recovery, and TAPEX's
//! neural-SQL-executor objective.

use crate::supervisor::{run_supervised, SupervisorConfig, TrainError};
use crate::trainer::{TrainConfig, TrainerOptions};
use ntr_corpus::tables::TableCorpus;
use ntr_models::{
    pool_mean, pool_mean_backward, EncoderInput, Mate, MlmHead, RowStudent, SequenceEncoder, Tapas,
    Tapex, Turl, VanillaBert,
};
use ntr_nn::loss::softmax_cross_entropy;
use ntr_nn::serialize::CheckpointError;
use ntr_sql::gen::{GenConfig, QueryGenerator};
use ntr_table::masking::{mask_entities, mask_mlm, MaskedExample, MlmConfig};
use ntr_table::{
    Linearizer, LinearizerOptions, RowMajorLinearizer, TapexLinearizer, TurlLinearizer,
};
use ntr_tensor::Tensor;
use ntr_tokenizer::{SpecialToken, WordPieceTokenizer};

/// A model that exposes an MLM head — the requirement for generic MLM
/// pretraining.
pub trait MlmModel: SequenceEncoder {
    /// The masked-language-modeling head.
    fn mlm_head(&mut self) -> &mut MlmHead;
}

impl MlmModel for VanillaBert {
    fn mlm_head(&mut self) -> &mut MlmHead {
        &mut self.mlm
    }
}

impl MlmModel for Turl {
    fn mlm_head(&mut self) -> &mut MlmHead {
        &mut self.mlm
    }
}

impl MlmModel for Tapas {
    fn mlm_head(&mut self) -> &mut MlmHead {
        &mut self.mlm
    }
}

impl MlmModel for Mate {
    fn mlm_head(&mut self) -> &mut MlmHead {
        &mut self.mlm
    }
}

// Boxed MLM models train through the same generic loops as concrete ones;
// this is what lets `ntr::zoo::build_mlm_model` return one registry type
// that `TrainRun::mlm` and the checkpoint machinery accept directly.
impl ntr_nn::Layer for Box<dyn MlmModel + Send> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut ntr_nn::Param)) {
        self.as_mut().visit_params(f)
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        self.as_mut().visit_rng_state(f)
    }
}

impl SequenceEncoder for Box<dyn MlmModel + Send> {
    fn d_model(&self) -> usize {
        self.as_ref().d_model()
    }

    fn vocab_size(&self) -> usize {
        self.as_ref().vocab_size()
    }

    fn encode(&mut self, input: &EncoderInput, train: bool) -> Tensor {
        self.as_mut().encode(input, train)
    }

    fn backward(&mut self, d_states: &Tensor) {
        self.as_mut().backward(d_states)
    }

    fn family(&self) -> &'static str {
        self.as_ref().family()
    }
}

impl MlmModel for Box<dyn MlmModel + Send> {
    fn mlm_head(&mut self) -> &mut MlmHead {
        self.as_mut().mlm_head()
    }
}

// Mutable references delegate the same way, which is what lets
// [`TrainRun::run`] accept `Objective::Mlm(&mut dyn MlmModel)` and still
// drive the generic training loop.
impl<'a, 'b> ntr_nn::Layer for &'a mut (dyn MlmModel + 'b) {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut ntr_nn::Param)) {
        (**self).visit_params(f)
    }

    fn visit_rng_state(&mut self, f: &mut dyn FnMut(&str, &mut [u64; 4])) {
        (**self).visit_rng_state(f)
    }
}

impl<'a, 'b> SequenceEncoder for &'a mut (dyn MlmModel + 'b) {
    fn d_model(&self) -> usize {
        (**self).d_model()
    }

    fn vocab_size(&self) -> usize {
        (**self).vocab_size()
    }

    fn encode(&mut self, input: &EncoderInput, train: bool) -> Tensor {
        (**self).encode(input, train)
    }

    fn backward(&mut self, d_states: &Tensor) {
        (**self).backward(d_states)
    }

    fn family(&self) -> &'static str {
        (**self).family()
    }
}

impl<'a, 'b> MlmModel for &'a mut (dyn MlmModel + 'b) {
    fn mlm_head(&mut self) -> &mut MlmHead {
        (**self).mlm_head()
    }
}

/// Loss/accuracy trajectory of a pretraining run (one point per optimizer
/// step) — the curves the E3 experiment plots.
#[derive(Debug, Clone, Default)]
pub struct PretrainReport {
    /// Mean MLM loss per step.
    pub mlm_loss: Vec<f32>,
    /// Masked-token recovery accuracy per step.
    pub mlm_acc: Vec<f32>,
    /// Mean MER loss per step (empty for MLM-only runs).
    pub mer_loss: Vec<f32>,
    /// Masked-entity recovery accuracy per step (empty for MLM-only runs).
    pub mer_acc: Vec<f32>,
}

/// One configured pretraining run: the single entry point behind which the
/// historical `pretrain_{mlm,turl,tapex}` / `*_resumable` / `*_supervised`
/// function families are consolidated.
///
/// Every optional concern — serialization strategy, checkpoint/resume,
/// the self-healing supervisor, observability (carried inside
/// [`TrainerOptions`]) — is a builder field with the same default the old
/// base functions hard-coded, so
///
/// ```ignore
/// TrainRun::new(cfg).max_tokens(96).mlm(&mut model, &corpus, &tok)?
/// ```
///
/// is bit-identical to the old `pretrain_mlm(&mut model, &corpus, &tok,
/// &cfg, 96)`. The terminal methods ([`TrainRun::mlm`],
/// [`TrainRun::turl`], [`TrainRun::tapex`]) take `&self`, so one
/// configured run can train several models under identical settings.
pub struct TrainRun<'a> {
    cfg: TrainConfig,
    max_tokens: usize,
    linearizer: &'a dyn Linearizer,
    topts: TrainerOptions,
    scfg: SupervisorConfig,
    queries_per_table: usize,
}

impl Default for TrainRun<'static> {
    fn default() -> Self {
        Self::new(TrainConfig::default())
    }
}

impl<'a> TrainRun<'a> {
    /// A run with `cfg` hyperparameters and every optional feature off:
    /// row-major serialization, 128-token budget, no checkpointing, no
    /// supervision, no observability, 2 SQL queries per table (TAPEX).
    pub fn new(cfg: TrainConfig) -> Self {
        Self {
            cfg,
            max_tokens: 128,
            linearizer: &RowMajorLinearizer,
            topts: TrainerOptions::default(),
            scfg: SupervisorConfig::default(),
            queries_per_table: 2,
        }
    }

    /// Token budget for table serialization (default 128).
    pub fn max_tokens(mut self, n: usize) -> Self {
        self.max_tokens = n;
        self
    }

    /// Serialization strategy for [`TrainRun::mlm`] (default row-major).
    /// [`TrainRun::turl`] and [`TrainRun::tapex`] ignore it: those
    /// objectives are defined on their own linearizations.
    pub fn linearizer(mut self, lin: &'a dyn Linearizer) -> Self {
        self.linearizer = lin;
        self
    }

    /// Checkpoint/resume/halt/observability knobs (default all off).
    pub fn trainer(mut self, topts: &TrainerOptions) -> Self {
        self.topts = topts.clone();
        self
    }

    /// Self-healing supervisor knobs (default all off — bit-identical to
    /// the unsupervised loop).
    pub fn supervisor(mut self, scfg: &SupervisorConfig) -> Self {
        self.scfg = scfg.clone();
        self
    }

    /// Generated SQL queries per corpus table for [`TrainRun::tapex`]
    /// (default 2).
    pub fn queries_per_table(mut self, n: usize) -> Self {
        self.queries_per_table = n;
        self
    }

    /// The run's hyperparameters.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// The run's token budget (for sibling objectives, e.g. distill).
    pub(crate) fn token_budget(&self) -> usize {
        self.max_tokens
    }

    /// The run's serialization strategy.
    pub(crate) fn run_linearizer(&self) -> &dyn Linearizer {
        self.linearizer
    }

    /// The run's trainer options.
    pub(crate) fn trainer_options(&self) -> &TrainerOptions {
        &self.topts
    }

    /// The run's supervisor configuration.
    pub(crate) fn supervisor_config(&self) -> &SupervisorConfig {
        &self.scfg
    }

    /// MLM pretraining of `model` over `corpus` — thin wrapper over
    /// [`TrainRun::run`] with [`Objective::Mlm`].
    pub fn mlm<M: MlmModel>(
        &self,
        model: &mut M,
        corpus: &TableCorpus,
        tok: &WordPieceTokenizer,
    ) -> Result<PretrainReport, TrainError> {
        match self.run(Objective::Mlm(model), corpus, tok)? {
            RunReport::Pretrain(r) => Ok(r),
            _ => unreachable!("Objective::Mlm yields RunReport::Pretrain"),
        }
    }

    fn mlm_impl<M: MlmModel>(
        &self,
        model: &mut M,
        corpus: &TableCorpus,
        tok: &WordPieceTokenizer,
    ) -> Result<PretrainReport, TrainError> {
        let opts = LinearizerOptions {
            max_tokens: self.max_tokens,
            ..Default::default()
        };
        let mlm_cfg = MlmConfig::bert(tok.vocab_size());
        let encoded: Vec<_> = corpus
            .tables
            .iter()
            .map(|t| self.linearizer.linearize(t, &t.caption, tok, &opts))
            .collect();

        let seed = self.cfg.seed;
        let steps = run_supervised(
            model,
            &self.cfg,
            encoded.len(),
            &self.topts,
            &self.scfg,
            |r: &(f32, f32)| r.0,
            |model, batch, obs| {
                let mut batch_loss = 0.0;
                let mut batch_hits = 0usize;
                let mut batch_masked = 0usize;
                for item in batch {
                    let e = &encoded[item.index];
                    obs.count_tokens(e.ids().len() as u64);
                    let masked =
                        mask_mlm(e, &mlm_cfg, seed ^ ((item.epoch * 31 + item.pos) as u64));
                    let input = EncoderInput::from_masked(e, &masked);
                    let states = model.encode(&input, true);
                    let logits = model.mlm_head().forward(&states);
                    let (loss, dlogits) = softmax_cross_entropy(&logits, &masked.targets, None);
                    let preds = logits.argmax_rows();
                    for (pos, &t) in masked.targets.iter().enumerate() {
                        if t != MaskedExample::IGNORE {
                            batch_masked += 1;
                            if preds[pos] == t {
                                batch_hits += 1;
                            }
                        }
                    }
                    let dstates = model.mlm_head().backward(&dlogits);
                    model.backward(&dstates);
                    batch_loss += loss;
                }
                (
                    batch_loss / batch.len() as f32,
                    batch_hits as f32 / batch_masked.max(1) as f32,
                )
            },
        )?;
        let mut report = PretrainReport::default();
        for (loss, acc) in steps {
            report.mlm_loss.push(loss);
            report.mlm_acc.push(acc);
        }
        Ok(report)
    }
}

/// MLM pretraining over a corpus for any [`MlmModel`] (row-major
/// serialization).
#[deprecated(note = "use `TrainRun::new(*cfg).max_tokens(n).mlm(..)`")]
pub fn pretrain_mlm<M: MlmModel>(
    model: &mut M,
    corpus: &TableCorpus,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    max_tokens: usize,
) -> PretrainReport {
    TrainRun::new(*cfg)
        .max_tokens(max_tokens)
        .mlm(model, corpus, tok)
        .expect("no checkpointing configured, so training cannot fail")
}

/// MLM pretraining with an explicit serialization strategy.
#[deprecated(note = "use `TrainRun::new(*cfg).linearizer(lin).mlm(..)`")]
pub fn pretrain_mlm_with<M: MlmModel>(
    model: &mut M,
    corpus: &TableCorpus,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    max_tokens: usize,
    linearizer: &dyn Linearizer,
) -> PretrainReport {
    TrainRun::new(*cfg)
        .max_tokens(max_tokens)
        .linearizer(linearizer)
        .mlm(model, corpus, tok)
        .expect("no checkpointing configured, so training cannot fail")
}

/// MLM pretraining with checkpoint/resume support.
#[deprecated(note = "use `TrainRun::new(*cfg).trainer(topts).mlm(..)`")]
pub fn pretrain_mlm_resumable<M: MlmModel>(
    model: &mut M,
    corpus: &TableCorpus,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    max_tokens: usize,
    linearizer: &dyn Linearizer,
    topts: &TrainerOptions,
) -> Result<PretrainReport, CheckpointError> {
    TrainRun::new(*cfg)
        .max_tokens(max_tokens)
        .linearizer(linearizer)
        .trainer(topts)
        .mlm(model, corpus, tok)
        .map_err(TrainError::into_checkpoint_error)
}

/// MLM pretraining under the self-healing supervisor.
#[deprecated(note = "use `TrainRun::new(*cfg).trainer(topts).supervisor(scfg).mlm(..)`")]
#[allow(clippy::too_many_arguments)]
pub fn pretrain_mlm_supervised<M: MlmModel>(
    model: &mut M,
    corpus: &TableCorpus,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    max_tokens: usize,
    linearizer: &dyn Linearizer,
    topts: &TrainerOptions,
    scfg: &SupervisorConfig,
) -> Result<PretrainReport, TrainError> {
    TrainRun::new(*cfg)
        .max_tokens(max_tokens)
        .linearizer(linearizer)
        .trainer(topts)
        .supervisor(scfg)
        .mlm(model, corpus, tok)
}

impl TrainRun<'_> {
    /// TURL joint pretraining: MER masks whole entity cells, MLM masks
    /// remaining tokens; both objectives backpropagate through one
    /// encoding. Always uses the TURL linearization; the anomaly detector
    /// watches the combined MLM + MER loss. Thin wrapper over
    /// [`TrainRun::run`] with [`Objective::Turl`].
    pub fn turl(
        &self,
        model: &mut Turl,
        corpus: &TableCorpus,
        tok: &WordPieceTokenizer,
    ) -> Result<PretrainReport, TrainError> {
        match self.run(Objective::Turl(model), corpus, tok)? {
            RunReport::Pretrain(r) => Ok(r),
            _ => unreachable!("Objective::Turl yields RunReport::Pretrain"),
        }
    }

    fn turl_impl(
        &self,
        model: &mut Turl,
        corpus: &TableCorpus,
        tok: &WordPieceTokenizer,
    ) -> Result<PretrainReport, TrainError> {
        let opts = LinearizerOptions {
            max_tokens: self.max_tokens,
            ..Default::default()
        };
        let mlm_cfg = MlmConfig::bert(tok.vocab_size());
        let encoded: Vec<_> = corpus
            .tables
            .iter()
            .map(|t| TurlLinearizer.linearize(t, &t.caption, tok, &opts))
            .collect();

        let base_seed = self.cfg.seed;
        let steps = run_supervised(
            model,
            &self.cfg,
            encoded.len(),
            &self.topts,
            &self.scfg,
            |r: &(f32, f32, f32, f32)| r.0 + r.1,
            |model, batch, obs| {
                let (mut bl_mlm, mut bl_mer) = (0.0f32, 0.0f32);
                let (mut hits_mlm, mut n_mlm, mut hits_mer, mut n_mer) =
                    (0usize, 0usize, 0usize, 0usize);
                for item in batch {
                    let e = &encoded[item.index];
                    obs.count_tokens(e.ids().len() as u64);
                    let seed = base_seed ^ ((item.epoch * 131 + item.pos) as u64);
                    // 1. MER corruption (whole entity cells → [MASK]).
                    let (mer_ids, masked_entities) = mask_entities(e, 0.3, seed);
                    // 2. MLM corruption on top, skipping positions MER already took.
                    let mlm = mask_mlm(e, &mlm_cfg, seed ^ 0xA5A5);
                    let mut input_ids = mer_ids;
                    let mut mlm_targets = mlm.targets.clone();
                    let mer_positions: std::collections::HashSet<usize> = masked_entities
                        .iter()
                        .flat_map(|m| m.positions.iter().copied())
                        .collect();
                    for (pos, id) in input_ids.iter_mut().enumerate() {
                        if mer_positions.contains(&pos) {
                            mlm_targets[pos] = MaskedExample::IGNORE;
                        } else if mlm.targets[pos] != MaskedExample::IGNORE {
                            *id = mlm.input_ids[pos];
                        }
                    }
                    let input = EncoderInput::from_encoded_with_ids(e, input_ids);
                    let states = model.encode(&input, true);
                    let seq_len = states.dim(0);
                    let d = states.dim(1);

                    // MLM objective.
                    let logits = model.mlm.forward(&states);
                    let (mlm_loss, dlogits) = softmax_cross_entropy(&logits, &mlm_targets, None);
                    let preds = logits.argmax_rows();
                    for (pos, &t) in mlm_targets.iter().enumerate() {
                        if t != MaskedExample::IGNORE {
                            n_mlm += 1;
                            if preds[pos] == t {
                                hits_mlm += 1;
                            }
                        }
                    }
                    let mut dstates = model.mlm.backward(&dlogits);

                    // MER objective: pool each masked cell, classify over entities.
                    let mut mer_loss = 0.0;
                    if !masked_entities.is_empty() {
                        let mut pooled = Tensor::zeros(&[masked_entities.len(), d]);
                        for (k, m) in masked_entities.iter().enumerate() {
                            let span = m.positions[0]..m.positions[m.positions.len() - 1] + 1;
                            pooled
                                .row_mut(k)
                                .copy_from_slice(pool_mean(&states, &span).data());
                        }
                        let mer_logits = model.mer.forward(&pooled);
                        let targets: Vec<usize> =
                            masked_entities.iter().map(|m| m.entity as usize).collect();
                        let (loss, dmer_logits) =
                            softmax_cross_entropy(&mer_logits, &targets, None);
                        mer_loss = loss;
                        let mer_preds = mer_logits.argmax_rows();
                        for (k, &t) in targets.iter().enumerate() {
                            n_mer += 1;
                            if mer_preds[k] == t {
                                hits_mer += 1;
                            }
                        }
                        let d_pooled = model.mer.backward(&dmer_logits);
                        for (k, m) in masked_entities.iter().enumerate() {
                            let span = m.positions[0]..m.positions[m.positions.len() - 1] + 1;
                            let dp = d_pooled.rows(k, k + 1);
                            dstates.add_assign(&pool_mean_backward(&dp, &span, seq_len));
                        }
                    }

                    model.backward(&dstates);
                    bl_mlm += mlm_loss;
                    bl_mer += mer_loss;
                }
                (
                    bl_mlm / batch.len() as f32,
                    bl_mer / batch.len() as f32,
                    hits_mlm as f32 / n_mlm.max(1) as f32,
                    hits_mer as f32 / n_mer.max(1) as f32,
                )
            },
        )?;
        let mut report = PretrainReport::default();
        for (mlm_loss, mer_loss, mlm_acc, mer_acc) in steps {
            report.mlm_loss.push(mlm_loss);
            report.mer_loss.push(mer_loss);
            report.mlm_acc.push(mlm_acc);
            report.mer_acc.push(mer_acc);
        }
        Ok(report)
    }
}

/// TURL joint pretraining (MLM + masked entity recovery).
#[deprecated(note = "use `TrainRun::new(*cfg).max_tokens(n).turl(..)`")]
pub fn pretrain_turl(
    model: &mut Turl,
    corpus: &TableCorpus,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    max_tokens: usize,
) -> PretrainReport {
    TrainRun::new(*cfg)
        .max_tokens(max_tokens)
        .turl(model, corpus, tok)
        .expect("no checkpointing configured, so training cannot fail")
}

/// TURL joint pretraining with checkpoint/resume support.
#[deprecated(note = "use `TrainRun::new(*cfg).trainer(topts).turl(..)`")]
pub fn pretrain_turl_resumable(
    model: &mut Turl,
    corpus: &TableCorpus,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    max_tokens: usize,
    topts: &TrainerOptions,
) -> Result<PretrainReport, CheckpointError> {
    TrainRun::new(*cfg)
        .max_tokens(max_tokens)
        .trainer(topts)
        .turl(model, corpus, tok)
        .map_err(TrainError::into_checkpoint_error)
}

/// TURL joint pretraining under the self-healing supervisor.
#[deprecated(note = "use `TrainRun::new(*cfg).trainer(topts).supervisor(scfg).turl(..)`")]
pub fn pretrain_turl_supervised(
    model: &mut Turl,
    corpus: &TableCorpus,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    max_tokens: usize,
    topts: &TrainerOptions,
    scfg: &SupervisorConfig,
) -> Result<PretrainReport, TrainError> {
    TrainRun::new(*cfg)
        .max_tokens(max_tokens)
        .trainer(topts)
        .supervisor(scfg)
        .turl(model, corpus, tok)
}

/// Builds the TAPEX encoder input for `(sql, table)` and the target ids
/// for the answer denotation.
pub fn tapex_example(
    table: &ntr_table::Table,
    sql: &ntr_sql::Query,
    answer: &ntr_sql::Answer,
    tok: &WordPieceTokenizer,
    max_tokens: usize,
) -> (EncoderInput, Vec<usize>) {
    let opts = LinearizerOptions {
        max_tokens,
        ..Default::default()
    };
    let encoded = TapexLinearizer.linearize(table, &sql.to_string(), tok, &opts);
    let input = EncoderInput::from_encoded(&encoded);
    let mut target = tok.encode(&answer.denotation().join(" ; "));
    target.truncate(24);
    target.push(SpecialToken::Sep.id());
    (input, target)
}

impl TrainRun<'_> {
    /// TAPEX pretraining: teach the encoder–decoder to *execute*
    /// [`TrainRun::queries_per_table`] generated SQL queries over each
    /// corpus table (always the TAPEX linearization). Returns per-step
    /// losses. Thin wrapper over [`TrainRun::run`] with
    /// [`Objective::Tapex`].
    pub fn tapex(
        &self,
        model: &mut Tapex,
        corpus: &TableCorpus,
        tok: &WordPieceTokenizer,
    ) -> Result<Vec<f32>, TrainError> {
        match self.run(Objective::Tapex(model), corpus, tok)? {
            RunReport::Losses(l) => Ok(l),
            _ => unreachable!("Objective::Tapex yields RunReport::Losses"),
        }
    }

    fn tapex_impl(
        &self,
        model: &mut Tapex,
        corpus: &TableCorpus,
        tok: &WordPieceTokenizer,
    ) -> Result<Vec<f32>, TrainError> {
        // Materialize (input, target) pairs once.
        let mut pairs = Vec::new();
        for (ti, table) in corpus.tables.iter().enumerate() {
            let mut gen = QueryGenerator::new(self.cfg.seed ^ (ti as u64), GenConfig::default());
            for (sql, answer) in gen.generate_n(table, self.queries_per_table) {
                pairs.push(tapex_example(table, &sql, &answer, tok, self.max_tokens));
            }
        }
        run_supervised(
            model,
            &self.cfg,
            pairs.len(),
            &self.topts,
            &self.scfg,
            |loss: &f32| *loss,
            |model, batch, obs| {
                let mut batch_loss = 0.0;
                for item in batch {
                    let (input, target) = &pairs[item.index];
                    obs.count_tokens((input.len() + target.len()) as u64);
                    batch_loss += model.train_step(input, target);
                }
                batch_loss / batch.len() as f32
            },
        )
    }
}

/// What one [`TrainRun::run`] call trains: the objective together with
/// the mutable model(s) it updates. This is the single dispatch point the
/// per-objective entry points ([`TrainRun::mlm`], [`TrainRun::turl`],
/// [`TrainRun::tapex`], [`TrainRun::distill`]) are thin wrappers over.
pub enum Objective<'m> {
    /// Masked-language-model pretraining of any MLM-capable encoder.
    Mlm(&'m mut dyn MlmModel),
    /// TURL joint MLM + masked-entity-recovery pretraining.
    Turl(&'m mut Turl),
    /// TAPEX neural-SQL-executor pretraining.
    Tapex(&'m mut Tapex),
    /// Teacher–student distillation into a [`RowStudent`]
    /// (see `crate::distill`). The teacher is frozen: encoded once in
    /// eval mode, never updated.
    Distill {
        /// The student being trained.
        student: &'m mut RowStudent,
        /// The frozen teacher providing target embeddings.
        teacher: &'m mut dyn SequenceEncoder,
        /// Weight of the `1 − cosine` loss term.
        cos_weight: f32,
    },
}

/// The objective-shaped result of [`TrainRun::run`].
#[derive(Debug, Clone)]
pub enum RunReport {
    /// MLM / TURL trajectory.
    Pretrain(PretrainReport),
    /// TAPEX per-step losses.
    Losses(Vec<f32>),
    /// Distillation loss + fidelity trajectory.
    Distill(crate::distill::DistillReport),
}

impl TrainRun<'_> {
    /// Runs one objective under this run's shared configuration —
    /// the consolidated entry point behind the named per-objective
    /// methods.
    pub fn run(
        &self,
        objective: Objective<'_>,
        corpus: &TableCorpus,
        tok: &WordPieceTokenizer,
    ) -> Result<RunReport, TrainError> {
        match objective {
            Objective::Mlm(model) => {
                let mut model = model;
                self.mlm_impl(&mut model, corpus, tok)
                    .map(RunReport::Pretrain)
            }
            Objective::Turl(model) => self.turl_impl(model, corpus, tok).map(RunReport::Pretrain),
            Objective::Tapex(model) => self.tapex_impl(model, corpus, tok).map(RunReport::Losses),
            Objective::Distill {
                student,
                teacher,
                cos_weight,
            } => self
                .distill(student, teacher, cos_weight, corpus, tok)
                .map(RunReport::Distill),
        }
    }
}

/// TAPEX pretraining over generated SQL.
#[deprecated(note = "use `TrainRun::new(*cfg).queries_per_table(q).tapex(..)`")]
pub fn pretrain_tapex(
    model: &mut Tapex,
    corpus: &TableCorpus,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    queries_per_table: usize,
    max_tokens: usize,
) -> Vec<f32> {
    TrainRun::new(*cfg)
        .max_tokens(max_tokens)
        .queries_per_table(queries_per_table)
        .tapex(model, corpus, tok)
        .expect("no checkpointing configured, so training cannot fail")
}

/// TAPEX pretraining with checkpoint/resume support.
#[deprecated(note = "use `TrainRun::new(*cfg).trainer(topts).tapex(..)`")]
pub fn pretrain_tapex_resumable(
    model: &mut Tapex,
    corpus: &TableCorpus,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    queries_per_table: usize,
    max_tokens: usize,
    topts: &TrainerOptions,
) -> Result<Vec<f32>, CheckpointError> {
    TrainRun::new(*cfg)
        .max_tokens(max_tokens)
        .queries_per_table(queries_per_table)
        .trainer(topts)
        .tapex(model, corpus, tok)
        .map_err(TrainError::into_checkpoint_error)
}

/// TAPEX pretraining under the self-healing supervisor.
#[deprecated(note = "use `TrainRun::new(*cfg).trainer(topts).supervisor(scfg).tapex(..)`")]
#[allow(clippy::too_many_arguments)]
pub fn pretrain_tapex_supervised(
    model: &mut Tapex,
    corpus: &TableCorpus,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    queries_per_table: usize,
    max_tokens: usize,
    topts: &TrainerOptions,
    scfg: &SupervisorConfig,
) -> Result<Vec<f32>, TrainError> {
    TrainRun::new(*cfg)
        .max_tokens(max_tokens)
        .queries_per_table(queries_per_table)
        .trainer(topts)
        .supervisor(scfg)
        .tapex(model, corpus, tok)
}

/// Held-out MLM evaluation: masks each table once (seeded) and measures
/// masked-token recovery accuracy, without touching the model's weights.
pub fn eval_mlm<M: MlmModel>(
    model: &mut M,
    tables: &[ntr_table::Table],
    tok: &WordPieceTokenizer,
    max_tokens: usize,
    linearizer: &dyn Linearizer,
    seed: u64,
) -> f64 {
    let opts = LinearizerOptions {
        max_tokens,
        ..Default::default()
    };
    let mlm_cfg = MlmConfig::bert(tok.vocab_size());
    let mut hits = 0usize;
    let mut total = 0usize;
    for (i, t) in tables.iter().enumerate() {
        let e = linearizer.linearize(t, &t.caption, tok, &opts);
        let masked = mask_mlm(&e, &mlm_cfg, seed ^ i as u64);
        let input = EncoderInput::from_masked(&e, &masked);
        let states = model.encode(&input, false);
        let logits = model.mlm_head().forward(&states);
        let preds = logits.argmax_rows();
        for (pos, &target) in masked.targets.iter().enumerate() {
            if target != MaskedExample::IGNORE {
                total += 1;
                if preds[pos] == target {
                    hits += 1;
                }
            }
        }
    }
    hits as f64 / total.max(1) as f64
}

/// Evaluates TAPEX as a neural executor: greedy-generate the answer for
/// each (sql, table) pair and compare denotation strings. Returns accuracy.
pub fn eval_tapex_execution(
    model: &mut Tapex,
    pairs: &[(ntr_table::Table, ntr_sql::Query, ntr_sql::Answer)],
    tok: &WordPieceTokenizer,
    max_tokens: usize,
) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let mut hits = 0;
    for (table, sql, answer) in pairs {
        let (input, target) = tapex_example(table, sql, answer, tok, max_tokens);
        let generated = model.generate(&input, 26);
        // Compare in decoded-token space so sub-word segmentation (e.g.
        // "25.69" → "25 . 69") cancels out on both sides.
        let text = tok.decode(&generated);
        let gold = tok.decode(&target[..target.len() - 1]);
        if text == gold {
            hits += 1;
        }
    }
    hits as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_corpus::tables::CorpusConfig;
    use ntr_corpus::{World, WorldConfig};
    use ntr_models::ModelConfig;

    fn small_world() -> (World, TableCorpus, WordPieceTokenizer) {
        let w = World::generate(WorldConfig {
            n_countries: 8,
            n_people: 10,
            n_films: 8,
            n_clubs: 6,
            seed: 5,
        });
        let corpus = TableCorpus::generate_entity_only(
            &w,
            &CorpusConfig {
                n_tables: 10,
                min_rows: 3,
                max_rows: 5,
                null_prob: 0.0,
                headerless_prob: 0.0,
                seed: 6,
            },
        );
        let tok = ntr_corpus::vocab::train_tokenizer(&corpus, &[], 1200);
        (w, corpus, tok)
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 3,
            lr: 3e-3,
            batch_size: 4,
            warmup_frac: 0.1,
            seed: 1,
        }
    }

    #[test]
    fn mlm_pretraining_reduces_loss() {
        let (_, corpus, tok) = small_world();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let mut model = VanillaBert::new(&cfg);
        let report = TrainRun::new(quick_cfg())
            .max_tokens(96)
            .mlm(&mut model, &corpus, &tok)
            .unwrap();
        assert!(report.mlm_loss.len() >= 6);
        let first = report.mlm_loss[..2].iter().sum::<f32>() / 2.0;
        let n = report.mlm_loss.len();
        let last = report.mlm_loss[n - 2..].iter().sum::<f32>() / 2.0;
        assert!(last < first, "MLM loss should drop: {first} → {last}");
    }

    #[test]
    fn turl_pretraining_improves_both_objectives() {
        let (w, corpus, tok) = small_world();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            n_entities: w.n_entities(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let mut model = Turl::new(&cfg);
        // The MER objective's per-batch loss is a high-variance estimate (a
        // handful of masked entities classified over the full entity set), so
        // it needs more epochs than MLM before the trend beats the noise.
        let tc = TrainConfig {
            epochs: 24,
            ..quick_cfg()
        };
        let report = TrainRun::new(tc)
            .max_tokens(96)
            .turl(&mut model, &corpus, &tok)
            .unwrap();
        assert!(!report.mer_loss.is_empty());
        let first = report.mer_loss[..2].iter().sum::<f32>() / 2.0;
        let n = report.mer_loss.len();
        let last = report.mer_loss[n - 2..].iter().sum::<f32>() / 2.0;
        assert!(last < first, "MER loss should drop: {first} → {last}");
        let first = report.mlm_loss[..2].iter().sum::<f32>() / 2.0;
        let last = report.mlm_loss[n - 2..].iter().sum::<f32>() / 2.0;
        assert!(last < first, "MLM loss should drop: {first} → {last}");
    }

    #[test]
    fn tapex_pretraining_loss_drops() {
        let (_, corpus, tok) = small_world();
        let small = TableCorpus {
            tables: corpus.tables[..4].to_vec(),
            kinds: corpus.kinds[..4].to_vec(),
        };
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let mut model = Tapex::new(&cfg);
        let losses = TrainRun::new(quick_cfg())
            .max_tokens(96)
            .queries_per_table(2)
            .tapex(&mut model, &small, &tok)
            .unwrap();
        assert!(losses.len() >= 3);
        assert!(
            losses.last().unwrap() < &losses[0],
            "TAPEX loss should drop: {losses:?}"
        );
    }
}
