//! Entity linking (§2.1 "entity resolution and linking"): resolve a cell
//! mention to a knowledge-base entity using TURL's entity embeddings.
//!
//! Training runs TURL's MER head over the full entity vocabulary with the
//! gold entity as target; evaluation restricts the softmax to each
//! example's candidate set (the standard candidate-ranking protocol).

use crate::metrics::{accuracy, hits_at_k, rank_of};
use crate::trainer::{epoch_order, ScheduledOptimizer, TrainConfig};
use ntr_corpus::datasets::LinkingDataset;
use ntr_corpus::Split;
use ntr_models::{pool_mean, pool_mean_backward, EncoderInput, SequenceEncoder, Turl};
use ntr_nn::loss::softmax_cross_entropy;
use ntr_table::{Linearizer, LinearizerOptions, TurlLinearizer};
use ntr_tokenizer::WordPieceTokenizer;
use std::ops::Range;

fn mention_encoding(
    ex: &ntr_corpus::datasets::LinkingExample,
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> Option<(EncoderInput, Range<usize>)> {
    let encoded = TurlLinearizer.linearize(&ex.table, &ex.table.caption, tok, opts);
    let span = encoded.cell_span(ex.coord.0, ex.coord.1)?;
    Some((EncoderInput::from_encoded(&encoded), span))
}

/// Fine-tunes TURL's MER pathway for linking (CE over all entities).
pub fn finetune(
    model: &mut Turl,
    ds: &LinkingDataset,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    opts: &LinearizerOptions,
) {
    let prepared: Vec<(EncoderInput, Range<usize>, usize)> = ds
        .indices(Split::Train)
        .iter()
        .filter_map(|&i| {
            let ex = &ds.examples[i];
            let (input, span) = mention_encoding(ex, tok, opts)?;
            Some((input, span, ex.gold as usize))
        })
        .collect();
    let steps = (prepared.len() * cfg.epochs).div_ceil(cfg.batch_size) as u64;
    let mut opt = ScheduledOptimizer::new(cfg, steps);
    let mut in_batch = 0;
    for epoch in 0..cfg.epochs {
        for &i in &epoch_order(prepared.len(), epoch, cfg.seed) {
            let (input, span, gold) = &prepared[i];
            let states = model.encode(input, true);
            let pooled = pool_mean(&states, span);
            let logits = model.mer.forward(&pooled);
            let (_, dlogits) = softmax_cross_entropy(&logits, &[*gold], None);
            let d_pooled = model.mer.backward(&dlogits);
            let dstates = pool_mean_backward(&d_pooled, span, states.dim(0));
            SequenceEncoder::backward(model, &dstates);
            in_batch += 1;
            if in_batch == cfg.batch_size {
                opt.step(model);
                in_batch = 0;
            }
        }
    }
    if in_batch > 0 {
        opt.step(model);
    }
}

/// Linking evaluation over candidate sets.
#[derive(Debug, Clone, Default)]
pub struct LinkingEval {
    /// Top-1 accuracy among candidates.
    pub accuracy: f64,
    /// Hits@3 among candidates.
    pub hits3: f64,
    /// Examples evaluated.
    pub n: usize,
}

/// Evaluates candidate-restricted linking on a split.
pub fn evaluate(
    model: &mut Turl,
    ds: &LinkingDataset,
    split: Split,
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> LinkingEval {
    let mut pred = Vec::new();
    let mut gold = Vec::new();
    let mut ranks = Vec::new();
    for &i in &ds.indices(split) {
        let ex = &ds.examples[i];
        let Some((input, span)) = mention_encoding(ex, tok, opts) else {
            continue;
        };
        let states = model.encode(&input, false);
        let pooled = pool_mean(&states, &span);
        let logits = model.mer.forward(&pooled);
        let scores: Vec<f64> = ex
            .candidates
            .iter()
            .map(|&c| logits.at(&[0, c as usize]) as f64)
            .collect();
        let gold_pos = ex
            .candidates
            .iter()
            .position(|&c| c == ex.gold)
            .expect("gold in candidates");
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(k, _)| k)
            .expect("non-empty");
        pred.push(best);
        gold.push(gold_pos);
        ranks.push(rank_of(&scores, gold_pos));
    }
    LinkingEval {
        accuracy: accuracy(&pred, &gold),
        hits3: hits_at_k(&ranks, 3),
        n: pred.len(),
    }
}

/// Name-match baseline: pick the candidate whose name equals the mention
/// (ties → first); random-ish otherwise.
pub fn baseline_name_match(
    world: &ntr_corpus::World,
    ds: &LinkingDataset,
    split: Split,
) -> LinkingEval {
    let mut pred = Vec::new();
    let mut gold = Vec::new();
    for &i in &ds.indices(split) {
        let ex = &ds.examples[i];
        let gold_pos = ex
            .candidates
            .iter()
            .position(|&c| c == ex.gold)
            .expect("gold in candidates");
        let best = ex
            .candidates
            .iter()
            .position(|&c| world.name(c) == ex.mention)
            .unwrap_or(0);
        pred.push(best);
        gold.push(gold_pos);
    }
    LinkingEval {
        accuracy: accuracy(&pred, &gold),
        hits3: 0.0,
        n: pred.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_corpus::tables::{CorpusConfig, TableCorpus};
    use ntr_corpus::{World, WorldConfig};
    use ntr_models::ModelConfig;

    fn setup() -> (World, LinkingDataset, WordPieceTokenizer) {
        let w = World::generate(WorldConfig {
            n_countries: 8,
            n_people: 8,
            n_films: 6,
            n_clubs: 4,
            seed: 51,
        });
        let corpus = TableCorpus::generate_entity_only(
            &w,
            &CorpusConfig {
                n_tables: 8,
                min_rows: 3,
                max_rows: 4,
                null_prob: 0.0,
                headerless_prob: 0.0,
                seed: 52,
            },
        );
        let tok = ntr_corpus::vocab::train_tokenizer(&corpus, &[], 1200);
        let ds = LinkingDataset::build(&w, &corpus, 5, 53);
        (w, ds, tok)
    }

    #[test]
    fn name_match_baseline_is_perfect_on_clean_mentions() {
        let (w, ds, _) = setup();
        let eval = baseline_name_match(&w, &ds, Split::Test);
        assert!(eval.n > 0);
        // Mentions are exact entity names in this corpus, so the baseline
        // saturates — the neural model's value shows when surface forms
        // are ambiguous (several entities sharing names).
        assert!(eval.accuracy > 0.95, "{eval:?}");
    }

    #[test]
    fn finetuning_lifts_linking_above_chance() {
        let (w, ds, tok) = setup();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            n_entities: w.n_entities(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let opts = LinearizerOptions {
            max_tokens: 96,
            ..Default::default()
        };
        let mut model = Turl::new(&cfg);
        let before = evaluate(&mut model, &ds, Split::Train, &tok, &opts);
        finetune(
            &mut model,
            &ds,
            &tok,
            &TrainConfig {
                epochs: 4,
                lr: 3e-3,
                batch_size: 4,
                warmup_frac: 0.1,
                seed: 6,
            },
            &opts,
        );
        let after = evaluate(&mut model, &ds, Split::Train, &tok, &opts);
        assert!(after.n > 0);
        assert!(
            after.accuracy > before.accuracy.max(0.3),
            "linking must improve: {before:?} → {after:?}"
        );
        assert!(after.hits3 >= after.accuracy);
    }
}
