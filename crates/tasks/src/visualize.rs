//! Attention visualization utilities — the paper's hands-on §3.3 provides
//! "utility code to visualize the attention weights and output table
//! encodings"; this module is that utility for a terminal.

use ntr_table::EncodedTable;
use ntr_tensor::Tensor;
use ntr_tokenizer::WordPieceTokenizer;

/// Shade characters from lightest to darkest.
const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];

/// Renders one attention map (`[n_q, n_k]`, rows summing to 1) as an ASCII
/// heatmap with token labels, truncated to `max_tokens` per axis.
pub fn attention_heatmap(
    probs: &Tensor,
    encoded: &EncodedTable,
    tok: &WordPieceTokenizer,
    max_tokens: usize,
) -> String {
    assert_eq!(probs.ndim(), 2, "attention map must be 2-D");
    let n = probs
        .dim(0)
        .min(probs.dim(1))
        .min(encoded.len())
        .min(max_tokens);
    let labels: Vec<String> = (0..n)
        .map(|i| {
            let t = tok.vocab().token_of(encoded.ids()[i]);
            let mut s: String = t.chars().take(6).collect();
            while s.chars().count() < 6 {
                s.push(' ');
            }
            s
        })
        .collect();
    // Normalize shading to the visible submatrix's max.
    let mut max = f32::MIN_POSITIVE;
    for i in 0..n {
        for j in 0..n {
            max = max.max(probs.at(&[i, j]));
        }
    }
    let mut out = String::new();
    for (i, label) in labels.iter().enumerate() {
        out.push_str(label);
        out.push(' ');
        for j in 0..n {
            let p = probs.at(&[i, j]) / max;
            let shade =
                SHADES[((p * (SHADES.len() - 1) as f32).round() as usize).min(SHADES.len() - 1)];
            out.push(shade);
        }
        out.push('\n');
    }
    out
}

/// For each query token, the `k` key tokens with the highest attention,
/// with their structural coordinates — a textual "where does this token
/// look" summary.
pub fn top_attended(
    probs: &Tensor,
    encoded: &EncodedTable,
    tok: &WordPieceTokenizer,
    query: usize,
    k: usize,
) -> Vec<(String, usize, usize, f32)> {
    assert!(query < probs.dim(0), "query index out of range");
    let mut scored: Vec<(usize, f32)> = (0..probs.dim(1).min(encoded.len()))
        .map(|j| (j, probs.at(&[query, j])))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite attention"));
    scored
        .into_iter()
        .take(k)
        .map(|(j, p)| {
            let meta = encoded.meta()[j];
            (
                tok.vocab().token_of(encoded.ids()[j]).to_string(),
                meta.row,
                meta.col,
                p,
            )
        })
        .collect()
}

/// Renders a table's cell-embedding similarity structure: for the anchor
/// cell, the cosine similarity to every other cell, as a grid of 2-decimal
/// numbers (the "output table encodings" inspection of §3.3).
pub fn cell_similarity_grid(
    encoded: &EncodedTable,
    states: &Tensor,
    anchor: (usize, usize),
    n_rows: usize,
    n_cols: usize,
) -> String {
    let embed = |r: usize, c: usize| -> Option<Tensor> {
        let span = encoded.cell_span(r, c)?;
        Some(ntr_models::pool_mean(states, &span))
    };
    let Some(anchor_vec) = embed(anchor.0, anchor.1) else {
        return String::from("(anchor cell not encoded)");
    };
    let mut out = String::new();
    for r in 0..n_rows {
        for c in 0..n_cols {
            match embed(r, c) {
                Some(v) => {
                    let cos = anchor_vec.cosine(&v);
                    let mark = if (r, c) == anchor { '*' } else { ' ' };
                    out.push_str(&format!("{mark}{cos:+.2} "));
                }
                None => out.push_str("  --  "),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_models::{EncoderInput, ModelConfig, SequenceEncoder, Turl};
    use ntr_table::{Linearizer, LinearizerOptions, Table, TurlLinearizer};
    use ntr_tokenizer::train::WordPieceTrainer;

    fn setup() -> (EncodedTable, WordPieceTokenizer, Turl) {
        let tok = WordPieceTokenizer::new(
            WordPieceTrainer::new(300).train(["country capital france paris germany berlin | : ;"]),
        );
        let t = Table::from_strings(
            "t",
            &["Country", "Capital"],
            &[&["France", "Paris"], &["Germany", "Berlin"]],
        );
        let e = TurlLinearizer.linearize(&t, "", &tok, &LinearizerOptions::default());
        let cfg = ModelConfig {
            n_entities: 4,
            ..ModelConfig::tiny(tok.vocab_size())
        };
        (e, tok, Turl::new(&cfg))
    }

    #[test]
    fn heatmap_renders_rows_with_labels() {
        let (e, tok, mut model) = setup();
        let input = EncoderInput::from_encoded(&e);
        let _ = model.encode(&input, false);
        let maps = model.encoder.attention_maps();
        let art = attention_heatmap(&maps[0][0], &e, &tok, 8);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8.min(e.len()));
        assert!(lines[0].starts_with("[CLS]"));
    }

    #[test]
    fn top_attended_is_sorted_and_bounded() {
        let (e, tok, mut model) = setup();
        let input = EncoderInput::from_encoded(&e);
        let _ = model.encode(&input, false);
        let maps = model.encoder.attention_maps();
        let top = top_attended(&maps[0][0], &e, &tok, 0, 3);
        assert_eq!(top.len(), 3);
        assert!(top[0].3 >= top[1].3 && top[1].3 >= top[2].3);
    }

    #[test]
    fn similarity_grid_marks_anchor() {
        let (e, _, mut model) = setup();
        let input = EncoderInput::from_encoded(&e);
        let states = model.encode(&input, false);
        let grid = cell_similarity_grid(&e, &states, (0, 0), 2, 2);
        assert!(grid.contains("*+1.00"), "{grid}");
        let missing = cell_similarity_grid(&e, &states, (9, 9), 2, 2);
        assert!(missing.contains("not encoded"));
    }
}
