//! Text-to-SQL semantic parsing (§2.1): generate SQL from a natural-
//! language question + table with a TAPEX-style encoder–decoder, and
//! evaluate by **denotation accuracy** (does the predicted query execute to
//! the gold answer?).

use crate::trainer::{epoch_order, ScheduledOptimizer, TrainConfig};
use ntr_corpus::datasets::Text2SqlDataset;
use ntr_corpus::Split;
use ntr_models::{EncoderInput, Tapex};
use ntr_sql::{execute, parse_query};
use ntr_table::{Linearizer, LinearizerOptions, TapexLinearizer};
use ntr_tokenizer::{SpecialToken, WordPieceTokenizer};

fn example_io(
    ex: &ntr_corpus::datasets::Text2SqlExample,
    tok: &WordPieceTokenizer,
    max_tokens: usize,
) -> (EncoderInput, Vec<usize>) {
    let opts = LinearizerOptions {
        max_tokens,
        ..Default::default()
    };
    let encoded = TapexLinearizer.linearize(&ex.table, &ex.question, tok, &opts);
    let input = EncoderInput::from_encoded(&encoded);
    let mut target = tok.encode(&ex.sql.to_string());
    target.truncate(40);
    target.push(SpecialToken::Sep.id());
    (input, target)
}

/// Trains the parser with teacher forcing on the training split.
pub fn finetune(
    model: &mut Tapex,
    ds: &Text2SqlDataset,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    max_tokens: usize,
) -> Vec<f32> {
    let prepared: Vec<(EncoderInput, Vec<usize>)> = ds
        .indices(Split::Train)
        .iter()
        .map(|&i| example_io(&ds.examples[i], tok, max_tokens))
        .collect();
    let steps = (prepared.len() * cfg.epochs).div_ceil(cfg.batch_size) as u64;
    let mut opt = ScheduledOptimizer::new(cfg, steps);
    let mut losses = Vec::new();
    let mut batch_loss = 0.0;
    let mut in_batch = 0;
    for epoch in 0..cfg.epochs {
        for &i in &epoch_order(prepared.len(), epoch, cfg.seed) {
            let (input, target) = &prepared[i];
            batch_loss += model.train_step(input, target);
            in_batch += 1;
            if in_batch == cfg.batch_size {
                opt.step(model);
                losses.push(batch_loss / in_batch as f32);
                batch_loss = 0.0;
                in_batch = 0;
            }
        }
    }
    if in_batch > 0 {
        opt.step(model);
        losses.push(batch_loss / in_batch as f32);
    }
    losses
}

/// Repairs tokenizer-decoded SQL so it re-parses: WordPiece decoding
/// spaces out punctuation (`67.8` → `67 . 8`, `>=` → `> =`,
/// `'France'` → `' france '`); this undoes exactly those splits.
pub fn repair_decoded_sql(text: &str) -> String {
    let mut s = text.to_string();
    for (from, to) in [("> =", ">="), ("< =", "<="), ("! =", "!="), ("< >", "<>")] {
        s = s.replace(from, to);
    }
    // Rejoin decimal numbers: digit ' . ' digit.
    let chars: Vec<char> = s.chars().collect();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == ' '
            && i + 2 < chars.len()
            && chars[i + 1] == '.'
            && chars[i + 2] == ' '
            && i > 0
            && chars[i - 1].is_ascii_digit()
            && i + 3 < chars.len()
            && chars[i + 3].is_ascii_digit()
        {
            out.push('.');
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    // Reattach quotes: "' france '" → "'france'". Segments alternate
    // outside/inside quotes; inside segments get trimmed.
    let mut repaired = String::with_capacity(out.len());
    for (i, part) in out.split('\'').enumerate() {
        if i > 0 {
            repaired.push('\'');
        }
        if i % 2 == 1 {
            repaired.push_str(part.trim());
        } else {
            repaired.push_str(part);
        }
    }
    repaired
}

/// Text-to-SQL evaluation.
#[derive(Debug, Clone, Default)]
pub struct Text2SqlEval {
    /// Fraction of predictions that parse as SQL at all.
    pub parse_rate: f64,
    /// Fraction whose execution matches the gold denotation.
    pub denotation_accuracy: f64,
    /// Fraction exactly matching the gold SQL string (case-insensitive).
    pub exact_match: f64,
    /// Examples evaluated.
    pub n: usize,
}

/// Evaluates the parser by generating SQL and executing it.
pub fn evaluate(
    model: &mut Tapex,
    ds: &Text2SqlDataset,
    split: Split,
    tok: &WordPieceTokenizer,
    max_tokens: usize,
) -> Text2SqlEval {
    let idx = ds.indices(split);
    if idx.is_empty() {
        return Text2SqlEval::default();
    }
    let mut parsed = 0usize;
    let mut denot = 0usize;
    let mut exact = 0usize;
    for &i in &idx {
        let ex = &ds.examples[i];
        let (input, _) = example_io(ex, tok, max_tokens);
        let generated = model.generate(&input, 44);
        let text = repair_decoded_sql(&tok.decode(&generated));
        if text.eq_ignore_ascii_case(&ex.sql.to_string()) {
            exact += 1;
        }
        let Ok(query) = parse_query(&text) else {
            continue;
        };
        parsed += 1;
        if let Ok(ans) = execute(&query, &ex.table) {
            if ans.same_denotation(&ex.answer) {
                denot += 1;
            }
        }
    }
    let n = idx.len();
    Text2SqlEval {
        parse_rate: parsed as f64 / n as f64,
        denotation_accuracy: denot as f64 / n as f64,
        exact_match: exact as f64 / n as f64,
        n,
    }
}

/// Trivial baseline: always predict `SELECT <first column> FROM t`.
pub fn baseline_first_column(ds: &Text2SqlDataset, split: Split) -> Text2SqlEval {
    let idx = ds.indices(split);
    if idx.is_empty() {
        return Text2SqlEval::default();
    }
    let mut denot = 0;
    for &i in &idx {
        let ex = &ds.examples[i];
        let q = ntr_sql::Query::select(ex.table.columns()[0].name.clone());
        if let Ok(ans) = execute(&q, &ex.table) {
            if ans.same_denotation(&ex.answer) {
                denot += 1;
            }
        }
    }
    Text2SqlEval {
        parse_rate: 1.0,
        denotation_accuracy: denot as f64 / idx.len() as f64,
        exact_match: 0.0,
        n: idx.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_corpus::tables::{CorpusConfig, TableCorpus};
    use ntr_corpus::{World, WorldConfig};
    use ntr_models::ModelConfig;

    #[test]
    fn repair_fixes_decoded_operators_and_numbers() {
        assert_eq!(
            repair_decoded_sql("select a from t where b > = 3"),
            "select a from t where b >= 3"
        );
        assert_eq!(
            repair_decoded_sql("select a from t where b = 67 . 8"),
            "select a from t where b = 67.8"
        );
        assert_eq!(
            repair_decoded_sql("select a from t where b = ' france '"),
            "select a from t where b = 'france'"
        );
        // Idempotent on already-clean SQL.
        let clean = "select sum population from t where country = 'france'";
        assert_eq!(repair_decoded_sql(clean), clean);
    }

    #[test]
    fn repaired_roundtrip_through_tokenizer_parses() {
        let corpus_text = [
            "select sum avg count min max from t where and population country 67.8 25.69",
            "' | : ; > < = ! . 0 1 2 3 4 5 6 7 8 9",
        ];
        let tok = ntr_tokenizer::WordPieceTokenizer::new(
            ntr_tokenizer::train::WordPieceTrainer::new(400).train(corpus_text.iter().copied()),
        );
        for sql in [
            "SELECT population FROM t",
            "SELECT SUM population FROM t WHERE country = 'france'",
            "SELECT COUNT country FROM t WHERE population >= 25.69",
        ] {
            let ids = tok.encode(sql);
            let text = repair_decoded_sql(&tok.decode(&ids));
            let parsed = parse_query(&text);
            assert!(parsed.is_ok(), "{sql:?} → {text:?}: {parsed:?}");
        }
    }

    #[test]
    fn training_reduces_loss_and_eval_is_consistent() {
        let w = World::generate(WorldConfig {
            n_countries: 6,
            n_people: 6,
            n_films: 4,
            n_clubs: 4,
            seed: 61,
        });
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 6,
                min_rows: 3,
                max_rows: 3,
                null_prob: 0.0,
                headerless_prob: 0.0,
                seed: 62,
            },
        );
        let ds = Text2SqlDataset::build(&corpus, 2, 63);
        let extra: Vec<String> = ds
            .examples
            .iter()
            .flat_map(|e| [e.question.clone(), e.sql.to_string().to_lowercase()])
            .collect();
        let tok = ntr_corpus::vocab::train_tokenizer(&corpus, &extra, 1500);
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let mut model = Tapex::new(&cfg);
        let losses = finetune(
            &mut model,
            &ds,
            &tok,
            &TrainConfig {
                epochs: 3,
                lr: 3e-3,
                batch_size: 4,
                warmup_frac: 0.1,
                seed: 7,
            },
            96,
        );
        assert!(losses.len() >= 2);
        assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
        let eval = evaluate(&mut model, &ds, Split::Test, &tok, 96);
        assert!(eval.n > 0);
        assert!(eval.denotation_accuracy <= eval.parse_rate + 1e-9);
        let base = baseline_first_column(&ds, Split::Test);
        assert_eq!(base.n, eval.n);
    }
}
