//! Aggregation question answering — TAPAS's weak-supervision setting: for
//! questions like *"what is the average population?"* the model predicts an
//! **aggregation operator** (from the `[CLS]` state, via
//! [`ntr_models::Tapas::agg_head`]) and a **target column** (pointer over
//! pooled column representations); the answer is the operator applied to
//! the column. Evaluated by denotation through the real SQL executor.

use crate::metrics::accuracy;
use crate::trainer::{epoch_order, ScheduledOptimizer, TrainConfig};
use ntr_corpus::datasets::render_question;
use ntr_corpus::split_three;
use ntr_corpus::tables::TableCorpus;
use ntr_corpus::Split;
use ntr_models::{EncoderInput, SequenceEncoder, Tapas};
use ntr_nn::init::SeededInit;
use ntr_nn::loss::softmax_cross_entropy;
use ntr_nn::{Layer, Linear, Param};
use ntr_sql::gen::{GenConfig, QueryGenerator};
use ntr_sql::{execute, Agg, Answer, Query};
use ntr_table::{
    EncodedTable, Linearizer, LinearizerOptions, RowMajorLinearizer, Table, TokenKind,
};
use ntr_tensor::Tensor;
use ntr_tokenizer::WordPieceTokenizer;

/// The operator label space (TAPAS's choice): NONE means "return the
/// column's cells as-is".
pub const OPS: [&str; 4] = ["none", "count", "sum", "average"];

fn op_of(agg: Option<Agg>) -> Option<usize> {
    match agg {
        None => Some(0),
        Some(Agg::Count) => Some(1),
        Some(Agg::Sum) => Some(2),
        Some(Agg::Avg) => Some(3),
        Some(Agg::Min | Agg::Max) => None, // outside TAPAS's op set
    }
}

fn op_to_agg(op: usize) -> Option<Agg> {
    match op {
        1 => Some(Agg::Count),
        2 => Some(Agg::Sum),
        3 => Some(Agg::Avg),
        _ => None,
    }
}

/// One aggregation-QA example.
#[derive(Debug, Clone)]
pub struct AggQaExample {
    /// The table.
    pub table: Table,
    /// Natural-language question.
    pub question: String,
    /// Gold operator index into [`OPS`].
    pub op: usize,
    /// Gold target column.
    pub column: usize,
    /// Gold answer (executed).
    pub answer: Answer,
}

/// Aggregation-QA dataset with splits.
#[derive(Debug, Clone)]
pub struct AggQaDataset {
    /// All examples.
    pub examples: Vec<AggQaExample>,
    /// Split per example.
    pub splits: Vec<Split>,
}

impl AggQaDataset {
    /// Builds condition-free aggregate questions over every headered table.
    pub fn build(corpus: &TableCorpus, per_table: usize, seed: u64) -> Self {
        let mut examples = Vec::new();
        for (ti, table) in corpus.tables.iter().enumerate() {
            if table.is_headerless() || table.n_rows() == 0 {
                continue;
            }
            let mut gen = QueryGenerator::new(
                seed ^ (ti as u64).wrapping_mul(0x9E1),
                GenConfig {
                    agg_prob: 0.75,
                    max_conditions: 0,
                    require_nonempty: true,
                },
            );
            let mut taken = 0;
            for (sql, answer) in gen.generate_n(table, per_table * 3) {
                let Some(op) = op_of(sql.agg) else { continue };
                let Some(column) = table.column_index(&sql.column) else {
                    continue;
                };
                examples.push(AggQaExample {
                    table: table.clone(),
                    question: render_question(&sql),
                    op,
                    column,
                    answer,
                });
                taken += 1;
                if taken == per_table {
                    break;
                }
            }
        }
        let splits = split_three(examples.len(), 0.1, 0.2, seed ^ 0xA99A);
        Self { examples, splits }
    }

    /// Indices of one split.
    pub fn indices(&self, split: Split) -> Vec<usize> {
        ntr_corpus::split::indices_of(&self.splits, split)
    }
}

/// The model: a TAPAS encoder, its built-in aggregation head, and a
/// question→column pointer.
pub struct AggregationQa {
    /// The TAPAS encoder (with `agg_head`).
    pub tapas: Tapas,
    /// Question-side pointer projection.
    pub wq: Linear,
    /// Column-side pointer projection.
    pub wk: Linear,
}

impl AggregationQa {
    /// Wraps a TAPAS model with fresh column-pointer projections.
    pub fn new(tapas: Tapas, seed: u64) -> Self {
        let d = tapas.d_model();
        let mut init = SeededInit::new(seed);
        Self {
            tapas,
            wq: Linear::new(d, d, &mut init.fork()),
            wk: Linear::new(d, d, &mut init.fork()),
        }
    }
}

impl Layer for AggregationQa {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.tapas
            .visit_params(&mut |n, p| f(&format!("tapas/{n}"), p));
        self.wq.visit_params(&mut |n, p| f(&format!("wq/{n}"), p));
        self.wk.visit_params(&mut |n, p| f(&format!("wk/{n}"), p));
    }
}

/// Positions of each column's cell tokens.
fn column_positions(encoded: &EncodedTable, n_cols: usize) -> Vec<Vec<usize>> {
    let mut cols = vec![Vec::new(); n_cols];
    for (i, m) in encoded.meta().iter().enumerate() {
        if m.kind == TokenKind::Cell && m.col > 0 && m.col <= n_cols {
            cols[m.col - 1].push(i);
        }
    }
    cols
}

fn pool(states: &Tensor, positions: &[usize]) -> Tensor {
    let d = states.dim(1);
    let mut out = Tensor::zeros(&[1, d]);
    for &p in positions {
        for j in 0..d {
            out.data_mut()[j] += states.at(&[p, j]);
        }
    }
    out.scale(1.0 / positions.len().max(1) as f32)
}

struct Prepared {
    input: EncoderInput,
    col_positions: Vec<Vec<usize>>,
    op: usize,
    column: usize,
}

fn prepare(
    ds: &AggQaDataset,
    idx: &[usize],
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> Vec<Prepared> {
    idx.iter()
        .filter_map(|&i| {
            let ex = &ds.examples[i];
            let encoded = RowMajorLinearizer.linearize(&ex.table, &ex.question, tok, opts);
            let col_positions = column_positions(&encoded, ex.table.n_cols());
            if col_positions.iter().any(Vec::is_empty) {
                return None; // truncated column: skip for clean supervision
            }
            Some(Prepared {
                input: EncoderInput::from_encoded(&encoded),
                col_positions,
                op: ex.op,
                column: ex.column,
            })
        })
        .collect()
}

/// Fine-tunes operator and column prediction jointly.
pub fn finetune(
    model: &mut AggregationQa,
    ds: &AggQaDataset,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    opts: &LinearizerOptions,
) {
    let prepared = prepare(ds, &ds.indices(Split::Train), tok, opts);
    let steps = (prepared.len() * cfg.epochs).div_ceil(cfg.batch_size) as u64;
    let mut opt = ScheduledOptimizer::new(cfg, steps);
    let mut in_batch = 0;
    for epoch in 0..cfg.epochs {
        for &i in &epoch_order(prepared.len(), epoch, cfg.seed) {
            let p = &prepared[i];
            let states = model.tapas.encode(&p.input, true);
            let (seq_len, d) = (states.dim(0), states.dim(1));
            let scale = 1.0 / (d as f32).sqrt();

            // Operator loss on [CLS].
            let cls = states.rows(0, 1);
            let op_logits = model.tapas.agg_head.forward(&cls);
            let (_, d_op_logits) = softmax_cross_entropy(&op_logits, &[p.op], None);
            let d_cls = model.tapas.agg_head.backward(&d_op_logits);

            // Column pointer loss.
            let pooled: Vec<Tensor> = p.col_positions.iter().map(|ps| pool(&states, ps)).collect();
            let q = model.wq.forward(&cls);
            let pooled_mat = Tensor::vstack(&pooled.iter().collect::<Vec<_>>());
            let k = model.wk.forward(&pooled_mat);
            let col_logits = k.matmul_nt(&q).scale(scale).transpose(); // [1, n_cols]
            let (_, d_col_logits) = softmax_cross_entropy(&col_logits, &[p.column], None);
            let d_col = d_col_logits.transpose(); // [n_cols, 1]
            let dk = d_col.matmul(&q).scale(scale);
            let dq = d_col.matmul_tn(&k).scale(scale);
            let d_pooled = model.wk.backward(&dk);
            let d_cls2 = model.wq.backward(&dq);

            // Assemble the state gradient.
            let mut dstates = Tensor::zeros(&[seq_len, d]);
            for j in 0..d {
                dstates.row_mut(0)[j] = d_cls.data()[j] + d_cls2.data()[j];
            }
            for (c, ps) in p.col_positions.iter().enumerate() {
                let w = 1.0 / ps.len().max(1) as f32;
                for &pos in ps {
                    for j in 0..d {
                        dstates.row_mut(pos)[j] += d_pooled.at(&[c, j]) * w;
                    }
                }
            }
            model.tapas.backward(&dstates);
            in_batch += 1;
            if in_batch == cfg.batch_size {
                opt.step(model);
                in_batch = 0;
            }
        }
    }
    if in_batch > 0 {
        opt.step(model);
    }
}

/// Aggregation-QA evaluation.
#[derive(Debug, Clone, Default)]
pub struct AggQaEval {
    /// Operator accuracy.
    pub op_accuracy: f64,
    /// Column accuracy.
    pub col_accuracy: f64,
    /// Denotation accuracy of `apply(predicted op, predicted column)`.
    pub denotation_accuracy: f64,
    /// Examples evaluated.
    pub n: usize,
}

/// Evaluates by executing the predicted (op, column) program.
pub fn evaluate(
    model: &mut AggregationQa,
    ds: &AggQaDataset,
    split: Split,
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> AggQaEval {
    let idx = ds.indices(split);
    let mut op_pred = Vec::new();
    let mut op_gold = Vec::new();
    let mut col_pred = Vec::new();
    let mut col_gold = Vec::new();
    let mut denot_hits = 0usize;
    for &i in &idx {
        let ex = &ds.examples[i];
        // Prepare per example so a skipped (truncated) example can never be
        // paired with a neighbour's encoding.
        let Some(p) = prepare(ds, &[i], tok, opts).pop() else {
            continue;
        };
        let states = model.tapas.encode(&p.input, false);
        let d = states.dim(1) as f32;
        let cls = states.rows(0, 1);
        let op = model.tapas.agg_head.forward(&cls).argmax_rows()[0];
        let pooled: Vec<Tensor> = p.col_positions.iter().map(|ps| pool(&states, ps)).collect();
        let q = model.wq.forward_inference(&cls);
        let k = model
            .wk
            .forward_inference(&Tensor::vstack(&pooled.iter().collect::<Vec<_>>()));
        let col = k
            .matmul_nt(&q)
            .scale(1.0 / d.sqrt())
            .transpose()
            .argmax_rows()[0];
        op_pred.push(op);
        op_gold.push(ex.op);
        col_pred.push(col);
        col_gold.push(ex.column);

        // Execute the predicted program.
        let mut query = Query::select(ex.table.columns()[col].name.clone());
        query.agg = op_to_agg(op);
        if let Ok(ans) = execute(&query, &ex.table) {
            if ans.same_denotation(&ex.answer) {
                denot_hits += 1;
            }
        }
    }
    AggQaEval {
        op_accuracy: accuracy(&op_pred, &op_gold),
        col_accuracy: accuracy(&col_pred, &col_gold),
        denotation_accuracy: denot_hits as f64 / op_pred.len().max(1) as f64,
        n: op_pred.len(),
    }
}

/// Keyword baseline: "how many" → COUNT, "total" → SUM, "average" → AVG,
/// else NONE; column = the header mentioned in the question.
pub fn baseline_keyword(ds: &AggQaDataset, split: Split) -> AggQaEval {
    let mut op_pred = Vec::new();
    let mut op_gold = Vec::new();
    let mut col_pred = Vec::new();
    let mut col_gold = Vec::new();
    let mut denot_hits = 0usize;
    for &i in &ds.indices(split) {
        let ex = &ds.examples[i];
        let q = ex.question.to_lowercase();
        let op = if q.contains("how many") {
            1
        } else if q.contains("total") {
            2
        } else if q.contains("average") {
            3
        } else {
            0
        };
        let col = (0..ex.table.n_cols())
            .find(|&c| q.contains(&ex.table.columns()[c].name.to_lowercase()))
            .unwrap_or(0);
        op_pred.push(op);
        op_gold.push(ex.op);
        col_pred.push(col);
        col_gold.push(ex.column);
        let mut query = Query::select(ex.table.columns()[col].name.clone());
        query.agg = op_to_agg(op);
        if let Ok(ans) = execute(&query, &ex.table) {
            if ans.same_denotation(&ex.answer) {
                denot_hits += 1;
            }
        }
    }
    AggQaEval {
        op_accuracy: accuracy(&op_pred, &op_gold),
        col_accuracy: accuracy(&col_pred, &col_gold),
        denotation_accuracy: denot_hits as f64 / op_pred.len().max(1) as f64,
        n: op_pred.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_corpus::tables::CorpusConfig;
    use ntr_corpus::{World, WorldConfig};
    use ntr_models::ModelConfig;

    fn setup() -> (AggQaDataset, WordPieceTokenizer) {
        let w = World::generate(WorldConfig::default());
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 18,
                min_rows: 3,
                max_rows: 5,
                null_prob: 0.0,
                headerless_prob: 0.0,
                seed: 0xAA1,
            },
        );
        let ds = AggQaDataset::build(&corpus, 4, 0xAA2);
        let extra: Vec<String> = ds.examples.iter().map(|e| e.question.clone()).collect();
        let tok = ntr_corpus::vocab::train_tokenizer(&corpus, &extra, 1500);
        (ds, tok)
    }

    #[test]
    fn dataset_covers_all_ops_with_valid_answers() {
        let (ds, _) = setup();
        assert!(ds.examples.len() > 20);
        let mut seen = [false; 4];
        for ex in &ds.examples {
            seen[ex.op] = true;
            assert!(ex.column < ex.table.n_cols());
            // Gold answers re-execute to themselves.
            let mut q = Query::select(ex.table.columns()[ex.column].name.clone());
            q.agg = op_to_agg(ex.op);
            let ans = execute(&q, &ex.table).expect("gold re-executes");
            assert!(ans.same_denotation(&ex.answer), "{}", ex.question);
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 3, "{seen:?}");
    }

    #[test]
    fn keyword_baseline_is_strong_on_templates() {
        let (ds, _) = setup();
        let eval = baseline_keyword(&ds, Split::Test);
        assert!(eval.n > 0);
        assert!(eval.op_accuracy > 0.6, "{eval:?}");
    }

    #[test]
    fn training_improves_operator_and_column_fit() {
        let (ds, tok) = setup();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            d_model: 32,
            n_heads: 2,
            n_layers: 2,
            d_ff: 64,
            dropout: 0.0,
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let opts = LinearizerOptions {
            max_tokens: 128,
            ..Default::default()
        };
        let mut model = AggregationQa::new(Tapas::new(&cfg), 0xAA3);
        let before = evaluate(&mut model, &ds, Split::Train, &tok, &opts);
        finetune(
            &mut model,
            &ds,
            &tok,
            &TrainConfig {
                epochs: 8,
                lr: 2e-3,
                batch_size: 4,
                warmup_frac: 0.1,
                seed: 0xAA4,
            },
            &opts,
        );
        let after = evaluate(&mut model, &ds, Split::Train, &tok, &opts);
        assert!(after.n > 0);
        assert!(
            after.op_accuracy + after.col_accuracy > before.op_accuracy + before.col_accuracy,
            "agg-QA training must fit: {before:?} → {after:?}"
        );
    }
}
