//! Table question answering by cell selection (the paper's §2.1 QA task,
//! TAPAS-style): encode `question [SEP] table`, score every token, select
//! the cell with the highest mean token score.

use crate::metrics::accuracy;
use crate::trainer::{epoch_order, ScheduledOptimizer, TrainConfig};
use ntr_corpus::datasets::{QaDataset, QaExample};
use ntr_corpus::Split;
use ntr_models::{EncoderInput, SequenceEncoder};
use ntr_nn::init::SeededInit;
use ntr_nn::loss::binary_cross_entropy_with_logits;
use ntr_nn::{Layer, Linear, Param};
use ntr_table::{EncodedTable, Linearizer, LinearizerOptions, RowMajorLinearizer};
use ntr_tensor::Tensor;
use ntr_tokenizer::WordPieceTokenizer;

/// A cell-selection QA model: any [`SequenceEncoder`] plus a **pointer
/// head** — each token is scored by the scaled dot product between a
/// projection of the question's `[CLS]` state and a projection of the
/// token state (`score_i = (W_q·cls) · (W_k·h_i) / √d`).
///
/// The relational scoring gives the model the matching inductive bias
/// cell-selection QA needs at small scale; a per-token linear head (as in
/// [`ntr_models::Tapas::cell_head`]) memorizes positions instead of
/// learning to match question tokens against cells.
pub struct CellSelector<M: SequenceEncoder> {
    /// The encoder.
    pub encoder: M,
    /// Question-side projection.
    pub wq: Linear,
    /// Token-side projection.
    pub wk: Linear,
}

impl<M: SequenceEncoder> CellSelector<M> {
    /// Wraps an encoder with fresh pointer projections.
    pub fn new(encoder: M, seed: u64) -> Self {
        let d = encoder.d_model();
        let mut init = SeededInit::new(seed);
        Self {
            encoder,
            wq: Linear::new(d, d, &mut init.fork()),
            wk: Linear::new(d, d, &mut init.fork()),
        }
    }

    /// Per-token pointer logits `[n, 1]` for already-encoded `states`.
    /// Caches for [`CellSelector::head_backward`].
    pub fn head_forward(&mut self, states: &Tensor) -> Tensor {
        let d = states.dim(1) as f32;
        let q = self.wq.forward(&states.rows(0, 1)); // [1, d]
        let k = self.wk.forward(states); // [n, d]
        k.matmul_nt(&q).scale(1.0 / d.sqrt())
    }

    /// Inference-only pointer logits (no caches).
    pub fn head_forward_inference(&self, states: &Tensor) -> Tensor {
        let d = states.dim(1) as f32;
        let q = self.wq.forward_inference(&states.rows(0, 1));
        let k = self.wk.forward_inference(states);
        k.matmul_nt(&q).scale(1.0 / d.sqrt())
    }

    /// Backward through the pointer head; returns `d loss / d states`.
    pub fn head_backward(&mut self, states: &Tensor, dlogits: &Tensor) -> Tensor {
        let d = states.dim(1) as f32;
        let scale = 1.0 / d.sqrt();
        // Recompute the projected values (cheap, avoids extra caching).
        let q = self.wq.forward_inference(&states.rows(0, 1));
        let k = self.wk.forward_inference(states);
        // logits = scale · k·qᵀ
        let dk = dlogits.matmul(&q).scale(scale); // [n,1]·[1,d]
        let dq = dlogits.matmul_tn(&k).scale(scale); // [1,n]·[n,d]
        let mut dstates = self.wk.backward(&dk);
        let dcls = self.wq.backward(&dq);
        for j in 0..dcls.numel() {
            dstates.row_mut(0)[j] += dcls.data()[j];
        }
        dstates
    }
}

impl<M: SequenceEncoder> Layer for CellSelector<M> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut Param)) {
        self.encoder
            .visit_params(&mut |n, p| f(&format!("encoder/{n}"), p));
        self.wq.visit_params(&mut |n, p| f(&format!("wq/{n}"), p));
        self.wk.visit_params(&mut |n, p| f(&format!("wk/{n}"), p));
    }
}

/// Applies a TaBERT-style *content snapshot* to every example: keep only
/// the `k` rows most lexically relevant to the question (the paper's
/// "data retrieval and filtering" input-processing step). Answer
/// coordinates are remapped; examples whose answer row is filtered out are
/// dropped (reported by the length difference).
pub fn snapshot_dataset(ds: &QaDataset, k: usize) -> QaDataset {
    let mut examples = Vec::with_capacity(ds.examples.len());
    let mut splits = Vec::with_capacity(ds.examples.len());
    for (ex, &split) in ds.examples.iter().zip(&ds.splits) {
        let rows = ntr_table::snapshot::select_rows(&ex.table, &ex.question, k);
        let Some(new_row) = rows.iter().position(|&r| r == ex.answer_coord.0) else {
            continue;
        };
        examples.push(QaExample {
            table: ex.table.select_rows(&rows),
            question: ex.question.clone(),
            answer_coord: (new_row, ex.answer_coord.1),
            answer_text: ex.answer_text.clone(),
        });
        splits.push(split);
    }
    QaDataset { examples, splits }
}

/// Linearizes one QA example (question as context).
pub fn encode_qa(
    ex: &QaExample,
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> EncodedTable {
    RowMajorLinearizer.linearize(&ex.table, &ex.question, tok, opts)
}

/// Fine-tunes a cell selector: BCE on cell tokens (1 inside the answer
/// cell, 0 in other cells; non-cell tokens excluded).
pub fn finetune<M: SequenceEncoder>(
    model: &mut CellSelector<M>,
    ds: &QaDataset,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    opts: &LinearizerOptions,
) {
    let train_idx = ds.indices(Split::Train);
    let prepared: Vec<(EncoderInput, Vec<f32>, Vec<f32>)> = train_idx
        .iter()
        .filter_map(|&i| {
            let ex = &ds.examples[i];
            let encoded = encode_qa(ex, tok, opts);
            let span = encoded.cell_span(ex.answer_coord.0, ex.answer_coord.1)?;
            let n = encoded.len();
            let mut targets = vec![0.0f32; n];
            let mut mask = vec![0.0f32; n];
            for (_, cell_span) in encoded.cells() {
                for p in cell_span {
                    mask[p] = 1.0;
                }
            }
            for p in span {
                targets[p] = 1.0;
            }
            Some((EncoderInput::from_encoded(&encoded), targets, mask))
        })
        .collect();
    let steps = (prepared.len() * cfg.epochs).div_ceil(cfg.batch_size) as u64;
    let mut opt = ScheduledOptimizer::new(cfg, steps);
    let mut in_batch = 0;
    for epoch in 0..cfg.epochs {
        for &i in &epoch_order(prepared.len(), epoch, cfg.seed) {
            let (input, targets, mask) = &prepared[i];
            let states = model.encoder.encode(input, true);
            let logits = model.head_forward(&states);
            let (_, dlogits) = binary_cross_entropy_with_logits(&logits, targets, Some(mask));
            let dstates = model.head_backward(&states, &dlogits);
            model.encoder.backward(&dstates);
            in_batch += 1;
            if in_batch == cfg.batch_size {
                opt.step(model);
                in_batch = 0;
            }
        }
    }
    if in_batch > 0 {
        opt.step(model);
    }
}

/// QA evaluation: exact-coordinate accuracy and denotation accuracy
/// (predicted cell *text* equals gold answer text).
#[derive(Debug, Clone, Default)]
pub struct QaEval {
    /// Fraction with the exact gold coordinate selected.
    pub coord_accuracy: f64,
    /// Fraction whose selected cell text equals the gold answer.
    pub denotation_accuracy: f64,
    /// Examples evaluated.
    pub n: usize,
}

/// Evaluates a selector on a split.
pub fn evaluate<M: SequenceEncoder>(
    model: &mut CellSelector<M>,
    ds: &QaDataset,
    split: Split,
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> QaEval {
    let mut coord_pred = Vec::new();
    let mut coord_gold = Vec::new();
    let mut denot = Vec::new();
    for &i in &ds.indices(split) {
        let ex = &ds.examples[i];
        let encoded = encode_qa(ex, tok, opts);
        if encoded
            .cell_span(ex.answer_coord.0, ex.answer_coord.1)
            .is_none()
        {
            continue;
        }
        let input = EncoderInput::from_encoded(&encoded);
        let states = model.encoder.encode(&input, false);
        let scores = model.head_forward_inference(&states);
        let mut best: Option<((usize, usize), f32)> = None;
        for (coord, span) in encoded.cells() {
            let mean = span.clone().map(|p| scores.at(&[p, 0])).sum::<f32>() / span.len() as f32;
            if best.is_none() || mean > best.expect("set").1 {
                best = Some((coord, mean));
            }
        }
        let Some((pred, _)) = best else { continue };
        coord_pred.push(pred);
        coord_gold.push(ex.answer_coord);
        denot.push(ex.table.cell(pred.0, pred.1).text() == ex.answer_text);
    }
    QaEval {
        coord_accuracy: accuracy(&coord_pred, &coord_gold),
        denotation_accuracy: if denot.is_empty() {
            0.0
        } else {
            denot.iter().filter(|&&x| x).count() as f64 / denot.len() as f64
        },
        n: denot.len(),
    }
}

/// The symbolic baseline the neural models are compared against: pick the
/// column whose header occurs in the question and the row whose subject
/// occurs in the question (lexical overlap scoring).
pub fn baseline_lexical(ds: &QaDataset, split: Split) -> QaEval {
    let mut coord_pred = Vec::new();
    let mut coord_gold = Vec::new();
    let mut denot = Vec::new();
    for &i in &ds.indices(split) {
        let ex = &ds.examples[i];
        let q = ex.question.to_lowercase();
        let mut best = ((0usize, 0usize), f64::NEG_INFINITY);
        for r in 0..ex.table.n_rows() {
            let subject = ex.table.cell(r, 0).text().to_lowercase();
            let row_score = if !subject.is_empty() && q.contains(&subject) {
                1.0
            } else {
                0.0
            };
            for c in 1..ex.table.n_cols() {
                let header = ex.table.columns()[c].name.to_lowercase();
                let col_score = if q.contains(&header) { 1.0 } else { 0.0 };
                let score = row_score + col_score;
                if score > best.1 {
                    best = ((r, c), score);
                }
            }
        }
        coord_pred.push(best.0);
        coord_gold.push(ex.answer_coord);
        denot.push(ex.table.cell(best.0 .0, best.0 .1).text() == ex.answer_text);
    }
    QaEval {
        coord_accuracy: accuracy(&coord_pred, &coord_gold),
        denotation_accuracy: if denot.is_empty() {
            0.0
        } else {
            denot.iter().filter(|&&x| x).count() as f64 / denot.len() as f64
        },
        n: denot.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_corpus::tables::{CorpusConfig, TableCorpus};
    use ntr_corpus::{World, WorldConfig};
    use ntr_models::{ModelConfig, Tapas};

    fn setup() -> (QaDataset, WordPieceTokenizer) {
        let w = World::generate(WorldConfig {
            n_countries: 8,
            n_people: 8,
            n_films: 6,
            n_clubs: 4,
            seed: 12,
        });
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 12,
                min_rows: 3,
                max_rows: 4,
                null_prob: 0.0,
                headerless_prob: 0.0,
                seed: 13,
            },
        );
        let extra: Vec<String> = ["what is the", "which", "tell me the", "for", "of"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let tok = ntr_corpus::vocab::train_tokenizer(&corpus, &extra, 1200);
        (QaDataset::build(&corpus, 3, 14), tok)
    }

    #[test]
    fn baseline_lexical_is_strong_on_templated_questions() {
        let (ds, _) = setup();
        let eval = baseline_lexical(&ds, Split::Test);
        assert!(eval.n > 0);
        // The questions literally contain subject and header, so the
        // lexical baseline should do very well — that is the point of
        // comparing against it.
        assert!(eval.coord_accuracy > 0.5, "{eval:?}");
    }

    #[test]
    fn finetuning_improves_cell_selection() {
        let (ds, tok) = setup();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let opts = LinearizerOptions {
            max_tokens: 128,
            ..Default::default()
        };
        let mut model = CellSelector::new(Tapas::new(&cfg), 77);
        let before = evaluate(&mut model, &ds, Split::Train, &tok, &opts);
        finetune(
            &mut model,
            &ds,
            &tok,
            &TrainConfig {
                epochs: 12,
                lr: 2e-3,
                batch_size: 4,
                warmup_frac: 0.1,
                seed: 15,
            },
            &opts,
        );
        let after = evaluate(&mut model, &ds, Split::Train, &tok, &opts);
        assert!(after.n > 0);
        assert!(
            after.coord_accuracy > before.coord_accuracy,
            "QA fine-tuning must fit its training split: {before:?} → {after:?}"
        );
    }

    #[test]
    fn evaluate_counts_only_encodable_examples() {
        let (ds, tok) = setup();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let mut model = CellSelector::new(Tapas::new(&cfg), 1);
        // A tiny budget truncates most answer cells away; evaluation must
        // not panic and must skip them.
        let opts = LinearizerOptions {
            max_tokens: 12,
            ..Default::default()
        };
        let eval = evaluate(&mut model, &ds, Split::Test, &tok, &opts);
        assert!(eval.n <= ds.indices(Split::Test).len());
    }
}
