//! Data imputation (the paper's hands-on §3.4): fine-tune a pretrained
//! model to recover blanked cells, evaluate with standard metrics, and
//! slice the failures the paper highlights (numeric tables, tables without
//! descriptive headers).
//!
//! ## Method
//!
//! The blanked cell (a single `[EMPTY]` token after linearization) is
//! expanded into `K = 4` `[MASK]` positions. Fine-tuning does MLM at those
//! positions against the first `K` tokens of the gold value (padded with
//! `[SEP]`). At prediction time, each candidate value is scored by the mean
//! log-probability of its (padded) first `K` tokens at those positions —
//! one encoder pass scores every candidate.
//!
//! Candidates come from a per-header pool built on the training split
//! (the usual candidate-generation step for imputation); the gold value is
//! injected when absent so every example is solvable and models compete on
//! ranking, not pool luck.

use crate::metrics::{accuracy, macro_f1};
use crate::pretrain::MlmModel;
use crate::supervisor::{run_supervised, SupervisorConfig, TrainError};
use crate::trainer::{TrainConfig, TrainerOptions};
use ntr_corpus::datasets::{ImputationDataset, ImputationExample};
use ntr_corpus::Split;
use ntr_models::EncoderInput;
use ntr_nn::loss::{softmax_cross_entropy, IGNORE_INDEX};
use ntr_nn::serialize::CheckpointError;
use ntr_table::{Linearizer, LinearizerOptions, RowMajorLinearizer};
use ntr_tokenizer::{SpecialToken, WordPieceTokenizer};
use std::collections::{BTreeMap, BTreeSet};

/// Number of `[MASK]` slots the blank expands to.
pub const MASK_SLOTS: usize = 4;

/// Per-header candidate pools built from the training split.
#[derive(Debug, Clone)]
pub struct CandidatePools {
    pools: BTreeMap<String, Vec<String>>,
    /// Most frequent value per header (the mode baseline's prediction).
    modes: BTreeMap<String, String>,
}

impl CandidatePools {
    /// Collects distinct column values (and their modes) per lowercased
    /// header over the given split.
    pub fn build(ds: &ImputationDataset, split: Split) -> Self {
        let mut values: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for &i in &ds.indices(split) {
            let ex = &ds.examples[i];
            for (c, col) in ex.table.columns().iter().enumerate() {
                let header = col.name.to_lowercase();
                for r in 0..ex.table.n_rows() {
                    let text = ex.table.cell(r, c).text();
                    if !text.is_empty() {
                        *values
                            .entry(header.clone())
                            .or_default()
                            .entry(text.to_string())
                            .or_insert(0) += 1;
                    }
                }
            }
        }
        let mut pools = BTreeMap::new();
        let mut modes = BTreeMap::new();
        for (header, counts) in values {
            let mode = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .map(|(v, _)| v.clone())
                .expect("non-empty counts");
            pools.insert(header.clone(), counts.into_keys().collect());
            modes.insert(header, mode);
        }
        Self { pools, modes }
    }

    /// Candidates for one example: the header pool plus local column
    /// values, with the gold injected; capped at 64, gold always kept.
    pub fn candidates(&self, ex: &ImputationExample) -> Vec<String> {
        let header = ex.table.columns()[ex.coord.1].name.to_lowercase();
        let mut set: BTreeSet<String> = BTreeSet::new();
        if let Some(pool) = self.pools.get(&header) {
            set.extend(pool.iter().cloned());
        }
        for r in 0..ex.table.n_rows() {
            let v = ex.table.cell(r, ex.coord.1).text();
            if !v.is_empty() {
                set.insert(v.to_string());
            }
        }
        set.insert(ex.target_text.clone());
        let mut out: Vec<String> = set.into_iter().take(64).collect();
        if !out.contains(&ex.target_text) {
            out.pop();
            out.push(ex.target_text.clone());
        }
        out
    }

    /// The mode baseline's prediction for an example.
    pub fn mode_prediction(&self, ex: &ImputationExample) -> Option<&str> {
        let header = ex.table.columns()[ex.coord.1].name.to_lowercase();
        self.modes.get(&header).map(String::as_str)
    }
}

/// Builds the masked encoder input for an example: linearizes the
/// corrupted table and expands the blank's `[EMPTY]` token into
/// [`MASK_SLOTS`] `[MASK]` positions. Returns `None` when the blank was
/// truncated away.
pub fn masked_input(
    ex: &ImputationExample,
    tok: &WordPieceTokenizer,
    max_tokens: usize,
) -> Option<(EncoderInput, Vec<usize>)> {
    let opts = LinearizerOptions {
        max_tokens,
        ..Default::default()
    };
    let encoded = RowMajorLinearizer.linearize(&ex.table, &ex.table.caption, tok, &opts);
    let span = encoded.cell_span(ex.coord.0, ex.coord.1)?;
    let p = span.start;
    let base = EncoderInput::from_encoded(&encoded);

    let mut input = EncoderInput {
        ids: Vec::with_capacity(base.len() + MASK_SLOTS - 1),
        rows: Vec::with_capacity(base.len() + MASK_SLOTS - 1),
        cols: Vec::with_capacity(base.len() + MASK_SLOTS - 1),
        segments: Vec::with_capacity(base.len() + MASK_SLOTS - 1),
        kinds: Vec::with_capacity(base.len() + MASK_SLOTS - 1),
        ranks: Vec::with_capacity(base.len() + MASK_SLOTS - 1),
    };
    let mut positions = Vec::with_capacity(MASK_SLOTS);
    for i in 0..base.len() {
        if i == p {
            for _ in 0..MASK_SLOTS {
                positions.push(input.ids.len());
                input.ids.push(SpecialToken::Mask.id());
                input.rows.push(base.rows[i]);
                input.cols.push(base.cols[i]);
                input.segments.push(base.segments[i]);
                input.kinds.push(base.kinds[i]);
                input.ranks.push(base.ranks[i]);
            }
        } else {
            input.ids.push(base.ids[i]);
            input.rows.push(base.rows[i]);
            input.cols.push(base.cols[i]);
            input.segments.push(base.segments[i]);
            input.kinds.push(base.kinds[i]);
            input.ranks.push(base.ranks[i]);
        }
    }
    Some((input, positions))
}

/// First [`MASK_SLOTS`] token ids of a value, `[SEP]`-padded.
pub fn value_slots(value: &str, tok: &WordPieceTokenizer) -> Vec<usize> {
    let mut ids = tok.encode(value);
    ids.truncate(MASK_SLOTS);
    while ids.len() < MASK_SLOTS {
        ids.push(SpecialToken::Sep.id());
    }
    ids
}

/// Fine-tunes a model on the imputation training split.
pub fn finetune<M: MlmModel>(
    model: &mut M,
    ds: &ImputationDataset,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    max_tokens: usize,
) {
    let _ = finetune_resumable(model, ds, tok, cfg, max_tokens, &TrainerOptions::default())
        .expect("no checkpointing configured, so training cannot fail");
}

/// Fine-tuning with checkpoint/resume support. Returns the mean training
/// loss per optimizer step this invocation ran (for resume-equivalence
/// verification).
pub fn finetune_resumable<M: MlmModel>(
    model: &mut M,
    ds: &ImputationDataset,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    max_tokens: usize,
    topts: &TrainerOptions,
) -> Result<Vec<f32>, CheckpointError> {
    finetune_supervised(
        model,
        ds,
        tok,
        cfg,
        max_tokens,
        topts,
        &SupervisorConfig::default(),
    )
    .map_err(TrainError::into_checkpoint_error)
}

/// Fine-tuning under the self-healing supervisor: gradient clipping,
/// anomaly detection, rollback/retry, and fault drills per `scfg`.
pub fn finetune_supervised<M: MlmModel>(
    model: &mut M,
    ds: &ImputationDataset,
    tok: &WordPieceTokenizer,
    cfg: &TrainConfig,
    max_tokens: usize,
    topts: &TrainerOptions,
    scfg: &SupervisorConfig,
) -> Result<Vec<f32>, TrainError> {
    let train_idx = ds.indices(Split::Train);
    let prepared: Vec<(EncoderInput, Vec<usize>, Vec<usize>)> = train_idx
        .iter()
        .filter_map(|&i| {
            let ex = &ds.examples[i];
            let (input, positions) = masked_input(ex, tok, max_tokens)?;
            let targets = value_slots(&ex.target_text, tok);
            Some((input, positions, targets))
        })
        .collect();
    run_supervised(
        model,
        cfg,
        prepared.len(),
        topts,
        scfg,
        |loss: &f32| *loss,
        |model, batch, obs| {
            let mut batch_loss = 0.0;
            for item in batch {
                let (input, positions, slot_targets) = &prepared[item.index];
                obs.count_tokens(input.len() as u64);
                let states = model.encode(input, true);
                let logits = model.mlm_head().forward(&states);
                let mut targets = vec![IGNORE_INDEX; input.len()];
                for (k, &pos) in positions.iter().enumerate() {
                    targets[pos] = slot_targets[k];
                }
                let (loss, dlogits) = softmax_cross_entropy(&logits, &targets, None);
                let dstates = model.mlm_head().backward(&dlogits);
                model.backward(&dstates);
                batch_loss += loss;
            }
            batch_loss / batch.len() as f32
        },
    )
}

/// Imputation evaluation results, with the §3.4 failure-case slices.
#[derive(Debug, Clone, Default)]
pub struct ImputationEval {
    /// Exact-match accuracy over all evaluated examples.
    pub accuracy: f64,
    /// Macro-F1 over the predicted/gold value vocabulary.
    pub macro_f1: f64,
    /// Examples evaluated.
    pub n: usize,
    /// Accuracy on mostly-numeric tables (§3.4 failure slice).
    pub numeric_accuracy: f64,
    /// Accuracy on non-numeric tables.
    pub text_accuracy: f64,
    /// Accuracy on headerless tables (§3.4 failure slice).
    pub headerless_accuracy: f64,
    /// Accuracy on tables with descriptive headers.
    pub headered_accuracy: f64,
}

/// Per-example outcome: (correct, numeric-table, headerless-table).
type Outcome = (bool, bool, bool);

fn sliced(outcomes: &[Outcome]) -> ImputationEval {
    let n = outcomes.len();
    let acc_of = |pred: &dyn Fn(&Outcome) -> bool| -> f64 {
        let subset: Vec<&Outcome> = outcomes.iter().filter(|o| pred(o)).collect();
        if subset.is_empty() {
            return 0.0;
        }
        subset.iter().filter(|o| o.0).count() as f64 / subset.len() as f64
    };
    ImputationEval {
        accuracy: acc_of(&|_| true),
        macro_f1: 0.0,
        n,
        numeric_accuracy: acc_of(&|o| o.1),
        text_accuracy: acc_of(&|o| !o.1),
        headerless_accuracy: acc_of(&|o| o.2),
        headered_accuracy: acc_of(&|o| !o.2),
    }
}

/// Evaluates a model on one split by candidate ranking.
pub fn evaluate<M: MlmModel>(
    model: &mut M,
    ds: &ImputationDataset,
    split: Split,
    pools: &CandidatePools,
    tok: &WordPieceTokenizer,
    max_tokens: usize,
) -> ImputationEval {
    let mut outcomes = Vec::new();
    let mut pred_labels = Vec::new();
    let mut gold_labels = Vec::new();
    let mut label_space: BTreeMap<String, usize> = BTreeMap::new();

    for &i in &ds.indices(split) {
        let ex = &ds.examples[i];
        let Some((input, positions)) = masked_input(ex, tok, max_tokens) else {
            continue;
        };
        let states = model.encode(&input, false);
        let logits = model.mlm_head().forward(&states);
        let log_probs = logits.log_softmax_rows();
        let candidates = pools.candidates(ex);
        let mut best: Option<(f32, &str)> = None;
        for cand in &candidates {
            let slots = value_slots(cand, tok);
            let mut score = 0.0;
            for (k, &pos) in positions.iter().enumerate() {
                score += log_probs.at(&[pos, slots[k]]);
            }
            score /= positions.len() as f32;
            if best.is_none() || score > best.as_ref().expect("set").0 {
                best = Some((score, cand));
            }
        }
        let predicted = best.map(|(_, c)| c.to_string()).unwrap_or_default();
        let correct = predicted == ex.target_text;
        outcomes.push((
            correct,
            ex.table.is_mostly_numeric(),
            ex.table.is_headerless(),
        ));
        pred_labels.push(intern(&predicted, &mut label_space));
        gold_labels.push(intern(&ex.target_text, &mut label_space));
    }
    let mut eval = sliced(&outcomes);
    eval.macro_f1 = macro_f1(&pred_labels, &gold_labels, label_space.len());
    debug_assert!((eval.accuracy - accuracy(&pred_labels, &gold_labels)).abs() < 1e-9);
    eval
}

/// The non-neural mode baseline: always predict the header's most frequent
/// training value.
pub fn baseline_mode(
    ds: &ImputationDataset,
    split: Split,
    pools: &CandidatePools,
) -> ImputationEval {
    let mut outcomes = Vec::new();
    let mut pred_labels = Vec::new();
    let mut gold_labels = Vec::new();
    let mut label_space: BTreeMap<String, usize> = BTreeMap::new();
    for &i in &ds.indices(split) {
        let ex = &ds.examples[i];
        let predicted = pools.mode_prediction(ex).unwrap_or("").to_string();
        outcomes.push((
            predicted == ex.target_text,
            ex.table.is_mostly_numeric(),
            ex.table.is_headerless(),
        ));
        pred_labels.push(intern(&predicted, &mut label_space));
        gold_labels.push(intern(&ex.target_text, &mut label_space));
    }
    let mut eval = sliced(&outcomes);
    eval.macro_f1 = macro_f1(&pred_labels, &gold_labels, label_space.len());
    eval
}

fn intern(s: &str, space: &mut BTreeMap<String, usize>) -> usize {
    let next = space.len();
    *space.entry(s.to_string()).or_insert(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_corpus::tables::{CorpusConfig, TableCorpus};
    use ntr_corpus::{World, WorldConfig};
    use ntr_models::{ModelConfig, VanillaBert};

    fn setup() -> (ImputationDataset, WordPieceTokenizer) {
        let w = World::generate(WorldConfig {
            n_countries: 8,
            n_people: 8,
            n_films: 6,
            n_clubs: 4,
            seed: 2,
        });
        let corpus = TableCorpus::generate_entity_only(
            &w,
            &CorpusConfig {
                n_tables: 12,
                min_rows: 3,
                max_rows: 5,
                null_prob: 0.0,
                headerless_prob: 0.0,
                seed: 3,
            },
        );
        let tok = ntr_corpus::vocab::train_tokenizer(&corpus, &[], 1200);
        let ds = ImputationDataset::build(&corpus, 2, 4);
        (ds, tok)
    }

    #[test]
    fn masked_input_expands_blank_to_mask_slots() {
        let (ds, tok) = setup();
        let ex = &ds.examples[0];
        let (input, positions) = masked_input(ex, &tok, 128).unwrap();
        assert_eq!(positions.len(), MASK_SLOTS);
        for &p in &positions {
            assert_eq!(input.ids[p], SpecialToken::Mask.id());
            assert_eq!(input.rows[p], ex.coord.0 + 1);
            assert_eq!(input.cols[p], ex.coord.1 + 1);
        }
        for w in positions.windows(2) {
            assert_eq!(w[1], w[0] + 1, "mask positions must be consecutive");
        }
    }

    #[test]
    fn value_slots_pad_and_truncate() {
        let (_, tok) = setup();
        assert_eq!(value_slots("France", &tok).len(), MASK_SLOTS);
        assert_eq!(
            value_slots("France Germany Italy Spain Portugal", &tok).len(),
            MASK_SLOTS
        );
        let empty = value_slots("", &tok);
        assert_eq!(empty, vec![SpecialToken::Sep.id(); MASK_SLOTS]);
    }

    #[test]
    fn candidate_pool_always_contains_gold() {
        let (ds, _) = setup();
        let pools = CandidatePools::build(&ds, Split::Train);
        for ex in &ds.examples {
            let cands = pools.candidates(ex);
            assert!(
                cands.contains(&ex.target_text),
                "gold missing for {:?}",
                ex.coord
            );
            assert!(cands.len() <= 64);
        }
    }

    #[test]
    fn finetuning_beats_untrained_model() {
        let (ds, tok) = setup();
        let pools = CandidatePools::build(&ds, Split::Train);
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let mut model = VanillaBert::new(&cfg);
        let before = evaluate(&mut model, &ds, Split::Train, &pools, &tok, 128);
        finetune(
            &mut model,
            &ds,
            &tok,
            &TrainConfig {
                epochs: 8,
                lr: 3e-3,
                batch_size: 4,
                warmup_frac: 0.1,
                seed: 9,
            },
            128,
        );
        let after = evaluate(&mut model, &ds, Split::Train, &pools, &tok, 128);
        assert!(after.n > 0);
        assert!(
            after.accuracy > before.accuracy,
            "fine-tuning must fit its training split: {} → {}",
            before.accuracy,
            after.accuracy
        );
    }

    #[test]
    fn baseline_mode_runs_and_reports_slices() {
        let (ds, _) = setup();
        let pools = CandidatePools::build(&ds, Split::Train);
        let eval = baseline_mode(&ds, Split::Test, &pools);
        assert!(eval.n > 0);
        assert!(eval.accuracy >= 0.0 && eval.accuracy <= 1.0);
        assert!(eval.macro_f1 >= 0.0 && eval.macro_f1 <= 1.0);
    }
}
