//! Teacher–student distillation (DESIGN.md §13): train a small
//! [`RowStudent`] row encoder to reproduce a frozen teacher's pooled
//! row/table embeddings, so retrieval-style serving can swap an
//! attention-stack teacher for a student that also runs at int8.
//!
//! The objective is per pooled span (the `[CLS]` position plus each data
//! row's cell-token range): `MSE(u, t) + cos_weight · (1 − cosine(u, t))`
//! where `u` is the student's pooled embedding and `t` the teacher's.
//! Teacher targets are computed once, in eval mode, before the first
//! optimizer step — the teacher's weights never change and never receive
//! gradients. The student trains through the same
//! [`run_supervised`] machinery as every other objective, so
//! checkpoint/resume, the self-healing supervisor, and observability all
//! apply unchanged.

use crate::pretrain::TrainRun;
use crate::supervisor::{run_supervised, TrainError};
use ntr_corpus::tables::TableCorpus;
use ntr_models::{pool_mean, pool_mean_backward, EncoderInput, RowStudent, SequenceEncoder};
use ntr_table::{EncodedTable, TokenKind};
use ntr_tensor::Tensor;
use ntr_tokenizer::WordPieceTokenizer;
use std::ops::Range;

/// Norms below this are treated as zero when computing cosine terms.
const EPS: f32 = 1e-8;

/// Loss/fidelity trajectory of a distillation run, one point per
/// optimizer step.
#[derive(Debug, Clone, Default)]
pub struct DistillReport {
    /// Mean per-span distillation loss (MSE + weighted cosine term).
    pub loss: Vec<f32>,
    /// Mean per-span cosine similarity between student and teacher.
    pub cosine: Vec<f32>,
}

impl DistillReport {
    /// Cosine fidelity at the last step (0.0 for an empty run).
    pub fn final_cosine(&self) -> f32 {
        self.cosine.last().copied().unwrap_or(0.0)
    }
}

/// The pooled spans distillation matches on: the `[CLS]` position first,
/// then one `first..last+1` range over each data row's cell tokens (rows
/// whose cells were fully truncated away contribute no span).
pub fn distill_spans(encoded: &EncodedTable) -> Vec<Range<usize>> {
    let mut spans: Vec<Range<usize>> = std::iter::once(0..1).collect();
    let meta = encoded.meta();
    let max_row = meta.iter().map(|m| m.row).max().unwrap_or(0);
    for row in 1..=max_row {
        let mut first = None;
        let mut last = 0;
        for (pos, m) in meta.iter().enumerate() {
            if m.row == row && m.kind == TokenKind::Cell {
                first.get_or_insert(pos);
                last = pos;
            }
        }
        if let Some(first) = first {
            spans.push(first..last + 1);
        }
    }
    spans
}

/// One table's distillation example: the student input, the pooled spans,
/// and the frozen teacher's `[n_spans, d]` target embeddings.
struct DistillExample {
    input: EncoderInput,
    spans: Vec<Range<usize>>,
    targets: Tensor,
}

/// Per-span loss and input gradient:
/// `MSE + cos_weight · (1 − cosine)`, both terms averaged over nothing —
/// MSE is a mean over the `d` features, the cosine term is scale-free.
/// Returns `(loss, cosine, d loss / d u)`.
fn span_loss(u: &[f32], t: &[f32], cos_weight: f32) -> (f32, f32, Vec<f32>) {
    let d = u.len();
    let mut du = vec![0.0f32; d];
    let mut mse = 0.0f32;
    let (mut dot, mut nu2, mut nt2) = (0.0f32, 0.0f32, 0.0f32);
    for j in 0..d {
        let diff = u[j] - t[j];
        mse += diff * diff;
        du[j] = 2.0 * diff / d as f32;
        dot += u[j] * t[j];
        nu2 += u[j] * u[j];
        nt2 += t[j] * t[j];
    }
    mse /= d as f32;
    let (nu, nt) = (nu2.sqrt(), nt2.sqrt());
    let cos = if nu > EPS && nt > EPS {
        dot / (nu * nt)
    } else {
        0.0
    };
    if nu > EPS && nt > EPS {
        // d(1 − cos)/du_j = cos·u_j/|u|² − t_j/(|u||t|)
        for j in 0..d {
            du[j] += cos_weight * (cos * u[j] / nu2 - t[j] / (nu * nt));
        }
    }
    (mse + cos_weight * (1.0 - cos), cos, du)
}

impl TrainRun<'_> {
    /// Distills `teacher` into `student` over `corpus`: the core behind
    /// [`DistillRun::run`] and `Objective::Distill`. The teacher runs in
    /// eval mode exactly once per table, before training starts.
    pub fn distill(
        &self,
        student: &mut RowStudent,
        teacher: &mut dyn SequenceEncoder,
        cos_weight: f32,
        corpus: &TableCorpus,
        tok: &WordPieceTokenizer,
    ) -> Result<DistillReport, TrainError> {
        let opts = ntr_table::LinearizerOptions {
            max_tokens: self.token_budget(),
            ..Default::default()
        };
        let examples: Vec<DistillExample> = corpus
            .tables
            .iter()
            .map(|t| {
                let encoded = self.run_linearizer().linearize(t, &t.caption, tok, &opts);
                let input = EncoderInput::from_encoded(&encoded);
                let spans = distill_spans(&encoded);
                let states = teacher.encode(&input, false);
                let d = states.dim(1);
                let mut targets = Tensor::zeros(&[spans.len(), d]);
                for (k, span) in spans.iter().enumerate() {
                    targets
                        .row_mut(k)
                        .copy_from_slice(pool_mean(&states, span).data());
                }
                DistillExample {
                    input,
                    spans,
                    targets,
                }
            })
            .collect();
        let n_spans: usize = examples.iter().map(|e| e.spans.len()).sum();
        let teacher_family = teacher.family();

        let mut announced = false;
        let steps = run_supervised(
            student,
            self.config(),
            examples.len(),
            self.trainer_options(),
            self.supervisor_config(),
            |r: &(f32, f32)| r.0,
            |student, batch, obs| {
                if !announced {
                    announced = true;
                    if let Some(e) = obs.event("distill_start") {
                        e.u64("tables", examples.len() as u64)
                            .u64("spans", n_spans as u64)
                            .u64("d_model", student.config().d_model as u64)
                            .str("teacher", teacher_family)
                            .f32("cos_weight", cos_weight)
                            .finish();
                    }
                }
                let mut batch_loss = 0.0f32;
                let mut batch_cos = 0.0f32;
                let mut batch_spans = 0usize;
                for item in batch {
                    let ex = &examples[item.index];
                    obs.count_tokens(ex.input.len() as u64);
                    let states = student.encode(&ex.input, true);
                    let seq_len = states.dim(0);
                    let mut dstates = Tensor::zeros(states.shape());
                    for (k, span) in ex.spans.iter().enumerate() {
                        let u = pool_mean(&states, span);
                        let (loss, cos, du) = span_loss(u.data(), ex.targets.row(k), cos_weight);
                        batch_loss += loss;
                        batch_cos += cos;
                        batch_spans += 1;
                        let du = Tensor::from_vec(du, &[1, states.dim(1)]);
                        dstates.add_assign(&pool_mean_backward(&du, span, seq_len));
                    }
                    student.backward(&dstates);
                }
                obs.inc("distill/steps");
                obs.add("distill/spans", batch_spans as u64);
                let n = batch_spans.max(1) as f32;
                let r = (batch_loss / n, batch_cos / n);
                if let Some(e) = obs.event("distill_step") {
                    e.f32("loss", r.0).f32("cosine", r.1).finish();
                }
                r
            },
        )?;
        let mut report = DistillReport::default();
        for (loss, cos) in steps {
            report.loss.push(loss);
            report.cosine.push(cos);
        }
        Ok(report)
    }
}

/// One configured distillation run: [`TrainRun`]'s plumbing (token budget,
/// linearizer, checkpoint/resume, supervisor, observability) plus the
/// distillation-specific cosine weight.
///
/// ```ignore
/// DistillRun::new(cfg)
///     .max_tokens(96)
///     .cos_weight(0.5)
///     .run(&mut student, teacher.as_mut(), &corpus, &tok)?
/// ```
pub struct DistillRun<'a> {
    run: TrainRun<'a>,
    cos_weight: f32,
}

impl DistillRun<'_> {
    /// Default weight of the `1 − cosine` term relative to the MSE term.
    pub const DEFAULT_COS_WEIGHT: f32 = 0.5;
}

impl Default for DistillRun<'static> {
    fn default() -> Self {
        Self::new(crate::trainer::TrainConfig::default())
    }
}

impl<'a> DistillRun<'a> {
    /// A run with `cfg` hyperparameters, [`TrainRun::new`]'s defaults for
    /// every shared knob, and the default cosine weight.
    pub fn new(cfg: crate::trainer::TrainConfig) -> Self {
        Self {
            run: TrainRun::new(cfg),
            cos_weight: Self::DEFAULT_COS_WEIGHT,
        }
    }

    /// Token budget for table serialization (default 128).
    pub fn max_tokens(mut self, n: usize) -> Self {
        self.run = self.run.max_tokens(n);
        self
    }

    /// Serialization strategy (default row-major); teacher and student
    /// always see the identical serialization.
    pub fn linearizer(mut self, lin: &'a dyn ntr_table::Linearizer) -> Self {
        self.run = self.run.linearizer(lin);
        self
    }

    /// Checkpoint/resume/halt/observability knobs (default all off).
    pub fn trainer(mut self, topts: &crate::trainer::TrainerOptions) -> Self {
        self.run = self.run.trainer(topts);
        self
    }

    /// Self-healing supervisor knobs (default all off).
    pub fn supervisor(mut self, scfg: &crate::supervisor::SupervisorConfig) -> Self {
        self.run = self.run.supervisor(scfg);
        self
    }

    /// Weight of the `1 − cosine` loss term (default 0.5; 0 recovers pure
    /// MSE distillation).
    pub fn cos_weight(mut self, w: f32) -> Self {
        self.cos_weight = w;
        self
    }

    /// Distills `teacher` into `student` over `corpus`.
    pub fn run(
        &self,
        student: &mut RowStudent,
        teacher: &mut dyn SequenceEncoder,
        corpus: &TableCorpus,
        tok: &WordPieceTokenizer,
    ) -> Result<DistillReport, TrainError> {
        self.run
            .distill(student, teacher, self.cos_weight, corpus, tok)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{TrainConfig, TrainerOptions};
    use ntr_corpus::tables::{CorpusConfig, TableCorpus};
    use ntr_corpus::{World, WorldConfig};
    use ntr_models::{ModelConfig, Tapas};
    use ntr_table::{Linearizer, LinearizerOptions, RowMajorLinearizer};
    use ntr_tokenizer::train::WordPieceTrainer;

    fn fixture() -> (TableCorpus, WordPieceTokenizer, ModelConfig) {
        let world = World::generate(WorldConfig {
            n_countries: 6,
            n_people: 6,
            n_films: 4,
            n_clubs: 3,
            seed: 0xD15,
        });
        let corpus = TableCorpus::generate(
            &world,
            &CorpusConfig {
                n_tables: 5,
                min_rows: 2,
                max_rows: 4,
                null_prob: 0.0,
                headerless_prob: 0.0,
                seed: 0xD16,
            },
        );
        let docs: Vec<String> = corpus
            .tables
            .iter()
            .map(ntr_corpus::vocab::table_text)
            .collect();
        let tok = WordPieceTokenizer::new(
            WordPieceTrainer::new(700).train(docs.iter().map(String::as_str)),
        );
        let cfg = ModelConfig::tiny(tok.vocab_size());
        (corpus, tok, cfg)
    }

    fn tcfg() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            lr: 5e-3,
            batch_size: 2,
            warmup_frac: 0.0,
            seed: 0xD17,
        }
    }

    #[test]
    fn spans_cover_cls_and_each_surviving_row() {
        let (corpus, tok, _) = fixture();
        let t = &corpus.tables[0];
        let e = RowMajorLinearizer.linearize(
            t,
            &t.caption,
            &tok,
            &LinearizerOptions {
                max_tokens: 64,
                ..Default::default()
            },
        );
        let spans = distill_spans(&e);
        assert_eq!(spans[0], 0..1, "first span is [CLS]");
        assert_eq!(spans.len(), 1 + e.n_rows_encoded());
        for s in &spans {
            assert!(s.end <= e.len() && s.start < s.end);
        }
    }

    #[test]
    fn span_loss_is_zero_at_the_target() {
        let t = [0.5f32, -1.0, 2.0];
        let (loss, cos, du) = span_loss(&t, &t, 0.5);
        assert!(loss.abs() < 1e-6, "{loss}");
        assert!((cos - 1.0).abs() < 1e-6);
        for g in du {
            assert!(g.abs() < 1e-6, "{g}");
        }
    }

    #[test]
    fn span_loss_gradient_matches_finite_differences() {
        let u = [0.3f32, -0.7, 1.1, 0.2];
        let t = [1.0f32, 0.5, -0.5, 0.0];
        let (_, _, du) = span_loss(&u, &t, 0.5);
        let h = 1e-3;
        for j in 0..u.len() {
            let mut up = u;
            up[j] += h;
            let mut dn = u;
            dn[j] -= h;
            let num = (span_loss(&up, &t, 0.5).0 - span_loss(&dn, &t, 0.5).0) / (2.0 * h);
            assert!(
                (num - du[j]).abs() < 1e-2,
                "grad[{j}]: analytic {} vs numeric {num}",
                du[j]
            );
        }
    }

    #[test]
    fn span_loss_survives_zero_vectors() {
        let z = [0.0f32; 4];
        let t = [1.0f32, 2.0, 3.0, 4.0];
        let (loss, cos, du) = span_loss(&z, &t, 0.5);
        assert!(loss.is_finite() && cos == 0.0);
        assert!(du.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn distillation_improves_fidelity_to_the_teacher() {
        let (corpus, tok, cfg) = fixture();
        let mut teacher = Tapas::new(&cfg);
        let mut student = RowStudent::new(&ModelConfig { seed: 99, ..cfg });
        let report = DistillRun::new(tcfg())
            .max_tokens(64)
            .run(&mut student, &mut teacher, &corpus, &tok)
            .unwrap();
        assert!(!report.loss.is_empty());
        let first = report.cosine.first().copied().unwrap();
        let last = report.final_cosine();
        assert!(
            last > first,
            "cosine fidelity should improve: {first} -> {last}"
        );
        assert!(
            report.loss.last().unwrap() < report.loss.first().unwrap(),
            "loss should drop"
        );
    }

    #[test]
    fn distillation_is_deterministic() {
        let (corpus, tok, cfg) = fixture();
        let run = || {
            let mut teacher = Tapas::new(&cfg);
            let mut student = RowStudent::new(&ModelConfig { seed: 99, ..cfg });
            DistillRun::new(tcfg())
                .max_tokens(64)
                .run(&mut student, &mut teacher, &corpus, &tok)
                .unwrap()
                .loss
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn distill_checkpoint_resume_is_bit_identical() {
        let (corpus, tok, cfg) = fixture();
        let dir = std::env::temp_dir().join("ntr_distill_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("student.ckpt");

        // Uninterrupted run.
        let mut teacher = Tapas::new(&cfg);
        let mut student = RowStudent::new(&ModelConfig { seed: 99, ..cfg });
        let full = DistillRun::new(tcfg())
            .max_tokens(64)
            .run(&mut student, &mut teacher, &corpus, &tok)
            .unwrap();

        // Halted run + resume.
        let mut teacher2 = Tapas::new(&cfg);
        let mut s2 = RowStudent::new(&ModelConfig { seed: 99, ..cfg });
        let halted = DistillRun::new(tcfg())
            .max_tokens(64)
            .trainer(&TrainerOptions {
                checkpoint: Some((ckpt.clone(), 1)),
                halt_after: Some(2),
                ..Default::default()
            })
            .run(&mut s2, &mut teacher2, &corpus, &tok)
            .unwrap();
        let mut s3 = RowStudent::new(&ModelConfig { seed: 1234, ..cfg });
        let resumed = DistillRun::new(tcfg())
            .max_tokens(64)
            .trainer(&TrainerOptions {
                resume: Some(ckpt.clone()),
                ..Default::default()
            })
            .run(&mut s3, &mut teacher2, &corpus, &tok)
            .unwrap();
        let mut stitched = halted.loss.clone();
        stitched.extend_from_slice(&resumed.loss);
        assert_eq!(stitched, full.loss, "resume must continue bit-identically");
        let _ = std::fs::remove_file(&ckpt);
    }
}
