//! The self-healing training supervisor: a state machine wrapped around
//! [`Trainer`](crate::trainer::Trainer) that keeps long pretraining runs
//! alive through NaN batches,
//! diverging losses, panicking pool workers, simulated hard kills, and
//! corrupted checkpoints.
//!
//! ## State machine
//!
//! ```text
//!            batch ok                    anomaly detected
//!   healthy ─────────▶ healthy   healthy ────────────────▶ anomaly
//!                                                             │
//!                         rollback enabled, retries left      │ rollback off
//!                anomaly ────────────────────────────────┐    ▼
//!                                                        │  abort
//!                retry ◀─────── rollback ◀───────────────┘  (typed error)
//!                  │    restore last good snapshot,
//!                  │    skip offending batch, back off LR
//!                  │
//!                  └── retries exhausted ──▶ abort (typed error)
//! ```
//!
//! Per step the supervisor (when any feature is enabled) runs the step body
//! under [`std::panic::catch_unwind`], applies global-norm gradient
//! clipping, and checks three anomaly signals: non-finite loss, non-finite
//! global gradient norm, and an EMA loss-spike (`loss > spike_factor ×
//! EMA`). On an anomaly it restores the last good checkpoint (an in-memory
//! [`ntr_nn::serialize::TrainCheckpoint`], bit-identical to what
//! [`Trainer::save_state`](crate::trainer::Trainer::save_state) writes),
//! deterministically **skips the offending batch window**
//! (identified by the epoch/position of its first example, so a replay
//! makes the identical decision), scales the next retry's learning rate by
//! `lr_backoff` per attempt, and aborts with a typed [`TrainError`] — never
//! a panic — once `max_retries` rollbacks have been spent.
//!
//! ## Fault drills
//!
//! A [`FaultPlan`] (e.g. `NTR_FAULTS=nan@120,panic@300,crash@450`) makes
//! the supervisor inject its own failures at exact optimizer steps: NaN
//! gradients, a panic inside a real pool worker, a simulated hard kill
//! (in-memory state wiped; recovery only through the on-disk checkpoint,
//! falling back to the run's initial state when the disk copy is corrupt),
//! and single-bit checkpoint corruption. Step numbers count completed
//! optimizer steps at injection time, so `nan@0` poisons the first batch.
//!
//! ## No-op guarantee
//!
//! With every feature disabled ([`SupervisorConfig::default`]) the
//! supervisor runs the exact pre-supervisor training loop — no
//! `catch_unwind`, no norm computation, no snapshots — so loss traces and
//! final parameters are **bit-identical** to the unsupervised baseline.

use crate::trainer::{BatchItem, TrainConfig, TrainerOptions};
use ntr_nn::optim::{clip_global_grad_norm, global_grad_norm};
use ntr_nn::serialize::{load_checkpoint, CheckpointError};
use ntr_nn::Layer;
use ntr_tensor::faults::{self, FaultKind, FaultPlan};
use ntr_tensor::par;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Slack added to the EMA spike threshold so near-zero losses don't trip
/// it on ratio noise.
const SPIKE_EPS: f32 = 1e-6;

/// Supervisor knobs. The default disables every feature, making
/// [`run_supervised`] bit-identical to the plain training loop.
#[derive(Debug, Clone, Default)]
pub struct SupervisorConfig {
    /// Clip the global gradient norm to this value each step.
    pub clip_norm: Option<f32>,
    /// Roll back to the last good checkpoint on an anomaly (instead of
    /// aborting immediately with a typed error).
    pub rollback: bool,
    /// Rollbacks allowed per run before aborting.
    pub max_retries: u32,
    /// A step's loss counts as a spike when it exceeds `spike_factor ×`
    /// the EMA of past losses (0 disables spike detection).
    pub spike_factor: f32,
    /// EMA smoothing for the spike detector (weight of the newest loss).
    pub ema_alpha: f32,
    /// LR multiplier applied per retry attempt (reset after a good step).
    pub lr_backoff: f32,
    /// Deterministic fault injection schedule (drills only).
    pub faults: Option<FaultPlan>,
}

impl SupervisorConfig {
    /// Robustness defaults: clipping at norm 1, rollback with 3 retries,
    /// 4× EMA spike detection, halved LR per retry.
    pub fn resilient() -> Self {
        Self {
            clip_norm: Some(1.0),
            rollback: true,
            max_retries: 3,
            spike_factor: 4.0,
            ema_alpha: 0.1,
            lr_backoff: 0.5,
            faults: None,
        }
    }

    /// True when any supervision feature is on (the disabled path is the
    /// bit-identical baseline loop).
    pub fn enabled(&self) -> bool {
        self.clip_norm.is_some() || self.rollback || self.faults.is_some()
    }
}

/// Typed training failure — the supervisor's contract is that training
/// never panics and never aborts the process.
#[derive(Debug)]
pub enum TrainError {
    /// Checkpoint I/O or format failure (writing a due checkpoint, or
    /// restoring one during recovery).
    Checkpoint(CheckpointError),
    /// An anomaly was detected and rollback is disabled.
    Anomaly {
        /// Completed optimizer steps when the anomaly was detected.
        step: u64,
        /// What was detected.
        anomaly: String,
    },
    /// Every allowed rollback was spent and the anomaly persisted.
    RetriesExhausted {
        /// Completed optimizer steps when the final anomaly was detected.
        step: u64,
        /// Rollbacks spent.
        attempts: u32,
        /// The final anomaly.
        last_anomaly: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Checkpoint(e) => write!(f, "{e}"),
            TrainError::Anomaly { step, anomaly } => {
                write!(
                    f,
                    "training anomaly at step {step}: {anomaly} (rollback disabled)"
                )
            }
            TrainError::RetriesExhausted {
                step,
                attempts,
                last_anomaly,
            } => write!(
                f,
                "training aborted at step {step} after {attempts} rollback(s): {last_anomaly}"
            ),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl TrainError {
    /// Collapses back to [`CheckpointError`] for the legacy `*_resumable`
    /// entry points, whose supervisor is disabled and can therefore only
    /// fail on checkpoint I/O.
    pub(crate) fn into_checkpoint_error(self) -> CheckpointError {
        match self {
            TrainError::Checkpoint(e) => e,
            other => CheckpointError::Mismatch(other.to_string()),
        }
    }
}

/// Stringifies a caught panic payload.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".to_string(),
        },
    }
}

/// Poisons `model`'s first parameter gradient with NaN (the `nan@N` fault).
fn poison_grads(model: &mut dyn Layer) {
    let mut done = false;
    model.visit_params(&mut |_, p| {
        if !done {
            p.grad.map_mut(|g| g + f32::NAN);
            done = true;
        }
    });
}

/// Recomputes the loss EMA from a replayed prefix of step results.
fn ema_of<R>(out: &[R], alpha: f32, loss_of: &impl Fn(&R) -> f32) -> Option<f32> {
    let mut ema = None;
    for r in out {
        let loss = loss_of(r);
        ema = Some(match ema {
            None => loss,
            Some(e) => alpha * loss + (1.0 - alpha) * e,
        });
    }
    ema
}

/// Runs a full training loop under the supervisor. Every driver
/// (`pretrain_*`, imputation fine-tuning) funnels through here.
///
/// `step_fn` is the driver's batch body — forward, loss, backward,
/// gradient accumulation — returning its per-step record; `loss_of`
/// extracts the scalar loss the anomaly detector watches. The optimizer
/// step, clipping, checkpointing, anomaly handling, and fault injection
/// all belong to the supervisor.
///
/// Returns one record per completed optimizer step (skipped batch windows
/// contribute none), or a typed [`TrainError`]. Never panics on worker
/// failures: panics raised inside `step_fn` are caught and handled as
/// anomalies.
pub fn run_supervised<M: Layer, R>(
    model: &mut M,
    cfg: &TrainConfig,
    n_examples: usize,
    topts: &TrainerOptions,
    scfg: &SupervisorConfig,
    loss_of: impl Fn(&R) -> f32,
    mut step_fn: impl FnMut(&mut M, &[BatchItem]) -> R,
) -> Result<Vec<R>, TrainError> {
    let mut trainer = topts.build(model, cfg, n_examples)?;
    let mut out: Vec<R> = Vec::new();

    if !scfg.enabled() {
        // Bit-identical baseline: the exact pre-supervisor loop.
        while let Some(batch) = trainer.next_batch() {
            let r = step_fn(model, &batch);
            trainer.step(model)?;
            out.push(r);
        }
        return Ok(out);
    }

    let mut plan = scfg.faults.clone().unwrap_or_default();
    let has_crash = plan.faults().iter().any(|f| f.kind == FaultKind::Crash);
    let snapshots = scfg.rollback || has_crash;
    // The run's starting state: what a fresh process would deterministically
    // reconstruct. The fallback when a crash finds no usable disk checkpoint,
    // and the first "last good" snapshot.
    let initial = snapshots.then(|| trainer.capture(model));
    let mut last_good = initial.clone();
    let base_steps = trainer.steps();
    let mut skip: HashSet<(usize, usize)> = HashSet::new();
    let mut ema: Option<f32> = None;
    let mut retries_used: u32 = 0;
    let mut lr_scale = 1.0f32;

    while let Some(batch) = trainer.next_batch() {
        // A batch window blamed for an earlier anomaly is skipped without
        // an optimizer step; the window is identified by its first
        // example, which is a pure function of (epoch, pos, seed).
        if skip.contains(&(batch[0].epoch, batch[0].pos)) {
            continue;
        }
        let step = trainer.steps();

        if plan.take(FaultKind::Crash, step) {
            // Simulated hard kill: in-memory state (snapshots, EMA, LR
            // backoff) is gone. A restarted process recovers from the
            // on-disk checkpoint; with none (or a corrupt one) it starts
            // over from the initial state.
            let disk = trainer
                .checkpoint_path()
                .map(|p| p.to_path_buf())
                .and_then(|p| load_checkpoint(&p).ok());
            let restored = match disk {
                Some(ckpt) => trainer.restore(model, &ckpt).is_ok(),
                None => false,
            };
            if !restored {
                let initial = initial.as_ref().expect("crash fault implies snapshots");
                trainer.restore(model, initial)?;
            }
            model.zero_grad();
            out.truncate(trainer.steps().saturating_sub(base_steps) as usize);
            ema = ema_of(&out, scfg.ema_alpha, &loss_of);
            lr_scale = 1.0;
            trainer.set_lr_scale(1.0);
            last_good = Some(trainer.capture(model));
            continue;
        }

        let result: Result<R, String> = if plan.take(FaultKind::WorkerPanic, step) {
            // Drive the injected panic through a real pool dispatch so the
            // drill exercises genuine worker panic isolation.
            faults::arm_worker_panic();
            let mut scratch = vec![0.0f32; 64];
            let dispatch = par::try_for_chunks(&mut scratch, 1, par::max_threads(), |_, _| {});
            faults::disarm_worker_panic();
            match dispatch {
                Err(p) => Err(p.to_string()),
                Ok(()) => Err("injected worker panic".to_string()),
            }
        } else {
            catch_unwind(AssertUnwindSafe(|| step_fn(model, &batch)))
                .map_err(|payload| format!("worker panic: {}", payload_message(payload)))
        };

        let anomaly: Option<String> = match &result {
            Err(msg) => Some(msg.clone()),
            Ok(r) => {
                if plan.take(FaultKind::Nan, step) {
                    poison_grads(model);
                }
                let grad_norm = match scfg.clip_norm {
                    Some(max) => clip_global_grad_norm(model, max),
                    None => global_grad_norm(model),
                };
                let loss = loss_of(r);
                if !loss.is_finite() {
                    Some(format!("non-finite loss ({loss})"))
                } else if !grad_norm.is_finite() {
                    Some(format!("non-finite global gradient norm ({grad_norm})"))
                } else if scfg.spike_factor > 0.0
                    && ema.is_some_and(|e| loss > scfg.spike_factor * e + SPIKE_EPS)
                {
                    Some(format!(
                        "loss spike: {loss} > {} x EMA {}",
                        scfg.spike_factor,
                        ema.unwrap_or(0.0)
                    ))
                } else {
                    None
                }
            }
        };

        match anomaly {
            None => {
                let r = match result {
                    Ok(r) => r,
                    Err(_) => unreachable!("anomaly is None only for Ok results"),
                };
                trainer.step(model)?;
                if plan.take(FaultKind::CorruptCkpt, trainer.steps()) {
                    if let Some(path) = trainer.checkpoint_path() {
                        if path.exists() {
                            let _ = faults::corrupt_file(path);
                        }
                    }
                }
                let loss = loss_of(&r);
                ema = Some(match ema {
                    None => loss,
                    Some(e) => scfg.ema_alpha * loss + (1.0 - scfg.ema_alpha) * e,
                });
                out.push(r);
                if lr_scale != 1.0 {
                    // The backoff covered the retry window; later steps run
                    // at the scheduled LR again.
                    lr_scale = 1.0;
                    trainer.set_lr_scale(1.0);
                }
                if let Some(snap) = &mut last_good {
                    *snap = trainer.capture(model);
                }
            }
            Some(what) => {
                // Grads may hold partial/poisoned accumulation; they are
                // never part of a checkpoint, so clear them explicitly.
                model.zero_grad();
                if !scfg.rollback {
                    return Err(TrainError::Anomaly {
                        step,
                        anomaly: what,
                    });
                }
                if retries_used >= scfg.max_retries {
                    return Err(TrainError::RetriesExhausted {
                        step,
                        attempts: retries_used,
                        last_anomaly: what,
                    });
                }
                retries_used += 1;
                let snap = last_good.as_ref().expect("rollback implies snapshots");
                trainer.restore(model, snap)?;
                model.zero_grad();
                lr_scale *= scfg.lr_backoff;
                trainer.set_lr_scale(lr_scale);
                out.truncate(trainer.steps().saturating_sub(base_steps) as usize);
                ema = ema_of(&out, scfg.ema_alpha, &loss_of);
                skip.insert((batch[0].epoch, batch[0].pos));
            }
        }
    }
    Ok(out)
}
