//! The self-healing training supervisor: a state machine wrapped around
//! [`Trainer`](crate::trainer::Trainer) that keeps long pretraining runs
//! alive through NaN batches,
//! diverging losses, panicking pool workers, simulated hard kills, and
//! corrupted checkpoints.
//!
//! ## State machine
//!
//! ```text
//!            batch ok                    anomaly detected
//!   healthy ─────────▶ healthy   healthy ────────────────▶ anomaly
//!                                                             │
//!                         rollback enabled, retries left      │ rollback off
//!                anomaly ────────────────────────────────┐    ▼
//!                                                        │  abort
//!                retry ◀─────── rollback ◀───────────────┘  (typed error)
//!                  │    restore last good snapshot,
//!                  │    skip offending batch, back off LR
//!                  │
//!                  └── retries exhausted ──▶ abort (typed error)
//! ```
//!
//! Per step the supervisor (when any feature is enabled) runs the step body
//! under [`std::panic::catch_unwind`], applies global-norm gradient
//! clipping, and checks three anomaly signals: non-finite loss, non-finite
//! global gradient norm, and an EMA loss-spike (`loss > spike_factor ×
//! EMA`). On an anomaly it restores the last good checkpoint (an in-memory
//! [`ntr_nn::serialize::TrainCheckpoint`], bit-identical to what
//! [`Trainer::save_state`](crate::trainer::Trainer::save_state) writes),
//! deterministically **skips the offending batch window**
//! (identified by the epoch/position of its first example, so a replay
//! makes the identical decision), scales the next retry's learning rate by
//! `lr_backoff` per attempt, and aborts with a typed [`TrainError`] — never
//! a panic — once `max_retries` rollbacks have been spent.
//!
//! ## Fault drills
//!
//! A [`FaultPlan`] (e.g. `NTR_FAULTS=nan@120,panic@300,crash@450`) makes
//! the supervisor inject its own failures at exact optimizer steps: NaN
//! gradients, a panic inside a real pool worker, a simulated hard kill
//! (in-memory state wiped; recovery only through the on-disk checkpoint,
//! falling back to the run's initial state when the disk copy is corrupt),
//! and single-bit checkpoint corruption. Step numbers count completed
//! optimizer steps at injection time, so `nan@0` poisons the first batch.
//!
//! ## No-op guarantee
//!
//! With every feature disabled ([`SupervisorConfig::default`]) the
//! supervisor runs the exact pre-supervisor training loop — no
//! `catch_unwind`, no norm computation, no snapshots — so loss traces and
//! final parameters are **bit-identical** to the unsupervised baseline.

use crate::trainer::{BatchItem, TrainConfig, Trainer, TrainerOptions};
use ntr_nn::optim::{clip_global_grad_norm, global_grad_norm};
use ntr_nn::serialize::{load_checkpoint, CheckpointError, TrainCheckpoint};
use ntr_nn::Layer;
use ntr_obs::Obs;
use ntr_tensor::faults::{self, FaultKind, FaultPlan};
use ntr_tensor::par;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Slack added to the EMA spike threshold so near-zero losses don't trip
/// it on ratio noise.
const SPIKE_EPS: f32 = 1e-6;

/// Supervisor knobs. The default disables every feature, making
/// [`run_supervised`] bit-identical to the plain training loop.
#[derive(Debug, Clone, Default)]
pub struct SupervisorConfig {
    /// Clip the global gradient norm to this value each step.
    pub clip_norm: Option<f32>,
    /// Roll back to the last good checkpoint on an anomaly (instead of
    /// aborting immediately with a typed error).
    pub rollback: bool,
    /// Rollbacks allowed per run before aborting.
    pub max_retries: u32,
    /// A step's loss counts as a spike when it exceeds `spike_factor ×`
    /// the EMA of past losses (0 disables spike detection).
    pub spike_factor: f32,
    /// EMA smoothing for the spike detector (weight of the newest loss).
    pub ema_alpha: f32,
    /// LR multiplier applied per retry attempt (reset after a good step).
    pub lr_backoff: f32,
    /// Capture the in-memory rollback snapshot every this many optimizer
    /// steps (keyed to the absolute step count, so a replay makes the
    /// identical capture decisions). `0` and `1` both mean every step —
    /// the original semantics; larger values trade deeper rollbacks (the
    /// intermediate steps replay deterministically) for not deep-copying
    /// the whole model + optimizer state on every single step.
    pub snapshot_every: u32,
    /// Deterministic fault injection schedule (drills only).
    pub faults: Option<FaultPlan>,
}

impl SupervisorConfig {
    /// Robustness defaults: clipping at norm 1, rollback with 3 retries,
    /// 4× EMA spike detection, halved LR per retry, per-step snapshots.
    pub fn resilient() -> Self {
        Self {
            clip_norm: Some(1.0),
            rollback: true,
            max_retries: 3,
            spike_factor: 4.0,
            ema_alpha: 0.1,
            lr_backoff: 0.5,
            snapshot_every: 1,
            faults: None,
        }
    }

    /// True when any supervision feature is on (the disabled path is the
    /// bit-identical baseline loop).
    pub fn enabled(&self) -> bool {
        self.clip_norm.is_some() || self.rollback || self.faults.is_some()
    }
}

/// Typed training failure — the supervisor's contract is that training
/// never panics and never aborts the process.
#[derive(Debug)]
pub enum TrainError {
    /// Checkpoint I/O or format failure (writing a due checkpoint, or
    /// restoring one during recovery).
    Checkpoint(CheckpointError),
    /// An anomaly was detected and rollback is disabled.
    Anomaly {
        /// Completed optimizer steps when the anomaly was detected.
        step: u64,
        /// What was detected.
        anomaly: String,
    },
    /// Every allowed rollback was spent and the anomaly persisted.
    RetriesExhausted {
        /// Completed optimizer steps when the final anomaly was detected.
        step: u64,
        /// Rollbacks spent.
        attempts: u32,
        /// The final anomaly.
        last_anomaly: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Checkpoint(e) => write!(f, "{e}"),
            TrainError::Anomaly { step, anomaly } => {
                write!(
                    f,
                    "training anomaly at step {step}: {anomaly} (rollback disabled)"
                )
            }
            TrainError::RetriesExhausted {
                step,
                attempts,
                last_anomaly,
            } => write!(
                f,
                "training aborted at step {step} after {attempts} rollback(s): {last_anomaly}"
            ),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl TrainError {
    /// Collapses back to [`CheckpointError`] for the legacy `*_resumable`
    /// entry points, whose supervisor is disabled and can therefore only
    /// fail on checkpoint I/O.
    pub fn into_checkpoint_error(self) -> CheckpointError {
        match self {
            TrainError::Checkpoint(e) => e,
            other => CheckpointError::Mismatch(other.to_string()),
        }
    }
}

/// Stringifies a caught panic payload.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".to_string(),
        },
    }
}

/// Poisons `model`'s first parameter gradient with NaN (the `nan@N` fault).
fn poison_grads(model: &mut dyn Layer) {
    let mut done = false;
    model.visit_params(&mut |_, p| {
        if !done {
            p.grad.map_mut(|g| g + f32::NAN);
            done = true;
        }
    });
}

/// Recomputes the loss EMA from a replayed prefix of step results. Only
/// the crash-recovery path needs this full rescan (a "restarted process"
/// has no in-memory EMA to restore); ordinary rollbacks restore the EMA
/// saved alongside the snapshot in O(1).
fn ema_of<R>(out: &[R], alpha: f32, loss_of: &impl Fn(&R) -> f32) -> Option<f32> {
    let mut ema = None;
    for r in out {
        let loss = loss_of(r);
        ema = Some(match ema {
            None => loss,
            Some(e) => alpha * loss + (1.0 - alpha) * e,
        });
    }
    ema
}

/// The supervisor's last-good rollback state: the model/optimizer/cursor
/// snapshot plus the loss EMA at capture time, so a rollback restores the
/// anomaly detector without rescanning the step history.
#[derive(Clone)]
struct GoodState {
    ckpt: TrainCheckpoint,
    ema: Option<f32>,
}

/// Emits one `step` trace event + step counters. `step` is the completed
/// optimizer-step count *after* this step. All non-timing fields are pure
/// functions of the run's inputs; `step_ms`/`tokens_per_sec` are wall
/// clock and excluded from the determinism guarantee.
fn emit_step(
    obs: &Obs,
    step: u64,
    batch: &[BatchItem],
    loss: f32,
    lr_scale: f32,
    grad_norm: Option<f32>,
    started: Option<std::time::Instant>,
) {
    let tokens = obs.take_step_tokens();
    obs.inc("train/steps");
    obs.add("train/examples", batch.len() as u64);
    let Some(e) = obs.event("step") else { return };
    let mut e = e
        .u64("step", step)
        .u64("epoch", batch[0].epoch as u64)
        .u64("pos", batch[0].pos as u64)
        .u64("batch", batch.len() as u64)
        .f32("loss", loss)
        .f32("lr_scale", lr_scale);
    if let Some(g) = grad_norm {
        e = e.f32("grad_norm", g);
    }
    if tokens > 0 {
        e = e.u64("tokens", tokens);
    }
    if let Some(t0) = started {
        let elapsed = t0.elapsed();
        e = e.u64("step_ms", elapsed.as_millis() as u64);
        obs.observe("train/step_ns", elapsed.as_nanos() as u64);
        if tokens > 0 && elapsed.as_secs_f64() > 0.0 {
            e = e.f64("tokens_per_sec", tokens as f64 / elapsed.as_secs_f64());
        }
    }
    e.finish();
}

/// Runs a full training loop under the supervisor. Every driver
/// (`pretrain_*`, imputation fine-tuning) funnels through here.
///
/// `step_fn` is the driver's batch body — forward, loss, backward,
/// gradient accumulation — returning its per-step record; `loss_of`
/// extracts the scalar loss the anomaly detector watches. The `Obs`
/// handle passed to `step_fn` is the run's observability sink (a no-op
/// unless `topts.obs` configured one): drivers report per-example token
/// counts into it. The optimizer step, clipping, checkpointing, anomaly
/// handling, fault injection, and event tracing all belong to the
/// supervisor.
///
/// Returns one record per completed optimizer step (skipped batch windows
/// contribute none), or a typed [`TrainError`]. Never panics on worker
/// failures: panics raised inside `step_fn` are caught and handled as
/// anomalies.
pub fn run_supervised<M: Layer, R>(
    model: &mut M,
    cfg: &TrainConfig,
    n_examples: usize,
    topts: &TrainerOptions,
    scfg: &SupervisorConfig,
    loss_of: impl Fn(&R) -> f32,
    mut step_fn: impl FnMut(&mut M, &[BatchItem], &Obs) -> R,
) -> Result<Vec<R>, TrainError> {
    let mut trainer = topts.build(model, cfg, n_examples)?;
    let obs = trainer.obs().clone();
    if let Some(e) = obs.event("run_start") {
        e.u64("step", trainer.steps())
            .u64("n_examples", n_examples as u64)
            .u64("batch_size", cfg.batch_size as u64)
            .u64("epochs", cfg.epochs as u64)
            .u64("seed", cfg.seed)
            .finish();
    }
    let mut retries_used: u32 = 0;
    let result = supervise_loop(
        model,
        &mut trainer,
        scfg,
        &loss_of,
        &mut step_fn,
        &obs,
        &mut retries_used,
    );
    if let Some(e) = obs.event("run_end") {
        let e = e
            .u64("steps", trainer.steps())
            .u64("retries", retries_used as u64);
        match &result {
            Ok(_) => e.str("outcome", "ok").finish(),
            Err(err) => e
                .str("outcome", "error")
                .str("error", &err.to_string())
                .finish(),
        }
    }
    let _ = obs.write_metrics();
    result
}

/// The supervisor loop body, split out so [`run_supervised`] can emit
/// `run_end` + flush metrics on every exit path.
#[allow(clippy::too_many_arguments)]
fn supervise_loop<M: Layer, R>(
    model: &mut M,
    trainer: &mut Trainer,
    scfg: &SupervisorConfig,
    loss_of: &impl Fn(&R) -> f32,
    step_fn: &mut impl FnMut(&mut M, &[BatchItem], &Obs) -> R,
    obs: &Obs,
    retries_used: &mut u32,
) -> Result<Vec<R>, TrainError> {
    let mut out: Vec<R> = Vec::new();

    if !scfg.enabled() {
        // Bit-identical baseline: the exact pre-supervisor loop, plus
        // (only when armed) step tracing that reads but never perturbs it.
        while let Some(batch) = trainer.next_batch() {
            let t0 = obs.now();
            let r = step_fn(model, &batch, obs);
            trainer.step(model)?;
            if obs.enabled() {
                emit_step(obs, trainer.steps(), &batch, loss_of(&r), 1.0, None, t0);
            }
            out.push(r);
        }
        return Ok(out);
    }

    let mut plan = scfg.faults.clone().unwrap_or_default();
    let has_crash = plan.faults().iter().any(|f| f.kind == FaultKind::Crash);
    let snapshots = scfg.rollback || has_crash;
    let cadence = scfg.snapshot_every.max(1) as u64;
    // The run's starting state: what a fresh process would deterministically
    // reconstruct. The fallback when a crash finds no usable disk checkpoint,
    // and the first "last good" snapshot.
    let initial = snapshots.then(|| trainer.capture(model));
    let mut last_good: Option<GoodState> =
        initial.clone().map(|ckpt| GoodState { ckpt, ema: None });
    let base_steps = trainer.steps();
    let mut skip: HashSet<(usize, usize)> = HashSet::new();
    let mut ema: Option<f32> = None;
    let mut lr_scale = 1.0f32;

    while let Some(batch) = trainer.next_batch() {
        // A batch window blamed for an earlier anomaly is skipped without
        // an optimizer step; the window is identified by its first
        // example, which is a pure function of (epoch, pos, seed).
        if skip.contains(&(batch[0].epoch, batch[0].pos)) {
            continue;
        }
        let step = trainer.steps();

        if plan.take(FaultKind::Crash, step) {
            // Simulated hard kill: in-memory state (snapshots, EMA, LR
            // backoff) is gone. A restarted process recovers from the
            // on-disk checkpoint; with none (or a corrupt one) it starts
            // over from the initial state.
            let disk = trainer
                .checkpoint_path()
                .map(|p| p.to_path_buf())
                .and_then(|p| load_checkpoint(&p).ok());
            let restored = match disk {
                Some(ckpt) => trainer.restore(model, &ckpt).is_ok(),
                None => false,
            };
            if !restored {
                let initial = initial.as_ref().expect("crash fault implies snapshots");
                trainer.restore(model, initial)?;
            }
            model.zero_grad();
            out.truncate(trainer.steps().saturating_sub(base_steps) as usize);
            // A "restarted process" has no in-memory EMA; rebuild it from
            // the surviving step records (this is the one path that still
            // rescans — crashes are rare, retries are not).
            ema = ema_of(&out, scfg.ema_alpha, loss_of);
            lr_scale = 1.0;
            trainer.set_lr_scale(1.0);
            last_good = Some(GoodState {
                ckpt: trainer.capture(model),
                ema,
            });
            let _ = obs.take_step_tokens();
            if let Some(e) = obs.event("crash_recovery") {
                e.u64("step", step)
                    .u64("to_step", trainer.steps())
                    .str("source", if restored { "disk" } else { "initial" })
                    .finish();
            }
            obs.inc("supervisor/crash_recoveries");
            continue;
        }

        let t0 = obs.now();
        let result: Result<R, String> = if plan.take(FaultKind::WorkerPanic, step) {
            // Drive the injected panic through a real pool dispatch so the
            // drill exercises genuine worker panic isolation.
            faults::arm_worker_panic();
            let mut scratch = vec![0.0f32; 64];
            let dispatch = par::try_for_chunks(&mut scratch, 1, par::max_threads(), |_, _| {});
            faults::disarm_worker_panic();
            match dispatch {
                Err(p) => Err(p.to_string()),
                Ok(()) => Err("injected worker panic".to_string()),
            }
        } else {
            catch_unwind(AssertUnwindSafe(|| step_fn(model, &batch, obs)))
                .map_err(|payload| format!("worker panic: {}", payload_message(payload)))
        };

        let mut step_grad_norm: Option<f32> = None;
        let anomaly: Option<(&'static str, String)> = match &result {
            Err(msg) => Some(("panic", msg.clone())),
            Ok(r) => {
                if plan.take(FaultKind::Nan, step) {
                    poison_grads(model);
                }
                let grad_norm = match scfg.clip_norm {
                    Some(max) => clip_global_grad_norm(model, max),
                    None => global_grad_norm(model),
                };
                step_grad_norm = Some(grad_norm);
                let loss = loss_of(r);
                if !loss.is_finite() {
                    Some(("nan-loss", format!("non-finite loss ({loss})")))
                } else if !grad_norm.is_finite() {
                    Some((
                        "nan-grad-norm",
                        format!("non-finite global gradient norm ({grad_norm})"),
                    ))
                } else if scfg.spike_factor > 0.0
                    && ema.is_some_and(|e| loss > scfg.spike_factor * e + SPIKE_EPS)
                {
                    Some((
                        "loss-spike",
                        format!(
                            "loss spike: {loss} > {} x EMA {}",
                            scfg.spike_factor,
                            ema.unwrap_or(0.0)
                        ),
                    ))
                } else {
                    None
                }
            }
        };

        match anomaly {
            None => {
                let r = match result {
                    Ok(r) => r,
                    Err(_) => unreachable!("anomaly is None only for Ok results"),
                };
                trainer.step(model)?;
                if plan.take(FaultKind::CorruptCkpt, trainer.steps()) {
                    if let Some(path) = trainer.checkpoint_path() {
                        if path.exists() {
                            let _ = faults::corrupt_file(path);
                        }
                    }
                }
                let loss = loss_of(&r);
                ema = Some(match ema {
                    None => loss,
                    Some(e) => scfg.ema_alpha * loss + (1.0 - scfg.ema_alpha) * e,
                });
                if obs.enabled() {
                    emit_step(
                        obs,
                        trainer.steps(),
                        &batch,
                        loss,
                        lr_scale,
                        step_grad_norm,
                        t0,
                    );
                }
                out.push(r);
                if lr_scale != 1.0 {
                    // The backoff covered the retry window; later steps run
                    // at the scheduled LR again.
                    lr_scale = 1.0;
                    trainer.set_lr_scale(1.0);
                }
                if let Some(state) = &mut last_good {
                    // Cadence snapshots: capture on absolute-step
                    // boundaries, so a rollback-and-replay makes the
                    // identical capture decisions it made the first time.
                    if trainer.steps().is_multiple_of(cadence) {
                        state.ckpt = trainer.capture(model);
                        state.ema = ema;
                    }
                }
            }
            Some((kind, what)) => {
                // Grads may hold partial/poisoned accumulation; they are
                // never part of a checkpoint, so clear them explicitly.
                model.zero_grad();
                let _ = obs.take_step_tokens();
                if let Some(e) = obs.event("anomaly") {
                    e.u64("step", step)
                        .u64("epoch", batch[0].epoch as u64)
                        .u64("pos", batch[0].pos as u64)
                        .str("kind", kind)
                        .str("detail", &what)
                        .finish();
                }
                obs.inc("supervisor/anomalies");
                obs.inc(&format!("supervisor/anomaly/{kind}"));
                if !scfg.rollback {
                    return Err(TrainError::Anomaly {
                        step,
                        anomaly: what,
                    });
                }
                if *retries_used >= scfg.max_retries {
                    return Err(TrainError::RetriesExhausted {
                        step,
                        attempts: *retries_used,
                        last_anomaly: what,
                    });
                }
                *retries_used += 1;
                let state = last_good.as_ref().expect("rollback implies snapshots");
                trainer.restore(model, &state.ckpt)?;
                model.zero_grad();
                lr_scale *= scfg.lr_backoff;
                trainer.set_lr_scale(lr_scale);
                out.truncate(trainer.steps().saturating_sub(base_steps) as usize);
                // O(1) detector restore: the EMA saved with the snapshot
                // matches the truncated step prefix exactly; replayed
                // steps then re-advance it deterministically.
                ema = state.ema;
                skip.insert((batch[0].epoch, batch[0].pos));
                if let Some(e) = obs.event("rollback") {
                    e.u64("step", step)
                        .u64("to_step", trainer.steps())
                        .u64("retry", *retries_used as u64)
                        .f32("lr_scale", lr_scale)
                        .u64("skip_epoch", batch[0].epoch as u64)
                        .u64("skip_pos", batch[0].pos as u64)
                        .finish();
                }
                obs.inc("supervisor/rollbacks");
            }
        }
    }
    Ok(out)
}
