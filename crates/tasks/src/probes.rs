//! Representation-consistency probes — the paper's §2.4 calls for "a new
//! family of data-driven basic tests … to measure the consistency of the
//! data representation". These probes are that family:
//!
//! * **row-order invariance** — a relation is a *set* of tuples, so a good
//!   table representation should barely move when rows are permuted;
//! * **column-order invariance** — likewise for attribute order;
//! * **header sensitivity** — replacing descriptive headers with `col0…`
//!   removes real information, so the representation *should* move.
//!
//! Each probe reports the mean cosine similarity between the `[CLS]` table
//! embedding before and after the perturbation.

use ntr_corpus::tables::TableCorpus;
use ntr_models::{EncoderInput, SequenceEncoder};
use ntr_table::{Column, Linearizer, LinearizerOptions, RowMajorLinearizer, Table};
use ntr_tensor::Tensor;
use ntr_tokenizer::WordPieceTokenizer;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

/// Results of the three consistency probes for one model.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyReport {
    /// Mean cosine between original and row-permuted embeddings (↑ better).
    pub row_order_invariance: f64,
    /// Mean cosine between original and column-permuted embeddings (↑ better).
    pub col_order_invariance: f64,
    /// Mean cosine between original and header-stripped embeddings
    /// (**lower** means the model actually uses headers).
    pub header_similarity: f64,
    /// Tables probed.
    pub n: usize,
}

fn cls_embedding<M: SequenceEncoder + ?Sized>(
    model: &mut M,
    table: &Table,
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
) -> Tensor {
    let e = RowMajorLinearizer.linearize(table, &table.caption, tok, opts);
    let input = EncoderInput::from_encoded(&e);
    model.encode(&input, false).rows(0, 1)
}

fn permuted_rows(t: &Table, rng: &mut StdRng) -> Table {
    let mut idx: Vec<usize> = (0..t.n_rows()).collect();
    idx.shuffle(rng);
    t.select_rows(&idx)
}

fn permuted_cols(t: &Table, rng: &mut StdRng) -> Table {
    let mut idx: Vec<usize> = (0..t.n_cols()).collect();
    idx.shuffle(rng);
    t.select_columns(&idx)
}

fn stripped_headers(t: &Table) -> Table {
    let columns: Vec<Column> = (0..t.n_cols())
        .map(|i| Column::new(format!("col{i}")))
        .collect();
    Table::new(t.id.clone(), columns, t.rows().to_vec())
        .expect("same shape")
        .with_caption(t.caption.clone())
}

/// Runs all three probes over a corpus.
///
/// Similarities use **centered** cosine: transformer `[CLS]` embeddings are
/// notoriously anisotropic (everything is cosine ≈ 0.99 to everything
/// else), so the corpus-mean embedding is subtracted from both sides
/// first. After centering, 1.0 still means "perturbation invisible" and
/// values near 0 mean "perturbation moved the representation as much as
/// switching to a different table".
pub fn consistency<M: SequenceEncoder + ?Sized>(
    model: &mut M,
    corpus: &TableCorpus,
    tok: &WordPieceTokenizer,
    opts: &LinearizerOptions,
    seed: u64,
) -> ConsistencyReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut quads: Vec<[Tensor; 4]> = Vec::new();
    for t in &corpus.tables {
        if t.n_rows() < 2 || t.n_cols() < 2 {
            continue;
        }
        quads.push([
            cls_embedding(model, t, tok, opts),
            cls_embedding(model, &permuted_rows(t, &mut rng), tok, opts),
            cls_embedding(model, &permuted_cols(t, &mut rng), tok, opts),
            cls_embedding(model, &stripped_headers(t), tok, opts),
        ]);
    }
    let n = quads.len();
    if n == 0 {
        return ConsistencyReport::default();
    }
    // Corpus-mean of the unperturbed embeddings, for anisotropy centering.
    let d = quads[0][0].numel();
    let mut mean = Tensor::zeros(&[1, d]);
    for q in &quads {
        mean.add_assign(&q[0]);
    }
    let mean = mean.scale(1.0 / n as f32);
    let centered = |t: &Tensor| t.sub(&mean);

    let mut sums = [0.0f64; 3];
    for q in &quads {
        let base = centered(&q[0]);
        for (k, s) in sums.iter_mut().enumerate() {
            *s += base.cosine(&centered(&q[k + 1])) as f64;
        }
    }
    ConsistencyReport {
        row_order_invariance: sums[0] / n as f64,
        col_order_invariance: sums[1] / n as f64,
        header_similarity: sums[2] / n as f64,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_corpus::tables::CorpusConfig;
    use ntr_corpus::{World, WorldConfig};
    use ntr_models::{ModelConfig, Tapas, VanillaBert};

    fn setup() -> (TableCorpus, WordPieceTokenizer) {
        let w = World::generate(WorldConfig {
            n_countries: 8,
            n_people: 8,
            n_films: 6,
            n_clubs: 4,
            seed: 71,
        });
        let corpus = TableCorpus::generate(
            &w,
            &CorpusConfig {
                n_tables: 8,
                min_rows: 3,
                max_rows: 4,
                null_prob: 0.0,
                headerless_prob: 0.0,
                seed: 72,
            },
        );
        let tok = ntr_corpus::vocab::train_tokenizer(&corpus, &[], 1200);
        (corpus, tok)
    }

    #[test]
    fn probes_produce_bounded_similarities() {
        let (corpus, tok) = setup();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let mut model = VanillaBert::new(&cfg);
        let report = consistency(&mut model, &corpus, &tok, &LinearizerOptions::default(), 1);
        assert!(report.n > 0);
        for v in [
            report.row_order_invariance,
            report.col_order_invariance,
            report.header_similarity,
        ] {
            assert!((-1.0..=1.0).contains(&v), "{report:?}");
        }
    }

    #[test]
    fn perturbations_actually_change_something() {
        let (corpus, tok) = setup();
        let cfg = ModelConfig {
            vocab_size: tok.vocab_size(),
            ..ModelConfig::tiny(tok.vocab_size())
        };
        let mut model = Tapas::new(&cfg);
        let report = consistency(&mut model, &corpus, &tok, &LinearizerOptions::default(), 2);
        // An untrained model still produces non-identical embeddings under
        // permutation (position embeddings differ), so similarity < 1.
        assert!(report.row_order_invariance < 1.0 - 1e-6, "{report:?}");
        assert!(report.header_similarity < 1.0 - 1e-6, "{report:?}");
    }

    #[test]
    fn probe_helpers_preserve_content() {
        let (corpus, _) = setup();
        let t = &corpus.tables[0];
        let mut rng = StdRng::seed_from_u64(3);
        let p = permuted_rows(t, &mut rng);
        assert_eq!(p.n_rows(), t.n_rows());
        let q = permuted_cols(t, &mut rng);
        assert_eq!(q.n_cols(), t.n_cols());
        let s = stripped_headers(t);
        assert!(s.is_headerless());
        assert_eq!(s.cell(0, 0), t.cell(0, 0));
    }
}
