//! Shared training-loop configuration and the optimizer-step helper.

use ntr_nn::optim::{Adam, WarmupLinearSchedule};
use ntr_nn::Layer;

/// Hyperparameters for a fine-tuning run.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the training split.
    pub epochs: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Examples per optimizer step (gradient accumulation).
    pub batch_size: usize,
    /// Warmup fraction of total steps.
    pub warmup_frac: f32,
    /// Shuffling/masking seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 3,
            lr: 3e-3,
            batch_size: 8,
            warmup_frac: 0.1,
            seed: 0xF17E,
        }
    }
}

/// Drives Adam with a warmup-linear schedule over a known number of steps.
pub struct ScheduledOptimizer {
    adam: Adam,
    schedule: WarmupLinearSchedule,
}

impl ScheduledOptimizer {
    /// Builds the optimizer for `total_steps` steps under `cfg`.
    pub fn new(cfg: &TrainConfig, total_steps: u64) -> Self {
        let warmup = ((total_steps as f32) * cfg.warmup_frac) as u64;
        Self {
            adam: Adam::new(cfg.lr).with_weight_decay(0.01),
            schedule: WarmupLinearSchedule {
                peak_lr: cfg.lr,
                warmup: warmup.max(1),
                total: total_steps.max(1),
            },
        }
    }

    /// Applies one optimizer step to `model`'s accumulated gradients and
    /// zeroes them.
    pub fn step(&mut self, model: &mut dyn Layer) {
        let t = self.adam.steps();
        self.adam.set_lr(self.schedule.lr_at(t));
        let mut guard = self.adam.begin_step();
        model.visit_params(&mut |_, p| guard.update(p));
        model.zero_grad();
    }

    /// Completed steps.
    pub fn steps(&self) -> u64 {
        self.adam.steps()
    }
}

/// Deterministically shuffles indices for one epoch.
pub fn epoch_order(n: usize, epoch: usize, seed: u64) -> Vec<usize> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (epoch as u64).wrapping_mul(0x9E37));
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntr_nn::init::SeededInit;
    use ntr_nn::Linear;
    use ntr_tensor::Tensor;

    #[test]
    fn scheduled_optimizer_steps_and_zeroes() {
        let cfg = TrainConfig::default();
        let mut opt = ScheduledOptimizer::new(&cfg, 10);
        let mut lin = Linear::new(2, 2, &mut SeededInit::new(1));
        let before = lin.w.value.clone();
        let _ = lin.forward(&Tensor::ones(&[1, 2]));
        let _ = lin.backward(&Tensor::ones(&[1, 2]));
        opt.step(&mut lin);
        assert_ne!(lin.w.value, before);
        assert!(lin.w.grad.data().iter().all(|&g| g == 0.0));
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn epoch_order_is_a_deterministic_permutation() {
        let a = epoch_order(10, 0, 1);
        let b = epoch_order(10, 0, 1);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert_ne!(epoch_order(10, 1, 1), a, "epochs reshuffle");
    }
}
